//! Property-based tests for the workflow engine substrate.

use proptest::prelude::*;

use cloudsim::EventQueue;
use cumulus::pool::Pool;
use cumulus::sched::{Policy, ReadyQueue, ReadyTask};
use cumulus::xmlspec::{parse_xml, SciCumulusSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_map_equals_sequential_map(items in prop::collection::vec(-1000i64..1000, 0..200),
                                      threads in 1usize..6) {
        let pool = Pool::new(threads);
        let seq: Vec<i64> = items.iter().map(|x| x * 3 - 1).collect();
        let par = pool.map(items, |x| x * 3 - 1);
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0.0..1e6f64, 0..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(*t, i);
        }
        let mut popped: Vec<f64> = Vec::new();
        while let Some((t, _)) = q.pop() {
            popped.push(t);
        }
        prop_assert_eq!(popped.len(), times.len());
        prop_assert!(popped.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ready_queue_conserves_tasks(weights in prop::collection::vec(0.1..1e4f64, 0..100),
                                   policy_pick in 0u8..3) {
        let policy = match policy_pick {
            0 => Policy::GreedyWeighted,
            1 => Policy::RoundRobin,
            _ => Policy::Random,
        };
        let mut q = ReadyQueue::new(policy);
        for (i, w) in weights.iter().enumerate() {
            q.push(ReadyTask { task: i, weight: *w });
        }
        prop_assert_eq!(q.len(), weights.len());
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop(&mut rng)).map(|t| t.task).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..weights.len()).collect::<Vec<_>>());
    }

    #[test]
    fn greedy_queue_pops_in_weight_order(weights in prop::collection::vec(0.1..1e4f64, 1..100)) {
        let mut q = ReadyQueue::new(Policy::GreedyWeighted);
        for (i, w) in weights.iter().enumerate() {
            q.push(ReadyTask { task: i, weight: *w });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let order: Vec<f64> = std::iter::from_fn(|| q.pop(&mut rng)).map(|t| t.weight).collect();
        prop_assert!(order.windows(2).all(|w| w[0] >= w[1]), "{order:?}");
    }

    #[test]
    fn xml_escaping_roundtrip(desc in "[a-zA-Z0-9<>&\"' ]{0,40}", tag in "[A-Za-z][A-Za-z0-9]{0,10}") {
        let spec = SciCumulusSpec {
            database: cumulus::xmlspec::DatabaseSpec {
                name: "db".into(),
                server: "localhost".into(),
                port: 5432,
            },
            tag: tag.clone(),
            description: desc.clone(),
            exectag: "x".into(),
            expdir: "/e/".into(),
            activities: vec![],
        };
        let text = spec.to_xml();
        let back = SciCumulusSpec::from_xml(&text).unwrap();
        prop_assert_eq!(back.description, desc);
        prop_assert_eq!(back.tag, tag);
    }

    #[test]
    fn xml_parser_never_panics(input in ".{0,200}") {
        // arbitrary input must error or parse, never panic
        let _ = parse_xml(&input);
    }

    #[test]
    fn sql_parser_never_panics_via_spec(input in ".{0,200}") {
        let _ = SciCumulusSpec::from_xml(&input);
    }
}

// ---- telemetry histogram: the mergeable/streamable metrics substrate ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quantiles are monotone in `q`: a higher quantile can never report a
    /// smaller value, whatever the sample distribution.
    #[test]
    fn histogram_quantiles_are_monotone(samples in prop::collection::vec(0u64..=u64::MAX, 1..300),
                                        qs in prop::collection::vec(0.0..1.0f64, 2..8)) {
        let mut h = telemetry::HistogramSnapshot::new();
        for s in &samples {
            h.record(*s);
        }
        let mut qs = qs;
        qs.sort_by(|a, b| a.total_cmp(b));
        let vals: Vec<f64> = qs.iter().map(|q| h.quantile(*q)).collect();
        prop_assert!(
            vals.windows(2).all(|w| w[0] <= w[1]),
            "quantiles not monotone: {qs:?} -> {vals:?}"
        );
        // the top quantile reports the exact maximum
        prop_assert_eq!(h.quantile(1.0), h.max as f64);
    }

    /// Merging two snapshots is bitwise identical to having recorded the
    /// union of their sample streams — the property the master's mid-run
    /// cluster-wide merge of worker `Stats` frames depends on.
    #[test]
    fn histogram_merge_equals_union_stream(a in prop::collection::vec(0u64..=u64::MAX, 0..200),
                                           b in prop::collection::vec(0u64..=u64::MAX, 0..200)) {
        let mut ha = telemetry::HistogramSnapshot::new();
        for s in &a {
            ha.record(*s);
        }
        let mut hb = telemetry::HistogramSnapshot::new();
        for s in &b {
            hb.record(*s);
        }
        ha.merge(&hb);

        let mut hu = telemetry::HistogramSnapshot::new();
        for s in a.iter().chain(b.iter()) {
            hu.record(*s);
        }
        prop_assert_eq!(&ha.buckets[..], &hu.buckets[..]);
        prop_assert_eq!(ha.count, hu.count);
        prop_assert_eq!(ha.sum, hu.sum); // wrapping adds commute
        prop_assert_eq!(ha.max, hu.max);
    }

    /// The wire form (`[count, sum, max, bucket 0..63]`) round-trips
    /// losslessly, so a worker's streamed histogram reconstructs exactly.
    #[test]
    fn histogram_words_roundtrip(samples in prop::collection::vec(0u64..=u64::MAX, 0..300)) {
        let mut h = telemetry::HistogramSnapshot::new();
        for s in &samples {
            h.record(*s);
        }
        let words = h.to_words();
        prop_assert_eq!(words.len(), 3 + telemetry::HIST_BUCKETS);
        let back = telemetry::HistogramSnapshot::from_words(&words)
            .expect("well-formed word vector");
        prop_assert_eq!(back, h);
        // wrong lengths are rejected, never misparsed
        prop_assert_eq!(telemetry::HistogramSnapshot::from_words(&words[..words.len() - 1]), None);
    }
}
