//! Property-based tests for the workflow engine substrate.

use proptest::prelude::*;

use cloudsim::EventQueue;
use cumulus::pool::Pool;
use cumulus::sched::{Policy, ReadyQueue, ReadyTask};
use cumulus::xmlspec::{parse_xml, SciCumulusSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_map_equals_sequential_map(items in prop::collection::vec(-1000i64..1000, 0..200),
                                      threads in 1usize..6) {
        let pool = Pool::new(threads);
        let seq: Vec<i64> = items.iter().map(|x| x * 3 - 1).collect();
        let par = pool.map(items, |x| x * 3 - 1);
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0.0..1e6f64, 0..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(*t, i);
        }
        let mut popped: Vec<f64> = Vec::new();
        while let Some((t, _)) = q.pop() {
            popped.push(t);
        }
        prop_assert_eq!(popped.len(), times.len());
        prop_assert!(popped.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ready_queue_conserves_tasks(weights in prop::collection::vec(0.1..1e4f64, 0..100),
                                   policy_pick in 0u8..3) {
        let policy = match policy_pick {
            0 => Policy::GreedyWeighted,
            1 => Policy::RoundRobin,
            _ => Policy::Random,
        };
        let mut q = ReadyQueue::new(policy);
        for (i, w) in weights.iter().enumerate() {
            q.push(ReadyTask { task: i, weight: *w });
        }
        prop_assert_eq!(q.len(), weights.len());
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop(&mut rng)).map(|t| t.task).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..weights.len()).collect::<Vec<_>>());
    }

    #[test]
    fn greedy_queue_pops_in_weight_order(weights in prop::collection::vec(0.1..1e4f64, 1..100)) {
        let mut q = ReadyQueue::new(Policy::GreedyWeighted);
        for (i, w) in weights.iter().enumerate() {
            q.push(ReadyTask { task: i, weight: *w });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let order: Vec<f64> = std::iter::from_fn(|| q.pop(&mut rng)).map(|t| t.weight).collect();
        prop_assert!(order.windows(2).all(|w| w[0] >= w[1]), "{order:?}");
    }

    #[test]
    fn xml_escaping_roundtrip(desc in "[a-zA-Z0-9<>&\"' ]{0,40}", tag in "[A-Za-z][A-Za-z0-9]{0,10}") {
        let spec = SciCumulusSpec {
            database: cumulus::xmlspec::DatabaseSpec {
                name: "db".into(),
                server: "localhost".into(),
                port: 5432,
            },
            tag: tag.clone(),
            description: desc.clone(),
            exectag: "x".into(),
            expdir: "/e/".into(),
            activities: vec![],
        };
        let text = spec.to_xml();
        let back = SciCumulusSpec::from_xml(&text).unwrap();
        prop_assert_eq!(back.description, desc);
        prop_assert_eq!(back.tag, tag);
    }

    #[test]
    fn xml_parser_never_panics(input in ".{0,200}") {
        // arbitrary input must error or parse, never panic
        let _ = parse_xml(&input);
    }

    #[test]
    fn sql_parser_never_panics_via_spec(input in ".{0,200}") {
        let _ = SciCumulusSpec::from_xml(&input);
    }
}
