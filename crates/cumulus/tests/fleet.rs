//! Sim-vs-dist scheduler parity: the same [`cumulus::Scheduler`] policy,
//! handed to the distributed backend and to the simulator over the same
//! logical workload, must produce the identical decision trace — scale
//! decisions are functions of logical state (completions, backlog,
//! provisioned fleet), never of wall-clock timing.

use std::sync::Arc;
use std::time::Duration;

use cumulus::workflow::{Activity, FileStore, WorkflowDef};
use cumulus::{
    run_dist, simulate_tasks, CostAwareConfig, CostAwareScheduler, DistConfig, QueueDepthConfig,
    QueueDepthScheduler, Relation, SchedulerFactory, SimConfig, SimTask,
};
use provenance::{ProvenanceStore, Value};

/// One Map activity over `x`, each activation sleeping `sleep_ms`.
fn flat_def(sleep_ms: u64) -> WorkflowDef {
    WorkflowDef {
        tag: "flat".into(),
        description: "flat parity workload".into(),
        expdir: "/exp/flat".into(),
        activities: vec![Activity::map(
            "work",
            &["x"],
            Arc::new(move |t, _: &mut _| {
                if sleep_ms > 0 {
                    std::thread::sleep(Duration::from_millis(sleep_ms));
                }
                Ok(t.to_vec())
            }),
        )],
        deps: vec![vec![]],
    }
}

fn flat_input(n: i64) -> Relation {
    let mut r = Relation::new(&["x"]);
    for i in 0..n {
        r.push(vec![Value::Int(i)]);
    }
    r
}

/// The simulator's version of the same workload: `n` independent tasks of
/// one activity.
fn flat_tasks(n: usize) -> Vec<SimTask> {
    (0..n)
        .map(|i| SimTask {
            activity_index: 0,
            pair_key: format!("x{i}"),
            nominal_s: 5.0,
            in_bytes: 0,
            out_bytes: 0,
            deps: Vec::new(),
            poison: false,
        })
        .collect()
}

fn qd_factory(max_workers: usize) -> SchedulerFactory {
    SchedulerFactory::new(move || {
        Box::new(QueueDepthScheduler::new(QueueDepthConfig {
            max_workers,
            ..QueueDepthConfig::default()
        }))
    })
}

fn dist_cfg(sleep_ms: u64) -> DistConfig {
    DistConfig::new()
        .with_workers(1)
        .with_resolver(Arc::new(move |spec| (spec == "flat").then(|| flat_def(sleep_ms))))
        .with_spec("flat")
        .with_max_in_flight(1)
}

#[test]
fn sim_and_dist_schedulers_decide_identically() {
    let factory = qd_factory(3);

    // distributed: 1 single-slot in-process worker, 10 real activations
    let cfg = dist_cfg(20).with_scheduler(factory.clone());
    let prov = Arc::new(ProvenanceStore::new());
    let dist = run_dist(&flat_def(20), flat_input(10), Arc::new(FileStore::new()), prov, &cfg)
        .expect("distributed run");
    assert_eq!(dist.finished, 10);

    // simulated: 1 single-core m1.small, the same 10-task backlog
    let scfg = SimConfig::new()
        .with_fleet(vec![&cloudsim::M1_SMALL])
        .with_scale_instance(&cloudsim::M1_SMALL)
        .with_activity_tags(vec!["work".into()])
        .with_scheduler(factory);
    let sim = simulate_tasks(&flat_tasks(10), &scfg, None);
    assert_eq!(sim.finished, 10);

    assert!(!dist.scale_events.is_empty(), "the policy must actually scale");
    assert_eq!(
        dist.scale_events, sim.scale_events,
        "one policy, two substrates, one decision trace"
    );
}

#[test]
fn cost_aware_policy_bills_the_distributed_fleet() {
    let billing = cloudsim::M1_SMALL.billing();
    let factory = SchedulerFactory::new(move || {
        Box::new(CostAwareScheduler::new(CostAwareConfig {
            max_usd_per_hour: 3.0 * billing.hourly_usd,
            ..CostAwareConfig::new(billing, vec![30.0])
        }))
    });
    let cfg = dist_cfg(20).with_scheduler(factory);
    let prov = Arc::new(ProvenanceStore::new());
    let report = run_dist(&flat_def(20), flat_input(10), Arc::new(FileStore::new()), prov, &cfg)
        .expect("cost-aware run");
    assert_eq!(report.finished, 10);
    let cost = report.fleet_cost_usd.expect("cost-aware scheduler carries a cost model");
    // per-started-hour billing: every worker bills at least one hour
    assert!(cost >= billing.hourly_usd, "cost {cost} must cover at least one worker-hour");
    assert!(report.peak_workers <= 3, "the $/hour cap bounds the fleet");
}
