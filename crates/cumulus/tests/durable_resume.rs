//! Crash-recovery integration tests: a workflow run on a durable
//! provenance store is killed mid-run (injected panic or torn WAL tail),
//! the store is reopened as a fresh process would, and `resume_from`
//! completes the run without re-executing finished activations.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cumulus::{
    Activity, Backend, CumulusError, FileStore, LocalBackend, LocalConfig, Relation, RunOutcome,
    Workflow, WorkflowDef,
};
use provenance::durable::io::{FaultEnv, FaultPlan, MemEnv};
use provenance::{Durability, DurableOptions, ProvenanceStore, Value};

/// One map activity doubling its input, `calls` counting real executions.
fn doubling_workflow(calls: &Arc<AtomicUsize>) -> WorkflowDef {
    let calls = Arc::clone(calls);
    let func: cumulus::ActivityFn = Arc::new(move |tuples, _ctx| {
        calls.fetch_add(1, Ordering::SeqCst);
        Ok(tuples.iter().map(|t| vec![Value::Float(t[0].as_f64().unwrap_or(0.0) * 2.0)]).collect())
    });
    WorkflowDef {
        tag: "durable-resume".into(),
        description: String::new(),
        expdir: "/e".into(),
        activities: vec![Activity::map("double", &["x2"], func)],
        deps: vec![vec![]],
    }
}

fn input(n: i64) -> Relation {
    let mut rel = Relation::new(&["x"]);
    for k in 0..n {
        rel.push(vec![Value::Int(k)]);
    }
    rel
}

/// Run `wf` over `input` through the `Backend` trait (the non-deprecated
/// surface these tests exercise the engine through).
fn run(
    wf: WorkflowDef,
    input: Relation,
    prov: &Arc<ProvenanceStore>,
    cfg: LocalConfig,
) -> Result<RunOutcome, CumulusError> {
    LocalBackend::new(cfg)
        .run(&Workflow::new(wf, input).with_files(Arc::new(FileStore::new())), prov)
}

fn sync_options() -> DurableOptions {
    DurableOptions { durability: Durability::Sync, ..Default::default() }
}

fn sorted_output(rel: &Relation) -> Vec<f64> {
    let mut v: Vec<f64> = rel.tuples.iter().map(|t| t[0].as_f64().unwrap()).collect();
    v.sort_by(f64::total_cmp);
    v
}

fn finished_count(prov: &ProvenanceStore) -> i64 {
    let r =
        prov.query_rows("SELECT count(*) FROM hactivation WHERE status = 'FINISHED'", &[]).unwrap();
    r.cell(0, 0).as_f64().unwrap() as i64
}

const N: i64 = 12;

#[test]
fn injected_crash_mid_run_then_reopen_and_resume() {
    // reference: the same workflow run to completion on an in-memory store
    let calls_ref = Arc::new(AtomicUsize::new(0));
    let wf_ref = doubling_workflow(&calls_ref);
    let prov_ref = Arc::new(ProvenanceStore::new());
    let full = run(wf_ref, input(N), &prov_ref, LocalConfig::new().with_threads(2)).unwrap();
    assert_eq!(full.finished, N as usize);

    // crashing run: the storage env panics after a handful of WAL appends,
    // which is how a process dying mid-run looks to the storage layer
    let env = MemEnv::new();
    let plan = Arc::new(FaultPlan::panic_after(9));
    let fault = FaultEnv::new(Box::new(env.clone()), Arc::clone(&plan));
    let prov1 =
        Arc::new(ProvenanceStore::open_env(Box::new(fault), sync_options()).expect("fresh env"));
    let calls1 = Arc::new(AtomicUsize::new(0));
    let wf1 = doubling_workflow(&calls1);
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        run(wf1, input(N), &prov1, LocalConfig::new().with_threads(2))
    }));
    assert!(crashed.is_err(), "the injected fault must kill the run");
    assert!(plan.appends_seen() >= 9);
    // a killed process runs no destructors
    std::mem::forget(prov1);

    // "new process": reopen the same storage and look at what survived
    let prov2 = Arc::new(
        ProvenanceStore::open_env(Box::new(env.clone()), sync_options()).expect("recovery"),
    );
    let recovered = finished_count(&prov2);
    assert!(recovered < N, "the crash must have cut the run short, got {recovered}");
    let prior = prov2.latest_workflow().expect("workflow row was committed before the crash");

    // resume: only the missing activations execute, output matches the
    // uninterrupted reference run
    let calls2 = Arc::new(AtomicUsize::new(0));
    let wf2 = doubling_workflow(&calls2);
    let resumed =
        run(wf2, input(N), &prov2, LocalConfig::new().with_threads(2).with_resume_from(prior))
            .unwrap();
    assert_eq!(resumed.resumed as i64, recovered, "every recovered FINISHED row is reused");
    assert_eq!(resumed.finished + resumed.resumed, N as usize);
    assert_eq!(calls2.load(Ordering::SeqCst) as i64, N - recovered);
    assert_eq!(sorted_output(resumed.final_output()), sorted_output(full.final_output()));
}

#[test]
fn torn_wal_tail_recovers_committed_prefix_and_resumes() {
    // full durable run, fsync per op so each frame is independently durable
    let calls = Arc::new(AtomicUsize::new(0));
    let wf = doubling_workflow(&calls);
    let env = MemEnv::new();
    let prov1 = Arc::new(ProvenanceStore::open_env(Box::new(env.clone()), sync_options()).unwrap());
    let full = run(wf, input(N), &prov1, LocalConfig::new().with_threads(2)).unwrap();
    drop(prov1);

    // simulate a crash mid-write: keep ~60% of the WAL and smear garbage
    // over the end, as a torn final write would
    let wal = env.wal_bytes();
    let cut = wal.len() * 6 / 10;
    let torn = MemEnv::new();
    let mut bytes = wal[..cut].to_vec();
    bytes.extend_from_slice(&[0xFF; 7]);
    torn.set_wal_bytes(bytes);

    let prov2 =
        Arc::new(ProvenanceStore::open_env(Box::new(torn.clone()), sync_options()).unwrap());
    let recovered = finished_count(&prov2);
    assert!(recovered < N, "truncation must lose some rows");
    let prior = prov2.latest_workflow().expect("workflow row inside the kept prefix");

    let calls2 = Arc::new(AtomicUsize::new(0));
    let wf2 = doubling_workflow(&calls2);
    let resumed =
        run(wf2, input(N), &prov2, LocalConfig::new().with_threads(2).with_resume_from(prior))
            .unwrap();
    assert_eq!(resumed.finished + resumed.resumed, N as usize);
    // the engine flips a row to FINISHED only after its outputs are in the
    // WAL, so every recovered FINISHED row is fully resumable
    assert_eq!(resumed.resumed as i64, recovered);
    assert_eq!(sorted_output(resumed.final_output()), sorted_output(full.final_output()));
}

#[test]
fn durability_knob_and_steering_flush_reach_the_wal() {
    let env = MemEnv::new();
    let prov =
        Arc::new(ProvenanceStore::open_env(Box::new(env.clone()), Default::default()).unwrap());
    assert!(prov.is_durable());
    let calls = Arc::new(AtomicUsize::new(0));
    let wf = doubling_workflow(&calls);
    let cfg = LocalConfig::new()
        .with_threads(2)
        .with_durability(Durability::Sync)
        .with_steering_tick(std::time::Duration::from_millis(1));
    let r = run(wf, input(N), &prov, cfg).unwrap();
    assert_eq!(r.finished, N as usize);
    drop(prov);

    // clean reopen: everything the run acknowledged is present
    let prov2 = Arc::new(ProvenanceStore::open_env(Box::new(env), Default::default()).unwrap());
    assert_eq!(finished_count(&prov2), N);
    // a second run resumes fully from the recovered store
    let calls2 = Arc::new(AtomicUsize::new(0));
    let wf2 = doubling_workflow(&calls2);
    let prior = prov2.latest_workflow().unwrap();
    let r2 = run(wf2, input(N), &prov2, LocalConfig::new().with_resume_from(prior)).unwrap();
    assert_eq!(r2.resumed, N as usize);
    assert_eq!(calls2.load(Ordering::SeqCst), 0, "nothing re-executes");
}
