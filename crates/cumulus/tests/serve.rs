//! Integration tests for `scidockd` — the multi-campaign daemon.
//!
//! The headline test drives 9 concurrent campaigns from 4 tenants through
//! one daemon over a shared elastic fleet and asserts the service
//! contract end to end: every campaign completes, each campaign's
//! canonical PROV-N (scoped to its workflow namespace in the shared
//! store) is byte-identical to the same workflow run one-shot through the
//! local backend, steering queries answer mid-run across campaigns, and
//! the `/campaigns` observability route reports every tenant.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cumulus::obs::{BoundAddr, EventLog};
use cumulus::serve::{
    CampaignResolver, CampaignState, Daemon, ServeClient, ServeConfig, SubmitOutcome,
};
use cumulus::workflow::{Activity, FileStore, WorkflowDef};
use cumulus::{
    Backend, LocalBackend, LocalConfig, QueueDepthConfig, QueueDepthScheduler, Relation,
    SchedulerFactory, Workflow,
};
use provenance::{export_provn_canonical_for, ProvenanceStore, Value};
use telemetry::Telemetry;

/// A two-stage map chain (`scale` → `tag`) over `n` pair rows, each
/// activation sleeping `ms` so campaigns genuinely overlap on the fleet.
fn test_workflow(tag: &str, n: usize, ms: u64) -> Workflow {
    let def = WorkflowDef {
        tag: tag.to_string(),
        description: format!("serve test workflow {tag}"),
        expdir: "/exp/serve".into(),
        activities: vec![
            Activity::map(
                "scale",
                &["pair", "x"],
                Arc::new(move |part, _| {
                    if ms > 0 {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    Ok(part
                        .iter()
                        .map(|t| {
                            let x = match t[1] {
                                Value::Int(i) => i,
                                _ => 0,
                            };
                            vec![t[0].clone(), Value::Int(x * 2)]
                        })
                        .collect())
                }),
            ),
            Activity::map("tag", &["pair", "x"], Arc::new(|part, _| Ok(part.to_vec()))),
        ],
        deps: vec![vec![], vec![0]],
    };
    let mut input = Relation::new(&["pair", "x"]);
    for i in 0..n {
        input.push(vec![Value::from(format!("P{i:03}")), Value::Int(i as i64)]);
    }
    Workflow::new(def, input).with_files(Arc::new(FileStore::new()))
}

/// Resolves `wf:<tag>:<n>:<ms>` specs; anything else is unknown.
fn resolver() -> CampaignResolver {
    Arc::new(|spec: &str| {
        let rest = spec.strip_prefix("wf:")?;
        let mut parts = rest.split(':');
        let tag = parts.next()?;
        let n: usize = parts.next()?.parse().ok()?;
        let ms: u64 = parts.next()?.parse().ok()?;
        Some(test_workflow(&format!("wf-{tag}"), n, ms))
    })
}

fn wait_state(
    client: &mut ServeClient,
    id: u64,
    want: CampaignState,
    timeout: Duration,
) -> CampaignState {
    let deadline = Instant::now() + timeout;
    loop {
        let st = client.status(id).expect("status io");
        if st.state == want || Instant::now() >= deadline {
            return st.state;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn nine_campaigns_from_four_tenants_share_one_daemon() {
    let tel = Telemetry::attached();
    let events = EventLog::new();
    let bound = BoundAddr::new();
    let factory = SchedulerFactory::new(|| {
        Box::new(QueueDepthScheduler::new(QueueDepthConfig {
            backlog_factor: 1.5,
            grow_step: 2,
            cooldown: 2,
            min_workers: 1,
            max_workers: 6,
        }))
    });
    let prov = Arc::new(ProvenanceStore::new());
    let daemon = Daemon::start(
        ServeConfig::new()
            .with_workers(2)
            .with_worker_bounds(1, 6)
            .with_max_active(16)
            .with_scheduler(factory)
            .with_steering_tick(Duration::from_millis(5))
            .with_telemetry(tel.clone())
            .with_events(events.clone())
            .with_metrics_addr("127.0.0.1:0")
            .with_metrics_bound(bound.clone()),
        resolver(),
        Arc::clone(&prov),
    )
    .expect("daemon starts");

    // 9 campaigns, 4 tenants, distinct workflow tags so each campaign's
    // namespace in the shared store is identifiable by tag
    let tenants = ["alice", "bob", "carol", "dave"];
    let mut client = ServeClient::connect(daemon.addr()).expect("connect");
    let mut ids: Vec<(u64, String, String)> = Vec::new(); // (id, tenant, spec)
    for i in 0..9usize {
        let tenant = tenants[i % tenants.len()];
        let spec = format!("wf:c{i}:8:4");
        match client.submit(tenant, (i % 3) as u8, &spec).expect("submit io") {
            SubmitOutcome::Accepted { id } => ids.push((id, tenant.to_string(), spec)),
            SubmitOutcome::Rejected { reason, .. } => panic!("admission rejected {spec}: {reason}"),
        }
    }

    // steering answers MID-RUN, across campaigns, from the shared store:
    // the bridge publishes RUNNING rows for in-flight activations of every
    // campaign on its tick
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut saw_running = false;
    while Instant::now() < deadline {
        let (_, rows) = client
            .query("SELECT count(*) FROM hactivation WHERE status = 'RUNNING'")
            .expect("query io");
        if rows[0][0].as_f64().unwrap_or(0.0) > 0.0 {
            saw_running = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(saw_running, "steering rows must be queryable while campaigns run");

    for (id, _, _) in &ids {
        let state = wait_state(&mut client, *id, CampaignState::Finished, Duration::from_secs(60));
        assert_eq!(state, CampaignState::Finished, "campaign {id} must complete");
    }

    // every campaign's final output came back over the wire
    for (id, _, spec) in &ids {
        let (columns, tuples) = client.results(*id).expect("results io");
        assert_eq!(columns, vec!["pair".to_string(), "x".to_string()], "{spec}");
        assert_eq!(tuples.len(), 8, "{spec} must produce all 8 rows");
    }

    // cross-campaign provenance: one store holds all 9 workflow namespaces
    let (_, rows) = client.query("SELECT count(*) FROM hworkflow").expect("query io");
    assert_eq!(rows[0][0].as_f64().unwrap_or(0.0) as i64, 9);
    let (_, rows) =
        client.query("SELECT count(*) FROM hactivation WHERE status = 'FINISHED'").expect("query");
    assert!(rows[0][0].as_f64().unwrap_or(0.0) as i64 >= 9 * 9, "two stages over 8 rows each");

    // the /campaigns observability route lists every tenant's campaigns
    let obs_addr = bound.wait(Duration::from_secs(2)).expect("obs endpoint bound");
    let (code, body) =
        cumulus::obs::http_get(obs_addr, "/campaigns", Duration::from_secs(2)).expect("scrape");
    assert_eq!(code, 200);
    for tenant in tenants {
        assert!(body.contains(&format!("\"tenant\":\"{tenant}\"")), "missing {tenant}: {body}");
    }
    assert!(body.contains("\"state\":\"finished\""));

    // the fleet actually flexed: queue-depth policy grew it beyond the
    // initial 2 workers at some point
    assert!(
        events.events().iter().any(|e| e.kind == "fleet_scale"
            && e.fields.iter().any(|(k, v)| k == "decision" && v.starts_with("grow"))),
        "elastic fleet must have grown under 9-campaign load"
    );

    daemon.shutdown();

    // PROV-N parity: each campaign's scoped canonical export from the
    // SHARED store is byte-identical to the same workflow run one-shot
    // through the local backend into a fresh store
    let wf_rows = prov.query_rows("SELECT wkfid, tag FROM hworkflow", &[]).expect("wkf listing");
    for (_, _, spec) in &ids {
        let tag = format!("wf-{}", &spec[3..spec.len() - 4]); // wf:cN:8:4 → wf-cN
        let wkfid = wf_rows
            .rows
            .iter()
            .find(|r| r[1].as_str() == Some(tag.as_str()))
            .map(|r| provenance::WorkflowId(r[0].as_f64().unwrap() as i64))
            .unwrap_or_else(|| panic!("campaign {tag} missing from shared store"));

        let solo_prov = Arc::new(ProvenanceStore::new());
        let wf = test_workflow(&tag, 8, 0);
        LocalBackend::new(LocalConfig::new().with_threads(2))
            .run(&wf, &solo_prov)
            .expect("one-shot run");
        let solo_wkf = solo_prov.latest_workflow().expect("one-shot workflow recorded");
        assert_eq!(
            export_provn_canonical_for(&prov, wkfid),
            export_provn_canonical_for(&solo_prov, solo_wkf),
            "campaign {tag}: daemon provenance must equal one-shot provenance"
        );
    }

    // campaign lifecycle events and metrics made it to the obs plane
    let kinds: Vec<String> = events.events().iter().map(|e| e.kind.clone()).collect();
    for kind in ["campaign_submitted", "campaign_started", "campaign_finished"] {
        assert!(kinds.iter().any(|k| k == kind), "missing {kind} event");
    }
    let snap = tel.snapshot().expect("attached");
    assert_eq!(snap.counter("campaign.submitted"), Some(9));
    assert_eq!(snap.counter("campaign.finished"), Some(9));
}

#[test]
fn overload_rejects_with_retry_after_and_keeps_the_queue_bounded() {
    let daemon = Daemon::start(
        ServeConfig::new()
            .with_workers(1)
            .with_max_active(1)
            .with_max_pending(2)
            .with_retry_after_ms(750),
        resolver(),
        Arc::new(ProvenanceStore::new()),
    )
    .expect("daemon starts");
    let mut client = ServeClient::connect(daemon.addr()).expect("connect");

    // one running campaign with slow activations holds the slot...
    let SubmitOutcome::Accepted { id: running } =
        client.submit("alice", 0, "wf:slow:4:60").expect("submit io")
    else {
        panic!("first submission must be admitted");
    };
    let deadline = Instant::now() + Duration::from_secs(5);
    while client.status(running).expect("status").state != CampaignState::Running {
        assert!(Instant::now() < deadline, "first campaign never started");
        std::thread::sleep(Duration::from_millis(5));
    }

    // ...the next two fill the bounded pending queue...
    let mut queued = Vec::new();
    for _ in 0..2 {
        match client.submit("alice", 0, "wf:q:2:10").expect("submit io") {
            SubmitOutcome::Accepted { id } => queued.push(id),
            SubmitOutcome::Rejected { reason, .. } => {
                panic!("within bound, yet rejected: {reason}")
            }
        }
    }

    // ...and everything past the bound is rejected with the configured
    // retry-after hint — the queue does not grow
    for _ in 0..5 {
        match client.submit("bob", 7, "wf:x:2:10").expect("submit io") {
            SubmitOutcome::Accepted { id } => panic!("queue overflowed: admitted campaign {id}"),
            SubmitOutcome::Rejected { reason, retry_after_ms } => {
                assert_eq!(reason, "pending queue full");
                assert_eq!(retry_after_ms, 750);
            }
        }
    }

    // once the backlog drains, admission opens again
    for id in [running, queued[0], queued[1]] {
        assert_eq!(
            wait_state(&mut client, id, CampaignState::Finished, Duration::from_secs(60)),
            CampaignState::Finished
        );
    }
    assert!(matches!(
        client.submit("bob", 0, "wf:later:2:1").expect("submit io"),
        SubmitOutcome::Accepted { .. }
    ));

    // with the queue no longer full, a structurally bad submission is a
    // permanent rejection (no retry hint)
    match client.submit("bob", 0, "no-such-spec").expect("submit io") {
        SubmitOutcome::Rejected { reason, retry_after_ms } => {
            assert_eq!(reason, "unknown spec");
            assert_eq!(retry_after_ms, 0);
        }
        SubmitOutcome::Accepted { .. } => panic!("unknown spec must not be admitted"),
    }
    daemon.shutdown();
}

#[test]
fn tenant_quota_stops_one_tenant_from_starving_the_rest() {
    let daemon = Daemon::start(
        ServeConfig::new()
            .with_workers(2)
            .with_max_active(8)
            .with_max_pending(16)
            .with_tenant_quota(2)
            .with_retry_after_ms(500),
        resolver(),
        Arc::new(ProvenanceStore::new()),
    )
    .expect("daemon starts");
    let mut client = ServeClient::connect(daemon.addr()).expect("connect");

    // the hog gets its quota...
    let mut hog_ids = Vec::new();
    for i in 0..2 {
        match client.submit("hog", 9, &format!("wf:hog{i}:4:40")).expect("submit io") {
            SubmitOutcome::Accepted { id } => hog_ids.push(id),
            SubmitOutcome::Rejected { reason, .. } => {
                panic!("within quota, yet rejected: {reason}")
            }
        }
    }
    // ...and not one campaign more, however many it throws at the daemon
    for i in 0..6 {
        match client.submit("hog", 9, &format!("wf:hogmore{i}:4:40")).expect("submit io") {
            SubmitOutcome::Accepted { id } => panic!("quota breached: admitted campaign {id}"),
            SubmitOutcome::Rejected { reason, retry_after_ms } => {
                assert_eq!(reason, "tenant quota exceeded");
                assert_eq!(retry_after_ms, 500);
            }
        }
    }
    // the quiet tenant still gets in — and, despite the hog's head start
    // and higher priority, still completes
    let SubmitOutcome::Accepted { id: mouse } =
        client.submit("mouse", 0, "wf:mouse:4:10").expect("submit io")
    else {
        panic!("quota must not block other tenants");
    };
    assert_eq!(
        wait_state(&mut client, mouse, CampaignState::Finished, Duration::from_secs(60)),
        CampaignState::Finished
    );
    // the hog's quota frees as its campaigns finish
    for id in hog_ids {
        assert_eq!(
            wait_state(&mut client, id, CampaignState::Finished, Duration::from_secs(60)),
            CampaignState::Finished
        );
    }
    assert!(matches!(
        client.submit("hog", 0, "wf:hoglater:2:1").expect("submit io"),
        SubmitOutcome::Accepted { .. }
    ));
    daemon.shutdown();
}

#[test]
fn cancel_pending_and_running_campaigns() {
    let daemon = Daemon::start(
        ServeConfig::new().with_workers(1).with_max_active(1),
        resolver(),
        Arc::new(ProvenanceStore::new()),
    )
    .expect("daemon starts");
    let mut client = ServeClient::connect(daemon.addr()).expect("connect");

    let SubmitOutcome::Accepted { id: a } =
        client.submit("alice", 0, "wf:long:6:50").expect("submit io")
    else {
        panic!("admitted")
    };
    let SubmitOutcome::Accepted { id: b } =
        client.submit("alice", 0, "wf:behind:4:10").expect("submit io")
    else {
        panic!("admitted")
    };

    // b never started: cancelling it is immediate
    assert!(client.cancel(b).expect("cancel io"), "pending campaign is cancellable");
    assert_eq!(client.status(b).expect("status").state, CampaignState::Cancelled);

    // a is (or will be) running: cancellation drains its in-flight tail
    assert!(client.cancel(a).expect("cancel io"), "running campaign is cancellable");
    assert_eq!(
        wait_state(&mut client, a, CampaignState::Cancelled, Duration::from_secs(30)),
        CampaignState::Cancelled
    );
    // results of a cancelled campaign are an error, not empty data
    assert!(client.results(a).is_err());
    // cancelling a terminal campaign reports false
    assert!(!client.cancel(a).expect("cancel io"));
    daemon.shutdown();
}
