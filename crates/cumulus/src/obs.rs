//! The live observability plane: a structured event log, a per-worker
//! health view, and a std-only HTTP exposition endpoint serving
//! `/metrics` (Prometheus text exposition), `/snapshot.json`, `/healthz`
//! and `/events`.
//!
//! Every backend can attach an [`EventLog`] (the simulator emits at
//! *simulated* timestamps so a sim mirror of a run produces the same event
//! sequence), and the local and distributed backends can additionally bind
//! an HTTP listener with `with_metrics_addr` so the state is scrapeable
//! mid-run. Observation never perturbs results: the plane only reads
//! engine state, and canonical provenance is byte-identical with it on or
//! off.

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use telemetry::Telemetry;

/// How loud an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Normal lifecycle progress.
    Info,
    /// Something degraded but handled (a retry, a straggler, a blacklist).
    Warn,
    /// Something was lost (a worker, a permanently failed activation).
    Error,
}

impl Severity {
    /// Stable lowercase name used in the JSONL schema.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One structured event. The JSONL schema is stable: `v` (schema version),
/// `seq` (monotonic per log), `t_s` (seconds — wall for real backends,
/// simulated for the simulator), `sev`, `kind`, then the event's fields in
/// emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Monotonic sequence number within this log.
    pub seq: u64,
    /// Event time, seconds since the run epoch.
    pub t_s: f64,
    /// Severity.
    pub severity: Severity,
    /// Stable event kind (e.g. `activation_finished`, `worker_lost`).
    pub kind: String,
    /// Key/value detail fields in emission order.
    pub fields: Vec<(String, String)>,
}

/// Schema version stamped into every event line.
///
/// History:
/// * **v1** — run/activation/fleet/worker lifecycle kinds.
/// * **v2** — adds the campaign lifecycle kinds emitted by `scidockd`
///   (`campaign_submitted`, `campaign_started`, `campaign_finished`,
///   `campaign_rejected`, `campaign_cancelled`). Purely additive: every v1
///   kind and field is unchanged, so v1 consumers can read v2 streams by
///   ignoring unknown kinds.
pub const EVENT_SCHEMA_VERSION: u32 = 2;

impl ObsEvent {
    /// One JSON object, no trailing newline.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{{\"v\":{EVENT_SCHEMA_VERSION},\"seq\":{},\"t_s\":{},\"sev\":\"{}\",\"kind\":\"{}\"",
            self.seq,
            telemetry::json::num(self.t_s),
            self.severity.as_str(),
            telemetry::json::escape(&self.kind)
        );
        for (k, v) in &self.fields {
            let _ =
                write!(s, ",\"{}\":\"{}\"", telemetry::json::escape(k), telemetry::json::escape(v));
        }
        s.push('}');
        s
    }

    /// The event minus its timing: `(severity, kind, fields)` — what parity
    /// tests compare across backends.
    pub fn signature(&self) -> (&'static str, String, Vec<(String, String)>) {
        (self.severity.as_str(), self.kind.clone(), self.fields.clone())
    }

    /// [`ObsEvent::signature`] minus backend-specific resource identifiers
    /// ([`PARITY_EXCLUDED_FIELDS`]) — what the cross-backend parity tests
    /// compare. A simulated mirror of a run names activations synthetically
    /// (the simulator models costs, not data) and has VMs where the real
    /// backends have threads or worker processes, so pair keys and resource
    /// ids legitimately differ while the lifecycle sequence must not.
    pub fn parity_signature(&self) -> (&'static str, String, Vec<(String, String)>) {
        let fields = self
            .fields
            .iter()
            .filter(|(k, _)| !PARITY_EXCLUDED_FIELDS.contains(&k.as_str()))
            .cloned()
            .collect();
        (self.severity.as_str(), self.kind.clone(), fields)
    }
}

/// Field names carrying backend-specific resource identity, excluded from
/// [`ObsEvent::parity_signature`]: which *resource* served an activation (a
/// thread, a worker process, a simulated VM) and how the backend names it
/// are substrate details; the lifecycle itself (kind, severity, activity,
/// attempt, outcome counts) must match across substrates.
pub const PARITY_EXCLUDED_FIELDS: &[&str] =
    &["backend", "workers", "worker", "vm", "fleet", "key", "job", "elapsed_ms", "threshold_ms"];

#[derive(Debug)]
struct EventLogInner {
    ring: Mutex<EventRing>,
    sink: Mutex<Option<std::fs::File>>,
}

#[derive(Debug)]
struct EventRing {
    buf: VecDeque<ObsEvent>,
    cap: usize,
    next_seq: u64,
}

/// A cloneable, thread-safe structured event log: an in-memory ring (served
/// from `/events`) plus an optional JSONL sink file. Sequence numbers are
/// monotonic for the lifetime of the log.
#[derive(Debug, Clone)]
pub struct EventLog {
    inner: Arc<EventLogInner>,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new()
    }
}

impl EventLog {
    const RING_CAP: usize = 4096;

    /// An in-memory log.
    pub fn new() -> EventLog {
        EventLog {
            inner: Arc::new(EventLogInner {
                ring: Mutex::new(EventRing {
                    buf: VecDeque::new(),
                    cap: Self::RING_CAP,
                    next_seq: 0,
                }),
                sink: Mutex::new(None),
            }),
        }
    }

    /// A log that additionally appends each event line to `path`.
    pub fn with_file(path: impl AsRef<std::path::Path>) -> std::io::Result<EventLog> {
        let f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        let log = EventLog::new();
        *log.inner.sink.lock().expect("event sink poisoned") = Some(f);
        Ok(log)
    }

    /// Emit one event at `t_s` seconds since the run epoch (simulated
    /// seconds for the simulator). Assigns the next sequence number.
    pub fn emit(&self, t_s: f64, severity: Severity, kind: &str, fields: &[(&str, String)]) {
        let ev = {
            let mut g = self.inner.ring.lock().expect("event ring poisoned");
            let ev = ObsEvent {
                seq: g.next_seq,
                t_s,
                severity,
                kind: kind.to_string(),
                fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
            };
            g.next_seq += 1;
            if g.buf.len() == g.cap {
                g.buf.pop_front();
            }
            g.buf.push_back(ev.clone());
            ev
        };
        let mut sink = self.inner.sink.lock().expect("event sink poisoned");
        if let Some(f) = sink.as_mut() {
            let _ = writeln!(f, "{}", ev.to_json());
        }
    }

    /// All buffered events, oldest first (the ring keeps the newest 4096).
    pub fn events(&self) -> Vec<ObsEvent> {
        self.inner.ring.lock().expect("event ring poisoned").buf.iter().cloned().collect()
    }

    /// Number of events emitted over the log's lifetime.
    pub fn len(&self) -> u64 {
        self.inner.ring.lock().expect("event ring poisoned").next_seq
    }

    /// True when nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The buffered events as JSONL (one JSON object per line).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for ev in self.events() {
            s.push_str(&ev.to_json());
            s.push('\n');
        }
        s
    }
}

/// Resolves to the observability listener's actual bound address once the
/// run has started — pass `"127.0.0.1:0"` as the metrics address and read
/// the ephemeral port from here.
#[derive(Debug, Clone, Default)]
pub struct BoundAddr {
    cell: Arc<OnceLock<SocketAddr>>,
}

impl BoundAddr {
    /// A fresh, unresolved handle.
    pub fn new() -> BoundAddr {
        BoundAddr::default()
    }

    /// The bound address, if the listener is up.
    pub fn get(&self) -> Option<SocketAddr> {
        self.cell.get().copied()
    }

    /// Poll for the bound address for up to `timeout`.
    pub fn wait(&self, timeout: Duration) -> Option<SocketAddr> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(a) = self.get() {
                return Some(a);
            }
            if std::time::Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    pub(crate) fn set(&self, addr: SocketAddr) {
        let _ = self.cell.set(addr);
    }
}

/// Liveness of one worker as seen by the master.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerHealth {
    /// Worker index.
    pub id: usize,
    /// Still connected (false the moment the master sees the socket drop).
    pub alive: bool,
    /// Draining (no new work) ahead of retirement.
    pub draining: bool,
    /// Milliseconds since the last frame from this worker.
    pub last_seen_ms: u64,
    /// Activations currently dispatched to it.
    pub in_flight: usize,
    /// In-flight activations currently flagged as stragglers.
    pub stragglers: usize,
}

/// Point-in-time fleet health, served from `/healthz`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthView {
    /// Run phase: `starting`, `running`, `draining` or `done`.
    pub phase: String,
    /// Provisioned fleet size (connected + launching workers).
    pub fleet: usize,
    /// Per-worker liveness.
    pub workers: Vec<WorkerHealth>,
}

impl HealthView {
    /// One JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{{\"phase\":\"{}\",\"fleet\":{},\"workers\":[",
            telemetry::json::escape(&self.phase),
            self.fleet
        );
        for (i, w) in self.workers.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}{{\"id\":{},\"alive\":{},\"draining\":{},\"last_seen_ms\":{},\
                 \"in_flight\":{},\"stragglers\":{}}}",
                w.id, w.alive, w.draining, w.last_seen_ms, w.in_flight, w.stragglers
            );
        }
        s.push_str("]}");
        s
    }
}

/// One campaign's row in the `/campaigns` listing — what `scidock-top`
/// renders per campaign when pointed at a `scidockd` endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Campaign id assigned at admission.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Lifecycle state (`pending`, `running`, `finished`, `cancelled`,
    /// `failed`).
    pub state: String,
    /// Completed activations.
    pub done: u64,
    /// Activations submitted to the dispatcher so far.
    pub total: u64,
    /// 95th-percentile activation latency, milliseconds.
    pub p95_ms: f64,
}

impl CampaignRow {
    /// One JSON object, no trailing newline.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"tenant\":\"{}\",\"state\":\"{}\",\"done\":{},\"total\":{},\
             \"p95_ms\":{}}}",
            self.id,
            telemetry::json::escape(&self.tenant),
            telemetry::json::escape(&self.state),
            self.done,
            self.total,
            telemetry::json::num(self.p95_ms)
        )
    }
}

fn campaigns_to_json(rows: &[CampaignRow]) -> String {
    let mut s = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&r.to_json());
    }
    s.push(']');
    s
}

/// Shared state behind the HTTP endpoint: the (merged) telemetry collector,
/// the event log, the mutable health view the engine refreshes on every
/// scheduling tick, and (for `scidockd`) the per-campaign rows.
#[derive(Debug, Clone)]
pub struct ObsState {
    /// Collector the endpoint snapshots for `/metrics` and `/snapshot.json`.
    pub tel: Telemetry,
    /// Event log served from `/events`.
    pub events: EventLog,
    /// Health view served from `/healthz`.
    pub health: Arc<Mutex<HealthView>>,
    /// Campaign rows served from `/campaigns` (empty outside `scidockd`).
    pub campaigns: Arc<Mutex<Vec<CampaignRow>>>,
}

impl ObsState {
    /// Fresh state over the given collector and event log.
    pub fn new(tel: Telemetry, events: EventLog) -> ObsState {
        ObsState {
            tel,
            events,
            health: Arc::new(Mutex::new(HealthView::default())),
            campaigns: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Replace the health view (called by the engine's scheduling loop).
    pub fn set_health(&self, view: HealthView) {
        *self.health.lock().expect("health view poisoned") = view;
    }

    /// Replace the campaign rows (called by the `scidockd` engine loop).
    pub fn set_campaigns(&self, rows: Vec<CampaignRow>) {
        *self.campaigns.lock().expect("campaign rows poisoned") = rows;
    }
}

/// The HTTP exposition listener. Binding happens in [`ObsServer::start`];
/// the accept loop runs on its own thread and is joined by
/// [`ObsServer::shutdown`] (or on drop).
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) and
    /// start serving `state`.
    pub fn start(addr: &str, state: ObsState) -> std::io::Result<ObsServer> {
        let sockaddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other(format!("unresolvable metrics addr {addr}")))?;
        let listener = TcpListener::bind(sockaddr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("scidock-obs".into())
            .spawn(move || serve_loop(listener, state, stop2))
            .expect("spawn obs server thread");
        Ok(ObsServer { addr, stop, thread: Some(thread) })
    }

    /// The address the listener actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(listener: TcpListener, state: ObsState, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => handle_conn(stream, &state),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_conn(mut stream: TcpStream, state: &ObsState) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    // read until the end of the request head (we ignore any body)
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let path = target.split('?').next().unwrap_or("");
    let (status, ctype, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                telemetry::prom::render(&state.tel.snapshot().unwrap_or_default()),
            ),
            "/snapshot.json" => {
                ("200 OK", "application/json", state.tel.snapshot().unwrap_or_default().to_json())
            }
            "/healthz" => (
                "200 OK",
                "application/json",
                state.health.lock().expect("health view poisoned").to_json(),
            ),
            "/events" => ("200 OK", "application/x-ndjson", state.events.to_jsonl()),
            "/campaigns" => (
                "200 OK",
                "application/json",
                campaigns_to_json(&state.campaigns.lock().expect("campaign rows poisoned")),
            ),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Minimal std-only HTTP GET against the exposition endpoint: returns
/// `(status code, body)`. Used by `scidock-top`, the scrape smoke in
/// `obs_bench`, and tests — no curl required.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut resp = String::new();
    stream.read_to_string(&mut resp)?;
    let status = resp
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| std::io::Error::other("malformed HTTP response"))?;
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_assigns_monotonic_seqs_and_valid_jsonl() {
        let log = EventLog::new();
        log.emit(0.0, Severity::Info, "run_started", &[("workflow", "SciDock".to_string())]);
        log.emit(1.5, Severity::Warn, "straggler", &[("pair", "1AEC:042".to_string())]);
        log.emit(2.0, Severity::Error, "worker_lost", &[("worker", "1".to_string())]);
        let evs = log.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(log.len(), 3);
        for line in log.to_jsonl().lines() {
            telemetry::json::validate(line)
                .unwrap_or_else(|off| panic!("invalid event JSON at byte {off}: {line}"));
            assert!(line.contains("\"v\":2"));
        }
        assert_eq!(evs[1].signature().1, "straggler");
    }

    #[test]
    fn event_log_sink_file_appends_jsonl() {
        let dir = std::env::temp_dir().join(format!("obs-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&path);
        let log = EventLog::with_file(&path).unwrap();
        log.emit(0.0, Severity::Info, "a", &[]);
        log.emit(0.1, Severity::Info, "b", &[("k", "v".to_string())]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().nth(1).unwrap().contains("\"kind\":\"b\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ring_caps_but_seq_keeps_counting() {
        let log = EventLog::new();
        for i in 0..(EventLog::RING_CAP as u64 + 10) {
            log.emit(i as f64, Severity::Info, "tick", &[]);
        }
        let evs = log.events();
        assert_eq!(evs.len(), EventLog::RING_CAP);
        assert_eq!(evs.last().unwrap().seq, EventLog::RING_CAP as u64 + 9);
        assert_eq!(log.len(), EventLog::RING_CAP as u64 + 10);
    }

    #[test]
    fn server_serves_all_routes() {
        let tel = Telemetry::attached();
        tel.count("dist.jobs", 4);
        tel.histogram("activation.dock").unwrap().record(2_000_000);
        let events = EventLog::new();
        events.emit(0.0, Severity::Info, "run_started", &[]);
        let state = ObsState::new(tel, events);
        state.set_health(HealthView {
            phase: "running".into(),
            fleet: 2,
            workers: vec![WorkerHealth {
                id: 0,
                alive: true,
                draining: false,
                last_seen_ms: 12,
                in_flight: 1,
                stragglers: 0,
            }],
        });
        let srv = ObsServer::start("127.0.0.1:0", state.clone()).unwrap();
        let addr = srv.addr();
        let t = Duration::from_secs(2);

        let (code, body) = http_get(addr, "/metrics", t).unwrap();
        assert_eq!(code, 200);
        let samples = telemetry::prom::parse(&body).expect("valid exposition");
        assert!(samples.iter().any(|s| s.name == "scidock_dist_jobs_total" && s.value == 4.0));

        let (code, body) = http_get(addr, "/snapshot.json", t).unwrap();
        assert_eq!(code, 200);
        telemetry::json::validate(&body).expect("valid snapshot JSON");

        let (code, body) = http_get(addr, "/healthz", t).unwrap();
        assert_eq!(code, 200);
        telemetry::json::validate(&body).expect("valid health JSON");
        assert!(body.contains("\"phase\":\"running\"") && body.contains("\"alive\":true"));

        let (code, body) = http_get(addr, "/events", t).unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("\"kind\":\"run_started\""));

        let (code, body) = http_get(addr, "/campaigns", t).unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "[]", "no campaigns registered yet");
        state.set_campaigns(vec![CampaignRow {
            id: 7,
            tenant: "alice".into(),
            state: "running".into(),
            done: 3,
            total: 9,
            p95_ms: 12.5,
        }]);
        let (code, body) = http_get(addr, "/campaigns", t).unwrap();
        assert_eq!(code, 200);
        telemetry::json::validate(&body).expect("valid campaigns JSON");
        assert!(body.contains("\"tenant\":\"alice\"") && body.contains("\"total\":9"));

        let (code, _) = http_get(addr, "/nope", t).unwrap();
        assert_eq!(code, 404);
        srv.shutdown();
    }

    #[test]
    fn bound_addr_resolves_once_started() {
        let state = ObsState::new(Telemetry::disabled(), EventLog::new());
        let bound = BoundAddr::new();
        assert!(bound.get().is_none());
        let srv = ObsServer::start("127.0.0.1:0", state).unwrap();
        bound.set(srv.addr());
        assert_eq!(bound.wait(Duration::from_secs(1)), Some(srv.addr()));
        // /metrics works even with telemetry disabled (empty exposition)
        let (code, body) = http_get(srv.addr(), "/metrics", Duration::from_secs(2)).unwrap();
        assert_eq!(code, 200);
        assert!(telemetry::prom::parse(&body).unwrap().is_empty());
    }
}
