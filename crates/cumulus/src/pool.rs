//! A from-scratch work-stealing thread pool.
//!
//! Fills the role MPJ (MPI for Java) plays in SciCumulus' distribution
//! layer: the *local* backend executes activations on this pool. Built on
//! `crossbeam::deque` (per-worker LIFO deques + a global FIFO injector, idle
//! workers steal from siblings) and `parking_lot` synchronization.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    shutdown: AtomicBool,
    /// Jobs submitted but not yet finished (for idle parking heuristics).
    pending: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

/// A fixed-size work-stealing thread pool.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// Spawn a pool with `threads` workers (min 1).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let locals: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<Job>> = locals.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let workers = locals
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cumulus-worker-{i}"))
                    .spawn(move || worker_loop(i, local, shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool { shared, workers, threads }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every job, returning results in submission order.
    ///
    /// Panics in jobs are caught per-job; the corresponding result re-raises
    /// the panic payload after all other jobs have finished, so one bad
    /// activation cannot wedge the pool.
    pub fn execute_all<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let results: Arc<Mutex<Vec<Option<std::thread::Result<T>>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let remaining = Arc::new(AtomicUsize::new(n));
        let done_lock = Arc::new(Mutex::new(()));
        let done_cv = Arc::new(Condvar::new());

        self.shared.pending.fetch_add(n, Ordering::SeqCst);
        for (i, job) in jobs.into_iter().enumerate() {
            let results = Arc::clone(&results);
            let remaining = Arc::clone(&remaining);
            let done_lock = Arc::clone(&done_lock);
            let done_cv = Arc::clone(&done_cv);
            let shared = Arc::clone(&self.shared);
            let wrapped: Job = Box::new(move || {
                let out = catch_unwind(AssertUnwindSafe(job));
                results.lock()[i] = Some(out);
                shared.pending.fetch_sub(1, Ordering::SeqCst);
                if remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                    let _g = done_lock.lock();
                    done_cv.notify_all();
                }
            });
            self.shared.injector.push(wrapped);
        }
        // wake idle workers
        {
            let _g = self.shared.idle_lock.lock();
            self.shared.idle_cv.notify_all();
        }
        // wait for completion
        let mut g = done_lock.lock();
        while remaining.load(Ordering::SeqCst) != 0 {
            done_cv.wait(&mut g);
        }
        drop(g);

        let slots = Arc::try_unwrap(results)
            .unwrap_or_else(|arc| Mutex::new(std::mem::take(&mut *arc.lock())))
            .into_inner();
        slots
            .into_iter()
            .map(|slot| match slot.expect("every job ran") {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }

    /// Convenience: parallel map over items.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let jobs: Vec<_> = items
            .into_iter()
            .map(|item| {
                let f = Arc::clone(&f);
                move || f(item)
            })
            .collect();
        self.execute_all(jobs)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.shared.idle_lock.lock();
            self.shared.idle_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(index: usize, local: Worker<Job>, shared: Arc<Shared>) {
    loop {
        if let Some(job) = find_job(index, &local, &shared) {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // nothing to do: park until new work arrives (with a timeout so a
        // missed notify cannot deadlock the pool)
        let mut g = shared.idle_lock.lock();
        if shared.pending.load(Ordering::SeqCst) == 0 && !shared.shutdown.load(Ordering::SeqCst) {
            shared
                .idle_cv
                .wait_for(&mut g, std::time::Duration::from_millis(5));
        }
    }
}

fn find_job(index: usize, local: &Worker<Job>, shared: &Shared) -> Option<Job> {
    // 1. local deque
    if let Some(j) = local.pop() {
        return Some(j);
    }
    // 2. global injector (grab a batch to amortize contention)
    loop {
        match shared.injector.steal_batch_and_pop(local) {
            crossbeam::deque::Steal::Success(j) => return Some(j),
            crossbeam::deque::Steal::Empty => break,
            crossbeam::deque::Steal::Retry => continue,
        }
    }
    // 3. steal from siblings
    for (k, s) in shared.stealers.iter().enumerate() {
        if k == index {
            continue;
        }
        loop {
            match s.steal() {
                crossbeam::deque::Steal::Success(j) => return Some(j),
                crossbeam::deque::Steal::Empty => break,
                crossbeam::deque::Steal::Retry => continue,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_submission_order() {
        let pool = Pool::new(4);
        let out = pool.map((0..100).collect::<Vec<i64>>(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<i64>>());
    }

    #[test]
    fn empty_batch() {
        let pool = Pool::new(2);
        let out: Vec<i32> = pool.execute_all(Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.map(vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn actually_parallel() {
        // 8 jobs that each sleep 30 ms on 8 threads must finish well under
        // the serial 240 ms
        let pool = Pool::new(8);
        let t0 = std::time::Instant::now();
        pool.map((0..8).collect::<Vec<_>>(), |_| {
            std::thread::sleep(std::time::Duration::from_millis(30));
        });
        let elapsed = t0.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(200),
            "took {elapsed:?}, not parallel"
        );
    }

    #[test]
    fn all_jobs_execute_exactly_once() {
        let pool = Pool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        pool.map((0..1000).collect::<Vec<_>>(), move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn multiple_batches_reuse_pool() {
        let pool = Pool::new(3);
        for round in 0..5 {
            let out = pool.map(vec![round; 10], |x| x);
            assert_eq!(out, vec![round; 10]);
        }
    }

    #[test]
    #[should_panic(expected = "activation exploded")]
    fn job_panic_propagates_after_batch() {
        let pool = Pool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("activation exploded")),
            Box::new(|| 3),
        ];
        let _ = pool.execute_all(jobs);
    }

    #[test]
    fn pool_survives_job_panic() {
        let pool = Pool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> =
            vec![Box::new(|| panic!("boom")), Box::new(|| 2)];
        let res = catch_unwind(AssertUnwindSafe(|| pool.execute_all(jobs)));
        assert!(res.is_err());
        // pool still usable afterwards
        let out = pool.map(vec![1, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn uneven_workloads_balance() {
        // one long job + many short ones: stealing should keep total time
        // near the long job's duration
        let pool = Pool::new(4);
        let t0 = std::time::Instant::now();
        pool.map((0..40).collect::<Vec<_>>(), |i| {
            let ms = if i == 0 { 80 } else { 5 };
            std::thread::sleep(std::time::Duration::from_millis(ms));
        });
        let elapsed = t0.elapsed();
        // serial would be 80 + 39*5 = 275 ms; balanced is ~80-150 ms
        assert!(elapsed < std::time::Duration::from_millis(220), "took {elapsed:?}");
    }
}
