//! A from-scratch work-stealing thread pool.
//!
//! Fills the role MPJ (MPI for Java) plays in SciCumulus' distribution
//! layer: the *local* backend executes activations on this pool. Built on
//! `crossbeam::deque` (per-worker LIFO deques + a global FIFO injector, idle
//! workers steal from siblings) and `parking_lot` synchronization.
//!
//! Two submission APIs:
//! - [`Pool::submit`] hands one job to the pool and returns a [`JobHandle`]
//!   immediately; the caller joins (or ignores) it whenever convenient. This
//!   is what the ready-driven local backend dispatcher uses to keep
//!   activations flowing without stage barriers.
//! - [`Pool::execute_all`] is the batch API: submit a vec, block until every
//!   job finished, return results in submission order.
//!
//! Idle workers park on a condvar and are woken per-push. The wakeup
//! protocol avoids missed notifications by (a) incrementing `queued` before
//! the job becomes stealable and (b) re-checking `queued` under `idle_lock`
//! before sleeping; the wait itself keeps a generous timeout purely as a
//! backstop against bugs, not as a polling loop.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use telemetry::{Histogram, Telemetry};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Point-in-time pool activity counters (see [`Pool::stats`]).
///
/// The atomics behind these are always on — they cost one relaxed
/// `fetch_add` on already-slow paths (parking, stealing), so they are
/// maintained even when no telemetry sink is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs handed to the pool.
    pub submitted: u64,
    /// Jobs that finished executing (including panicked ones).
    pub completed: u64,
    /// Times a worker went to sleep on the idle condvar.
    pub parks: u64,
    /// Parked workers woken by a notification (the designed wakeup path).
    pub unparks: u64,
    /// Parked workers woken only by the 250 ms backstop timeout — in a
    /// healthy pool this stays 0 modulo shutdown races; a growing count
    /// means notifications are being missed.
    pub timeout_wakeups: u64,
    /// Jobs obtained by stealing from a sibling worker's deque.
    pub steals: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    submitted: AtomicU64,
    completed: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
    timeout_wakeups: AtomicU64,
    steals: AtomicU64,
}

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    shutdown: AtomicBool,
    /// Jobs pushed but not yet *popped* by a worker. This is the parking
    /// predicate: when it is zero there is nothing to pick up, so sleeping
    /// is safe. (Jobs still running on other workers don't count — a parked
    /// worker can do nothing about those.)
    queued: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    stats: StatCells,
    telemetry: Telemetry,
    /// Cached handle so the submit path never hits the histogram registry.
    queue_wait: Option<Arc<Histogram>>,
}

impl Shared {
    /// Publish one job: count it, make it stealable, wake one sleeper.
    ///
    /// `queued` is incremented *before* the push so a worker that observes
    /// the job in `find_job` never sees a stale zero; the notify is taken
    /// under `idle_lock` so it cannot land between a worker's re-check and
    /// its wait.
    fn inject(&self, job: Job) {
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let depth = self.queued.fetch_add(1, Ordering::SeqCst) + 1;
        self.telemetry.gauge("pool.queue_depth", depth as f64);
        self.injector.push(job);
        let _g = self.idle_lock.lock();
        self.idle_cv.notify_one();
    }
}

/// Completion handle for a job submitted with [`Pool::submit`].
///
/// Dropping the handle detaches the job (it still runs).
pub struct JobHandle<T> {
    state: Arc<HandleState<T>>,
}

struct HandleState<T> {
    result: Mutex<Option<std::thread::Result<T>>>,
    cv: Condvar,
}

impl<T> JobHandle<T> {
    /// Has the job finished (success or panic)?
    pub fn is_finished(&self) -> bool {
        self.state.result.lock().is_some()
    }

    /// Block until the job finishes; `Err` carries a panic payload.
    pub fn wait(self) -> std::thread::Result<T> {
        let mut slot = self.state.result.lock();
        while slot.is_none() {
            self.state.cv.wait(&mut slot);
        }
        slot.take().expect("checked above")
    }

    /// Block until the job finishes, re-raising its panic if it had one.
    pub fn join(self) -> T {
        match self.wait() {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        }
    }
}

/// A fixed-size work-stealing thread pool.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// Spawn a pool with `threads` workers (min 1) and no telemetry sink.
    pub fn new(threads: usize) -> Pool {
        Pool::with_telemetry(threads, Telemetry::disabled())
    }

    /// Spawn a pool whose workers record into `telemetry`: per-job spans and
    /// queue-wait samples on named worker tracks, plus park/steal counters
    /// flushed on drop.
    pub fn with_telemetry(threads: usize, telemetry: Telemetry) -> Pool {
        let threads = threads.max(1);
        let locals: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<Job>> = locals.iter().map(|w| w.stealer()).collect();
        let queue_wait = telemetry.histogram("pool.queue_wait");
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            queued: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            stats: StatCells::default(),
            telemetry,
            queue_wait,
        });
        let workers = locals
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cumulus-worker-{i}"))
                    .spawn(move || worker_loop(i, local, shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool { shared, workers, threads }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submit one job without blocking; the returned handle resolves when
    /// the job completes. Panics inside the job are captured into the
    /// handle (and re-raised by [`JobHandle::join`]), never onto a worker.
    pub fn submit<T, F>(&self, job: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let state = Arc::new(HandleState { result: Mutex::new(None), cv: Condvar::new() });
        let state2 = Arc::clone(&state);
        // the telemetry prologue compiles to two branch-only no-ops when no
        // sink is attached (now_ns() returns 0, queue_wait is None)
        let tel = self.shared.telemetry.clone();
        let enqueued_ns = tel.now_ns();
        let queue_wait = self.shared.queue_wait.clone();
        self.shared.inject(Box::new(move || {
            if let Some(h) = &queue_wait {
                h.record(tel.now_ns().saturating_sub(enqueued_ns));
            }
            let _job_span = tel.span("pool", "job");
            let out = catch_unwind(AssertUnwindSafe(job));
            let mut slot = state2.result.lock();
            *slot = Some(out);
            state2.cv.notify_all();
        }));
        JobHandle { state }
    }

    /// Activity counters so far (always available, telemetry or not).
    pub fn stats(&self) -> PoolStats {
        let s = &self.shared.stats;
        PoolStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            parks: s.parks.load(Ordering::Relaxed),
            unparks: s.unparks.load(Ordering::Relaxed),
            timeout_wakeups: s.timeout_wakeups.load(Ordering::Relaxed),
            steals: s.steals.load(Ordering::Relaxed),
        }
    }

    /// Fire-and-forget submission. Panics are swallowed (the job is
    /// responsible for reporting its own outcome, e.g. over a channel).
    pub fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        drop(self.submit(job));
    }

    /// Run every job, returning results in submission order.
    ///
    /// Panics in jobs are caught per-job; the corresponding result re-raises
    /// the panic payload after all other jobs have finished, so one bad
    /// activation cannot wedge the pool.
    pub fn execute_all<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let handles: Vec<JobHandle<T>> = jobs.into_iter().map(|job| self.submit(job)).collect();
        let results: Vec<std::thread::Result<T>> =
            handles.into_iter().map(JobHandle::wait).collect();
        results
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    }

    /// Convenience: parallel map over items.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let jobs: Vec<_> = items
            .into_iter()
            .map(|item| {
                let f = Arc::clone(&f);
                move || f(item)
            })
            .collect();
        self.execute_all(jobs)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.shared.idle_lock.lock();
            self.shared.idle_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // publish the lifetime counters to the attached sink (no-op when
        // disabled) so MetricsSnapshot sees them alongside spans
        let tel = &self.shared.telemetry;
        if tel.is_enabled() {
            let s = self.stats();
            tel.count("pool.submitted", s.submitted);
            tel.count("pool.completed", s.completed);
            tel.count("pool.parks", s.parks);
            tel.count("pool.unparks", s.unparks);
            tel.count("pool.timeout_wakeups", s.timeout_wakeups);
            tel.count("pool.steals", s.steals);
        }
    }
}

fn worker_loop(index: usize, local: Worker<Job>, shared: Arc<Shared>) {
    shared.telemetry.name_current_track(&format!("cumulus-worker-{index}"));
    loop {
        if let Some(job) = find_job(index, &local, &shared) {
            shared.queued.fetch_sub(1, Ordering::SeqCst);
            job();
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Nothing to pick up: park until a push wakes us. The re-check of
        // `queued` under `idle_lock` closes the race with `inject` (which
        // bumps `queued` before pushing and notifies under the same lock),
        // so the timeout is only a backstop, not a polling interval.
        let mut g = shared.idle_lock.lock();
        if shared.queued.load(Ordering::SeqCst) == 0 && !shared.shutdown.load(Ordering::SeqCst) {
            shared.stats.parks.fetch_add(1, Ordering::Relaxed);
            let timed_out =
                shared.idle_cv.wait_for(&mut g, std::time::Duration::from_millis(250)).timed_out();
            if timed_out {
                shared.stats.timeout_wakeups.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.stats.unparks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn find_job(index: usize, local: &Worker<Job>, shared: &Shared) -> Option<Job> {
    // 1. local deque
    if let Some(j) = local.pop() {
        return Some(j);
    }
    // 2. global injector (grab a batch to amortize contention)
    loop {
        match shared.injector.steal_batch_and_pop(local) {
            crossbeam::deque::Steal::Success(j) => return Some(j),
            crossbeam::deque::Steal::Empty => break,
            crossbeam::deque::Steal::Retry => continue,
        }
    }
    // 3. steal from siblings
    for (k, s) in shared.stealers.iter().enumerate() {
        if k == index {
            continue;
        }
        loop {
            match s.steal() {
                crossbeam::deque::Steal::Success(j) => {
                    shared.stats.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(j);
                }
                crossbeam::deque::Steal::Empty => break,
                crossbeam::deque::Steal::Retry => continue,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    #[test]
    fn results_in_submission_order() {
        let pool = Pool::new(4);
        let out = pool.map((0..100).collect::<Vec<i64>>(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<i64>>());
    }

    #[test]
    fn empty_batch() {
        let pool = Pool::new(2);
        let out: Vec<i32> = pool.execute_all(Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.map(vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn actually_parallel() {
        // 8 jobs that each sleep 30 ms on 8 threads must finish well under
        // the serial 240 ms
        let pool = Pool::new(8);
        let t0 = Instant::now();
        pool.map((0..8).collect::<Vec<_>>(), |_| {
            std::thread::sleep(Duration::from_millis(30));
        });
        let elapsed = t0.elapsed();
        assert!(elapsed < Duration::from_millis(200), "took {elapsed:?}, not parallel");
    }

    #[test]
    fn all_jobs_execute_exactly_once() {
        let pool = Pool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        pool.map((0..1000).collect::<Vec<_>>(), move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn multiple_batches_reuse_pool() {
        let pool = Pool::new(3);
        for round in 0..5 {
            let out = pool.map(vec![round; 10], |x| x);
            assert_eq!(out, vec![round; 10]);
        }
    }

    #[test]
    #[should_panic(expected = "activation exploded")]
    fn job_panic_propagates_after_batch() {
        let pool = Pool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("activation exploded")), Box::new(|| 3)];
        let _ = pool.execute_all(jobs);
    }

    #[test]
    fn pool_survives_job_panic() {
        let pool = Pool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> =
            vec![Box::new(|| panic!("boom")), Box::new(|| 2)];
        let res = catch_unwind(AssertUnwindSafe(|| pool.execute_all(jobs)));
        assert!(res.is_err());
        // pool still usable afterwards
        let out = pool.map(vec![1, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn uneven_workloads_balance() {
        // one long job + many short ones: stealing should keep total time
        // near the long job's duration
        let pool = Pool::new(4);
        let t0 = Instant::now();
        pool.map((0..40).collect::<Vec<_>>(), |i| {
            let ms = if i == 0 { 80 } else { 5 };
            std::thread::sleep(Duration::from_millis(ms));
        });
        let elapsed = t0.elapsed();
        // serial would be 80 + 39*5 = 275 ms; balanced is ~80-150 ms
        assert!(elapsed < Duration::from_millis(220), "took {elapsed:?}");
    }

    #[test]
    fn submit_returns_value_through_handle() {
        let pool = Pool::new(2);
        let h = pool.submit(|| 40 + 2);
        assert_eq!(h.join(), 42);
    }

    #[test]
    fn submit_panic_captured_in_handle_not_worker() {
        let pool = Pool::new(1);
        let h = pool.submit(|| -> i32 { panic!("contained") });
        assert!(h.wait().is_err());
        // the single worker survived the panic and still runs jobs
        assert_eq!(pool.submit(|| 7).join(), 7);
    }

    #[test]
    fn handles_resolve_out_of_order() {
        // a short job submitted after a long one must complete (and be
        // joinable) well before the long one finishes — no batch barrier
        let pool = Pool::new(2);
        let long = pool.submit(|| {
            std::thread::sleep(Duration::from_millis(150));
            "long"
        });
        let t0 = Instant::now();
        let short = pool.submit(|| "short");
        assert_eq!(short.join(), "short");
        assert!(t0.elapsed() < Duration::from_millis(100), "short job waited on long job");
        assert_eq!(long.join(), "long");
    }

    #[test]
    fn parked_pool_wakes_promptly() {
        let pool = Pool::new(2);
        // let the workers park
        std::thread::sleep(Duration::from_millis(120));
        let t0 = Instant::now();
        pool.submit(|| ()).join();
        assert!(
            t0.elapsed() < Duration::from_millis(60),
            "parked worker was not woken by push (took {:?})",
            t0.elapsed()
        );
    }

    #[test]
    fn missed_wakeup_regression_submit_after_park() {
        // Regression pin for the PR-1 wakeup fix: a submit that lands right
        // after a worker's park-predicate check must still wake it via the
        // condvar, never via the 250 ms backstop timeout. Run many
        // park→submit cycles; if any submit were missed, its join would
        // stall for the full backstop and the latency bound here trips.
        let pool = Pool::new(2);
        for round in 0..20 {
            // drain and give both workers time to park
            std::thread::sleep(Duration::from_millis(5));
            let t0 = Instant::now();
            pool.submit(move || round).join();
            let waited = t0.elapsed();
            assert!(
                waited < Duration::from_millis(150),
                "round {round}: parked worker woke only via backstop ({waited:?})"
            );
        }
        // `completed` is bumped by the worker *after* the handle resolves,
        // so give the last increment a moment to land
        std::thread::sleep(Duration::from_millis(20));
        let s = pool.stats();
        assert!(s.parks > 0, "workers never parked; the test exercised nothing");
        assert!(s.unparks > 0, "no condvar wakeups recorded: {s:?}");
        assert_eq!(s.submitted, 20);
        assert_eq!(s.completed, 20);
    }

    #[test]
    fn stats_count_submissions_and_steals() {
        let pool = Pool::new(4);
        pool.map((0..200).collect::<Vec<_>>(), |i| {
            if i % 7 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            i
        });
        std::thread::sleep(Duration::from_millis(20));
        let s = pool.stats();
        assert_eq!(s.submitted, 200);
        assert_eq!(s.completed, 200);
        // steals/parks are scheduling-dependent; just ensure the counters
        // stay coherent (completed never exceeds submitted)
        assert!(s.completed <= s.submitted);
    }

    #[test]
    fn telemetry_records_queue_wait_and_worker_tracks() {
        let tel = telemetry::Telemetry::attached();
        {
            let pool = Pool::with_telemetry(2, tel.clone());
            pool.map((0..16).collect::<Vec<_>>(), |i| {
                std::thread::sleep(Duration::from_millis(1));
                i
            });
        } // drop flushes counters
        let snap = tel.snapshot().unwrap();
        let qw = snap.histogram("pool.queue_wait").expect("queue-wait histogram");
        assert_eq!(qw.count, 16);
        assert_eq!(snap.counter("pool.submitted"), Some(16));
        assert_eq!(snap.counter("pool.completed"), Some(16));
        assert!(
            snap.tracks.iter().any(|t| t.name.starts_with("cumulus-worker-")),
            "worker threads should register named tracks: {:?}",
            snap.tracks
        );
        assert!(snap.gauge("pool.queue_depth").is_some(), "queue depth gauge sampled");
    }

    #[test]
    fn disabled_telemetry_pool_has_stats_but_no_sink() {
        let pool = Pool::new(2);
        pool.map(vec![1, 2, 3], |x| x);
        let s = pool.stats();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.completed, 3);
    }

    #[test]
    fn is_finished_tracks_completion() {
        let pool = Pool::new(1);
        let h = pool.submit(|| std::thread::sleep(Duration::from_millis(40)));
        assert!(!h.is_finished());
        std::thread::sleep(Duration::from_millis(120));
        assert!(h.is_finished());
        h.join();
    }
}
