//! The local execution backend: runs workflow activations *for real* on the
//! work-stealing pool, with provenance capture, failure injection, retry,
//! and poison-input blacklisting.
//!
//! This is the backend SciDock's biological results (Table 3) come from;
//! cloud-scale timing studies use [`crate::simbackend`] instead.

use std::sync::Arc;
use std::time::Instant;

use cloudsim::{Fate, FailureModel};
use provenance::{ActivationRecord, ActivationStatus, ProvenanceStore, WorkflowId};
use std::collections::HashMap;

use crate::algebra::{Relation, Tuple};
use crate::pool::Pool;
use crate::workflow::{ActivationCtx, FileStore, WorkflowDef};

/// Local backend configuration.
#[derive(Debug, Clone)]
pub struct LocalConfig {
    /// Worker threads (≙ local cores).
    pub threads: usize,
    /// Failure injection model (use [`FailureModel::none`] to disable).
    pub failures: FailureModel,
    /// Maximum re-executions of a failed activation before dropping it.
    pub max_retries: u32,
    /// Resume from a prior workflow execution: activations whose
    /// `(activity tag, pair key)` finished in that run are *not* re-executed;
    /// their recorded output tuples are reused (SciCumulus' re-execution
    /// mechanism — "it does not need to restart the entire workflow").
    pub resume_from: Option<WorkflowId>,
}

impl Default for LocalConfig {
    fn default() -> Self {
        LocalConfig {
            threads: 4,
            failures: FailureModel::none(),
            max_retries: 3,
            resume_from: None,
        }
    }
}

/// Outcome of a workflow run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Provenance id of this run.
    pub workflow: WorkflowId,
    /// Wall-clock duration of the whole run in seconds.
    pub total_seconds: f64,
    /// Successful activations.
    pub finished: usize,
    /// Failed attempts (each retried unless the budget ran out).
    pub failed_attempts: usize,
    /// Activations aborted after entering a looping state.
    pub aborted: usize,
    /// Activations skipped by the blacklist rule.
    pub blacklisted: usize,
    /// Activations skipped because a prior run already finished them
    /// (resume mode).
    pub resumed: usize,
    /// Output relation of every activity, by activity index.
    pub outputs: Vec<Relation>,
}

impl RunReport {
    /// The output relation of the final activity.
    pub fn final_output(&self) -> &Relation {
        self.outputs.last().expect("workflow has at least one activity")
    }
}

/// Errors from running a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Structural validation failed.
    Invalid(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Invalid(m) => write!(f, "invalid workflow: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Per-activation result collected from a worker.
struct ActOutcome {
    tuples: Vec<Tuple>,
    finished: usize,
    failed_attempts: usize,
    aborted: usize,
    blacklisted: usize,
    resumed: usize,
}

/// Derive a stable key for one activation (provenance + failure rolls).
///
/// Integral floats render without the decimal point so that tuples resumed
/// from provenance (which stores all numerics as floats) key identically to
/// their original integer-typed versions.
fn pair_key(tuples: &[Tuple]) -> String {
    match tuples.first() {
        None => String::from("<empty>"),
        Some(t) => {
            let mut s = String::new();
            for (k, v) in t.iter().enumerate() {
                if k > 0 {
                    s.push(':');
                }
                let text = match v {
                    provenance::Value::Float(f) if f.fract() == 0.0 && f.abs() < 1e15 => {
                        format!("{}", *f as i64)
                    }
                    other => other.to_string(),
                };
                // keep keys short: long values (file bodies) are truncated
                if text.len() > 24 {
                    s.push_str(&text[..24]);
                } else {
                    s.push_str(&text);
                }
            }
            s
        }
    }
}

/// Run a workflow on the local pool.
pub fn run_local(
    def: &WorkflowDef,
    input: Relation,
    files: Arc<FileStore>,
    prov: Arc<ProvenanceStore>,
    cfg: &LocalConfig,
) -> Result<RunReport, EngineError> {
    def.validate().map_err(EngineError::Invalid)?;
    let pool = Pool::new(cfg.threads);
    let wkf = prov.begin_workflow(&def.tag, &def.description, &def.expdir);
    let t0 = Instant::now();

    let mut outputs: Vec<Relation> = Vec::with_capacity(def.activities.len());
    let mut finished = 0usize;
    let mut failed_attempts = 0usize;
    let mut aborted = 0usize;
    let mut blacklisted = 0usize;
    let mut resumed = 0usize;

    for (i, activity) in def.activities.iter().enumerate() {
        let act_id = prov.register_activity(wkf, &activity.tag, activity.operator.name());
        let input_rel = def.input_for(i, &input, &outputs);
        let parts = activity.operator.partition(&input_rel);
        // resume: outputs of activations this activity already finished in
        // the prior run, keyed by pair key
        let prior: Arc<HashMap<String, Vec<Tuple>>> = Arc::new(
            cfg.resume_from
                .map(|prev| prov.finished_outputs(prev, &activity.tag))
                .unwrap_or_default(),
        );

        let jobs: Vec<_> = parts
            .into_iter()
            .enumerate()
            .map(|(j, part)| {
                let func = Arc::clone(&activity.func);
                let blacklist = activity.blacklist.clone();
                let files = Arc::clone(&files);
                let prov = Arc::clone(&prov);
                let failures = cfg.failures;
                let max_retries = cfg.max_retries;
                let workdir = format!(
                    "{}/{}/{}",
                    def.expdir.trim_end_matches('/'),
                    activity.tag,
                    j
                );
                let tag_key = format!("{}#{}", activity.tag, pair_key(&part));
                let start_base = t0;
                let prior = Arc::clone(&prior);
                move || -> ActOutcome {
                    let mut out = ActOutcome {
                        tuples: Vec::new(),
                        finished: 0,
                        failed_attempts: 0,
                        aborted: 0,
                        blacklisted: 0,
                        resumed: 0,
                    };
                    let key = pair_key(&part);
                    // resume: a prior run already finished this activation
                    if let Some(tuples) = prior.get(&key) {
                        out.tuples = tuples.clone();
                        out.resumed = 1;
                        return out;
                    }
                    // poison-input rule: never execute blacklisted tuples
                    if let Some(bl) = &blacklist {
                        if part.iter().any(|t| bl(t)) {
                            let now = start_base.elapsed().as_secs_f64();
                            prov.record_activation(&ActivationRecord {
                                activity: act_id,
                                workflow: wkf,
                                status: ActivationStatus::Blacklisted,
                                start_time: now,
                                end_time: now,
                                machine: None,
                                retries: 0,
                                pair_key: key,
                            });
                            out.blacklisted = 1;
                            return out;
                        }
                    }
                    let mut attempt = 0u32;
                    loop {
                        let fate = failures.fate(&tag_key, attempt);
                        let start = start_base.elapsed().as_secs_f64();
                        match fate {
                            Fate::Hang => {
                                // the real program would loop forever; the
                                // engine detects and aborts it
                                let end = start_base.elapsed().as_secs_f64();
                                prov.record_activation(&ActivationRecord {
                                    activity: act_id,
                                    workflow: wkf,
                                    status: ActivationStatus::Aborted,
                                    start_time: start,
                                    end_time: end,
                                    machine: None,
                                    retries: attempt as i64,
                                    pair_key: key,
                                });
                                out.aborted = 1;
                                return out;
                            }
                            Fate::Fail => {
                                let mut ctx = ActivationCtx::new(&files, &workdir);
                                let _ = func(&part, &mut ctx); // work is lost
                                let end = start_base.elapsed().as_secs_f64();
                                prov.record_activation(&ActivationRecord {
                                    activity: act_id,
                                    workflow: wkf,
                                    status: ActivationStatus::Failed,
                                    start_time: start,
                                    end_time: end,
                                    machine: None,
                                    retries: attempt as i64,
                                    pair_key: key.clone(),
                                });
                                out.failed_attempts += 1;
                                if attempt >= max_retries {
                                    return out;
                                }
                                attempt += 1;
                            }
                            Fate::Ok => {
                                let mut ctx = ActivationCtx::new(&files, &workdir);
                                match func(&part, &mut ctx) {
                                    Ok(tuples) => {
                                        let end = start_base.elapsed().as_secs_f64();
                                        let task = prov.record_activation(&ActivationRecord {
                                            activity: act_id,
                                            workflow: wkf,
                                            status: ActivationStatus::Finished,
                                            start_time: start,
                                            end_time: end,
                                            machine: None,
                                            retries: attempt as i64,
                                            pair_key: key.clone(),
                                        });
                                        for path in ctx.produced_files() {
                                            let size =
                                                files.size(path).unwrap_or(0) as i64;
                                            let (dir, name) = split_path(path);
                                            prov.record_file(task, act_id, wkf, name, size, dir);
                                        }
                                        for (name, num, text) in &ctx.params {
                                            prov.record_parameter(
                                                task,
                                                wkf,
                                                name,
                                                *num,
                                                text.as_deref(),
                                            );
                                        }
                                        for (ti, t) in tuples.iter().enumerate() {
                                            prov.record_output_tuple(
                                                task, act_id, wkf, &key, ti, t,
                                            );
                                        }
                                        out.tuples = tuples;
                                        out.finished = 1;
                                        return out;
                                    }
                                    Err(_e) => {
                                        // domain error: behaves like a failure
                                        let end = start_base.elapsed().as_secs_f64();
                                        prov.record_activation(&ActivationRecord {
                                            activity: act_id,
                                            workflow: wkf,
                                            status: ActivationStatus::Failed,
                                            start_time: start,
                                            end_time: end,
                                            machine: None,
                                            retries: attempt as i64,
                                            pair_key: key.clone(),
                                        });
                                        out.failed_attempts += 1;
                                        if attempt >= max_retries {
                                            return out;
                                        }
                                        attempt += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            })
            .collect();

        let results = pool.execute_all(jobs);
        let mut rel = Relation {
            columns: activity.output_columns.clone(),
            tuples: Vec::new(),
        };
        for r in results {
            finished += r.finished;
            failed_attempts += r.failed_attempts;
            aborted += r.aborted;
            blacklisted += r.blacklisted;
            resumed += r.resumed;
            for t in r.tuples {
                assert_eq!(
                    t.len(),
                    rel.columns.len(),
                    "activity {} produced tuple of wrong arity",
                    activity.tag
                );
                rel.tuples.push(t);
            }
        }
        outputs.push(rel);
    }

    Ok(RunReport {
        workflow: wkf,
        total_seconds: t0.elapsed().as_secs_f64(),
        finished,
        failed_attempts,
        aborted,
        blacklisted,
        resumed,
        outputs,
    })
}

fn split_path(path: &str) -> (&str, &str) {
    match path.rfind('/') {
        Some(i) => (&path[..i + 1], &path[i + 1..]),
        None => ("", path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::Activity;
    use provenance::Value;

    fn double_fn() -> crate::workflow::ActivityFn {
        Arc::new(|tuples, _ctx| {
            Ok(tuples
                .iter()
                .map(|t| {
                    let n = t[0].as_f64().unwrap_or(0.0);
                    vec![Value::Float(n * 2.0)]
                })
                .collect())
        })
    }

    fn input(n: i64) -> Relation {
        let mut r = Relation::new(&["x"]);
        for k in 0..n {
            r.push(vec![Value::Int(k)]);
        }
        r
    }

    fn simple_workflow() -> WorkflowDef {
        WorkflowDef {
            tag: "test".into(),
            description: "test wf".into(),
            expdir: "/exp".into(),
            activities: vec![
                Activity::map("double", &["x"], double_fn()),
                Activity::map("double2", &["x"], double_fn()),
            ],
            deps: vec![vec![], vec![0]],
        }
    }

    #[test]
    fn chain_executes_and_collects() {
        let report = run_local(
            &simple_workflow(),
            input(10),
            Arc::new(FileStore::new()),
            Arc::new(ProvenanceStore::new()),
            &LocalConfig::default(),
        )
        .unwrap();
        assert_eq!(report.finished, 20); // 10 activations × 2 activities
        assert_eq!(report.final_output().len(), 10);
        let mut got: Vec<f64> =
            report.final_output().tuples.iter().map(|t| t[0].as_f64().unwrap()).collect();
        got.sort_by(f64::total_cmp);
        assert_eq!(got, (0..10).map(|k| k as f64 * 4.0).collect::<Vec<_>>());
    }

    #[test]
    fn provenance_rows_recorded() {
        let prov = Arc::new(ProvenanceStore::new());
        let _ = run_local(
            &simple_workflow(),
            input(5),
            Arc::new(FileStore::new()),
            Arc::clone(&prov),
            &LocalConfig::default(),
        )
        .unwrap();
        let r = prov.query("SELECT count(*) FROM hactivation WHERE status = 'FINISHED'").unwrap();
        assert_eq!(r.cell(0, 0), &Value::Int(10));
        let acts = prov.query("SELECT tag FROM hactivity ORDER BY actid").unwrap();
        assert_eq!(acts.len(), 2);
        assert_eq!(acts.cell(0, 0), &Value::from("double"));
    }

    #[test]
    fn files_and_params_recorded() {
        let func: crate::workflow::ActivityFn = Arc::new(|tuples, ctx| {
            ctx.write_file("result.dlg", "DOCKED blah");
            ctx.record_param("feb", Some(-6.5), None);
            Ok(tuples.to_vec())
        });
        let wf = WorkflowDef {
            tag: "t".into(),
            description: String::new(),
            expdir: "/root/exp".into(),
            activities: vec![Activity::map("dock", &["x"], func)],
            deps: vec![vec![]],
        };
        let prov = Arc::new(ProvenanceStore::new());
        let files = Arc::new(FileStore::new());
        let _ = run_local(&wf, input(3), Arc::clone(&files), Arc::clone(&prov), &LocalConfig::default())
            .unwrap();
        let r = prov
            .query("SELECT fname, fdir FROM hfile WHERE fname LIKE '%.dlg'")
            .unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.cell(0, 0), &Value::from("result.dlg"));
        assert!(r.cell(0, 1).to_string().starts_with("/root/exp/dock/"));
        let p = prov.query("SELECT avg(pvalue_num) FROM hparameter WHERE pname = 'feb'").unwrap();
        assert_eq!(p.cell(0, 0), &Value::Float(-6.5));
        assert_eq!(files.len(), 3);
    }

    #[test]
    fn failures_are_retried() {
        let cfg = LocalConfig {
            threads: 4,
            failures: FailureModel { fail_rate: 0.3, hang_rate: 0.0, fail_at_fraction: 0.5, seed: 5 },
            max_retries: 10,
            ..Default::default()
        };
        let prov = Arc::new(ProvenanceStore::new());
        let report = run_local(
            &simple_workflow(),
            input(30),
            Arc::new(FileStore::new()),
            Arc::clone(&prov),
            &cfg,
        )
        .unwrap();
        // with generous retries every activation eventually finishes
        assert_eq!(report.finished, 60);
        assert!(report.failed_attempts > 0, "the 30% fail rate must bite");
        let failed = prov
            .query("SELECT count(*) FROM hactivation WHERE status = 'FAILED'")
            .unwrap();
        assert_eq!(
            failed.cell(0, 0),
            &Value::Int(report.failed_attempts as i64),
            "provenance sees every failed attempt"
        );
    }

    #[test]
    fn hangs_are_aborted_and_dropped() {
        let cfg = LocalConfig {
            threads: 2,
            failures: FailureModel { fail_rate: 0.0, hang_rate: 0.5, fail_at_fraction: 0.5, seed: 2 },
            max_retries: 1,
            ..Default::default()
        };
        let report = run_local(
            &simple_workflow(),
            input(40),
            Arc::new(FileStore::new()),
            Arc::new(ProvenanceStore::new()),
            &cfg,
        )
        .unwrap();
        assert!(report.aborted > 5, "half the activations should hang");
        // dropped tuples shrink downstream relations
        assert!(report.final_output().len() < 40);
        assert_eq!(report.finished + report.aborted, 40 + report.outputs[0].len());
    }

    #[test]
    fn blacklist_skips_execution() {
        let mut wf = simple_workflow();
        wf.activities[0] = wf.activities[0]
            .clone()
            .with_blacklist(Arc::new(|t| matches!(t[0], Value::Int(k) if k % 2 == 0)));
        let prov = Arc::new(ProvenanceStore::new());
        let report = run_local(
            &wf,
            input(10),
            Arc::new(FileStore::new()),
            Arc::clone(&prov),
            &LocalConfig::default(),
        )
        .unwrap();
        assert_eq!(report.blacklisted, 5);
        assert_eq!(report.final_output().len(), 5);
        let r = prov
            .query("SELECT count(*) FROM hactivation WHERE status = 'BLACKLISTED'")
            .unwrap();
        assert_eq!(r.cell(0, 0), &Value::Int(5));
    }

    #[test]
    fn invalid_workflow_rejected() {
        let mut wf = simple_workflow();
        wf.deps = vec![vec![], vec![5]];
        let err = run_local(
            &wf,
            input(1),
            Arc::new(FileStore::new()),
            Arc::new(ProvenanceStore::new()),
            &LocalConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Invalid(_)));
    }

    #[test]
    fn domain_errors_count_as_failures() {
        let func: crate::workflow::ActivityFn =
            Arc::new(|_t, _c| Err(crate::workflow::ActivityError("bad input".into())));
        let wf = WorkflowDef {
            tag: "t".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![Activity::map("always_fails", &["x"], func)],
            deps: vec![vec![]],
        };
        let cfg = LocalConfig { max_retries: 2, ..Default::default() };
        let report = run_local(
            &wf,
            input(4),
            Arc::new(FileStore::new()),
            Arc::new(ProvenanceStore::new()),
            &cfg,
        )
        .unwrap();
        assert_eq!(report.finished, 0);
        assert_eq!(report.failed_attempts, 4 * 3); // initial + 2 retries each
        assert!(report.final_output().is_empty());
    }

    #[test]
    fn splitmap_reduce_query_pipeline() {
        use crate::algebra::Operator;
        // SplitMap: each input k fans out to k copies
        let split: crate::workflow::ActivityFn = Arc::new(|tuples, _ctx| {
            let n = tuples[0][0].as_f64().unwrap_or(0.0) as i64;
            Ok((0..n).map(|_| vec![Value::Int(n), Value::Int(1)]).collect())
        });
        // Reduce by the key column: sum the counts
        let reduce: crate::workflow::ActivityFn = Arc::new(|tuples, _ctx| {
            let key = tuples[0][0].clone();
            let total: f64 = tuples.iter().filter_map(|t| t[1].as_f64()).sum();
            Ok(vec![vec![key, Value::Float(total)]])
        });
        // SRQuery: one activation totalling everything
        let query: crate::workflow::ActivityFn = Arc::new(|tuples, _ctx| {
            let grand: f64 = tuples.iter().filter_map(|t| t[1].as_f64()).sum();
            Ok(vec![vec![Value::Float(grand)]])
        });
        let wf = WorkflowDef {
            tag: "algebra".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![
                Activity::map("fanout", &["k", "one"], split)
                    .with_operator(Operator::SplitMap),
                Activity::map("sum_by_k", &["k", "total"], reduce)
                    .with_operator(Operator::Reduce { keys: vec!["k".into()] }),
                Activity::map("grand_total", &["grand"], query)
                    .with_operator(Operator::SRQuery),
            ],
            deps: vec![vec![], vec![0], vec![1]],
        };
        let mut rel = Relation::new(&["k"]);
        for k in [2i64, 3, 4] {
            rel.push(vec![Value::Int(k)]);
        }
        let prov = Arc::new(ProvenanceStore::new());
        let report = run_local(
            &wf,
            rel,
            Arc::new(FileStore::new()),
            Arc::clone(&prov),
            &LocalConfig::default(),
        )
        .unwrap();
        // fanout: 3 activations producing 2+3+4 = 9 tuples
        assert_eq!(report.outputs[0].len(), 9);
        // reduce: 3 groups (k = 2, 3, 4), each summing to k
        assert_eq!(report.outputs[1].len(), 3);
        for t in &report.outputs[1].tuples {
            assert_eq!(t[0].as_f64(), t[1].as_f64(), "group sum equals its key");
        }
        // SRQuery: one tuple with the grand total 9
        assert_eq!(report.final_output().len(), 1);
        assert_eq!(report.final_output().tuples[0][0].as_f64(), Some(9.0));
        // activation counts in provenance: 3 + 3 + 1
        let q = prov
            .query(
                "SELECT a.tag, count(*) FROM hactivity a, hactivation t \
                 WHERE a.actid = t.actid GROUP BY a.tag ORDER BY a.tag",
            )
            .unwrap();
        let counts: Vec<(String, f64)> = q
            .rows
            .iter()
            .map(|r| (r[0].to_string(), r[1].as_f64().unwrap()))
            .collect();
        assert_eq!(
            counts,
            vec![
                ("fanout".to_string(), 3.0),
                ("grand_total".to_string(), 1.0),
                ("sum_by_k".to_string(), 3.0)
            ]
        );
    }

    #[test]
    fn resume_skips_finished_activations() {
        // first run: every activation fails permanently for half the tuples
        let func_calls = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let fc = Arc::clone(&func_calls);
        let func: crate::workflow::ActivityFn = Arc::new(move |tuples, _ctx| {
            fc.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(tuples.to_vec())
        });
        let wf = WorkflowDef {
            tag: "resumable".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![Activity::map("work", &["x"], func)],
            deps: vec![vec![]],
        };
        let prov = Arc::new(ProvenanceStore::new());
        let files = Arc::new(FileStore::new());
        // run 1: heavy failures, no retries -> some tuples dropped
        let cfg1 = LocalConfig {
            threads: 2,
            failures: FailureModel { fail_rate: 0.5, hang_rate: 0.0, fail_at_fraction: 0.5, seed: 9 },
            max_retries: 0,
            resume_from: None,
        };
        let r1 = run_local(&wf, input(20), Arc::clone(&files), Arc::clone(&prov), &cfg1).unwrap();
        assert!(r1.finished < 20, "some activations must drop");
        assert!(r1.failed_attempts > 0);
        let calls_after_run1 = func_calls.load(std::sync::atomic::Ordering::SeqCst);

        // run 2: resume from run 1 with failures off — only the dropped
        // activations execute
        let cfg2 = LocalConfig {
            threads: 2,
            failures: FailureModel::none(),
            max_retries: 0,
            resume_from: Some(r1.workflow),
        };
        let r2 = run_local(&wf, input(20), Arc::clone(&files), Arc::clone(&prov), &cfg2).unwrap();
        assert_eq!(r2.resumed, r1.finished, "every finished activation is reused");
        assert_eq!(r2.finished + r2.resumed, 20, "the full relation is recovered");
        assert_eq!(r2.final_output().len(), 20);
        let calls_after_run2 = func_calls.load(std::sync::atomic::Ordering::SeqCst);
        assert_eq!(
            calls_after_run2 - calls_after_run1,
            20 - r1.finished,
            "the function only runs for previously-dropped tuples"
        );
    }

    #[test]
    fn resume_preserves_tuple_values() {
        let wf = simple_workflow();
        let prov = Arc::new(ProvenanceStore::new());
        let files = Arc::new(FileStore::new());
        let r1 = run_local(&wf, input(5), Arc::clone(&files), Arc::clone(&prov), &LocalConfig::default())
            .unwrap();
        let cfg2 = LocalConfig { resume_from: Some(r1.workflow), ..Default::default() };
        let r2 =
            run_local(&wf, input(5), files, Arc::clone(&prov), &cfg2).unwrap();
        assert_eq!(r2.resumed, 10, "both activities fully resumed");
        assert_eq!(r2.finished, 0);
        let mut a: Vec<f64> =
            r1.final_output().tuples.iter().map(|t| t[0].as_f64().unwrap()).collect();
        let mut b: Vec<f64> =
            r2.final_output().tuples.iter().map(|t| t[0].as_f64().unwrap()).collect();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        assert_eq!(a, b, "resumed relation is value-identical");
    }

    #[test]
    fn split_path_helper() {
        assert_eq!(split_path("/a/b/c.dlg"), ("/a/b/", "c.dlg"));
        assert_eq!(split_path("file.txt"), ("", "file.txt"));
    }
}
