//! The local execution backend: runs workflow activations *for real* on the
//! work-stealing pool, with provenance capture, failure injection, retry,
//! and poison-input blacklisting.
//!
//! This is the backend SciDock's biological results (Table 3) come from;
//! cloud-scale timing studies use [`crate::simbackend`] instead.
//!
//! # Dispatch modes
//!
//! [`DispatchMode::Barrier`] is the classic SciCumulus stage execution:
//! every activation of activity N completes before activity N+1 starts, so
//! a run pays `sum over activities of max(activation time)` — one straggler
//! per stage serializes the whole fleet.
//!
//! [`DispatchMode::Pipelined`] (the default) is a ready-driven dataflow
//! dispatcher: the instant one pair's activity-N activation finishes, its
//! output tuples flow into activity N+1 activations, while slower pairs are
//! still in activity N. Barriers remain only where the algebra requires the
//! whole input relation — `Reduce` (group boundaries unknown until every
//! upstream tuple exists) and `SRQuery`/`MRQuery` (relation-level queries).
//! A chain of Map-like activities therefore pays `max over pairs of
//! sum(chain)` instead of `sum over activities of max(stage)`.
//!
//! Both modes share one activation runner, and failure fates are keyed by
//! `(activity tag, pair key, attempt)` — schedule-order independent — so
//! the two modes finish/fail/abort/blacklist the *same* activations and
//! fill provenance with the same rows (tuple order within a relation and
//! workdir numbering differ: pipelined numbers activations by arrival).

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use cloudsim::{FailureModel, Fate};
use provenance::{
    ActivationRecord, ActivationStatus, ActivityId, ProvenanceStore, TaskId, WorkflowId,
};
use telemetry::{MetricsSnapshot, Telemetry};

use crate::algebra::{Relation, Tuple};
use crate::dispatch::{pair_key, split_path, PipelineState};
use crate::obs::{BoundAddr, EventLog, HealthView, ObsServer, ObsState, Severity};
use crate::pool::Pool;
use crate::steer::{SlotId, SteeringBridge};
use crate::workflow::{ActivationCtx, FileStore, WorkflowDef};

/// How [`run_local`] schedules activations across activities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Ready-driven dataflow: a tuple enters activity N+1 as soon as its
    /// activity-N activation finishes; barriers only where the algebra
    /// requires the full relation (Reduce, SRQuery, MRQuery).
    #[default]
    Pipelined,
    /// Activity-by-activity: all of activity N finishes before N+1 starts.
    Barrier,
}

/// Local backend configuration.
///
/// Marked `#[non_exhaustive]`: construct it with [`LocalConfig::new`] (or
/// `Default`) and the `with_*` builder methods rather than a struct
/// literal, so new knobs can be added without breaking downstream crates.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct LocalConfig {
    /// Worker threads (≙ local cores).
    pub threads: usize,
    /// Failure injection model (use [`FailureModel::none`] to disable).
    pub failures: FailureModel,
    /// Maximum re-executions of a failed activation before dropping it.
    pub max_retries: u32,
    /// Resume from a prior workflow execution: activations whose
    /// `(activity tag, pair key)` finished in that run are *not* re-executed;
    /// their recorded output tuples are reused (SciCumulus' re-execution
    /// mechanism — "it does not need to restart the entire workflow").
    pub resume_from: Option<WorkflowId>,
    /// Activation scheduling strategy.
    pub mode: DispatchMode,
    /// Telemetry sink: spans/counters/histograms are recorded into it when
    /// attached and near-free when disabled (the default).
    pub telemetry: Telemetry,
    /// When set, a [`SteeringBridge`] flushes in-flight activation state
    /// into the provenance store at this interval, so steering queries see
    /// `RUNNING` rows during the run.
    pub steering_tick: Option<std::time::Duration>,
    /// Durability override applied to the provenance store for this run
    /// (e.g. `Durability::Sync` for crash tests, a wider batch window for
    /// throughput). `None` keeps whatever the store was opened with; the
    /// knob has no effect on in-memory stores.
    pub durability: Option<provenance::Durability>,
    /// Structured event log: run/activation lifecycle events are emitted
    /// into it (and served from `/events` when an endpoint is bound).
    pub events: Option<EventLog>,
    /// When set, bind a std-only HTTP exposition endpoint at this address
    /// (e.g. `"127.0.0.1:0"`) serving `/metrics`, `/snapshot.json`,
    /// `/healthz` and `/events` for the duration of the run.
    pub metrics_addr: Option<String>,
    /// Resolves to the endpoint's actual bound address once the listener is
    /// up — needed to discover the ephemeral port when binding port 0.
    pub metrics_bound: Option<BoundAddr>,
}

impl Default for LocalConfig {
    fn default() -> Self {
        LocalConfig {
            threads: 4,
            failures: FailureModel::none(),
            max_retries: 3,
            resume_from: None,
            mode: DispatchMode::default(),
            telemetry: Telemetry::disabled(),
            steering_tick: None,
            durability: None,
            events: None,
            metrics_addr: None,
            metrics_bound: None,
        }
    }
}

impl LocalConfig {
    /// The default configuration (4 threads, pipelined dispatch, no failure
    /// injection, telemetry disabled).
    pub fn new() -> LocalConfig {
        LocalConfig::default()
    }

    /// Set the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> LocalConfig {
        self.threads = threads;
        self
    }

    /// Set the failure-injection model.
    pub fn with_failures(mut self, failures: FailureModel) -> LocalConfig {
        self.failures = failures;
        self
    }

    /// Set the per-activation retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> LocalConfig {
        self.max_retries = max_retries;
        self
    }

    /// Resume from a prior workflow execution (skip activations it finished).
    pub fn with_resume_from(mut self, prev: WorkflowId) -> LocalConfig {
        self.resume_from = Some(prev);
        self
    }

    /// Set the activation scheduling strategy.
    pub fn with_mode(mut self, mode: DispatchMode) -> LocalConfig {
        self.mode = mode;
        self
    }

    /// Attach a telemetry sink.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> LocalConfig {
        self.telemetry = telemetry;
        self
    }

    /// Enable the steering bridge at the given flush interval.
    pub fn with_steering_tick(mut self, tick: std::time::Duration) -> LocalConfig {
        self.steering_tick = Some(tick);
        self
    }

    /// Override the provenance store's durability for this run.
    pub fn with_durability(mut self, durability: provenance::Durability) -> LocalConfig {
        self.durability = Some(durability);
        self
    }

    /// Attach a structured event log.
    pub fn with_events(mut self, events: EventLog) -> LocalConfig {
        self.events = Some(events);
        self
    }

    /// Serve `/metrics`, `/snapshot.json`, `/healthz` and `/events` over
    /// HTTP at `addr` for the duration of the run.
    pub fn with_metrics_addr(mut self, addr: impl Into<String>) -> LocalConfig {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Resolve the endpoint's actual bound address into `bound`.
    pub fn with_metrics_bound(mut self, bound: BoundAddr) -> LocalConfig {
        self.metrics_bound = Some(bound);
        self
    }
}

/// Outcome of a workflow run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Provenance id of this run.
    pub workflow: WorkflowId,
    /// Wall-clock duration of the whole run in seconds.
    pub total_seconds: f64,
    /// Successful activations.
    pub finished: usize,
    /// Failed attempts (each retried unless the budget ran out).
    pub failed_attempts: usize,
    /// Activations aborted after entering a looping state.
    pub aborted: usize,
    /// Activations skipped by the blacklist rule.
    pub blacklisted: usize,
    /// Activations skipped because a prior run already finished them
    /// (resume mode).
    pub resumed: usize,
    /// Output relation of every activity, by activity index.
    pub outputs: Vec<Relation>,
    /// Aggregated telemetry (per-activity latency quantiles, queue depth,
    /// worker utilisation) — `None` when no sink was attached.
    pub metrics: Option<MetricsSnapshot>,
    /// Scale decisions taken by the elastic fleet policy, in order. Empty
    /// for fixed fleets (and always for the local backend).
    pub scale_events: Vec<crate::fleet::ScaleEvent>,
    /// Largest provisioned fleet at any point in the run (the thread count
    /// for the local backend).
    pub peak_workers: usize,
    /// Fleet bill under the policy's cost model (per-started-hour), when
    /// the active scheduler carries one.
    pub fleet_cost_usd: Option<f64>,
}

impl RunReport {
    /// The output relation of the final activity.
    pub fn final_output(&self) -> &Relation {
        self.outputs.last().expect("workflow has at least one activity")
    }
}

/// Errors from running a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Structural validation failed.
    Invalid(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Invalid(m) => write!(f, "invalid workflow: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Per-activation result collected from a worker.
#[derive(Default)]
pub(crate) struct ActOutcome {
    pub(crate) tuples: Vec<Tuple>,
    pub(crate) finished: usize,
    pub(crate) failed_attempts: usize,
    pub(crate) aborted: usize,
    pub(crate) blacklisted: usize,
    pub(crate) resumed: usize,
}

/// Everything one activity's activations share, regardless of dispatch
/// mode (or backend: the distributed master reuses this for its
/// provenance/steering/resume bookkeeping). Built once per activity,
/// cloned (cheaply, all `Arc`s) into jobs.
pub(crate) struct ActivityCtx {
    pub(crate) act_id: ActivityId,
    pub(crate) wkf: WorkflowId,
    pub(crate) tag: String,
    pub(crate) func: crate::workflow::ActivityFn,
    pub(crate) blacklist: Option<crate::workflow::BlacklistFn>,
    /// Outputs this activity already finished in the resumed-from run.
    pub(crate) prior: Arc<HashMap<String, Vec<Tuple>>>,
    pub(crate) workdir_base: String,
    pub(crate) files: Arc<FileStore>,
    pub(crate) prov: Arc<ProvenanceStore>,
    pub(crate) failures: FailureModel,
    pub(crate) max_retries: u32,
    pub(crate) start_base: Instant,
    pub(crate) tel: Telemetry,
    pub(crate) bridge: Option<Arc<SteeringBridge>>,
    /// Structured event log, when one is attached to the run. Lifecycle
    /// events carry `start_base`-relative timestamps.
    pub(crate) events: Option<EventLog>,
}

impl ActivityCtx {
    #[allow(clippy::too_many_arguments)] // one-call-site constructor bundling run-wide context
    pub(crate) fn build(
        def: &WorkflowDef,
        i: usize,
        wkf: WorkflowId,
        files: &Arc<FileStore>,
        prov: &Arc<ProvenanceStore>,
        cfg: &LocalConfig,
        start_base: Instant,
        bridge: &Option<Arc<SteeringBridge>>,
    ) -> ActivityCtx {
        let activity = &def.activities[i];
        let act_id = prov.register_activity(wkf, &activity.tag, activity.operator.name());
        ActivityCtx {
            act_id,
            wkf,
            tag: activity.tag.clone(),
            func: Arc::clone(&activity.func),
            blacklist: activity.blacklist.clone(),
            prior: Arc::new(
                cfg.resume_from
                    .map(|prev| prov.finished_outputs(prev, &activity.tag))
                    .unwrap_or_default(),
            ),
            workdir_base: format!("{}/{}", def.expdir.trim_end_matches('/'), activity.tag),
            files: Arc::clone(files),
            prov: Arc::clone(prov),
            failures: cfg.failures,
            max_retries: cfg.max_retries,
            start_base,
            tel: cfg.telemetry.clone(),
            bridge: bridge.clone(),
            events: cfg.events.clone(),
        }
    }

    /// Write an attempt's definitive row: through the steering bridge when
    /// one is active (replacing its `RUNNING` row in place), directly into
    /// the store otherwise.
    pub(crate) fn record(&self, slot: Option<SlotId>, rec: &ActivationRecord) -> TaskId {
        match (&self.bridge, slot) {
            (Some(b), Some(s)) => b.resolve(s, rec),
            _ => self.prov.record_activation(rec),
        }
    }

    /// Register the attempt with the steering bridge, if one is active.
    pub(crate) fn begin_attempt(&self, key: &str, start: f64, attempt: u32) -> Option<SlotId> {
        self.bridge.as_ref().map(|b| b.begin(self.act_id, self.wkf, key, start, attempt as i64))
    }

    /// Execute one activation: resume lookup, blacklist rule, then the
    /// fate/retry loop with full provenance capture. `part_index` only
    /// names the activation's working directory.
    pub(crate) fn run_activation(&self, part: &[Tuple], part_index: usize) -> ActOutcome {
        let mut out = ActOutcome::default();
        let key = pair_key(part);
        // one span per activation, covering the whole ready→terminal life
        // including retries; its duration also feeds the per-activity
        // histogram that RunReport::metrics summarises
        let mut act_span = self
            .tel
            .span("activation", &self.tag)
            .with_histogram(self.tel.histogram(&format!("activation.{}", self.tag)));
        // resume: a prior run already finished this activation
        if let Some(tuples) = self.prior.get(&key) {
            act_span.set_detail(|| format!("resumed pair={key}"));
            out.tuples = tuples.clone();
            out.resumed = 1;
            return out;
        }
        // poison-input rule: never execute blacklisted tuples
        if let Some(bl) = &self.blacklist {
            if part.iter().any(|t| bl(t)) {
                let now = self.start_base.elapsed().as_secs_f64();
                act_span.set_detail(|| format!("blacklisted pair={key}"));
                if let Some(ev) = &self.events {
                    ev.emit(
                        now,
                        Severity::Error,
                        "activation_blacklisted",
                        &[("activity", self.tag.clone()), ("key", key.clone())],
                    );
                }
                self.prov.record_activation(&ActivationRecord {
                    activity: self.act_id,
                    workflow: self.wkf,
                    status: ActivationStatus::Blacklisted,
                    start_time: now,
                    end_time: now,
                    machine: None,
                    retries: 0,
                    pair_key: key,
                });
                out.blacklisted = 1;
                return out;
            }
        }
        let workdir = format!("{}/{}", self.workdir_base, part_index);
        // fates are keyed by (tag, pair key, attempt) — independent of
        // dispatch order, so Barrier and Pipelined roll identical dice
        let tag_key = format!("{}#{}", self.tag, key);
        let mut attempt = 0u32;
        loop {
            let fate = self.failures.fate(&tag_key, attempt);
            let start = self.start_base.elapsed().as_secs_f64();
            let slot = self.begin_attempt(&key, start, attempt);
            let mut attempt_span = self.tel.span("attempt", &format!("{}#{attempt}", self.tag));
            match fate {
                Fate::Hang => {
                    // the real program would loop forever; the engine
                    // detects and aborts it
                    let end = self.start_base.elapsed().as_secs_f64();
                    attempt_span.set_detail(|| format!("aborted pair={key}"));
                    act_span.set_detail(|| format!("aborted pair={key}"));
                    if let Some(ev) = &self.events {
                        ev.emit(
                            end,
                            Severity::Warn,
                            "activation_aborted",
                            &[
                                ("activity", self.tag.clone()),
                                ("key", key.clone()),
                                ("attempt", attempt.to_string()),
                            ],
                        );
                    }
                    self.record(
                        slot,
                        &ActivationRecord {
                            activity: self.act_id,
                            workflow: self.wkf,
                            status: ActivationStatus::Aborted,
                            start_time: start,
                            end_time: end,
                            machine: None,
                            retries: attempt as i64,
                            pair_key: key,
                        },
                    );
                    out.aborted = 1;
                    return out;
                }
                Fate::Fail => {
                    let mut ctx = ActivationCtx::new(&self.files, &workdir);
                    let _ = (self.func)(part, &mut ctx); // work is lost
                    let end = self.start_base.elapsed().as_secs_f64();
                    attempt_span.set_detail(|| format!("failed pair={key}"));
                    self.record(
                        slot,
                        &ActivationRecord {
                            activity: self.act_id,
                            workflow: self.wkf,
                            status: ActivationStatus::Failed,
                            start_time: start,
                            end_time: end,
                            machine: None,
                            retries: attempt as i64,
                            pair_key: key.clone(),
                        },
                    );
                    out.failed_attempts += 1;
                    if let Some(ev) = &self.events {
                        let sev = if attempt >= self.max_retries {
                            Severity::Error // budget exhausted: terminal
                        } else {
                            Severity::Warn // will be retried
                        };
                        ev.emit(
                            end,
                            sev,
                            "activation_failed",
                            &[
                                ("activity", self.tag.clone()),
                                ("key", key.clone()),
                                ("attempt", attempt.to_string()),
                            ],
                        );
                    }
                    if attempt >= self.max_retries {
                        act_span.set_detail(|| format!("failed-permanently pair={key}"));
                        return out;
                    }
                    attempt += 1;
                    self.tel.instant("activation", "retry", Some(&key));
                }
                Fate::Ok => {
                    let mut ctx = ActivationCtx::new(&self.files, &workdir);
                    match (self.func)(part, &mut ctx) {
                        Ok(tuples) => {
                            let end = self.start_base.elapsed().as_secs_f64();
                            attempt_span.set_detail(|| format!("finished pair={key}"));
                            act_span
                                .set_detail(|| format!("finished pair={key} retries={attempt}"));
                            // write-ahead ordering for crash recovery: the
                            // row goes in as RUNNING, its files/params/
                            // output tuples are recorded under that task id,
                            // and only then does the row flip to FINISHED.
                            // A recovered FINISHED row therefore always has
                            // its complete outputs (the WAL preserves this
                            // order), so resume never reuses a half-recorded
                            // activation.
                            let rec = ActivationRecord {
                                activity: self.act_id,
                                workflow: self.wkf,
                                status: ActivationStatus::Running,
                                start_time: start,
                                end_time: end,
                                machine: None,
                                retries: attempt as i64,
                                pair_key: key.clone(),
                            };
                            let task = self.record(slot, &rec);
                            for path in ctx.produced_files() {
                                let size = self.files.size(path).unwrap_or(0) as i64;
                                let (dir, name) = split_path(path);
                                self.prov.record_file(task, self.act_id, self.wkf, name, size, dir);
                            }
                            for (name, num, text) in &ctx.params {
                                self.prov.record_parameter(
                                    task,
                                    self.wkf,
                                    name,
                                    *num,
                                    text.as_deref(),
                                );
                            }
                            for (ti, t) in tuples.iter().enumerate() {
                                self.prov.record_output_tuple(
                                    task,
                                    self.act_id,
                                    self.wkf,
                                    &key,
                                    ti,
                                    t,
                                );
                            }
                            let done = self.prov.update_activation(
                                task,
                                &ActivationRecord { status: ActivationStatus::Finished, ..rec },
                            );
                            debug_assert!(done, "the RUNNING row we just wrote must exist");
                            if let Some(ev) = &self.events {
                                ev.emit(
                                    end,
                                    Severity::Info,
                                    "activation_finished",
                                    &[
                                        ("activity", self.tag.clone()),
                                        ("key", key.clone()),
                                        ("attempt", attempt.to_string()),
                                    ],
                                );
                            }
                            out.tuples = tuples;
                            out.finished = 1;
                            return out;
                        }
                        Err(_e) => {
                            // domain error: behaves like a failure
                            let end = self.start_base.elapsed().as_secs_f64();
                            attempt_span.set_detail(|| format!("failed pair={key}"));
                            self.record(
                                slot,
                                &ActivationRecord {
                                    activity: self.act_id,
                                    workflow: self.wkf,
                                    status: ActivationStatus::Failed,
                                    start_time: start,
                                    end_time: end,
                                    machine: None,
                                    retries: attempt as i64,
                                    pair_key: key.clone(),
                                },
                            );
                            out.failed_attempts += 1;
                            if let Some(ev) = &self.events {
                                let sev = if attempt >= self.max_retries {
                                    Severity::Error
                                } else {
                                    Severity::Warn
                                };
                                ev.emit(
                                    end,
                                    sev,
                                    "activation_failed",
                                    &[
                                        ("activity", self.tag.clone()),
                                        ("key", key.clone()),
                                        ("attempt", attempt.to_string()),
                                    ],
                                );
                            }
                            if attempt >= self.max_retries {
                                act_span.set_detail(|| format!("failed-permanently pair={key}"));
                                return out;
                            }
                            attempt += 1;
                            self.tel.instant("activation", "retry", Some(&key));
                        }
                    }
                }
            }
        }
    }
}

/// Run a workflow on the local pool.
///
/// Deprecated: prefer [`crate::backend::Backend::run`] on a
/// [`crate::backend::LocalBackend`] in new code — it returns the
/// backend-independent [`crate::backend::RunOutcome`] and lets callers swap
/// execution substrates (local / distributed / simulated) behind one trait.
#[deprecated(
    since = "0.1.0",
    note = "use `Backend::run` on a `LocalBackend` instead; this one-shot \
            entry point bypasses the backend-independent `RunOutcome` surface"
)]
pub fn run_local(
    def: &WorkflowDef,
    input: Relation,
    files: Arc<FileStore>,
    prov: Arc<ProvenanceStore>,
    cfg: &LocalConfig,
) -> Result<RunReport, EngineError> {
    run_local_impl(def, input, files, prov, cfg)
}

/// The engine behind both [`run_local`] and
/// [`crate::backend::LocalBackend`]; in-crate callers use this directly so
/// the deprecation attribute only fires on external one-shot use.
pub(crate) fn run_local_impl(
    def: &WorkflowDef,
    input: Relation,
    files: Arc<FileStore>,
    prov: Arc<ProvenanceStore>,
    cfg: &LocalConfig,
) -> Result<RunReport, EngineError> {
    def.validate().map_err(EngineError::Invalid)?;
    if let Some(d) = cfg.durability {
        prov.set_durability(d);
    }
    let pool = Pool::with_telemetry(cfg.threads, cfg.telemetry.clone());
    let wkf = prov.begin_workflow(&def.tag, &def.description, &def.expdir);
    let t0 = Instant::now();

    // observability plane: structured lifecycle events, plus an optional
    // std-only HTTP endpoint serving /metrics, /snapshot.json, /healthz and
    // /events for the duration of the run. Observation never perturbs
    // results: the plane only reads engine state.
    let evlog = cfg.events.clone();
    let obs = cfg.metrics_addr.as_ref().map(|_| {
        let o = ObsState::new(cfg.telemetry.clone(), evlog.clone().unwrap_or_default());
        o.set_health(HealthView {
            phase: "running".to_string(),
            fleet: cfg.threads,
            workers: Vec::new(),
        });
        o
    });
    let server = match (&cfg.metrics_addr, &obs) {
        (Some(addr), Some(o)) => {
            let s = ObsServer::start(addr, o.clone()).map_err(|e| {
                EngineError::Invalid(format!("cannot bind metrics endpoint {addr}: {e}"))
            })?;
            if let Some(b) = &cfg.metrics_bound {
                b.set(s.addr());
            }
            Some(s)
        }
        _ => None,
    };
    if let Some(ev) = &evlog {
        ev.emit(
            0.0,
            Severity::Info,
            "run_started",
            &[
                ("workflow", def.tag.clone()),
                ("backend", "local".to_string()),
                ("workers", cfg.threads.to_string()),
            ],
        );
    }

    let bridge = cfg.steering_tick.map(|tick| SteeringBridge::start(Arc::clone(&prov), t0, tick));
    cfg.telemetry.name_current_track("dispatcher");
    let run_start = cfg.telemetry.now_ns();
    let result = match cfg.mode {
        DispatchMode::Barrier => {
            run_barrier(def, input, files, Arc::clone(&prov), cfg, &pool, wkf, t0, &bridge)
        }
        DispatchMode::Pipelined => {
            run_pipelined(def, input, files, Arc::clone(&prov), cfg, &pool, wkf, t0, &bridge)
        }
    };
    if let Some(b) = &bridge {
        b.stop();
    }
    // join the workers *before* snapshotting: Pool::drop flushes its
    // lifetime counters (parks, steals, …) into the sink
    drop(pool);
    // the run's final rows must survive a crash after run_local returns
    prov.flush_wal();
    if cfg.telemetry.is_enabled() {
        cfg.telemetry.record_span_at(
            "run",
            &def.tag,
            None,
            run_start,
            cfg.telemetry.now_ns(),
            Some(&format!("mode={:?}", cfg.mode)),
        );
    }
    if let Some(ev) = &evlog {
        match &result {
            Ok(r) => ev.emit(
                t0.elapsed().as_secs_f64(),
                Severity::Info,
                "run_finished",
                &[
                    ("workflow", def.tag.clone()),
                    ("finished", r.finished.to_string()),
                    ("failed_attempts", r.failed_attempts.to_string()),
                    ("aborted", r.aborted.to_string()),
                    ("blacklisted", r.blacklisted.to_string()),
                ],
            ),
            Err(e) => ev.emit(
                t0.elapsed().as_secs_f64(),
                Severity::Error,
                "run_error",
                &[("workflow", def.tag.clone()), ("error", e.to_string())],
            ),
        }
    }
    if let Some(o) = &obs {
        let mut view = o.health.lock().expect("health view poisoned");
        view.phase = "done".to_string();
    }
    if let Some(s) = server {
        s.shutdown();
    }
    result.map(|mut report| {
        report.metrics = cfg.telemetry.snapshot();
        report
    })
}

/// Stage-at-a-time executor: one `execute_all` barrier per activity.
#[allow(clippy::too_many_arguments)]
fn run_barrier(
    def: &WorkflowDef,
    input: Relation,
    files: Arc<FileStore>,
    prov: Arc<ProvenanceStore>,
    cfg: &LocalConfig,
    pool: &Pool,
    wkf: WorkflowId,
    t0: Instant,
    bridge: &Option<Arc<SteeringBridge>>,
) -> Result<RunReport, EngineError> {
    let mut outputs: Vec<Relation> = Vec::with_capacity(def.activities.len());
    let mut report = RunReport {
        workflow: wkf,
        total_seconds: 0.0,
        finished: 0,
        failed_attempts: 0,
        aborted: 0,
        blacklisted: 0,
        resumed: 0,
        outputs: Vec::new(),
        metrics: None,
        scale_events: Vec::new(),
        peak_workers: cfg.threads,
        fleet_cost_usd: None,
    };

    for (i, activity) in def.activities.iter().enumerate() {
        let actx = Arc::new(ActivityCtx::build(def, i, wkf, &files, &prov, cfg, t0, bridge));
        let input_rel = def.input_for(i, &input, &outputs);
        let parts = activity.operator.partition(&input_rel);

        let jobs: Vec<_> = parts
            .into_iter()
            .enumerate()
            .map(|(j, part)| {
                let actx = Arc::clone(&actx);
                move || actx.run_activation(&part, j)
            })
            .collect();

        // the barrier executor pays one stage-wide wait per activity: the
        // dispatcher blocks here until every activation of stage i is done
        let stage_span =
            cfg.telemetry.span_detail("barrier", &format!("stage.{}", activity.tag), || {
                format!("activity={i}")
            });
        let results = pool.execute_all(jobs);
        drop(stage_span);
        let mut rel = Relation { columns: activity.output_columns.clone(), tuples: Vec::new() };
        for r in results {
            tally(&mut report, &r);
            for t in r.tuples {
                assert_eq!(
                    t.len(),
                    rel.columns.len(),
                    "activity {} produced tuple of wrong arity",
                    activity.tag
                );
                rel.tuples.push(t);
            }
        }
        outputs.push(rel);
    }

    report.outputs = outputs;
    report.total_seconds = t0.elapsed().as_secs_f64();
    Ok(report)
}

/// Message a finished activation sends back to the dispatcher; `Err` holds
/// a panic payload to re-raise (so a panicking activity function behaves
/// identically to the barrier executor).
type Completion = (usize, std::thread::Result<ActOutcome>);

/// Ready-driven dataflow executor (see module docs): activations are
/// submitted the moment their input exists, with per-activity barriers only
/// for Reduce/queries. The scheduling state machine lives in
/// [`crate::dispatch::PipelineState`] (shared with the distributed master);
/// this function only binds its [`SubmitReq`]s to the local pool, with the
/// mpsc completion channel playing the event queue.
///
/// [`SubmitReq`]: crate::dispatch::SubmitReq
#[allow(clippy::too_many_arguments)]
fn run_pipelined(
    def: &WorkflowDef,
    input: Relation,
    files: Arc<FileStore>,
    prov: Arc<ProvenanceStore>,
    cfg: &LocalConfig,
    pool: &Pool,
    wkf: WorkflowId,
    t0: Instant,
    bridge: &Option<Arc<SteeringBridge>>,
) -> Result<RunReport, EngineError> {
    let (tx, rx) = mpsc::channel::<Completion>();
    let ctxs: Vec<Arc<ActivityCtx>> = (0..def.activities.len())
        .map(|i| Arc::new(ActivityCtx::build(def, i, wkf, &files, &prov, cfg, t0, bridge)))
        .collect();

    let submit = |req: crate::dispatch::SubmitReq| {
        let ctx = Arc::clone(&ctxs[req.activity]);
        let tx = tx.clone();
        pool.spawn(move || {
            let out =
                catch_unwind(AssertUnwindSafe(|| ctx.run_activation(&req.part, req.part_index)));
            // the dispatcher owns the receiver for the whole run, so the
            // send only fails if run_local is already unwinding
            let _ = tx.send((req.activity, out));
        });
    };

    let mut report = RunReport {
        workflow: wkf,
        total_seconds: 0.0,
        finished: 0,
        failed_attempts: 0,
        aborted: 0,
        blacklisted: 0,
        resumed: 0,
        outputs: Vec::new(),
        metrics: None,
        scale_events: Vec::new(),
        peak_workers: cfg.threads,
        fleet_cost_usd: None,
    };

    let (mut pipe, seeds) =
        PipelineState::new(Arc::new(def.clone()), &input, cfg.telemetry.clone());
    for req in seeds {
        submit(req);
    }
    // event loop: consume completions until every activity closes. The
    // invariant that keeps `recv` live: the topologically first non-closed
    // activity always has `input_done` and therefore in-flight work (or it
    // would have closed already).
    while !pipe.done() {
        let (i, outcome) = rx.recv().expect("dispatcher holds a sender");
        let outcome = match outcome {
            Ok(o) => o,
            Err(payload) => resume_unwind(payload),
        };
        tally(&mut report, &outcome);
        for req in pipe.on_completion(i, &outcome.tuples) {
            submit(req);
        }
    }

    report.outputs = pipe.into_outputs();
    report.total_seconds = t0.elapsed().as_secs_f64();
    Ok(report)
}

pub(crate) fn tally(report: &mut RunReport, out: &ActOutcome) {
    report.finished += out.finished;
    report.failed_attempts += out.failed_attempts;
    report.aborted += out.aborted;
    report.blacklisted += out.blacklisted;
    report.resumed += out.resumed;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::Activity;
    use provenance::Value;

    fn double_fn() -> crate::workflow::ActivityFn {
        Arc::new(|tuples, _ctx| {
            Ok(tuples
                .iter()
                .map(|t| {
                    let n = t[0].as_f64().unwrap_or(0.0);
                    vec![Value::Float(n * 2.0)]
                })
                .collect())
        })
    }

    fn input(n: i64) -> Relation {
        let mut r = Relation::new(&["x"]);
        for k in 0..n {
            r.push(vec![Value::Int(k)]);
        }
        r
    }

    fn simple_workflow() -> WorkflowDef {
        WorkflowDef {
            tag: "test".into(),
            description: "test wf".into(),
            expdir: "/exp".into(),
            activities: vec![
                Activity::map("double", &["x"], double_fn()),
                Activity::map("double2", &["x"], double_fn()),
            ],
            deps: vec![vec![], vec![0]],
        }
    }

    #[test]
    fn chain_executes_and_collects() {
        let report = run_local_impl(
            &simple_workflow(),
            input(10),
            Arc::new(FileStore::new()),
            Arc::new(ProvenanceStore::new()),
            &LocalConfig::default(),
        )
        .unwrap();
        assert_eq!(report.finished, 20); // 10 activations × 2 activities
        assert_eq!(report.final_output().len(), 10);
        let mut got: Vec<f64> =
            report.final_output().tuples.iter().map(|t| t[0].as_f64().unwrap()).collect();
        got.sort_by(f64::total_cmp);
        assert_eq!(got, (0..10).map(|k| k as f64 * 4.0).collect::<Vec<_>>());
    }

    #[test]
    fn provenance_rows_recorded() {
        let prov = Arc::new(ProvenanceStore::new());
        let _ = run_local_impl(
            &simple_workflow(),
            input(5),
            Arc::new(FileStore::new()),
            Arc::clone(&prov),
            &LocalConfig::default(),
        )
        .unwrap();
        let r = prov
            .query_rows("SELECT count(*) FROM hactivation WHERE status = 'FINISHED'", &[])
            .unwrap();
        assert_eq!(r.cell(0, 0), &Value::Int(10));
        let acts = prov.query_rows("SELECT tag FROM hactivity ORDER BY actid", &[]).unwrap();
        assert_eq!(acts.len(), 2);
        assert_eq!(acts.cell(0, 0), &Value::from("double"));
    }

    #[test]
    fn files_and_params_recorded() {
        let func: crate::workflow::ActivityFn = Arc::new(|tuples, ctx| {
            ctx.write_file("result.dlg", "DOCKED blah");
            ctx.record_param("feb", Some(-6.5), None);
            Ok(tuples.to_vec())
        });
        let wf = WorkflowDef {
            tag: "t".into(),
            description: String::new(),
            expdir: "/root/exp".into(),
            activities: vec![Activity::map("dock", &["x"], func)],
            deps: vec![vec![]],
        };
        let prov = Arc::new(ProvenanceStore::new());
        let files = Arc::new(FileStore::new());
        let _ = run_local_impl(
            &wf,
            input(3),
            Arc::clone(&files),
            Arc::clone(&prov),
            &LocalConfig::default(),
        )
        .unwrap();
        let r =
            prov.query_rows("SELECT fname, fdir FROM hfile WHERE fname LIKE '%.dlg'", &[]).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.cell(0, 0), &Value::from("result.dlg"));
        assert!(r.cell(0, 1).to_string().starts_with("/root/exp/dock/"));
        let p = prov
            .query_rows("SELECT avg(pvalue_num) FROM hparameter WHERE pname = 'feb'", &[])
            .unwrap();
        assert_eq!(p.cell(0, 0), &Value::Float(-6.5));
        assert_eq!(files.len(), 3);
    }

    #[test]
    fn failures_are_retried() {
        let cfg = LocalConfig {
            threads: 4,
            failures: FailureModel {
                fail_rate: 0.3,
                hang_rate: 0.0,
                fail_at_fraction: 0.5,
                seed: 5,
            },
            max_retries: 10,
            ..Default::default()
        };
        let prov = Arc::new(ProvenanceStore::new());
        let report = run_local_impl(
            &simple_workflow(),
            input(30),
            Arc::new(FileStore::new()),
            Arc::clone(&prov),
            &cfg,
        )
        .unwrap();
        // with generous retries every activation eventually finishes
        assert_eq!(report.finished, 60);
        assert!(report.failed_attempts > 0, "the 30% fail rate must bite");
        let failed = prov
            .query_rows("SELECT count(*) FROM hactivation WHERE status = 'FAILED'", &[])
            .unwrap();
        assert_eq!(
            failed.cell(0, 0),
            &Value::Int(report.failed_attempts as i64),
            "provenance sees every failed attempt"
        );
    }

    #[test]
    fn hangs_are_aborted_and_dropped() {
        let cfg = LocalConfig {
            threads: 2,
            failures: FailureModel {
                fail_rate: 0.0,
                hang_rate: 0.5,
                fail_at_fraction: 0.5,
                seed: 2,
            },
            max_retries: 1,
            ..Default::default()
        };
        let report = run_local_impl(
            &simple_workflow(),
            input(40),
            Arc::new(FileStore::new()),
            Arc::new(ProvenanceStore::new()),
            &cfg,
        )
        .unwrap();
        assert!(report.aborted > 5, "half the activations should hang");
        // dropped tuples shrink downstream relations
        assert!(report.final_output().len() < 40);
        assert_eq!(report.finished + report.aborted, 40 + report.outputs[0].len());
    }

    #[test]
    fn blacklist_skips_execution() {
        let mut wf = simple_workflow();
        wf.activities[0] = wf.activities[0]
            .clone()
            .with_blacklist(Arc::new(|t| matches!(t[0], Value::Int(k) if k % 2 == 0)));
        let prov = Arc::new(ProvenanceStore::new());
        let report = run_local_impl(
            &wf,
            input(10),
            Arc::new(FileStore::new()),
            Arc::clone(&prov),
            &LocalConfig::default(),
        )
        .unwrap();
        assert_eq!(report.blacklisted, 5);
        assert_eq!(report.final_output().len(), 5);
        let r = prov
            .query_rows("SELECT count(*) FROM hactivation WHERE status = 'BLACKLISTED'", &[])
            .unwrap();
        assert_eq!(r.cell(0, 0), &Value::Int(5));
    }

    #[test]
    fn invalid_workflow_rejected() {
        let mut wf = simple_workflow();
        wf.deps = vec![vec![], vec![5]];
        let err = run_local_impl(
            &wf,
            input(1),
            Arc::new(FileStore::new()),
            Arc::new(ProvenanceStore::new()),
            &LocalConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Invalid(_)));
    }

    #[test]
    fn domain_errors_count_as_failures() {
        let func: crate::workflow::ActivityFn =
            Arc::new(|_t, _c| Err(crate::workflow::ActivityError("bad input".into())));
        let wf = WorkflowDef {
            tag: "t".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![Activity::map("always_fails", &["x"], func)],
            deps: vec![vec![]],
        };
        let cfg = LocalConfig { max_retries: 2, ..Default::default() };
        let report = run_local_impl(
            &wf,
            input(4),
            Arc::new(FileStore::new()),
            Arc::new(ProvenanceStore::new()),
            &cfg,
        )
        .unwrap();
        assert_eq!(report.finished, 0);
        assert_eq!(report.failed_attempts, 4 * 3); // initial + 2 retries each
        assert!(report.final_output().is_empty());
    }

    #[test]
    fn splitmap_reduce_query_pipeline() {
        use crate::algebra::Operator;
        // SplitMap: each input k fans out to k copies
        let split: crate::workflow::ActivityFn = Arc::new(|tuples, _ctx| {
            let n = tuples[0][0].as_f64().unwrap_or(0.0) as i64;
            Ok((0..n).map(|_| vec![Value::Int(n), Value::Int(1)]).collect())
        });
        // Reduce by the key column: sum the counts
        let reduce: crate::workflow::ActivityFn = Arc::new(|tuples, _ctx| {
            let key = tuples[0][0].clone();
            let total: f64 = tuples.iter().filter_map(|t| t[1].as_f64()).sum();
            Ok(vec![vec![key, Value::Float(total)]])
        });
        // SRQuery: one activation totalling everything
        let query: crate::workflow::ActivityFn = Arc::new(|tuples, _ctx| {
            let grand: f64 = tuples.iter().filter_map(|t| t[1].as_f64()).sum();
            Ok(vec![vec![Value::Float(grand)]])
        });
        let wf = WorkflowDef {
            tag: "algebra".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![
                Activity::map("fanout", &["k", "one"], split).with_operator(Operator::SplitMap),
                Activity::map("sum_by_k", &["k", "total"], reduce)
                    .with_operator(Operator::Reduce { keys: vec!["k".into()] }),
                Activity::map("grand_total", &["grand"], query).with_operator(Operator::SRQuery),
            ],
            deps: vec![vec![], vec![0], vec![1]],
        };
        let mut rel = Relation::new(&["k"]);
        for k in [2i64, 3, 4] {
            rel.push(vec![Value::Int(k)]);
        }
        let prov = Arc::new(ProvenanceStore::new());
        let report = run_local_impl(
            &wf,
            rel,
            Arc::new(FileStore::new()),
            Arc::clone(&prov),
            &LocalConfig::default(),
        )
        .unwrap();
        // fanout: 3 activations producing 2+3+4 = 9 tuples
        assert_eq!(report.outputs[0].len(), 9);
        // reduce: 3 groups (k = 2, 3, 4), each summing to k
        assert_eq!(report.outputs[1].len(), 3);
        for t in &report.outputs[1].tuples {
            assert_eq!(t[0].as_f64(), t[1].as_f64(), "group sum equals its key");
        }
        // SRQuery: one tuple with the grand total 9
        assert_eq!(report.final_output().len(), 1);
        assert_eq!(report.final_output().tuples[0][0].as_f64(), Some(9.0));
        // activation counts in provenance: 3 + 3 + 1
        let q = prov
            .query_rows(
                "SELECT a.tag, count(*) FROM hactivity a, hactivation t \
                 WHERE a.actid = t.actid GROUP BY a.tag ORDER BY a.tag",
                &[],
            )
            .unwrap();
        let counts: Vec<(String, f64)> =
            q.rows.iter().map(|r| (r[0].to_string(), r[1].as_f64().unwrap())).collect();
        assert_eq!(
            counts,
            vec![
                ("fanout".to_string(), 3.0),
                ("grand_total".to_string(), 1.0),
                ("sum_by_k".to_string(), 3.0)
            ]
        );
    }

    #[test]
    fn resume_skips_finished_activations() {
        // first run: every activation fails permanently for half the tuples
        let func_calls = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let fc = Arc::clone(&func_calls);
        let func: crate::workflow::ActivityFn = Arc::new(move |tuples, _ctx| {
            fc.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(tuples.to_vec())
        });
        let wf = WorkflowDef {
            tag: "resumable".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![Activity::map("work", &["x"], func)],
            deps: vec![vec![]],
        };
        let prov = Arc::new(ProvenanceStore::new());
        let files = Arc::new(FileStore::new());
        // run 1: heavy failures, no retries -> some tuples dropped
        let cfg1 = LocalConfig {
            threads: 2,
            failures: FailureModel {
                fail_rate: 0.5,
                hang_rate: 0.0,
                fail_at_fraction: 0.5,
                seed: 9,
            },
            max_retries: 0,
            resume_from: None,
            ..Default::default()
        };
        let r1 =
            run_local_impl(&wf, input(20), Arc::clone(&files), Arc::clone(&prov), &cfg1).unwrap();
        assert!(r1.finished < 20, "some activations must drop");
        assert!(r1.failed_attempts > 0);
        let calls_after_run1 = func_calls.load(std::sync::atomic::Ordering::SeqCst);

        // run 2: resume from run 1 with failures off — only the dropped
        // activations execute
        let cfg2 = LocalConfig {
            threads: 2,
            failures: FailureModel::none(),
            max_retries: 0,
            resume_from: Some(r1.workflow),
            ..Default::default()
        };
        let r2 =
            run_local_impl(&wf, input(20), Arc::clone(&files), Arc::clone(&prov), &cfg2).unwrap();
        assert_eq!(r2.resumed, r1.finished, "every finished activation is reused");
        assert_eq!(r2.finished + r2.resumed, 20, "the full relation is recovered");
        assert_eq!(r2.final_output().len(), 20);
        let calls_after_run2 = func_calls.load(std::sync::atomic::Ordering::SeqCst);
        assert_eq!(
            calls_after_run2 - calls_after_run1,
            20 - r1.finished,
            "the function only runs for previously-dropped tuples"
        );
    }

    #[test]
    fn resume_preserves_tuple_values() {
        let wf = simple_workflow();
        let prov = Arc::new(ProvenanceStore::new());
        let files = Arc::new(FileStore::new());
        let r1 = run_local_impl(
            &wf,
            input(5),
            Arc::clone(&files),
            Arc::clone(&prov),
            &LocalConfig::default(),
        )
        .unwrap();
        let cfg2 = LocalConfig { resume_from: Some(r1.workflow), ..Default::default() };
        let r2 = run_local_impl(&wf, input(5), files, Arc::clone(&prov), &cfg2).unwrap();
        assert_eq!(r2.resumed, 10, "both activities fully resumed");
        assert_eq!(r2.finished, 0);
        let mut a: Vec<f64> =
            r1.final_output().tuples.iter().map(|t| t[0].as_f64().unwrap()).collect();
        let mut b: Vec<f64> =
            r2.final_output().tuples.iter().map(|t| t[0].as_f64().unwrap()).collect();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        assert_eq!(a, b, "resumed relation is value-identical");
    }

    #[test]
    fn split_path_helper() {
        assert_eq!(split_path("/a/b/c.dlg"), ("/a/b/", "c.dlg"));
        assert_eq!(split_path("file.txt"), ("", "file.txt"));
    }

    // ---- pipelined vs barrier parity & pipelining behavior ----

    /// Tuples of a relation, sorted into a canonical order for comparison
    /// (pipelined mode collects outputs in completion order).
    fn sorted_tuples(rel: &Relation) -> Vec<String> {
        let mut v: Vec<String> = rel
            .tuples
            .iter()
            .map(|t| t.iter().map(|x| x.to_string()).collect::<Vec<_>>().join("|"))
            .collect();
        v.sort();
        v
    }

    fn status_counts(prov: &ProvenanceStore, wkf: WorkflowId) -> Vec<(String, i64)> {
        let q = prov
            .query_rows(
                "SELECT status, count(*) FROM hactivation \
                 GROUP BY status ORDER BY status",
                &[],
            )
            .unwrap();
        let _ = wkf;
        q.rows.iter().map(|r| (r[0].to_string(), r[1].as_f64().unwrap() as i64)).collect()
    }

    /// A messy workflow: fan-out, routing, blacklist, reduce, query — the
    /// whole algebra — run under both dispatch modes with failures and
    /// hangs on. Every aggregate the engine reports must match.
    #[test]
    fn pipelined_matches_barrier_semantics() {
        use crate::algebra::Operator;
        let mk_wf = || {
            let split: crate::workflow::ActivityFn = Arc::new(|tuples, _ctx| {
                let n = tuples[0][0].as_f64().unwrap_or(0.0) as i64;
                Ok((0..(n % 3) + 1).map(|j| vec![Value::Int(n), Value::Int(j)]).collect())
            });
            let work: crate::workflow::ActivityFn = Arc::new(|tuples, ctx| {
                ctx.write_file("out.txt", "x");
                Ok(tuples
                    .iter()
                    .map(|t| vec![t[0].clone(), Value::Float(t[1].as_f64().unwrap_or(0.0) * 10.0)])
                    .collect())
            });
            let reduce: crate::workflow::ActivityFn = Arc::new(|tuples, _ctx| {
                let key = tuples[0][0].clone();
                let total: f64 = tuples.iter().filter_map(|t| t[1].as_f64()).sum();
                Ok(vec![vec![key, Value::Float(total)]])
            });
            let query: crate::workflow::ActivityFn = Arc::new(|tuples, _ctx| {
                let grand: f64 = tuples.iter().filter_map(|t| t[1].as_f64()).sum();
                Ok(vec![vec![Value::Float(grand)]])
            });
            WorkflowDef {
                tag: "parity".into(),
                description: String::new(),
                expdir: "/e".into(),
                activities: vec![
                    Activity::map("fanout", &["k", "j"], split).with_operator(Operator::SplitMap),
                    Activity::map("work", &["k", "v"], work)
                        .with_blacklist(Arc::new(|t| matches!(t[0], Value::Int(k) if k == 7))),
                    Activity::map("sum_k", &["k", "total"], reduce)
                        .with_operator(Operator::Reduce { keys: vec!["k".into()] }),
                    Activity::map("grand", &["grand"], query).with_operator(Operator::SRQuery),
                ],
                deps: vec![vec![], vec![0], vec![1], vec![2]],
            }
        };
        let failures =
            FailureModel { fail_rate: 0.15, hang_rate: 0.05, fail_at_fraction: 0.5, seed: 42 };
        let run = |mode: DispatchMode| {
            let prov = Arc::new(ProvenanceStore::new());
            let cfg = LocalConfig {
                threads: 4,
                failures,
                max_retries: 2,
                resume_from: None,
                mode,
                ..Default::default()
            };
            let rep = run_local_impl(
                &mk_wf(),
                input(25),
                Arc::new(FileStore::new()),
                Arc::clone(&prov),
                &cfg,
            )
            .unwrap();
            (rep, prov)
        };
        let (barrier, bprov) = run(DispatchMode::Barrier);
        let (pipelined, pprov) = run(DispatchMode::Pipelined);

        assert_eq!(pipelined.finished, barrier.finished);
        assert_eq!(pipelined.failed_attempts, barrier.failed_attempts);
        assert_eq!(pipelined.aborted, barrier.aborted);
        assert_eq!(pipelined.blacklisted, barrier.blacklisted);
        assert_eq!(pipelined.resumed, barrier.resumed);
        assert!(
            barrier.failed_attempts > 0 && barrier.aborted > 0 && barrier.blacklisted > 0,
            "the parity scenario must actually exercise failures/hangs/blacklist"
        );
        assert_eq!(pipelined.outputs.len(), barrier.outputs.len());
        for (p, b) in pipelined.outputs.iter().zip(&barrier.outputs) {
            assert_eq!(sorted_tuples(p), sorted_tuples(b), "per-activity relations match");
        }
        assert_eq!(
            status_counts(&pprov, pipelined.workflow),
            status_counts(&bprov, barrier.workflow),
            "identical provenance row counts per status"
        );
    }

    /// Resume across dispatch modes: a barrier run's provenance can seed a
    /// pipelined resume and vice versa (pair keys are mode-independent).
    #[test]
    fn pipelined_resumes_from_barrier_run() {
        let wf = simple_workflow();
        let prov = Arc::new(ProvenanceStore::new());
        let files = Arc::new(FileStore::new());
        let cfg1 = LocalConfig {
            threads: 2,
            failures: FailureModel {
                fail_rate: 0.5,
                hang_rate: 0.0,
                fail_at_fraction: 0.5,
                seed: 9,
            },
            max_retries: 0,
            resume_from: None,
            mode: DispatchMode::Barrier,
            ..Default::default()
        };
        let r1 =
            run_local_impl(&wf, input(20), Arc::clone(&files), Arc::clone(&prov), &cfg1).unwrap();
        assert!(r1.finished < 40, "some activations must drop");
        let cfg2 = LocalConfig {
            threads: 2,
            failures: FailureModel::none(),
            max_retries: 0,
            resume_from: Some(r1.workflow),
            mode: DispatchMode::Pipelined,
            ..Default::default()
        };
        let r2 = run_local_impl(&wf, input(20), files, Arc::clone(&prov), &cfg2).unwrap();
        assert_eq!(r2.resumed, r1.finished, "every finished activation is reused");
        assert_eq!(r2.final_output().len(), 20, "the full relation is recovered");
    }

    /// The point of the tentpole: an activity-1 straggler must not stop
    /// other pairs from reaching activity 2.
    #[test]
    fn straggler_does_not_block_downstream() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let t0 = Instant::now();
        let slow: crate::workflow::ActivityFn = Arc::new(|tuples, _ctx| {
            if tuples[0][0] == Value::Int(0) {
                std::thread::sleep(std::time::Duration::from_millis(400));
            } else {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Ok(tuples.to_vec())
        });
        let reached = Arc::new(AtomicUsize::new(0));
        let first_entry_ms = Arc::new(AtomicUsize::new(usize::MAX));
        let (rc, fe) = (Arc::clone(&reached), Arc::clone(&first_entry_ms));
        let second: crate::workflow::ActivityFn = Arc::new(move |tuples, _ctx| {
            rc.fetch_add(1, Ordering::SeqCst);
            fe.fetch_min(t0.elapsed().as_millis() as usize, Ordering::SeqCst);
            Ok(tuples.to_vec())
        });
        let wf = WorkflowDef {
            tag: "straggler".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![
                Activity::map("slow_stage", &["x"], slow),
                Activity::map("fast_stage", &["x"], second),
            ],
            deps: vec![vec![], vec![0]],
        };
        let cfg = LocalConfig { threads: 4, mode: DispatchMode::Pipelined, ..Default::default() };
        let report = run_local_impl(
            &wf,
            input(8),
            Arc::new(FileStore::new()),
            Arc::new(ProvenanceStore::new()),
            &cfg,
        )
        .unwrap();
        assert_eq!(report.finished, 16);
        // pair 0 held activity 1 for ~400 ms; the other 7 pairs must have
        // entered activity 2 long before that
        let first = first_entry_ms.load(Ordering::SeqCst);
        assert!(
            first < 300,
            "first pair reached activity 2 after {first} ms — pipelining is not happening"
        );
    }

    /// Same workload under the barrier executor for contrast: activity 2
    /// cannot start until the straggler clears activity 1.
    #[test]
    fn barrier_mode_does_block_downstream() {
        let t0 = Instant::now();
        let slow: crate::workflow::ActivityFn = Arc::new(|tuples, _ctx| {
            if tuples[0][0] == Value::Int(0) {
                std::thread::sleep(std::time::Duration::from_millis(250));
            }
            Ok(tuples.to_vec())
        });
        let first_entry_ms = Arc::new(std::sync::atomic::AtomicUsize::new(usize::MAX));
        let fe = Arc::clone(&first_entry_ms);
        let second: crate::workflow::ActivityFn = Arc::new(move |tuples, _ctx| {
            fe.fetch_min(t0.elapsed().as_millis() as usize, std::sync::atomic::Ordering::SeqCst);
            Ok(tuples.to_vec())
        });
        let wf = WorkflowDef {
            tag: "straggler_barrier".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![
                Activity::map("slow_stage", &["x"], slow),
                Activity::map("fast_stage", &["x"], second),
            ],
            deps: vec![vec![], vec![0]],
        };
        let cfg = LocalConfig { threads: 4, mode: DispatchMode::Barrier, ..Default::default() };
        let _ = run_local_impl(
            &wf,
            input(8),
            Arc::new(FileStore::new()),
            Arc::new(ProvenanceStore::new()),
            &cfg,
        )
        .unwrap();
        let first = first_entry_ms.load(std::sync::atomic::Ordering::SeqCst);
        assert!(
            first >= 250,
            "barrier mode entered activity 2 after only {first} ms — barrier missing"
        );
    }

    /// Diamond dependencies (two upstreams into one consumer) with routing
    /// stay correct under streaming delivery.
    #[test]
    fn diamond_with_route_filter_parity() {
        let ident: crate::workflow::ActivityFn = Arc::new(|t, _| Ok(t.to_vec()));
        let mk = || WorkflowDef {
            tag: "diamond".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![
                Activity::map("src_a", &["x"], Arc::clone(&ident)),
                Activity::map("src_b", &["x"], Arc::clone(&ident)),
                Activity::map("join", &["x"], Arc::clone(&ident)).with_route("x", Value::Int(3)),
            ],
            deps: vec![vec![], vec![], vec![0, 1]],
        };
        let run = |mode| {
            run_local_impl(
                &mk(),
                input(6),
                Arc::new(FileStore::new()),
                Arc::new(ProvenanceStore::new()),
                &LocalConfig { mode, ..Default::default() },
            )
            .unwrap()
        };
        let b = run(DispatchMode::Barrier);
        let p = run(DispatchMode::Pipelined);
        // both sources emit 0..6; the route keeps only x == 3, twice
        assert_eq!(b.final_output().len(), 2);
        assert_eq!(sorted_tuples(p.final_output()), sorted_tuples(b.final_output()));
        assert_eq!(p.finished, b.finished);
    }

    // ---- telemetry & live steering ----

    /// Split a Chrome-trace string into its event objects (each starts with
    /// `{"ph":`) — enough structure for the assertions below without a JSON
    /// parser in the test.
    fn trace_events(trace: &str) -> Vec<&str> {
        let starts: Vec<usize> = trace.match_indices("{\"ph\":").map(|(i, _)| i).collect();
        starts
            .iter()
            .enumerate()
            .map(|(k, &s)| {
                let e = starts.get(k + 1).copied().unwrap_or(trace.len());
                &trace[s..e]
            })
            .collect()
    }

    fn event_field_u64(ev: &str, key: &str) -> Option<u64> {
        let i = ev.find(key)? + key.len();
        let rest = &ev[i..];
        let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    /// Acceptance: a pipelined run with a sink attached exports valid
    /// Chrome-trace JSON whose activation spans sit (parent-linked) on the
    /// worker-thread tracks, and its report carries a metrics snapshot.
    #[test]
    fn pipelined_run_exports_chrome_trace_with_nested_activation_spans() {
        let tel = Telemetry::attached();
        let cfg = LocalConfig {
            threads: 2,
            telemetry: tel.clone(),
            mode: DispatchMode::Pipelined,
            ..Default::default()
        };
        let report = run_local_impl(
            &simple_workflow(),
            input(6),
            Arc::new(FileStore::new()),
            Arc::new(ProvenanceStore::new()),
            &cfg,
        )
        .unwrap();
        assert_eq!(report.finished, 12);

        // the metrics snapshot rode along on the report
        let snap = report.metrics.as_ref().expect("sink attached => metrics present");
        let h = snap.histogram("activation.double").expect("per-activity histogram");
        assert_eq!(h.count, 6);
        assert!(h.p95_s >= h.p50_s);
        assert_eq!(snap.counter("pool.submitted"), Some(12));
        assert_eq!(snap.counter("pool.completed"), Some(12));
        assert!(snap.histogram("pool.queue_wait").is_some(), "queue-wait histogram captured");

        let trace = tel.export_chrome_trace().unwrap();
        telemetry::json::validate(&trace).unwrap_or_else(|off| {
            panic!("invalid trace JSON at byte {off}: …{}…", &trace[off.saturating_sub(40)..off])
        });

        let evs = trace_events(&trace);
        let worker_tids: std::collections::HashSet<u64> = evs
            .iter()
            .filter(|e| e.starts_with("{\"ph\":\"M\"") && e.contains("cumulus-worker-"))
            .filter_map(|e| event_field_u64(e, "\"tid\":"))
            .collect();
        assert_eq!(worker_tids.len(), 2, "one named track per worker thread");
        let nested_activations = evs
            .iter()
            .filter(|e| e.starts_with("{\"ph\":\"X\"") && e.contains("\"cat\":\"activation\""))
            .filter(|e| {
                event_field_u64(e, "\"tid\":").is_some_and(|tid| worker_tids.contains(&tid))
            })
            .filter(|e| e.contains("\"parent\":"))
            .count();
        assert_eq!(
            nested_activations, 12,
            "every activation span lies on a worker track, nested under its pool job span"
        );
    }

    /// Acceptance: with `steering_tick` set, `steering::status_summary`
    /// answers *during* the run — activations observe other activations as
    /// RUNNING — and no RUNNING rows survive the run.
    #[test]
    fn steering_tick_exposes_running_rows_mid_run() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let prov = Arc::new(ProvenanceStore::new());
        let max_running_seen = Arc::new(AtomicUsize::new(0));
        let (p2, seen) = (Arc::clone(&prov), Arc::clone(&max_running_seen));
        let func: crate::workflow::ActivityFn = Arc::new(move |tuples, _ctx| {
            // give the 10 ms ticker time to publish this attempt, then ask
            // the steering API what is in flight right now
            std::thread::sleep(std::time::Duration::from_millis(60));
            let running = provenance::steering::status_summary(&p2)
                .unwrap()
                .into_iter()
                .find(|s| s.status == "RUNNING")
                .map(|s| s.count as usize)
                .unwrap_or(0);
            seen.fetch_max(running, Ordering::SeqCst);
            Ok(tuples.to_vec())
        });
        let wf = WorkflowDef {
            tag: "live".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![Activity::map("slow", &["x"], func)],
            deps: vec![vec![]],
        };
        let cfg = LocalConfig {
            threads: 4,
            steering_tick: Some(std::time::Duration::from_millis(10)),
            ..Default::default()
        };
        let report =
            run_local_impl(&wf, input(8), Arc::new(FileStore::new()), Arc::clone(&prov), &cfg)
                .unwrap();
        assert_eq!(report.finished, 8);
        assert!(
            max_running_seen.load(Ordering::SeqCst) >= 1,
            "a mid-run steering query must see in-flight activations as RUNNING"
        );
        // every RUNNING row was replaced in place by its terminal row
        let statuses = status_counts(&prov, report.workflow);
        assert_eq!(statuses, vec![("FINISHED".to_string(), 8)]);
    }

    /// Satellite: the steering queries themselves agree across dispatch
    /// modes on a failure-heavy workload.
    #[test]
    fn steering_queries_agree_across_dispatch_modes() {
        use provenance::steering;
        let failures =
            FailureModel { fail_rate: 0.3, hang_rate: 0.05, fail_at_fraction: 0.5, seed: 11 };
        let run = |mode| {
            let prov = Arc::new(ProvenanceStore::new());
            let cfg = LocalConfig {
                threads: 4,
                failures,
                max_retries: 2,
                mode,
                steering_tick: Some(std::time::Duration::from_millis(5)),
                ..Default::default()
            };
            let rep = run_local_impl(
                &simple_workflow(),
                input(30),
                Arc::new(FileStore::new()),
                Arc::clone(&prov),
                &cfg,
            )
            .unwrap();
            (rep, prov)
        };
        let (brep, bprov) = run(DispatchMode::Barrier);
        let (_prep, pprov) = run(DispatchMode::Pipelined);
        assert!(brep.failed_attempts > 0, "scenario must exercise failures");

        let bsum = steering::status_summary(&bprov).unwrap();
        let psum = steering::status_summary(&pprov).unwrap();
        assert_eq!(
            bsum.iter().map(|s| (s.status.clone(), s.count)).collect::<Vec<_>>(),
            psum.iter().map(|s| (s.status.clone(), s.count)).collect::<Vec<_>>(),
            "status_summary must agree across modes (and hold no RUNNING residue)"
        );
        assert!(bsum.iter().all(|s| s.status != "RUNNING"));
        assert_eq!(
            steering::failures_by_activity(&bprov).unwrap(),
            steering::failures_by_activity(&pprov).unwrap(),
            "failures_by_activity must agree across modes"
        );
    }
}
