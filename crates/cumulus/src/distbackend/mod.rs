//! The distributed execution backend: a master–worker engine running one
//! workflow across multiple OS processes on the same machine.
//!
//! The master owns the same ready-driven pipelined dispatcher as the local
//! backend ([`crate::dispatch::PipelineState`]) — but instead of handing
//! activations to a thread pool it shards them over TCP to worker
//! processes, each a [`worker::serve`] loop around the length-prefixed
//! frame protocol in [`proto`] (`mod proto` is private; the frame layout is
//! documented in `DESIGN.md` §10). The master keeps every run honest:
//!
//! * **Backpressure** — at most [`DistConfig::max_in_flight`] activations
//!   are outstanding per worker; the rest wait in a FIFO.
//! * **Liveness** — workers heartbeat on an interval; a silent worker is
//!   declared lost after [`DistConfig::heartbeat_timeout`], its socket cut,
//!   and its in-flight activations reassigned.
//! * **Crash recovery** — a lost activation gets a `FAILED` provenance row
//!   and re-enters the queue with a bumped attempt; after more than
//!   [`DistConfig::reassign_budget`] crashes the input is treated as poison
//!   and `BLACKLISTED`, so one bad tuple cannot wedge the run.
//! * **Provenance parity** — the master writes every row itself in the
//!   exact RUNNING → outputs → FINISHED-last order the local backend uses,
//!   so `provenance::export_provn_canonical` of a local and a distributed
//!   run are byte-identical and `resume_from` stays sound across a master
//!   crash.
//! * **Telemetry lanes** — each worker ships its spans back inside result
//!   frames; the master merges them onto a per-worker track with a clock
//!   offset, so a Chrome trace shows one lane per worker process.
//!
//! Activity functions are Rust closures and cannot cross a process
//! boundary, so both sides rebuild the workflow from a spec name: the
//! master ships [`DistConfig::spec`] in its `Hello`, and the worker
//! resolves it through a [`worker::WorkflowResolver`] registry.

pub mod worker;

pub(crate) mod proto;

use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use cloudsim::{FailureModel, Fate};
use parking_lot::Mutex;
use provenance::{ActivationRecord, ActivationStatus, ProvenanceStore, WorkflowId};
use telemetry::{RemoteSpan, Telemetry};

use crate::algebra::Relation;
use crate::dispatch::{pair_key, split_path, PipelineState, SubmitReq};
use crate::error::CumulusError;
use crate::fleet::{FleetController, FleetSnapshot, ScaleDecision, SchedulerFactory, WorkerView};
use crate::localbackend::{tally, ActOutcome, ActivityCtx, LocalConfig, RunReport};
use crate::obs::{BoundAddr, EventLog, HealthView, ObsServer, ObsState, Severity, WorkerHealth};
use crate::steer::SteeringBridge;
use crate::workflow::{FileStore, WorkflowDef};

use proto::{Frame, WireFate, WireOutcome};

/// Fault-drill hook: sever worker `worker` right after it has been sent its
/// `after_runs`-th `Run` frame (1-based). Spawned workers are killed with
/// SIGKILL mid-activation; in-process workers cut their own socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPlan {
    /// Index of the doomed worker (accept order, 0-based).
    pub worker: usize,
    /// Die upon the Nth dispatched activation (1-based).
    pub after_runs: usize,
}

/// Distributed backend configuration.
///
/// Marked `#[non_exhaustive]`: construct it with [`DistConfig::new`] (or
/// `Default`) and the `with_*` builder methods rather than a struct
/// literal, so new knobs can be added without breaking downstream crates.
#[derive(Clone)]
#[non_exhaustive]
pub struct DistConfig {
    /// Number of worker processes (or in-process worker threads).
    pub workers: usize,
    /// Worker executable and its leading arguments; the master appends
    /// `--connect <addr>`. `None` = run workers as in-process threads via
    /// [`DistConfig::resolver`] (used by tests and single-binary setups).
    pub worker_cmd: Option<(String, Vec<String>)>,
    /// Spec-name resolver for in-process workers (`worker_cmd: None`).
    pub resolver: Option<worker::WorkflowResolver>,
    /// Workflow spec name shipped to workers in the `Hello` frame.
    pub spec: String,
    /// Maximum activations outstanding per worker (backpressure bound).
    pub max_in_flight: usize,
    /// Heartbeat interval requested from workers.
    pub heartbeat: Duration,
    /// A worker silent for longer than this is declared lost.
    pub heartbeat_timeout: Duration,
    /// An activation running longer than this wedges its worker: the
    /// worker is declared lost and the activation reassigned. `None`
    /// disables the hang detector.
    pub activation_timeout: Option<Duration>,
    /// Deadline for all workers to connect and complete the handshake.
    pub connect_timeout: Duration,
    /// Worker crashes an activation survives before being blacklisted as
    /// poison input.
    pub reassign_budget: u32,
    /// Failure injection model (fates roll on the master, exactly like the
    /// local backend, so injected failures are schedule-independent).
    pub failures: FailureModel,
    /// Maximum re-executions of a failed activation before dropping it.
    pub max_retries: u32,
    /// Resume from a prior workflow execution (skip finished activations).
    pub resume_from: Option<WorkflowId>,
    /// Telemetry sink; worker spans merge into it on per-worker tracks.
    pub telemetry: Telemetry,
    /// When set, a [`SteeringBridge`] publishes in-flight activation state
    /// into the provenance store at this interval.
    pub steering_tick: Option<Duration>,
    /// Durability override applied to the provenance store for this run.
    pub durability: Option<provenance::Durability>,
    /// Fault-drill hook (tests / `dist_bench`).
    pub kill_plan: Option<KillPlan>,
    /// Elastic fleet policy. `None` = fixed fleet (today's behavior): the
    /// run starts with [`DistConfig::workers`] workers and keeps them.
    /// With a factory, the controller re-evaluates after every completion
    /// and may spawn new workers mid-run or drain-then-retire idle ones.
    pub scheduler: Option<SchedulerFactory>,
    /// Serve the observability endpoint (`/metrics`, `/snapshot.json`,
    /// `/healthz`, `/events`) on this address for the run's duration.
    /// `"127.0.0.1:0"` binds an ephemeral port readable through
    /// [`DistConfig::metrics_bound`]. `None` = no listener.
    pub metrics_addr: Option<String>,
    /// Resolves to the endpoint's actual bound address once it is
    /// listening (for ephemeral ports).
    pub metrics_bound: Option<BoundAddr>,
    /// Structured event log the run emits into (lifecycle, failures, fleet
    /// scaling, stragglers). `None` = a fresh in-memory ring, still served
    /// from `/events` when the endpoint is up.
    pub events: Option<EventLog>,
    /// Straggler threshold as a multiple of the activity's rolling p95
    /// latency (merged from worker `Stats` frames).
    pub straggler_factor: f64,
    /// Straggler floor: an activation younger than this many milliseconds
    /// is never flagged, whatever the baseline says.
    pub straggler_min_ms: u64,
    /// Test-only: in-process worker index that never heartbeats, to drill
    /// the master's liveness timeout.
    pub(crate) mute_heartbeat: Option<usize>,
}

impl std::fmt::Debug for DistConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistConfig")
            .field("workers", &self.workers)
            .field("worker_cmd", &self.worker_cmd)
            .field("resolver", &self.resolver.as_ref().map(|_| "<resolver>"))
            .field("spec", &self.spec)
            .field("max_in_flight", &self.max_in_flight)
            .field("heartbeat", &self.heartbeat)
            .field("heartbeat_timeout", &self.heartbeat_timeout)
            .field("activation_timeout", &self.activation_timeout)
            .field("connect_timeout", &self.connect_timeout)
            .field("reassign_budget", &self.reassign_budget)
            .field("failures", &self.failures)
            .field("max_retries", &self.max_retries)
            .field("resume_from", &self.resume_from)
            .field("steering_tick", &self.steering_tick)
            .field("durability", &self.durability)
            .field("kill_plan", &self.kill_plan)
            .field("scheduler", &self.scheduler)
            .field("metrics_addr", &self.metrics_addr)
            .field("events", &self.events.as_ref().map(|_| "<event-log>"))
            .field("straggler_factor", &self.straggler_factor)
            .field("straggler_min_ms", &self.straggler_min_ms)
            .finish()
    }
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            workers: 2,
            worker_cmd: None,
            resolver: None,
            spec: String::new(),
            max_in_flight: 4,
            heartbeat: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_secs(3),
            activation_timeout: None,
            connect_timeout: Duration::from_secs(10),
            reassign_budget: 2,
            failures: FailureModel::none(),
            max_retries: 3,
            resume_from: None,
            telemetry: Telemetry::disabled(),
            steering_tick: None,
            durability: None,
            kill_plan: None,
            scheduler: None,
            metrics_addr: None,
            metrics_bound: None,
            events: None,
            straggler_factor: 4.0,
            straggler_min_ms: 30_000,
            mute_heartbeat: None,
        }
    }
}

impl DistConfig {
    /// The default configuration (2 in-process workers, 4 in-flight each,
    /// no failure injection, telemetry disabled).
    pub fn new() -> DistConfig {
        DistConfig::default()
    }

    /// Set the number of workers.
    pub fn with_workers(mut self, workers: usize) -> DistConfig {
        self.workers = workers;
        self
    }

    /// Spawn workers as OS processes running `program` (the master appends
    /// `--connect <addr>` to `args`).
    pub fn with_worker_command(
        mut self,
        program: impl Into<String>,
        args: Vec<String>,
    ) -> DistConfig {
        self.worker_cmd = Some((program.into(), args));
        self
    }

    /// Run workers as in-process threads resolving specs through `resolver`.
    pub fn with_resolver(mut self, resolver: worker::WorkflowResolver) -> DistConfig {
        self.resolver = Some(resolver);
        self
    }

    /// Set the workflow spec name shipped to workers.
    pub fn with_spec(mut self, spec: impl Into<String>) -> DistConfig {
        self.spec = spec.into();
        self
    }

    /// Set the per-worker in-flight bound.
    pub fn with_max_in_flight(mut self, n: usize) -> DistConfig {
        self.max_in_flight = n;
        self
    }

    /// Set the worker heartbeat interval.
    pub fn with_heartbeat(mut self, interval: Duration) -> DistConfig {
        self.heartbeat = interval;
        self
    }

    /// Set the heartbeat liveness timeout.
    pub fn with_heartbeat_timeout(mut self, timeout: Duration) -> DistConfig {
        self.heartbeat_timeout = timeout;
        self
    }

    /// Enable the per-activation hang detector.
    pub fn with_activation_timeout(mut self, timeout: Duration) -> DistConfig {
        self.activation_timeout = Some(timeout);
        self
    }

    /// Set the worker connect/handshake deadline.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> DistConfig {
        self.connect_timeout = timeout;
        self
    }

    /// Set the crash budget before an input is blacklisted as poison.
    pub fn with_reassign_budget(mut self, budget: u32) -> DistConfig {
        self.reassign_budget = budget;
        self
    }

    /// Set the failure-injection model.
    pub fn with_failures(mut self, failures: FailureModel) -> DistConfig {
        self.failures = failures;
        self
    }

    /// Set the per-activation retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> DistConfig {
        self.max_retries = max_retries;
        self
    }

    /// Resume from a prior workflow execution.
    pub fn with_resume_from(mut self, prev: WorkflowId) -> DistConfig {
        self.resume_from = Some(prev);
        self
    }

    /// Attach a telemetry sink.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> DistConfig {
        self.telemetry = telemetry;
        self
    }

    /// Enable the steering bridge at the given flush interval.
    pub fn with_steering_tick(mut self, tick: Duration) -> DistConfig {
        self.steering_tick = Some(tick);
        self
    }

    /// Override the provenance store's durability for this run.
    pub fn with_durability(mut self, durability: provenance::Durability) -> DistConfig {
        self.durability = Some(durability);
        self
    }

    /// Install a fault-drill kill plan.
    pub fn with_kill_plan(mut self, plan: KillPlan) -> DistConfig {
        self.kill_plan = Some(plan);
        self
    }

    /// Drive the fleet elastically with a [`SchedulerFactory`]. The run
    /// still *starts* with [`DistConfig::workers`] workers; the policy
    /// then grows or drains the fleet as completions flow.
    pub fn with_scheduler(mut self, factory: SchedulerFactory) -> DistConfig {
        self.scheduler = Some(factory);
        self
    }

    /// Serve the observability endpoint on `addr` for the run's duration.
    pub fn with_metrics_addr(mut self, addr: impl Into<String>) -> DistConfig {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Publish the endpoint's bound address into `bound` once listening
    /// (pair with a `"127.0.0.1:0"` metrics address).
    pub fn with_metrics_bound(mut self, bound: BoundAddr) -> DistConfig {
        self.metrics_bound = Some(bound);
        self
    }

    /// Emit structured run events into `events` (and its sink file, if it
    /// has one) instead of a private in-memory ring.
    pub fn with_events(mut self, events: EventLog) -> DistConfig {
        self.events = Some(events);
        self
    }

    /// Tune the straggler detector: flag an in-flight activation once it
    /// runs longer than `factor ×` its activity's rolling p95 **and**
    /// longer than `min_ms` milliseconds.
    pub fn with_straggler(mut self, factor: f64, min_ms: u64) -> DistConfig {
        self.straggler_factor = factor;
        self.straggler_min_ms = min_ms;
        self
    }
}

// ------------------------------------------------------------------ master

/// One activation the master wants executed somewhere.
#[derive(Debug, Clone)]
struct Job {
    activity: usize,
    part: Vec<crate::algebra::Tuple>,
    part_index: usize,
    key: String,
    attempt: u32,
    /// Worker crashes this activation has survived (reassignment count).
    crashes: u32,
}

/// Master-side record of a dispatched activation.
struct InFlight {
    job: Job,
    slot: Option<crate::steer::SlotId>,
    /// Provenance clock (seconds since run start) at dispatch.
    start: f64,
    /// Wall clock at dispatch, for the hang detector.
    dispatched: Instant,
    /// Flagged by the straggler detector: running far beyond this
    /// activity's latency baseline (each activation alarms at most once).
    straggler: bool,
}

/// Everything the master tracks about one worker connection.
struct WorkerHandle {
    writer: Arc<Mutex<TcpStream>>,
    alive: bool,
    /// Fleet controller sent `Drain`: no new work; retires on its `Bye`.
    draining: bool,
    /// Left cleanly via drain-then-retire (as opposed to being lost).
    retired: bool,
    child: Option<Child>,
    thread: Option<std::thread::JoinHandle<()>>,
    reader: Option<std::thread::JoinHandle<()>>,
    last_seen: Instant,
    in_flight: HashMap<u64, InFlight>,
    /// Telemetry track (trace lane) for this worker's spans.
    track: u64,
    /// master_clock − worker_clock, for span merging.
    offset_ns: i64,
    runs_sent: usize,
    /// Last heartbeat-reported `(job, elapsed_ms)`: the worker's own view
    /// of its current activation's age (quoted by the hang detector and
    /// cross-checked by the straggler detector).
    last_job: Option<(u64, u64)>,
    /// Handshake completion, for billing and utilisation.
    connected_at: Instant,
    /// Retirement/loss time; `None` while serving.
    ended_at: Option<Instant>,
    /// Wall-clock nanoseconds of completed activations (dispatch → Done),
    /// for utilisation telemetry.
    busy_ns: u64,
}

impl WorkerHandle {
    fn sever(&mut self) {
        self.alive = false;
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
    }
}

enum Event {
    Frame(usize, Frame),
    Gone(usize),
}

/// Run a workflow across worker processes. The distributed analogue of
/// [`crate::run_local`]; prefer [`crate::backend::Backend::run`] on a
/// [`crate::backend::DistBackend`] in new code.
pub fn run_dist(
    def: &WorkflowDef,
    input: Relation,
    files: Arc<FileStore>,
    prov: Arc<ProvenanceStore>,
    cfg: &DistConfig,
) -> Result<RunReport, CumulusError> {
    def.validate().map_err(CumulusError::Invalid)?;
    if cfg.workers == 0 {
        return Err(CumulusError::Invalid("distributed run needs at least one worker".into()));
    }
    if cfg.worker_cmd.is_none() && cfg.resolver.is_none() {
        return Err(CumulusError::Invalid(
            "DistConfig needs a worker command or an in-process resolver".into(),
        ));
    }
    if let Some(d) = cfg.durability {
        prov.set_durability(d);
    }
    let tel = cfg.telemetry.clone();
    // The merged cluster-wide collector workers stream their Stats deltas
    // into: the session's own collector when telemetry is attached, a
    // private one when only the endpoint needs it, otherwise disabled (an
    // absorb into a disabled collector is a no-op, so streaming costs one
    // small frame per heartbeat and nothing else).
    let obs_tel = if tel.is_enabled() {
        tel.clone()
    } else if cfg.metrics_addr.is_some() {
        Telemetry::attached()
    } else {
        Telemetry::disabled()
    };
    let events = cfg.events.clone().unwrap_or_default();
    let obs = ObsState::new(obs_tel, events.clone());
    let server = match &cfg.metrics_addr {
        Some(addr) => {
            let s = ObsServer::start(addr, obs.clone())
                .map_err(|e| CumulusError::Io(format!("metrics listener on {addr}: {e}")))?;
            if let Some(bound) = &cfg.metrics_bound {
                bound.set(s.addr());
            }
            Some(s)
        }
        None => None,
    };
    let wkf = prov.begin_workflow(&def.tag, &def.description, &def.expdir);
    let t0 = Instant::now();
    let bridge = cfg.steering_tick.map(|tick| SteeringBridge::start(Arc::clone(&prov), t0, tick));
    tel.name_current_track("master");
    let run_start = tel.now_ns();
    events.emit(
        0.0,
        Severity::Info,
        "run_started",
        &[
            ("workflow", def.tag.clone()),
            ("backend", "dist".to_string()),
            ("workers", cfg.workers.to_string()),
        ],
    );

    let result = master_loop(def, input, &files, &prov, cfg, wkf, t0, &bridge, &obs);
    match &result {
        Ok(r) => events.emit(
            t0.elapsed().as_secs_f64(),
            Severity::Info,
            "run_finished",
            &[
                ("workflow", def.tag.clone()),
                ("finished", r.finished.to_string()),
                ("failed_attempts", r.failed_attempts.to_string()),
                ("aborted", r.aborted.to_string()),
                ("blacklisted", r.blacklisted.to_string()),
            ],
        ),
        Err(e) => events.emit(
            t0.elapsed().as_secs_f64(),
            Severity::Error,
            "run_error",
            &[("workflow", def.tag.clone()), ("error", e.to_string())],
        ),
    }
    {
        let mut view = obs.health.lock().expect("health view poisoned");
        view.phase = "done".to_string();
    }
    if let Some(s) = server {
        s.shutdown();
    }

    if let Some(b) = &bridge {
        b.stop();
    }
    // the run's final rows must survive a crash after run_dist returns
    prov.flush_wal();
    if tel.is_enabled() {
        tel.record_span_at(
            "run",
            &def.tag,
            None,
            run_start,
            tel.now_ns(),
            Some(&format!("dist workers={}", cfg.workers)),
        );
    }
    result.map(|mut report| {
        report.metrics = tel.snapshot();
        report
    })
}

/// Spawn/connect the fleet, pump the pipelined dispatcher over it, and
/// drain. Split out of [`run_dist`] so bridge/WAL/telemetry teardown in the
/// caller runs on every exit path.
#[allow(clippy::too_many_arguments)]
fn master_loop(
    def: &WorkflowDef,
    input: Relation,
    files: &Arc<FileStore>,
    prov: &Arc<ProvenanceStore>,
    cfg: &DistConfig,
    wkf: WorkflowId,
    t0: Instant,
    bridge: &Option<Arc<SteeringBridge>>,
    obs: &ObsState,
) -> Result<RunReport, CumulusError> {
    let tel = cfg.telemetry.clone();
    // the master reuses the local backend's per-activity provenance
    // bookkeeping (activity registration, resume lookup, steering slots)
    let lcfg = {
        let c = LocalConfig::new()
            .with_failures(cfg.failures)
            .with_max_retries(cfg.max_retries)
            .with_telemetry(tel.clone());
        match cfg.resume_from {
            Some(prev) => c.with_resume_from(prev),
            None => c,
        }
    };
    let ctxs: Vec<ActivityCtx> = (0..def.activities.len())
        .map(|i| ActivityCtx::build(def, i, wkf, files, prov, &lcfg, t0, bridge))
        .collect();

    // per-activity histogram names the straggler detector reads baselines
    // from (allocated once; the sweep runs every loop iteration)
    let act_hist: Vec<String> = ctxs.iter().map(|c| format!("activation.{}", c.tag)).collect();

    {
        let mut view = obs.health.lock().expect("health view poisoned");
        view.phase = "starting".to_string();
    }
    let (mut fleet, events) = connect_fleet(cfg, files)?;
    let mut controller = match &cfg.scheduler {
        Some(factory) => FleetController::new(factory),
        None => FleetController::fixed(),
    };
    let mut peak_workers = fleet.provisioned();
    tel.gauge("fleet.size", peak_workers as f64);

    let mut report = RunReport {
        workflow: wkf,
        total_seconds: 0.0,
        finished: 0,
        failed_attempts: 0,
        aborted: 0,
        blacklisted: 0,
        resumed: 0,
        outputs: Vec::new(),
        metrics: None,
        scale_events: Vec::new(),
        peak_workers: 0,
        fleet_cost_usd: None,
    };

    let (mut pipe, seeds) = PipelineState::new(Arc::new(def.clone()), &input, tel.clone());
    let mut submits: VecDeque<SubmitReq> = seeds.into();
    let mut pending: VecDeque<Job> = VecDeque::new();
    let mut next_job: u64 = 0;
    // the scheduler sees the full initial backlog once, before dispatch
    let mut evaluated_initial = false;

    'run: loop {
        // 0. elastic bookkeeping: count this wakeup (the no-busy-spin
        //    regression watches it), expire launches that never connected,
        //    and welcome scaled-up workers
        tel.count("dist.master.wakeups", 1);
        let expired = fleet.expire_spawns(cfg);
        if expired > 0 {
            tel.count("fleet.spawn_timeouts", expired as u64);
        }
        if fleet.accept(cfg)? > 0 {
            tel.gauge("fleet.size", fleet.provisioned() as f64);
        }
        peak_workers = peak_workers.max(fleet.provisioned());
        obs.set_health(health_view(&fleet, "running"));
        // 1. turn dispatcher submissions into queued jobs; resume hits and
        //    blacklisted inputs complete inline without touching a worker
        while let Some(req) = submits.pop_front() {
            let ctx = &ctxs[req.activity];
            let key = pair_key(&req.part);
            if let Some(tuples) = ctx.prior.get(&key).cloned() {
                let out = ActOutcome { tuples, resumed: 1, ..Default::default() };
                tally(&mut report, &out);
                submits.extend(pipe.on_completion(req.activity, &out.tuples));
                continue;
            }
            if let Some(bl) = &ctx.blacklist {
                if req.part.iter().any(|t| bl(t)) {
                    let now = t0.elapsed().as_secs_f64();
                    obs.events.emit(
                        now,
                        Severity::Error,
                        "activation_blacklisted",
                        &[("activity", ctx.tag.clone()), ("key", key.clone())],
                    );
                    prov.record_activation(&ActivationRecord {
                        activity: ctx.act_id,
                        workflow: ctx.wkf,
                        status: ActivationStatus::Blacklisted,
                        start_time: now,
                        end_time: now,
                        machine: None,
                        retries: 0,
                        pair_key: key,
                    });
                    report.blacklisted += 1;
                    submits.extend(pipe.on_completion(req.activity, &[]));
                    continue;
                }
            }
            next_job += 1;
            pending.push_back(Job {
                activity: req.activity,
                part: req.part,
                part_index: req.part_index,
                key,
                attempt: 0,
                crashes: 0,
            });
        }
        if pipe.done() {
            break 'run;
        }

        // 1b. the policy's first look: the whole seeded backlog, before
        //     any dispatch — the simulator evaluates at the same instant
        if !evaluated_initial {
            evaluated_initial = true;
            let decision =
                controller.evaluate(snapshot(&fleet, &pending, &submits, ctxs.len(), cfg));
            for wi in apply_scale(decision, &mut fleet, cfg, &tel, obs, t0)? {
                lose_worker(
                    &mut fleet,
                    wi,
                    cfg,
                    &ctxs,
                    &mut pending,
                    &mut submits,
                    &mut pipe,
                    &mut report,
                    t0,
                    prov,
                    obs,
                    "drain_undeliverable",
                );
            }
            peak_workers = peak_workers.max(fleet.provisioned());
        }

        // 2. dispatch queued jobs to workers with spare capacity; the
        //    policy places each activation (least-loaded by default)
        while !pending.is_empty() {
            let views: Vec<WorkerView> = fleet
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.alive && !w.draining && w.in_flight.len() < cfg.max_in_flight)
                .map(|(i, w)| WorkerView { index: i, in_flight: w.in_flight.len() })
                .collect();
            if views.is_empty() {
                break;
            }
            let activity = pending.front().expect("loop guard").activity;
            let wi = match controller.place(activity, &views) {
                Some(i) if views.iter().any(|v| v.index == i) => i,
                // a placement outside the offered candidates falls back
                // to the default least-loaded choice
                _ => fleet.pick(cfg.max_in_flight).expect("views is non-empty"),
            };
            let job = pending.pop_front().expect("loop guard");
            let ctx = &ctxs[job.activity];
            let fate = cfg.failures.fate(&format!("{}#{}", ctx.tag, job.key), job.attempt);
            let start = t0.elapsed().as_secs_f64();
            let slot = ctx.begin_attempt(&job.key, start, job.attempt);
            if fate == Fate::Hang {
                // the activation would loop forever; the engine aborts it
                // without wasting a worker (the local backend's hang path)
                let end = t0.elapsed().as_secs_f64();
                ctx.record(
                    slot,
                    &ActivationRecord {
                        activity: ctx.act_id,
                        workflow: ctx.wkf,
                        status: ActivationStatus::Aborted,
                        start_time: start,
                        end_time: end,
                        machine: None,
                        retries: job.attempt as i64,
                        pair_key: job.key.clone(),
                    },
                );
                report.aborted += 1;
                obs.events.emit(
                    end,
                    Severity::Warn,
                    "activation_aborted",
                    &[
                        ("activity", ctx.tag.clone()),
                        ("key", job.key.clone()),
                        ("attempt", job.attempt.to_string()),
                    ],
                );
                submits.extend(pipe.on_completion(job.activity, &[]));
                continue 'run; // new submissions may precede queued work
            }
            next_job += 1;
            let id = next_job;
            let frame = Frame::Run {
                job: id,
                activity: job.activity as u32,
                part_index: job.part_index as u64,
                attempt: job.attempt,
                fate: if fate == Fate::Fail { WireFate::Fail } else { WireFate::Ok },
                workdir: format!("{}/{}", ctx.workdir_base, job.part_index),
                part: job.part.clone(),
            };
            let w = &mut fleet.workers[wi];
            w.in_flight.insert(
                id,
                InFlight { job, slot, start, dispatched: Instant::now(), straggler: false },
            );
            let sent = proto::write_frame(&mut *w.writer.lock(), &frame).is_ok();
            w.runs_sent += 1;
            if let Some(plan) = cfg.kill_plan {
                if plan.worker == wi && plan.after_runs == w.runs_sent {
                    // SIGKILL mid-activation; in-process workers sever
                    // themselves via their own die_on_run counter
                    if let Some(child) = &mut w.child {
                        let _ = child.kill();
                    }
                }
            }
            if !sent {
                lose_worker(
                    &mut fleet,
                    wi,
                    cfg,
                    &ctxs,
                    &mut pending,
                    &mut submits,
                    &mut pipe,
                    &mut report,
                    t0,
                    prov,
                    obs,
                    "send_failed",
                );
                continue 'run;
            }
        }

        // 3. wait for worker events, checking liveness on a tick
        match events.recv_timeout(Duration::from_millis(50)) {
            Ok(Event::Frame(wi, frame)) => {
                fleet.workers[wi].last_seen = Instant::now();
                match frame {
                    Frame::Heartbeat { job, job_elapsed_ms } => {
                        // the worker's own view of its current activation's
                        // age: the straggler detector cross-checks it and
                        // the hang detector quotes it on a loss
                        fleet.workers[wi].last_job = job.map(|j| (j, job_elapsed_ms));
                        if job.is_some() {
                            if let Some(h) = obs.tel.histogram("dist.heartbeat.job_elapsed") {
                                h.record(job_elapsed_ms.saturating_mul(1_000_000));
                            }
                        }
                    }
                    Frame::Stats { delta } => {
                        // periodic worker-local counter/histogram growth:
                        // merging it here keeps a continuously-current
                        // cluster-wide snapshot behind /metrics mid-run
                        obs.tel.absorb(&delta);
                    }
                    Frame::Done { job, outcome } => {
                        let Some(inflight) = fleet.workers[wi].in_flight.remove(&job) else {
                            continue 'run; // completion raced a reassignment
                        };
                        fleet.workers[wi].busy_ns +=
                            inflight.dispatched.elapsed().as_nanos() as u64;
                        let out = complete(
                            &ctxs[inflight.job.activity],
                            &inflight,
                            outcome,
                            files,
                            prov,
                            t0,
                            &tel,
                            fleet.workers[wi].track,
                            fleet.workers[wi].offset_ns,
                            cfg.max_retries,
                        );
                        let ev_t = t0.elapsed().as_secs_f64();
                        let ev_fields = |job: &Job| {
                            [
                                ("activity", ctxs[job.activity].tag.clone()),
                                ("key", job.key.clone()),
                                ("attempt", job.attempt.to_string()),
                                ("worker", wi.to_string()),
                            ]
                        };
                        match out {
                            Completed::Terminal(out) => {
                                if out.finished > 0 {
                                    obs.events.emit(
                                        ev_t,
                                        Severity::Info,
                                        "activation_finished",
                                        &ev_fields(&inflight.job),
                                    );
                                } else {
                                    obs.events.emit(
                                        ev_t,
                                        Severity::Error,
                                        "activation_failed",
                                        &ev_fields(&inflight.job),
                                    );
                                }
                                tally(&mut report, &out);
                                submits
                                    .extend(pipe.on_completion(inflight.job.activity, &out.tuples));
                            }
                            Completed::Retry => {
                                obs.events.emit(
                                    ev_t,
                                    Severity::Warn,
                                    "activation_failed",
                                    &ev_fields(&inflight.job),
                                );
                                report.failed_attempts += 1;
                                let mut job = inflight.job;
                                job.attempt += 1;
                                pending.push_front(job);
                            }
                        }
                        // every processed completion is a scheduler tick
                        controller.note_completion();
                        let decision = controller.evaluate(snapshot(
                            &fleet,
                            &pending,
                            &submits,
                            ctxs.len(),
                            cfg,
                        ));
                        for lost in apply_scale(decision, &mut fleet, cfg, &tel, obs, t0)? {
                            lose_worker(
                                &mut fleet,
                                lost,
                                cfg,
                                &ctxs,
                                &mut pending,
                                &mut submits,
                                &mut pipe,
                                &mut report,
                                t0,
                                prov,
                                obs,
                                "drain_undeliverable",
                            );
                        }
                        peak_workers = peak_workers.max(fleet.provisioned());
                    }
                    Frame::Bye { completed } => {
                        let w = &mut fleet.workers[wi];
                        if !w.draining || !w.in_flight.is_empty() {
                            return Err(CumulusError::Protocol(format!(
                                "unexpected Bye from worker {wi} (draining={}, in_flight={})",
                                w.draining,
                                w.in_flight.len()
                            )));
                        }
                        // drain-then-retire completed cleanly: this is not
                        // a loss, so nothing is reassigned or blacklisted
                        w.retired = true;
                        w.ended_at = Some(Instant::now());
                        w.sever();
                        tel.instant(
                            "fleet",
                            "retire",
                            Some(&format!("worker-{wi} completed={completed}")),
                        );
                        tel.gauge("fleet.size", fleet.provisioned() as f64);
                        obs.events.emit(
                            t0.elapsed().as_secs_f64(),
                            Severity::Info,
                            "worker_retired",
                            &[("worker", wi.to_string()), ("completed", completed.to_string())],
                        );
                    }
                    f => {
                        return Err(CumulusError::Protocol(format!(
                            "unexpected frame from worker {wi}: {f:?}"
                        )))
                    }
                }
            }
            Ok(Event::Gone(wi)) => {
                lose_worker(
                    &mut fleet,
                    wi,
                    cfg,
                    &ctxs,
                    &mut pending,
                    &mut submits,
                    &mut pipe,
                    &mut report,
                    t0,
                    prov,
                    obs,
                    "socket_closed",
                );
                obs.set_health(health_view(&fleet, "running"));
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Structurally unreachable — the fleet holds its own event
                // sender for its whole lifetime — but if it ever happens no
                // event can arrive again, so settle liveness for every
                // worker at once instead of spinning on the empty channel
                // until the heartbeat clock notices.
                for wi in 0..fleet.workers.len() {
                    if fleet.workers[wi].alive {
                        lose_worker(
                            &mut fleet,
                            wi,
                            cfg,
                            &ctxs,
                            &mut pending,
                            &mut submits,
                            &mut pipe,
                            &mut report,
                            t0,
                            prov,
                            obs,
                            "event_channel_closed",
                        );
                    }
                }
            }
        }

        // straggler detection: an in-flight activation running beyond
        // `straggler_factor ×` its activity's rolling p95 (merged from
        // worker Stats frames) *and* past the `straggler_min_ms` floor is
        // flagged — once — as a straggler. The flag feeds the scheduler's
        // FleetSnapshot and the event log; the activation itself keeps
        // running (the hang detector, not this, cuts wedged workers).
        for wi in 0..fleet.workers.len() {
            let reported = fleet.workers[wi].last_job;
            if !fleet.workers[wi].alive {
                continue;
            }
            let mut flagged: Vec<(u64, String, String, u64, u64)> = Vec::new();
            for (id, j) in fleet.workers[wi].in_flight.iter_mut() {
                if j.straggler {
                    continue;
                }
                // trust whichever clock has seen more: the master's
                // dispatch age or the worker's own heartbeat report
                let mut elapsed_ms = j.dispatched.elapsed().as_millis() as u64;
                if let Some((rj, rms)) = reported {
                    if rj == *id {
                        elapsed_ms = elapsed_ms.max(rms);
                    }
                }
                if elapsed_ms < cfg.straggler_min_ms {
                    continue;
                }
                let threshold_ms = obs
                    .tel
                    .histogram(&act_hist[j.job.activity])
                    .filter(|h| h.count() >= 3)
                    .map(|h| (h.quantile(0.95) * cfg.straggler_factor / 1e6) as u64)
                    .unwrap_or(0)
                    .max(cfg.straggler_min_ms);
                if elapsed_ms > threshold_ms {
                    j.straggler = true;
                    let job = &j.job;
                    flagged.push((
                        *id,
                        ctxs[job.activity].tag.clone(),
                        job.key.clone(),
                        elapsed_ms,
                        threshold_ms,
                    ));
                }
            }
            for (id, tag, key, elapsed_ms, threshold_ms) in flagged {
                obs.tel.count("dist.stragglers", 1);
                obs.events.emit(
                    t0.elapsed().as_secs_f64(),
                    Severity::Warn,
                    "straggler",
                    &[
                        ("worker", wi.to_string()),
                        ("job", id.to_string()),
                        ("activity", tag),
                        ("key", key),
                        ("elapsed_ms", elapsed_ms.to_string()),
                        ("threshold_ms", threshold_ms.to_string()),
                    ],
                );
            }
        }

        // liveness: heartbeat silence and wedged activations
        let lost: Vec<(usize, &'static str)> = fleet
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.alive)
            .filter_map(|(i, w)| {
                if cfg.activation_timeout.is_some_and(|limit| {
                    w.in_flight.values().any(|j| j.dispatched.elapsed() > limit)
                }) {
                    Some((i, "activation_timeout"))
                } else if w.last_seen.elapsed() > cfg.heartbeat_timeout {
                    Some((i, "heartbeat_timeout"))
                } else {
                    None
                }
            })
            .collect();
        for (wi, reason) in lost {
            if reason == "activation_timeout" {
                // S1: the hang detector's detail quotes the worker's own
                // elapsed report alongside the master's view (the FAILED
                // provenance row itself stays byte-stable)
                let worker_ms = fleet.workers[wi]
                    .last_job
                    .map_or_else(|| "none".to_string(), |(j, ms)| format!("job={j} {ms}ms"));
                tel.instant(
                    "dist",
                    "hang",
                    Some(&format!("worker-{wi} worker_elapsed: {worker_ms}")),
                );
            }
            lose_worker(
                &mut fleet,
                wi,
                cfg,
                &ctxs,
                &mut pending,
                &mut submits,
                &mut pipe,
                &mut report,
                t0,
                prov,
                obs,
                reason,
            );
        }
        if fleet.workers.iter().all(|w| !w.alive) && fleet.spawning.is_empty() && !pipe.done() {
            return Err(CumulusError::WorkerLost(format!(
                "all {} workers lost with work outstanding",
                fleet.workers.len()
            )));
        }
    }

    tel.instant("dist", "jobs", Some(&format!("submitted={}", pipe.submitted())));
    // per-worker utilisation, and the fleet bill if the policy carries a
    // cost model (per-started-hour, like the simulator's EC2 billing)
    let run_end = Instant::now();
    let billing = controller.billing();
    let mut fleet_cost = 0.0;
    for (i, w) in fleet.workers.iter().enumerate() {
        let life = w.ended_at.unwrap_or(run_end).saturating_duration_since(w.connected_at);
        let life_s = life.as_secs_f64();
        let busy_s = w.busy_ns as f64 / 1e9;
        let util = if life_s > 0.0 { (busy_s / life_s).min(1.0) } else { 0.0 };
        tel.instant(
            "fleet",
            "utilization",
            Some(&format!(
                "worker-{i} busy={busy_s:.3}s life={life_s:.3}s util={:.0}%",
                util * 100.0
            )),
        );
        if let Some(b) = billing {
            fleet_cost += b.charge(life_s);
        }
    }
    report.fleet_cost_usd = billing.map(|_| fleet_cost);
    report.peak_workers = peak_workers;
    report.scale_events = controller.into_trace();
    report.outputs = pipe.into_outputs();
    report.total_seconds = t0.elapsed().as_secs_f64();
    obs.set_health(health_view(&fleet, "draining"));
    fleet.drain();
    Ok(report)
}

/// The fleet as `/healthz` reports it.
fn health_view(fleet: &Fleet, phase: &str) -> HealthView {
    HealthView {
        phase: phase.to_string(),
        fleet: fleet.provisioned(),
        workers: fleet
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| WorkerHealth {
                id: i,
                alive: w.alive,
                draining: w.draining,
                last_seen_ms: w.last_seen.elapsed().as_millis() as u64,
                in_flight: w.in_flight.len(),
                stragglers: w.in_flight.values().filter(|j| j.straggler).count(),
            })
            .collect(),
    }
}

/// The scheduler's view of the run: logical quantities only (queue depths,
/// provisioned fleet, capacity) and never wall-clock state, so the
/// simulator can reproduce the exact decision sequence.
fn snapshot(
    fleet: &Fleet,
    pending: &VecDeque<Job>,
    submits: &VecDeque<SubmitReq>,
    n_activities: usize,
    cfg: &DistConfig,
) -> FleetSnapshot {
    let mut queued_by_activity = vec![0usize; n_activities];
    for j in pending {
        queued_by_activity[j.activity] += 1;
    }
    for s in submits {
        queued_by_activity[s.activity] += 1;
    }
    FleetSnapshot {
        completions: 0, // the controller stamps its own count
        queued: pending.len() + submits.len(),
        in_flight: fleet.workers.iter().map(|w| w.in_flight.len()).sum(),
        fleet: fleet.provisioned(),
        idle: fleet
            .workers
            .iter()
            .filter(|w| w.alive && !w.draining && w.in_flight.is_empty())
            .count(),
        slots_per_worker: cfg.max_in_flight,
        queued_by_activity,
        stragglers: fleet
            .workers
            .iter()
            .filter(|w| w.alive)
            .flat_map(|w| w.in_flight.values())
            .filter(|j| j.straggler)
            .count(),
    }
}

/// Apply a scale decision to the live fleet. Growth launches workers toward
/// the listener (they join in [`Fleet::accept`]); shrink marks targets as
/// draining and sends `Drain` — the worker finishes its queue, answers
/// `Bye`, and is retired without a single `FAILED` row. Returns workers
/// whose `Drain` could not be delivered; the caller declares those lost.
fn apply_scale(
    decision: ScaleDecision,
    fleet: &mut Fleet,
    cfg: &DistConfig,
    tel: &Telemetry,
    obs: &ObsState,
    t0: Instant,
) -> Result<Vec<usize>, CumulusError> {
    match decision {
        ScaleDecision::Hold => Ok(Vec::new()),
        ScaleDecision::Grow(n) => {
            for _ in 0..n {
                fleet.launch(cfg)?;
            }
            tel.instant("fleet", "grow", Some(&format!("+{n} -> {}", fleet.provisioned())));
            tel.gauge("fleet.size", fleet.provisioned() as f64);
            obs.events.emit(
                t0.elapsed().as_secs_f64(),
                Severity::Info,
                "fleet_scale",
                &[("decision", format!("grow {n}")), ("fleet", fleet.provisioned().to_string())],
            );
            Ok(Vec::new())
        }
        ScaleDecision::Shrink(n) => {
            // idle workers first, lowest index first; whatever the policy
            // asked for, at least one worker keeps serving
            let mut targets: Vec<usize> = fleet
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.alive && !w.draining)
                .map(|(i, _)| i)
                .collect();
            targets.sort_by_key(|&i| (!fleet.workers[i].in_flight.is_empty(), i));
            let n = n.min((targets.len() + fleet.spawning.len()).saturating_sub(1));
            let mut undeliverable = Vec::new();
            for &wi in targets.iter().take(n) {
                let w = &mut fleet.workers[wi];
                w.draining = true;
                if proto::write_frame(&mut *w.writer.lock(), &Frame::Drain).is_err() {
                    undeliverable.push(wi);
                }
            }
            if n > 0 {
                tel.instant("fleet", "drain", Some(&format!("-{n} -> {}", fleet.provisioned())));
                tel.gauge("fleet.size", fleet.provisioned() as f64);
                obs.events.emit(
                    t0.elapsed().as_secs_f64(),
                    Severity::Info,
                    "fleet_scale",
                    &[
                        ("decision", format!("drain {n}")),
                        ("fleet", fleet.provisioned().to_string()),
                    ],
                );
            }
            Ok(undeliverable)
        }
    }
}

/// Outcome of folding a worker's `Done` frame into provenance.
enum Completed {
    /// The activation reached a terminal state (finished or out of budget).
    Terminal(ActOutcome),
    /// A retryable failure: bump the attempt and requeue.
    Retry,
}

/// Write the provenance for one finished/failed attempt, in the same
/// RUNNING → files/params/tuples → FINISHED-last order as the local
/// backend, and merge the worker's spans onto its telemetry track.
#[allow(clippy::too_many_arguments)]
fn complete(
    ctx: &ActivityCtx,
    inflight: &InFlight,
    outcome: WireOutcome,
    files: &Arc<FileStore>,
    prov: &Arc<ProvenanceStore>,
    t0: Instant,
    tel: &Telemetry,
    track: u64,
    offset_ns: i64,
    max_retries: u32,
) -> Completed {
    let job = &inflight.job;
    let end = t0.elapsed().as_secs_f64();
    match outcome {
        WireOutcome::Finished { tuples, files: shipped, params, spans } => {
            import(tel, track, offset_ns, spans);
            // land the worker's artifacts in the shared store first, so
            // recorded sizes are real and downstream fetches always hit
            for (path, contents) in &shipped {
                files.write(path, contents.clone());
            }
            let rec = ActivationRecord {
                activity: ctx.act_id,
                workflow: ctx.wkf,
                status: ActivationStatus::Running,
                start_time: inflight.start,
                end_time: end,
                machine: None,
                retries: job.attempt as i64,
                pair_key: job.key.clone(),
            };
            let task = ctx.record(inflight.slot, &rec);
            for (path, _) in &shipped {
                let size = files.size(path).unwrap_or(0) as i64;
                let (dir, name) = split_path(path);
                prov.record_file(task, ctx.act_id, ctx.wkf, name, size, dir);
            }
            for (name, num, text) in &params {
                prov.record_parameter(task, ctx.wkf, name, *num, text.as_deref());
            }
            for (ti, t) in tuples.iter().enumerate() {
                prov.record_output_tuple(task, ctx.act_id, ctx.wkf, &job.key, ti, t);
            }
            let done = prov.update_activation(
                task,
                &ActivationRecord { status: ActivationStatus::Finished, ..rec },
            );
            debug_assert!(done, "the RUNNING row we just wrote must exist");
            Completed::Terminal(ActOutcome { tuples, finished: 1, ..Default::default() })
        }
        WireOutcome::Failed { error, files: shipped, spans } => {
            import(tel, track, offset_ns, spans);
            if error.starts_with("oversized result") {
                // the worker degraded an over-cap Done frame into a failed
                // attempt; the run survives, but the cause stays countable
                tel.count("proto.oversized_done", 1);
            }
            // even a failed attempt's files persist: the local backend
            // shares one store, so parity demands the same here
            for (path, contents) in shipped {
                files.write(&path, contents);
            }
            ctx.record(
                inflight.slot,
                &ActivationRecord {
                    activity: ctx.act_id,
                    workflow: ctx.wkf,
                    status: ActivationStatus::Failed,
                    start_time: inflight.start,
                    end_time: end,
                    machine: None,
                    retries: job.attempt as i64,
                    pair_key: job.key.clone(),
                },
            );
            if job.attempt >= max_retries {
                Completed::Terminal(ActOutcome { failed_attempts: 1, ..Default::default() })
            } else {
                Completed::Retry
            }
        }
    }
}

fn import(tel: &Telemetry, track: u64, offset_ns: i64, spans: Vec<proto::WireSpan>) {
    if spans.is_empty() {
        return;
    }
    let remote: Vec<RemoteSpan> = spans
        .into_iter()
        .map(|s| RemoteSpan {
            name: s.name,
            start_ns: s.start_ns,
            end_ns: s.end_ns,
            detail: s.detail,
        })
        .collect();
    tel.import_spans(track, offset_ns, &remote);
}

/// Declare worker `wi` lost: cut it down, record a `FAILED` row for every
/// activation it was running, and reassign each — or blacklist it as
/// poison once its crash budget is spent.
#[allow(clippy::too_many_arguments)]
fn lose_worker(
    fleet: &mut Fleet,
    wi: usize,
    cfg: &DistConfig,
    ctxs: &[ActivityCtx],
    pending: &mut VecDeque<Job>,
    submits: &mut VecDeque<SubmitReq>,
    pipe: &mut PipelineState,
    report: &mut RunReport,
    t0: Instant,
    prov: &Arc<ProvenanceStore>,
    obs: &ObsState,
    reason: &str,
) {
    let w = &mut fleet.workers[wi];
    if !w.alive {
        return;
    }
    w.sever();
    w.ended_at = Some(Instant::now());
    let end = t0.elapsed().as_secs_f64();
    {
        let mut fields = vec![
            ("worker", wi.to_string()),
            ("reason", reason.to_string()),
            ("in_flight", w.in_flight.len().to_string()),
        ];
        if let Some((job, ms)) = w.last_job {
            // the worker's own last elapsed report (from its heartbeat):
            // for a hang this is how long the wedged activation really ran
            fields.push(("last_job", job.to_string()));
            fields.push(("job_elapsed_ms", ms.to_string()));
        }
        obs.events.emit(end, Severity::Error, "worker_lost", &fields);
    }
    let mut lost: Vec<InFlight> = w.in_flight.drain().map(|(_, j)| j).collect();
    // deterministic reassignment order regardless of hash-map iteration
    lost.sort_by_key(|j| (j.job.activity, j.job.part_index));
    for inflight in lost {
        let ctx = &ctxs[inflight.job.activity];
        ctx.record(
            inflight.slot,
            &ActivationRecord {
                activity: ctx.act_id,
                workflow: ctx.wkf,
                status: ActivationStatus::Failed,
                start_time: inflight.start,
                end_time: end,
                machine: None,
                retries: inflight.job.attempt as i64,
                pair_key: inflight.job.key.clone(),
            },
        );
        report.failed_attempts += 1;
        obs.events.emit(
            end,
            Severity::Warn,
            "activation_failed",
            &[
                ("activity", ctx.tag.clone()),
                ("key", inflight.job.key.clone()),
                ("attempt", inflight.job.attempt.to_string()),
                ("worker", wi.to_string()),
            ],
        );
        let mut job = inflight.job;
        job.crashes += 1;
        if job.crashes > cfg.reassign_budget {
            // this input has now taken down too many workers: poison
            prov.record_activation(&ActivationRecord {
                activity: ctx.act_id,
                workflow: ctx.wkf,
                status: ActivationStatus::Blacklisted,
                start_time: end,
                end_time: end,
                machine: None,
                retries: job.attempt as i64,
                pair_key: job.key.clone(),
            });
            report.blacklisted += 1;
            obs.events.emit(
                end,
                Severity::Error,
                "activation_blacklisted",
                &[("activity", ctx.tag.clone()), ("key", job.key.clone())],
            );
            submits.extend(pipe.on_completion(job.activity, &[]));
        } else {
            job.attempt += 1;
            pending.push_front(job);
        }
    }
}

// ------------------------------------------------------------------- fleet

/// The connected worker fleet plus everything needed to grow it mid-run:
/// the listening socket stays open for the run's lifetime, and the fleet
/// keeps a clone of the master's event sender so readers spawned for
/// scaled-up workers feed the same channel (this also guarantees the
/// channel can never disconnect while the fleet exists).
struct Fleet {
    workers: Vec<WorkerHandle>,
    listener: TcpListener,
    addr: String,
    events_tx: mpsc::Sender<Event>,
    /// Shared file store reader threads answer `FileReq` from.
    files: Arc<FileStore>,
    /// Spawned OS processes not yet matched to a connection (by pid).
    children: Vec<Child>,
    /// In-process serve threads not yet matched to a connection.
    threads: VecDeque<std::thread::JoinHandle<()>>,
    /// Launch instants of workers that have not completed the handshake.
    spawning: VecDeque<Instant>,
    /// Total launches ever (drives per-launch test options).
    launched: usize,
}

impl Fleet {
    /// The alive, non-draining worker with the most spare capacity (ties
    /// broken by index, for deterministic assignment).
    fn pick(&self, max_in_flight: usize) -> Option<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.alive && !w.draining && w.in_flight.len() < max_in_flight)
            .min_by_key(|(i, w)| (w.in_flight.len(), *i))
            .map(|(i, _)| i)
    }

    /// Provisioned fleet size the scheduler reasons about: serving workers
    /// (alive, not draining) plus launches still connecting.
    fn provisioned(&self) -> usize {
        self.workers.iter().filter(|w| w.alive && !w.draining).count() + self.spawning.len()
    }

    /// Launch one more worker (process or in-process thread) toward the
    /// listening socket. The handshake completes later in [`Fleet::accept`].
    fn launch(&mut self, cfg: &DistConfig) -> Result<(), CumulusError> {
        let seq = self.launched;
        self.launched += 1;
        if let Some((program, args)) = &cfg.worker_cmd {
            let child = Command::new(program)
                .args(args)
                .arg("--connect")
                .arg(&self.addr)
                .stdin(Stdio::null())
                .spawn()
                .map_err(|e| CumulusError::Io(format!("spawning worker {seq} ({program}): {e}")))?;
            self.children.push(child);
        } else {
            let resolver = cfg.resolver.clone().expect("validated by run_dist");
            let addr = self.addr.clone();
            let opts = worker::ServeOptions {
                no_heartbeat: cfg.mute_heartbeat == Some(seq),
                die_on_run: cfg.kill_plan.filter(|p| p.worker == seq).map(|p| p.after_runs),
            };
            self.threads.push_back(std::thread::spawn(move || {
                let _ = worker::serve_with(&addr, resolver, opts);
            }));
        }
        self.spawning.push_back(Instant::now());
        Ok(())
    }

    /// Accept and handshake every connection currently waiting on the
    /// listener; spawn a reader thread per new worker. Returns how many
    /// workers joined. Non-blocking: returns 0 when nobody is knocking.
    fn accept(&mut self, cfg: &DistConfig) -> Result<usize, CumulusError> {
        let tel = &cfg.telemetry;
        let mut joined = 0;
        loop {
            let (mut stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(CumulusError::Io(e.to_string())),
            };
            stream.set_nonblocking(false)?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(cfg.connect_timeout))?;
            let (pid, worker_now) = match proto::read_frame(&mut stream) {
                Ok(Frame::Ready { pid, now_ns }) => (pid, now_ns),
                Ok(f) => {
                    return Err(CumulusError::Protocol(format!("expected Ready, got {f:?}")));
                }
                Err(e) => return Err(CumulusError::Protocol(format!("bad handshake: {e}"))),
            };
            stream.set_read_timeout(None)?;
            let offset_ns = tel.now_ns() as i64 - worker_now as i64;
            let i = self.workers.len();
            let track = tel.alloc_track(&format!("worker-{i}"));
            proto::write_frame(
                &mut stream,
                &Frame::Hello {
                    worker_id: i as u32,
                    spec: cfg.spec.clone(),
                    heartbeat_ms: cfg.heartbeat.as_millis() as u64,
                },
            )?;
            // match the OS child (if any) to this connection by pid
            let child = self
                .children
                .iter()
                .position(|c| c.id() == pid)
                .map(|at| self.children.swap_remove(at));
            let writer = Arc::new(Mutex::new(stream));
            let reader = {
                let mut stream = writer
                    .lock()
                    .try_clone()
                    .map_err(|e| CumulusError::Io(format!("cloning worker {i} stream: {e}")))?;
                let writer = Arc::clone(&writer);
                let files = Arc::clone(&self.files);
                let tx = self.events_tx.clone();
                std::thread::spawn(move || loop {
                    match proto::read_frame(&mut stream) {
                        // answer file fetches right here so they never
                        // queue behind the master's dispatch loop
                        Ok(Frame::FileReq { req, path }) => {
                            let contents = files.read(&path);
                            if proto::write_frame(
                                &mut *writer.lock(),
                                &Frame::FileData { req, contents },
                            )
                            .is_err()
                            {
                                let _ = tx.send(Event::Gone(i));
                                break;
                            }
                        }
                        Ok(f) => {
                            if tx.send(Event::Frame(i, f)).is_err() {
                                break;
                            }
                        }
                        Err(_) => {
                            let _ = tx.send(Event::Gone(i));
                            break;
                        }
                    }
                })
            };
            self.workers.push(WorkerHandle {
                writer,
                alive: true,
                draining: false,
                retired: false,
                child,
                thread: self.threads.pop_front(),
                reader: Some(reader),
                last_seen: Instant::now(),
                in_flight: HashMap::new(),
                track,
                offset_ns,
                runs_sent: 0,
                last_job: None,
                connected_at: Instant::now(),
                ended_at: None,
                busy_ns: 0,
            });
            self.spawning.pop_front();
            joined += 1;
        }
        Ok(joined)
    }

    /// Forget launches that never completed the handshake within the
    /// connect deadline, so the scheduler stops counting them. Returns how
    /// many expired.
    fn expire_spawns(&mut self, cfg: &DistConfig) -> usize {
        let before = self.spawning.len();
        self.spawning.retain(|at| at.elapsed() <= cfg.connect_timeout);
        before - self.spawning.len()
    }

    /// Graceful shutdown: ask every live worker to drain, give processes a
    /// moment to exit, then reap whatever is left.
    fn drain(&mut self) {
        for w in self.workers.iter_mut().filter(|w| w.alive) {
            let _ = proto::write_frame(&mut *w.writer.lock(), &Frame::Shutdown);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut waiting = false;
            for w in &mut self.workers {
                if let Some(child) = &mut w.child {
                    match child.try_wait() {
                        Ok(Some(_)) => w.child = None,
                        Ok(None) => waiting = true,
                        Err(_) => w.child = None,
                    }
                }
            }
            if !waiting || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        self.teardown();
    }

    /// Sever everything and join every handle, including launches that
    /// never finished connecting.
    fn teardown(&mut self) {
        for w in &mut self.workers {
            w.sever();
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
            if let Some(r) = w.reader.take() {
                let _ = r.join();
            }
        }
        for mut c in self.children.drain(..) {
            let _ = c.kill();
            let _ = c.wait();
        }
        // Unmatched in-process threads detach rather than join: one could
        // still be blocked in its handshake read, which only fails once
        // the listener drops — joining here would deadlock against it.
        self.threads.clear();
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        // safety net for error paths: never leave worker processes behind
        self.teardown();
    }
}

/// Bind, launch the initial fleet, and complete the `Ready`/`Hello`
/// handshake with every worker. Returns the fleet plus the receiving end
/// of its event channel.
fn connect_fleet(
    cfg: &DistConfig,
    files: &Arc<FileStore>,
) -> Result<(Fleet, mpsc::Receiver<Event>), CumulusError> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    listener.set_nonblocking(true)?;
    let (events_tx, events) = mpsc::channel::<Event>();
    let mut fleet = Fleet {
        workers: Vec::with_capacity(cfg.workers),
        listener,
        addr,
        events_tx,
        files: Arc::clone(files),
        children: Vec::new(),
        threads: VecDeque::new(),
        spawning: VecDeque::new(),
        launched: 0,
    };
    for _ in 0..cfg.workers {
        fleet.launch(cfg)?;
    }
    let deadline = Instant::now() + cfg.connect_timeout;
    while fleet.workers.len() < cfg.workers {
        if fleet.accept(cfg)? == 0 {
            if Instant::now() > deadline {
                // Fleet::drop reaps the children and joins the threads
                return Err(CumulusError::Timeout(format!(
                    "only {}/{} workers connected within {:?}",
                    fleet.workers.len(),
                    cfg.workers,
                    cfg.connect_timeout
                )));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    Ok((fleet, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Operator;
    use crate::fleet::{QueueDepthConfig, QueueDepthScheduler, ScaleEvent};
    use crate::workflow::Activity;
    use provenance::{export_provn_canonical, Value};

    /// Three activities: stage (writes a file per tuple), score (reads the
    /// staged file — exercising cross-worker fetch), and reduce (a barrier
    /// summing everything).
    fn test_def(sleep_ms: u64) -> WorkflowDef {
        WorkflowDef {
            tag: "dist-test".into(),
            description: "distbackend test workflow".into(),
            expdir: "/exp/dist".into(),
            activities: vec![
                Activity::map(
                    "stage",
                    &["x", "path"],
                    Arc::new(move |t, ctx| {
                        if sleep_ms > 0 {
                            std::thread::sleep(Duration::from_millis(sleep_ms));
                        }
                        Ok(t.iter()
                            .map(|row| {
                                let x = match row[0] {
                                    Value::Int(i) => i,
                                    _ => 0,
                                };
                                let path = ctx.write_file(&format!("in-{x}.txt"), x.to_string());
                                vec![Value::Int(x), Value::Text(path)]
                            })
                            .collect())
                    }),
                ),
                Activity::map(
                    "score",
                    &["y"],
                    Arc::new(|t, ctx| {
                        ctx.record_param("factor", Some(3.0), None);
                        t.iter()
                            .map(|row| {
                                let path = row[1].to_string();
                                let staged: i64 = ctx.read_file(&path)?.trim().parse().unwrap_or(0);
                                Ok(vec![Value::Int(staged * 3)])
                            })
                            .collect()
                    }),
                ),
                Activity::map(
                    "reduce",
                    &["total"],
                    Arc::new(|t: &[crate::algebra::Tuple], _: &mut _| {
                        let s: i64 = t
                            .iter()
                            .map(|row| match row[0] {
                                Value::Int(i) => i,
                                _ => 0,
                            })
                            .sum();
                        Ok(vec![vec![Value::Int(s)]])
                    }),
                )
                .with_operator(Operator::SRQuery),
            ],
            deps: vec![vec![], vec![0], vec![1]],
        }
    }

    fn test_input(n: i64) -> Relation {
        let mut r = Relation::new(&["x"]);
        for i in 0..n {
            r.push(vec![Value::Int(i)]);
        }
        r
    }

    fn resolver(sleep_ms: u64) -> worker::WorkflowResolver {
        Arc::new(move |spec| (spec == "dist-test").then(|| test_def(sleep_ms)))
    }

    fn dist_cfg(workers: usize) -> DistConfig {
        DistConfig::new().with_workers(workers).with_resolver(resolver(0)).with_spec("dist-test")
    }

    fn run(cfg: &DistConfig) -> (RunReport, Arc<ProvenanceStore>, Arc<FileStore>) {
        let prov = Arc::new(ProvenanceStore::new());
        let files = Arc::new(FileStore::new());
        let report =
            run_dist(&test_def(0), test_input(4), Arc::clone(&files), Arc::clone(&prov), cfg)
                .expect("distributed run");
        (report, prov, files)
    }

    #[test]
    fn dist_matches_local_canonical_provenance() {
        let (report, prov, _) = run(&dist_cfg(2));
        assert_eq!(report.finished, 9); // 4 stage + 4 score + 1 reduce
                                        // 0+1+2+3 staged, ×3 scored, summed
        let last = report.outputs.last().unwrap();
        assert_eq!(last.tuples, vec![vec![Value::Int(18)]]);

        let lprov = Arc::new(ProvenanceStore::new());
        let lreport = crate::localbackend::run_local_impl(
            &test_def(0),
            test_input(4),
            Arc::new(FileStore::new()),
            Arc::clone(&lprov),
            &LocalConfig::new().with_threads(2),
        )
        .expect("local run");
        assert_eq!(lreport.finished, report.finished);
        assert_eq!(
            export_provn_canonical(&prov),
            export_provn_canonical(&lprov),
            "local and distributed canonical PROV-N must be byte-identical"
        );
    }

    #[test]
    fn workers_fetch_files_through_the_master() {
        // serialize hard so stage and score land on different workers
        let cfg = dist_cfg(2).with_max_in_flight(1);
        let (report, _, files) = run(&cfg);
        assert_eq!(report.finished, 9);
        assert_eq!(report.outputs.last().unwrap().tuples, vec![vec![Value::Int(18)]]);
        // every staged artifact landed in the master's shared store
        assert_eq!(files.list("/exp/dist").len(), 4);
    }

    #[test]
    fn injected_failures_stay_in_parity_with_local() {
        let failures =
            FailureModel { fail_rate: 0.35, hang_rate: 0.15, fail_at_fraction: 0.5, seed: 7 };
        let cfg = dist_cfg(2).with_failures(failures).with_max_retries(2);
        let (report, prov, _) = run(&cfg);

        let lprov = Arc::new(ProvenanceStore::new());
        let lreport = crate::localbackend::run_local_impl(
            &test_def(0),
            test_input(4),
            Arc::new(FileStore::new()),
            Arc::clone(&lprov),
            &LocalConfig::new().with_threads(2).with_failures(failures).with_max_retries(2),
        )
        .expect("local run");
        assert_eq!(report.finished, lreport.finished);
        assert_eq!(report.failed_attempts, lreport.failed_attempts);
        assert_eq!(report.aborted, lreport.aborted);
        assert!(
            report.failed_attempts > 0 || report.aborted > 0,
            "seed 7 must actually inject faults for this test to mean anything"
        );
        assert_eq!(export_provn_canonical(&prov), export_provn_canonical(&lprov));
    }

    #[test]
    fn killed_worker_is_reassigned_and_the_run_completes() {
        let fair = dist_cfg(2).with_max_in_flight(1);
        let (clean, _, _) = run(&fair);

        // worker 0 dies the moment it receives its first activation
        let cfg = fair.clone().with_kill_plan(KillPlan { worker: 0, after_runs: 1 });
        let (report, prov, _) = run(&cfg);
        assert_eq!(report.finished, clean.finished);
        assert_eq!(report.failed_attempts, 1, "exactly the activation lost with the worker");
        assert_eq!(report.blacklisted, 0);
        let sorted = |r: &RunReport| {
            let mut t = r.outputs.last().unwrap().tuples.clone();
            t.sort_by_key(|row| row.first().map(|v| v.to_string()));
            t
        };
        assert_eq!(sorted(&report), sorted(&clean));
        // the crash left exactly one FAILED attempt in provenance
        let failed = prov
            .query_rows("SELECT taskid FROM hactivation WHERE status = 'FAILED'", &[])
            .unwrap()
            .rows
            .len();
        assert_eq!(failed, 1);
    }

    #[test]
    fn silent_worker_trips_the_heartbeat_timeout() {
        let mut cfg = DistConfig::new()
            .with_workers(1)
            .with_resolver(resolver(600))
            .with_spec("dist-test")
            .with_heartbeat(Duration::from_millis(20))
            .with_heartbeat_timeout(Duration::from_millis(250))
            .with_reassign_budget(0);
        cfg.mute_heartbeat = Some(0);
        let prov = Arc::new(ProvenanceStore::new());
        let report = run_dist(
            &test_def(600),
            test_input(1),
            Arc::new(FileStore::new()),
            Arc::clone(&prov),
            &cfg,
        )
        .expect("run must complete by blacklisting the lost activation");
        assert_eq!(report.finished, 0);
        assert_eq!(report.failed_attempts, 1);
        assert_eq!(report.blacklisted, 1, "budget 0 turns the crash into poison");
    }

    #[test]
    fn wedged_activation_trips_the_hang_detector() {
        // tuple 0 wedges its worker for 2s; the detector fires at 300ms
        let def = WorkflowDef {
            tag: "hang-test".into(),
            description: "hang detector".into(),
            expdir: "/exp/hang".into(),
            activities: vec![Activity::map(
                "work",
                &["x"],
                Arc::new(|t, _| {
                    for row in t {
                        if row[0] == Value::Int(0) {
                            std::thread::sleep(Duration::from_secs(2));
                        }
                    }
                    Ok(t.to_vec())
                }),
            )],
            deps: vec![vec![]],
        };
        let hung = def.clone();
        let cfg = DistConfig::new()
            .with_workers(2)
            .with_resolver(Arc::new(move |spec| (spec == "hang-test").then(|| hung.clone())))
            .with_spec("hang-test")
            .with_max_in_flight(1)
            .with_activation_timeout(Duration::from_millis(300))
            .with_reassign_budget(0);
        let prov = Arc::new(ProvenanceStore::new());
        let report =
            run_dist(&def, test_input(3), Arc::new(FileStore::new()), Arc::clone(&prov), &cfg)
                .expect("the healthy worker must finish the rest");
        assert_eq!(report.finished, 2);
        assert_eq!(report.blacklisted, 1);
    }

    // -------------------------------------------------- elastic fleet

    /// One Map activity over `x`, each activation sleeping `sleep_ms`.
    fn flat_def(sleep_ms: u64) -> WorkflowDef {
        WorkflowDef {
            tag: "flat-test".into(),
            description: "flat elastic workload".into(),
            expdir: "/exp/flat".into(),
            activities: vec![Activity::map(
                "work",
                &["x"],
                Arc::new(move |t, _: &mut _| {
                    if sleep_ms > 0 {
                        std::thread::sleep(Duration::from_millis(sleep_ms));
                    }
                    Ok(t.to_vec())
                }),
            )],
            deps: vec![vec![]],
        }
    }

    fn qd_factory(max_workers: usize) -> SchedulerFactory {
        SchedulerFactory::new(move || {
            Box::new(QueueDepthScheduler::new(QueueDepthConfig {
                max_workers,
                ..QueueDepthConfig::default()
            }))
        })
    }

    fn flat_cfg(sleep_ms: u64) -> DistConfig {
        DistConfig::new()
            .with_workers(1)
            .with_resolver(Arc::new(move |spec| (spec == "flat-test").then(|| flat_def(sleep_ms))))
            .with_spec("flat-test")
            .with_max_in_flight(1)
    }

    /// The decision trace a queue-depth policy (factor 2, step 1, cooldown
    /// 2, fleet 1..=3) must produce over 10 flat activations starting from
    /// one single-slot worker — and the simulator must reproduce it
    /// event-for-event (see tests/fleet.rs).
    fn expected_qd_trace() -> Vec<ScaleEvent> {
        vec![
            ScaleEvent {
                completions: 0,
                fleet: 1,
                outstanding: 10,
                decision: ScaleDecision::Grow(1),
            },
            ScaleEvent {
                completions: 2,
                fleet: 2,
                outstanding: 8,
                decision: ScaleDecision::Grow(1),
            },
            ScaleEvent {
                completions: 8,
                fleet: 3,
                outstanding: 2,
                decision: ScaleDecision::Shrink(1),
            },
            ScaleEvent {
                completions: 10,
                fleet: 2,
                outstanding: 0,
                decision: ScaleDecision::Shrink(1),
            },
        ]
    }

    fn sorted_ints(report: &RunReport) -> Vec<i64> {
        let mut got: Vec<i64> = report
            .outputs
            .last()
            .unwrap()
            .tuples
            .iter()
            .map(|row| match row[0] {
                Value::Int(i) => i,
                _ => panic!("unexpected value"),
            })
            .collect();
        got.sort_unstable();
        got
    }

    #[test]
    fn elastic_fleet_grows_and_retires() {
        let cfg = flat_cfg(25).with_scheduler(qd_factory(3));
        let prov = Arc::new(ProvenanceStore::new());
        let report =
            run_dist(&flat_def(25), test_input(10), Arc::new(FileStore::new()), prov, &cfg)
                .expect("elastic run");
        assert_eq!(report.finished, 10);
        assert_eq!(report.failed_attempts, 0, "drain-then-retire loses no work");
        assert_eq!(report.blacklisted, 0);
        assert_eq!(report.peak_workers, 3, "the policy grew to its cap");
        assert_eq!(report.scale_events, expected_qd_trace());
        assert_eq!(sorted_ints(&report), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_killed_during_scale_up_is_reassigned() {
        // launch-sequence 1 is the first *scaled-up* worker: it dies the
        // moment it receives its first activation, mid-growth
        let cfg = flat_cfg(25)
            .with_scheduler(qd_factory(3))
            .with_kill_plan(KillPlan { worker: 1, after_runs: 1 });
        let prov = Arc::new(ProvenanceStore::new());
        let report = run_dist(
            &flat_def(25),
            test_input(10),
            Arc::new(FileStore::new()),
            Arc::clone(&prov),
            &cfg,
        )
        .expect("run completes despite losing a scaled-up worker");
        assert_eq!(report.finished, 10);
        assert_eq!(report.failed_attempts, 1, "exactly the activation lost with the worker");
        assert_eq!(report.blacklisted, 0);
        assert!(report.peak_workers <= 3);
        assert_eq!(sorted_ints(&report), (0..10).collect::<Vec<_>>());
        let failed = prov
            .query_rows("SELECT taskid FROM hactivation WHERE status = 'FAILED'", &[])
            .unwrap()
            .rows
            .len();
        assert_eq!(failed, 1);
    }

    #[test]
    fn autoscaling_preserves_canonical_provenance() {
        let fixed = dist_cfg(1).with_max_in_flight(1);
        let (freport, fprov, _) = run(&fixed);

        let elastic = fixed.clone().with_scheduler(qd_factory(3));
        let (ereport, eprov, _) = run(&elastic);
        assert_eq!(ereport.finished, freport.finished);
        assert!(!ereport.scale_events.is_empty(), "the policy must actually scale");
        assert_eq!(
            export_provn_canonical(&eprov),
            export_provn_canonical(&fprov),
            "fixed and autoscaled canonical PROV-N must be byte-identical"
        );
    }

    // ------------------------------------------- wire-protocol hardening

    #[test]
    fn oversized_result_degrades_to_failed_attempt() {
        // tuple 1 produces a >64 MiB artifact: its Done frame is refused
        // before a byte hits the wire, the worker degrades to a Failed
        // outcome, and with a zero retry budget the attempt lands as a
        // FAILED row — never a worker loss or a blacklist
        let def = WorkflowDef {
            tag: "big-test".into(),
            description: "oversized result drill".into(),
            expdir: "/exp/big".into(),
            activities: vec![Activity::map(
                "big",
                &["x"],
                Arc::new(|t, ctx| {
                    for row in t {
                        if row[0] == Value::Int(1) {
                            ctx.write_file("huge.bin", "x".repeat(65 << 20));
                        }
                    }
                    Ok(t.to_vec())
                }),
            )],
            deps: vec![vec![]],
        };
        let resolver_def = def.clone();
        let tel = Telemetry::attached();
        let cfg = DistConfig::new()
            .with_workers(1)
            .with_resolver(Arc::new(move |spec| (spec == "big-test").then(|| resolver_def.clone())))
            .with_spec("big-test")
            .with_max_in_flight(1)
            .with_max_retries(0)
            .with_telemetry(tel);
        let prov = Arc::new(ProvenanceStore::new());
        let report =
            run_dist(&def, test_input(3), Arc::new(FileStore::new()), Arc::clone(&prov), &cfg)
                .expect("run survives the oversized frame");
        assert_eq!(report.finished, 2);
        assert_eq!(report.failed_attempts, 1);
        assert_eq!(report.blacklisted, 0, "both peers stayed alive: no loss, no poison");
        let snap = report.metrics.expect("telemetry attached");
        assert_eq!(snap.counter("proto.oversized_done"), Some(1));
    }

    #[test]
    fn master_loop_does_not_busy_spin() {
        // ~0.7 s of real waiting on slow activations: an event-driven
        // master wakes on its 50 ms tick plus one wakeup per frame (tens
        // of iterations); a busy-spinning one would log thousands
        let tel = Telemetry::attached();
        let cfg = DistConfig::new()
            .with_workers(1)
            .with_resolver(resolver(300))
            .with_spec("dist-test")
            .with_max_in_flight(1)
            .with_telemetry(tel);
        let prov = Arc::new(ProvenanceStore::new());
        let report = run_dist(
            &test_def(300),
            test_input(2),
            Arc::new(FileStore::new()),
            Arc::clone(&prov),
            &cfg,
        )
        .expect("slow run");
        assert_eq!(report.finished, 5); // 2 stage + 2 score + 1 reduce
        let snap = report.metrics.expect("telemetry attached");
        let wakeups = snap.counter("dist.master.wakeups").expect("counted every iteration");
        assert!(wakeups > 0);
        assert!(wakeups < 200, "master loop spun {wakeups} times for a ~0.7 s run");
    }

    #[test]
    fn dist_runs_resume_from_prior_dist_runs() {
        let prov = Arc::new(ProvenanceStore::new());
        let files = Arc::new(FileStore::new());
        let cfg = dist_cfg(2);
        let first =
            run_dist(&test_def(0), test_input(4), Arc::clone(&files), Arc::clone(&prov), &cfg)
                .expect("first run");
        assert_eq!(first.finished, 9);

        let resumed = run_dist(
            &test_def(0),
            test_input(4),
            Arc::clone(&files),
            Arc::clone(&prov),
            &cfg.clone().with_resume_from(first.workflow),
        )
        .expect("resumed run");
        assert_eq!(resumed.finished, 0, "nothing re-executes");
        assert_eq!(resumed.resumed, first.finished);
        assert_eq!(
            resumed.outputs.last().unwrap().tuples,
            vec![vec![Value::Int(18)]],
            "resumed outputs reconstruct from provenance"
        );
    }

    // ------------------------------------------- observability plane

    use crate::obs::http_get;

    #[test]
    fn live_endpoint_streams_metrics_health_and_events_mid_run() {
        let events = EventLog::new();
        let bound = BoundAddr::new();
        let cfg = DistConfig::new()
            .with_workers(2)
            .with_resolver(resolver(80))
            .with_spec("dist-test")
            .with_max_in_flight(1)
            .with_heartbeat(Duration::from_millis(15))
            .with_metrics_addr("127.0.0.1:0")
            .with_metrics_bound(bound.clone())
            .with_events(events.clone());
        let handle = std::thread::spawn(move || {
            let prov = Arc::new(ProvenanceStore::new());
            run_dist(&test_def(80), test_input(12), Arc::new(FileStore::new()), prov, &cfg)
                .expect("observed run")
        });
        let addr = bound.wait(Duration::from_secs(10)).expect("endpoint must come up");
        let get = |path: &str| {
            http_get(addr, path, Duration::from_secs(2)).expect("endpoint reachable mid-run")
        };

        // two mid-run scrapes of valid Prometheus text, with the merged
        // worker activation counter strictly increasing between them. The
        // first scrape waits for the first streamed Stats frame — with 25
        // activations at ≥80 ms each over 2 serialized workers, that is
        // early in a >1 s run, so everything up to the second scrape
        // happens safely mid-run.
        let finished_total = |body: &str| -> Option<f64> {
            let samples = telemetry::prom::parse(body)
                .unwrap_or_else(|off| panic!("exposition must parse, bad line {off}:\n{body}"));
            samples.into_iter().find(|s| s.name == "scidock_worker_finished_total").map(|s| s.value)
        };
        let deadline = Instant::now() + Duration::from_secs(20);
        let first = loop {
            assert!(Instant::now() < deadline, "no Stats frame ever reached /metrics");
            let (status, body) = get("/metrics");
            assert_eq!(status, 200);
            match finished_total(&body) {
                Some(v) if v > 0.0 => break v,
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        };

        // the other exposition formats hold up mid-run
        let (status, body) = get("/snapshot.json");
        assert_eq!(status, 200);
        telemetry::json::validate(&body)
            .unwrap_or_else(|off| panic!("invalid snapshot JSON at byte {off}"));
        let (status, body) = get("/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"phase\":\"running\""), "mid-run phase: {body}");
        let (status, body) = get("/events");
        assert_eq!(status, 200);
        for line in body.lines() {
            telemetry::json::validate(line)
                .unwrap_or_else(|off| panic!("invalid event JSON at byte {off}: {line}"));
        }

        let second = loop {
            assert!(
                Instant::now() < deadline,
                "activation counter never increased past {first} between scrapes"
            );
            let (status, body) = get("/metrics");
            assert_eq!(status, 200);
            match finished_total(&body) {
                Some(v) if v > first => break v,
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        assert!(second > first);

        let report = handle.join().expect("run thread");
        assert_eq!(report.finished, 25); // 12 stage + 12 score + 1 reduce
        let evs = events.events();
        assert_eq!(evs.first().map(|e| e.kind.as_str()), Some("run_started"));
        assert_eq!(evs.last().map(|e| e.kind.as_str()), Some("run_finished"));
        assert_eq!(evs.iter().filter(|e| e.kind == "activation_finished").count(), 25);
    }

    #[test]
    fn healthz_reports_a_killed_worker_dead_mid_run() {
        let bound = BoundAddr::new();
        let cfg = DistConfig::new()
            .with_workers(2)
            .with_resolver(resolver(100))
            .with_spec("dist-test")
            .with_max_in_flight(1)
            .with_heartbeat(Duration::from_millis(15))
            .with_metrics_addr("127.0.0.1:0")
            .with_metrics_bound(bound.clone())
            // worker 0 dies on its first activation, early in the run
            .with_kill_plan(KillPlan { worker: 0, after_runs: 1 });
        let handle = std::thread::spawn(move || {
            let prov = Arc::new(ProvenanceStore::new());
            run_dist(&test_def(100), test_input(8), Arc::new(FileStore::new()), prov, &cfg)
                .expect("run survives the kill")
        });
        let addr = bound.wait(Duration::from_secs(10)).expect("endpoint must come up");
        // the master sees the socket drop the moment the worker dies; the
        // health view must flip alive=false while the run is still going
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut saw_dead_mid_run = false;
        while Instant::now() < deadline && !saw_dead_mid_run {
            let (status, body) =
                http_get(addr, "/healthz", Duration::from_secs(2)).expect("healthz reachable");
            assert_eq!(status, 200);
            saw_dead_mid_run = body.contains("\"alive\":false");
            if !saw_dead_mid_run {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        let report = handle.join().expect("run thread");
        assert!(saw_dead_mid_run, "/healthz never reported the killed worker dead mid-run");
        assert_eq!(report.finished, 17); // 8 stage + 8 score + 1 reduce
    }

    #[test]
    fn straggler_is_flagged_before_its_activation_completes() {
        // tuple 0 runs ~30× longer than its peers; with a 150 ms floor and
        // a 1× p95 factor the sweep must flag it while it is in flight
        let def = WorkflowDef {
            tag: "strag-test".into(),
            description: "straggler drill".into(),
            expdir: "/exp/strag".into(),
            activities: vec![Activity::map(
                "work",
                &["x"],
                Arc::new(|t, _| {
                    for row in t {
                        let ms = if row[0] == Value::Int(0) { 1200 } else { 40 };
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    Ok(t.to_vec())
                }),
            )],
            deps: vec![vec![]],
        };
        let resolver_def = def.clone();
        let events = EventLog::new();
        let tel = Telemetry::attached();
        let cfg = DistConfig::new()
            .with_workers(2)
            .with_resolver(Arc::new(move |spec| {
                (spec == "strag-test").then(|| resolver_def.clone())
            }))
            .with_spec("strag-test")
            .with_max_in_flight(1)
            .with_heartbeat(Duration::from_millis(15))
            .with_straggler(1.0, 150)
            .with_telemetry(tel)
            .with_events(events.clone());
        let prov = Arc::new(ProvenanceStore::new());
        let report =
            run_dist(&def, test_input(6), Arc::new(FileStore::new()), Arc::clone(&prov), &cfg)
                .expect("straggler run completes");
        assert_eq!(report.finished, 6, "a straggler is observed, never killed");

        let evs = events.events();
        let strag = evs
            .iter()
            .find(|e| e.kind == "straggler")
            .expect("the slow activation must be flagged");
        let key = strag
            .fields
            .iter()
            .find(|(k, _)| k == "key")
            .map(|(_, v)| v.clone())
            .expect("straggler event names its activation");
        assert_eq!(key, "0", "the slow tuple is the straggler");
        let finished_seq = evs
            .iter()
            .find(|e| {
                e.kind == "activation_finished"
                    && e.fields.iter().any(|(k, v)| k == "key" && v == &key)
            })
            .map(|e| e.seq)
            .expect("the straggler still finishes");
        assert!(
            strag.seq < finished_seq,
            "straggler must be flagged before its activation completes \
             (straggler seq {}, finished seq {finished_seq})",
            strag.seq
        );
        let snap = report.metrics.expect("telemetry attached");
        assert!(snap.counter("dist.stragglers").unwrap_or(0) >= 1);
    }

    #[test]
    fn observability_plane_never_perturbs_canonical_provenance() {
        let (plain_report, plain_prov, _) = run(&dist_cfg(2));

        let events = EventLog::new();
        let bound = BoundAddr::new();
        let observed = dist_cfg(2)
            .with_metrics_addr("127.0.0.1:0")
            .with_metrics_bound(bound)
            .with_events(events.clone())
            .with_straggler(1.0, 100);
        let (obs_report, obs_prov, _) = run(&observed);

        assert_eq!(obs_report.finished, plain_report.finished);
        assert!(!events.is_empty(), "the observed run must actually emit events");
        assert_eq!(
            export_provn_canonical(&obs_prov),
            export_provn_canonical(&plain_prov),
            "canonical PROV-N must be byte-identical with the obs plane on or off"
        );
    }

    /// S3 guard: every metric name emitted by a fully-exercised run of all
    /// three backends must appear in `telemetry::registry` (and hence in the
    /// DESIGN.md §12 table) — a silent rename breaks dashboards scraping
    /// `/metrics`, so it must break this test first.
    #[test]
    fn every_emitted_metric_name_is_in_the_registry() {
        use telemetry::{registry, Telemetry};

        // distributed: master wakeups, fleet size, worker.* counters,
        // activation histograms, heartbeat/straggler plumbing
        let dtel = Telemetry::attached();
        let cfg = dist_cfg(2)
            .with_telemetry(dtel)
            .with_max_in_flight(1)
            .with_straggler(1.0, 1)
            .with_heartbeat(Duration::from_millis(10));
        let (report, _, _) = run(&cfg);
        let dsnap = report.metrics.expect("dist telemetry attached");
        assert!(!dsnap.counters.is_empty(), "dist run must emit counters");
        assert_eq!(registry::unregistered(&dsnap), Vec::<String>::new());

        // local: pool.* counters/histograms/gauges + activation histograms
        let ltel = Telemetry::attached();
        let lreport = crate::localbackend::run_local_impl(
            &test_def(0),
            test_input(4),
            Arc::new(FileStore::new()),
            Arc::new(ProvenanceStore::new()),
            &LocalConfig::new().with_threads(2).with_telemetry(ltel.clone()),
        )
        .expect("local run");
        assert_eq!(lreport.finished, 9);
        let lsnap = ltel.snapshot().expect("local telemetry attached");
        assert!(!lsnap.histograms.is_empty(), "local run must emit histograms");
        assert_eq!(registry::unregistered(&lsnap), Vec::<String>::new());

        // simulated: sim.* counters, vm acquire/release, ready-queue gauge
        let stel = Telemetry::attached();
        let tasks: Vec<crate::simbackend::SimTask> = (0..6)
            .map(|i| crate::simbackend::SimTask {
                activity_index: 0,
                pair_key: format!("pair{i}"),
                nominal_s: 1.0 + i as f64 * 0.1,
                in_bytes: 0,
                out_bytes: 0,
                deps: vec![],
                poison: false,
            })
            .collect();
        let scfg = crate::simbackend::SimConfig::new().with_seed(11).with_telemetry(stel);
        let sreport = crate::simbackend::simulate_tasks(&tasks, &scfg, None);
        let ssnap = sreport.metrics.expect("sim telemetry attached");
        assert!(ssnap.counter("sim.dispatched").unwrap_or(0) >= 6);
        assert_eq!(registry::unregistered(&ssnap), Vec::<String>::new());

        // served: campaign.* counters/gauges/histograms layered over the
        // local activation machinery
        let vtel = Telemetry::attached();
        let resolver: crate::serve::CampaignResolver = Arc::new(|spec: &str| {
            (spec == "ok").then(|| crate::backend::Workflow::new(test_def(0), test_input(4)))
        });
        let daemon = crate::serve::Daemon::start(
            crate::serve::ServeConfig::new().with_workers(2).with_telemetry(vtel.clone()),
            resolver,
            Arc::new(ProvenanceStore::new()),
        )
        .expect("daemon starts");
        let mut client = crate::serve::ServeClient::connect(daemon.addr()).expect("connect");
        assert!(matches!(
            client.submit("t0", 0, "nope").expect("submit io"),
            crate::serve::SubmitOutcome::Rejected { .. }
        ));
        let crate::serve::SubmitOutcome::Accepted { id } =
            client.submit("t0", 0, "ok").expect("submit io")
        else {
            panic!("valid spec must be admitted");
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let st = client.status(id).expect("status io");
            if st.state == crate::serve::CampaignState::Finished {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "campaign stuck in {:?}", st.state);
            std::thread::sleep(Duration::from_millis(20));
        }
        daemon.shutdown();
        let vsnap = vtel.snapshot().expect("serve telemetry attached");
        assert_eq!(vsnap.counter("campaign.finished"), Some(1));
        assert_eq!(vsnap.counter("campaign.rejected"), Some(1));
        assert!(
            vsnap.histograms.iter().any(|h| h.name == "campaign.first_result"),
            "first-result latency must be recorded"
        );
        assert_eq!(registry::unregistered(&vsnap), Vec::<String>::new());
    }
}
