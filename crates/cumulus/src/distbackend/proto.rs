//! The master–worker wire protocol: length-prefixed binary frames over TCP.
//!
//! Layout of every frame on the wire:
//!
//! ```text
//! [u32 LE body length][body]
//! body := [u8 frame tag][fields...]
//! ```
//!
//! Integers are little-endian and fixed-width; strings are
//! `[u32 len][utf-8 bytes]`; options are `[u8 0|1][payload]`; vectors are
//! `[u32 count][items]`. The first frame a worker sends ([`Frame::Ready`])
//! opens with the `SDW1` magic so the master can reject strangers before
//! trusting anything else on the socket. Bodies are capped at 64 MiB — a
//! frame above the cap is a protocol error, not an allocation.

use std::io::{Read, Write};

use provenance::Value;

use crate::algebra::Tuple;

/// `"SDW1"` — SciDock Worker protocol, version 1.
pub(crate) const MAGIC: u32 = 0x5344_5731;

/// Upper bound on a frame body; larger lengths are rejected before reading.
pub(crate) const MAX_FRAME: usize = 64 << 20;

/// The fate the master rolled for an attempt, shipped to the worker so
/// failure injection behaves exactly like the local backend (the worker
/// executes the activation either way; a `Fail` fate discards its result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WireFate {
    /// Execute and keep the result.
    Ok,
    /// Execute, then report an injected failure (work is lost).
    Fail,
}

/// A telemetry span measured on the worker's clock, shipped back in the
/// result frame and merged into the master's collector with a clock offset
/// (see `telemetry::Telemetry::import_spans`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WireSpan {
    /// Span name (the activity tag).
    pub name: String,
    /// Start, nanoseconds on the worker's epoch.
    pub start_ns: u64,
    /// End, nanoseconds on the worker's epoch.
    pub end_ns: u64,
    /// Optional human detail.
    pub detail: Option<String>,
}

/// Result of one activation attempt on a worker.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WireOutcome {
    /// The activation finished; everything the master needs to write
    /// provenance rides along.
    Finished {
        /// Output tuples.
        tuples: Vec<Tuple>,
        /// Produced files as `(path, contents)`, in production order.
        files: Vec<(String, String)>,
        /// Extracted domain parameters.
        params: Vec<(String, Option<f64>, Option<String>)>,
        /// Worker-side telemetry spans.
        spans: Vec<WireSpan>,
    },
    /// The activation failed (injected fate or a domain error).
    Failed {
        /// Error description.
        error: String,
        /// Files written before the failure (kept for file-store parity
        /// with the local backend, which shares one store).
        files: Vec<(String, String)>,
        /// Worker-side telemetry spans.
        spans: Vec<WireSpan>,
    },
}

/// Every message exchanged between master and worker.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Frame {
    /// Worker → master, first frame on the socket: magic + worker identity.
    Ready {
        /// Worker OS process id (0 for in-process workers).
        pid: u32,
        /// Worker clock at send time, nanoseconds on its epoch — the
        /// master derives the clock offset for span merging from this.
        now_ns: u64,
    },
    /// Master → worker, in response to `Ready`.
    Hello {
        /// Master-assigned worker id (also its telemetry lane).
        worker_id: u32,
        /// Workflow spec name the worker must resolve and load.
        spec: String,
        /// Requested heartbeat interval in milliseconds.
        heartbeat_ms: u64,
    },
    /// Master → worker: execute one activation.
    Run {
        /// Master-assigned job id, echoed in `Done`.
        job: u64,
        /// Activity index into the resolved workflow.
        activity: u32,
        /// Working-directory index (names the workdir only).
        part_index: u64,
        /// Retry attempt number (0-based).
        attempt: u32,
        /// Injected fate for this attempt.
        fate: WireFate,
        /// Absolute working directory for the activation.
        workdir: String,
        /// Input tuples.
        part: Vec<Tuple>,
    },
    /// Worker → master: read-through miss on the worker's file store.
    FileReq {
        /// Worker-chosen request id, echoed in `FileData`.
        req: u64,
        /// Path to fetch.
        path: String,
    },
    /// Master → worker: answer to `FileReq` (`None` = no such file).
    FileData {
        /// Echoed request id.
        req: u64,
        /// File contents, if the master has the file.
        contents: Option<String>,
    },
    /// Worker → master: liveness beacon, sent on a fixed interval.
    Heartbeat {
        /// Job currently executing, if any.
        job: Option<u64>,
        /// How long that job has been running, in milliseconds.
        job_elapsed_ms: u64,
    },
    /// Worker → master: an activation attempt finished (either way).
    Done {
        /// Echoed job id.
        job: u64,
        /// What happened.
        outcome: WireOutcome,
    },
    /// Master → worker: drain and exit.
    Shutdown,
    /// Master → worker: finish everything already queued, confirm with
    /// [`Frame::Bye`], then exit. Sent when the fleet controller retires a
    /// worker; the master guarantees no further `Run` frames follow.
    Drain,
    /// Worker → master: drain complete, socket about to close. Lets the
    /// master tell a *retired* worker from a *lost* one — no failure rows,
    /// no reassignment, no blacklist pressure.
    Bye {
        /// Activation attempts this worker completed over its lifetime.
        completed: u64,
    },
    /// Worker → master: metrics streamed at heartbeat cadence — the growth
    /// of the worker's counters and histograms since its previous `Stats`
    /// frame. The master absorbs each delta into its own collector, so a
    /// cluster-wide merged [`telemetry::MetricsSnapshot`] exists *mid-run*
    /// rather than only after every `Done` has landed. Deltas ride TCP, so
    /// nothing is lost or double-counted.
    Stats {
        /// Counter increments and histogram sample deltas since the last
        /// `Stats` frame from this worker.
        delta: telemetry::StatsDelta,
    },
}

// ---------------------------------------------------------------- encoding

pub(crate) struct Buf {
    out: Vec<u8>,
    err: Option<String>,
}

impl Buf {
    pub(crate) fn new() -> Buf {
        Buf { out: Vec::new(), err: None }
    }
    pub(crate) fn finish(self) -> Result<Vec<u8>, String> {
        match self.err {
            None => Ok(self.out),
            Some(e) => Err(e),
        }
    }
    pub(crate) fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn i64(&mut self, v: i64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    /// Emit a length prefix, refusing values the u32 cannot hold: an
    /// unchecked `as u32` would silently truncate a ≥ 4 GiB payload and
    /// desync the stream for every frame after it.
    pub(crate) fn len32(&mut self, n: usize, what: &str) {
        match u32::try_from(n) {
            Ok(v) => self.u32(v),
            Err(_) => {
                if self.err.is_none() {
                    self.err = Some(format!("{what} length {n} overflows the u32 length prefix"));
                }
                self.u32(0);
            }
        }
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.len32(s.len(), "string");
        self.out.extend_from_slice(s.as_bytes());
    }
    pub(crate) fn opt_str(&mut self, s: &Option<String>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }
    pub(crate) fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Int(i) => {
                self.u8(1);
                self.i64(*i);
            }
            Value::Float(x) => {
                self.u8(2);
                self.f64(*x);
            }
            Value::Text(s) => {
                self.u8(3);
                self.str(s);
            }
            Value::Timestamp(t) => {
                self.u8(4);
                self.f64(*t);
            }
            Value::Bool(b) => {
                self.u8(5);
                self.u8(*b as u8);
            }
        }
    }
    pub(crate) fn tuples(&mut self, ts: &[Tuple]) {
        self.len32(ts.len(), "tuple vector");
        for t in ts {
            self.len32(t.len(), "tuple");
            for v in t {
                self.value(v);
            }
        }
    }
    fn spans(&mut self, ss: &[WireSpan]) {
        self.len32(ss.len(), "span vector");
        for s in ss {
            self.str(&s.name);
            self.u64(s.start_ns);
            self.u64(s.end_ns);
            self.opt_str(&s.detail);
        }
    }
    fn files(&mut self, fs: &[(String, String)]) {
        self.len32(fs.len(), "file vector");
        for (p, c) in fs {
            self.str(p);
            self.str(c);
        }
    }
    fn stats_delta(&mut self, d: &telemetry::StatsDelta) {
        self.len32(d.counters.len(), "counter vector");
        for (name, v) in &d.counters {
            self.str(name);
            self.u64(*v);
        }
        self.len32(d.hists.len(), "histogram vector");
        for (name, snap) in &d.hists {
            self.str(name);
            for w in snap.to_words() {
                self.u64(w);
            }
        }
    }
}

/// Encode a frame body (without the length prefix). Fails if any length
/// field overflows its u32 prefix — nothing is emitted for such a frame.
pub(crate) fn encode(frame: &Frame) -> Result<Vec<u8>, String> {
    let mut b = Buf::new();
    match frame {
        Frame::Ready { pid, now_ns } => {
            b.u8(0);
            b.u32(MAGIC);
            b.u32(*pid);
            b.u64(*now_ns);
        }
        Frame::Hello { worker_id, spec, heartbeat_ms } => {
            b.u8(1);
            b.u32(*worker_id);
            b.str(spec);
            b.u64(*heartbeat_ms);
        }
        Frame::Run { job, activity, part_index, attempt, fate, workdir, part } => {
            b.u8(2);
            b.u64(*job);
            b.u32(*activity);
            b.u64(*part_index);
            b.u32(*attempt);
            b.u8(match fate {
                WireFate::Ok => 0,
                WireFate::Fail => 1,
            });
            b.str(workdir);
            b.tuples(part);
        }
        Frame::FileReq { req, path } => {
            b.u8(3);
            b.u64(*req);
            b.str(path);
        }
        Frame::FileData { req, contents } => {
            b.u8(4);
            b.u64(*req);
            b.opt_str(contents);
        }
        Frame::Heartbeat { job, job_elapsed_ms } => {
            b.u8(5);
            match job {
                None => b.u8(0),
                Some(j) => {
                    b.u8(1);
                    b.u64(*j);
                }
            }
            b.u64(*job_elapsed_ms);
        }
        Frame::Done { job, outcome } => {
            b.u8(6);
            b.u64(*job);
            match outcome {
                WireOutcome::Finished { tuples, files, params, spans } => {
                    b.u8(0);
                    b.tuples(tuples);
                    b.files(files);
                    b.len32(params.len(), "parameter vector");
                    for (name, num, text) in params {
                        b.str(name);
                        match num {
                            None => b.u8(0),
                            Some(x) => {
                                b.u8(1);
                                b.f64(*x);
                            }
                        }
                        b.opt_str(text);
                    }
                    b.spans(spans);
                }
                WireOutcome::Failed { error, files, spans } => {
                    b.u8(1);
                    b.str(error);
                    b.files(files);
                    b.spans(spans);
                }
            }
        }
        Frame::Shutdown => b.u8(7),
        Frame::Drain => b.u8(8),
        Frame::Bye { completed } => {
            b.u8(9);
            b.u64(*completed);
        }
        Frame::Stats { delta } => {
            b.u8(10);
            b.stats_delta(delta);
        }
    }
    b.finish()
}

// ---------------------------------------------------------------- decoding

pub(crate) struct Cur<'a> {
    buf: &'a [u8],
    at: usize,
}

type DecodeResult<T> = Result<T, String>;

impl<'a> Cur<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, at: 0 }
    }

    pub(crate) fn at_end(&self) -> bool {
        self.at == self.buf.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.at + n > self.buf.len() {
            return Err(format!("truncated frame: wanted {n} bytes at {}", self.at));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn str(&mut self) -> DecodeResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid utf-8 in string".to_string())
    }
    pub(crate) fn opt_str(&mut self) -> DecodeResult<Option<String>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            t => Err(format!("bad option tag {t}")),
        }
    }
    pub(crate) fn value(&mut self) -> DecodeResult<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(self.f64()?),
            3 => Value::Text(self.str()?),
            4 => Value::Timestamp(self.f64()?),
            5 => Value::Bool(self.u8()? != 0),
            t => return Err(format!("bad value tag {t}")),
        })
    }
    pub(crate) fn tuples(&mut self) -> DecodeResult<Vec<Tuple>> {
        let n = self.u32()? as usize;
        let mut ts = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let k = self.u32()? as usize;
            let mut t = Vec::with_capacity(k.min(1 << 12));
            for _ in 0..k {
                t.push(self.value()?);
            }
            ts.push(t);
        }
        Ok(ts)
    }
    fn spans(&mut self) -> DecodeResult<Vec<WireSpan>> {
        let n = self.u32()? as usize;
        let mut ss = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            ss.push(WireSpan {
                name: self.str()?,
                start_ns: self.u64()?,
                end_ns: self.u64()?,
                detail: self.opt_str()?,
            });
        }
        Ok(ss)
    }
    fn files(&mut self) -> DecodeResult<Vec<(String, String)>> {
        let n = self.u32()? as usize;
        let mut fs = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            fs.push((self.str()?, self.str()?));
        }
        Ok(fs)
    }
    fn stats_delta(&mut self) -> DecodeResult<telemetry::StatsDelta> {
        let mut d = telemetry::StatsDelta::default();
        let n = self.u32()? as usize;
        d.counters.reserve(n.min(1 << 12));
        for _ in 0..n {
            d.counters.push((self.str()?, self.u64()?));
        }
        let n = self.u32()? as usize;
        d.hists.reserve(n.min(1 << 12));
        for _ in 0..n {
            let name = self.str()?;
            let mut words = [0u64; 3 + telemetry::HIST_BUCKETS];
            for w in words.iter_mut() {
                *w = self.u64()?;
            }
            let snap = telemetry::HistogramSnapshot::from_words(&words)
                .ok_or_else(|| "bad histogram snapshot".to_string())?;
            d.hists.push((name, snap));
        }
        Ok(d)
    }
}

/// Decode a frame body (without the length prefix).
pub(crate) fn decode(buf: &[u8]) -> DecodeResult<Frame> {
    let mut c = Cur { buf, at: 0 };
    let frame = match c.u8()? {
        0 => {
            let magic = c.u32()?;
            if magic != MAGIC {
                return Err(format!("bad magic {magic:#x}"));
            }
            Frame::Ready { pid: c.u32()?, now_ns: c.u64()? }
        }
        1 => Frame::Hello { worker_id: c.u32()?, spec: c.str()?, heartbeat_ms: c.u64()? },
        2 => Frame::Run {
            job: c.u64()?,
            activity: c.u32()?,
            part_index: c.u64()?,
            attempt: c.u32()?,
            fate: match c.u8()? {
                0 => WireFate::Ok,
                1 => WireFate::Fail,
                t => return Err(format!("bad fate tag {t}")),
            },
            workdir: c.str()?,
            part: c.tuples()?,
        },
        3 => Frame::FileReq { req: c.u64()?, path: c.str()? },
        4 => Frame::FileData { req: c.u64()?, contents: c.opt_str()? },
        5 => Frame::Heartbeat {
            job: match c.u8()? {
                0 => None,
                1 => Some(c.u64()?),
                t => return Err(format!("bad option tag {t}")),
            },
            job_elapsed_ms: c.u64()?,
        },
        6 => {
            let job = c.u64()?;
            let outcome = match c.u8()? {
                0 => WireOutcome::Finished {
                    tuples: c.tuples()?,
                    files: c.files()?,
                    params: {
                        let n = c.u32()? as usize;
                        let mut ps = Vec::with_capacity(n.min(1 << 16));
                        for _ in 0..n {
                            ps.push((
                                c.str()?,
                                match c.u8()? {
                                    0 => None,
                                    1 => Some(c.f64()?),
                                    t => return Err(format!("bad option tag {t}")),
                                },
                                c.opt_str()?,
                            ));
                        }
                        ps
                    },
                    spans: c.spans()?,
                },
                1 => WireOutcome::Failed { error: c.str()?, files: c.files()?, spans: c.spans()? },
                t => return Err(format!("bad outcome tag {t}")),
            };
            Frame::Done { job, outcome }
        }
        7 => Frame::Shutdown,
        8 => Frame::Drain,
        9 => Frame::Bye { completed: c.u64()? },
        10 => Frame::Stats { delta: c.stats_delta()? },
        t => return Err(format!("unknown frame tag {t}")),
    };
    if c.at != buf.len() {
        return Err(format!("{} trailing bytes after frame", buf.len() - c.at));
    }
    Ok(frame)
}

/// Marker prefix in the error message of a frame refused for size, so
/// callers can tell "my frame was too big" (recoverable: degrade the
/// payload) from a genuinely broken stream.
const FRAME_TOO_BIG: &str = "frame exceeds the 64 MiB cap";

/// True if `e` is [`write_frame`]'s refusal of an oversized frame.
pub(crate) fn frame_too_big(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::InvalidData && e.to_string().starts_with(FRAME_TOO_BIG)
}

/// Write one length-prefixed frame and flush it.
///
/// A frame that encodes above [`MAX_FRAME`] (or whose lengths overflow
/// their u32 prefixes) is refused with `InvalidData` **before any byte is
/// written**, so the stream stays framed and the connection stays usable —
/// the peer would reject the oversized frame anyway, but only after the
/// sender had already desynced the socket.
pub(crate) fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    let body =
        encode(frame).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    if body.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{FRAME_TOO_BIG}: body is {} bytes", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Read one length-prefixed frame; decode failures surface as
/// `InvalidData` I/O errors so callers treat them like a broken peer.
pub(crate) fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Frame> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    decode(&body).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let body = encode(&f).unwrap();
        assert_eq!(decode(&body).unwrap(), f, "roundtrip mismatch");
        // and through a byte pipe with the length prefix
        let mut wire = Vec::new();
        write_frame(&mut wire, &f).unwrap();
        let mut cursor = &wire[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), f);
        assert!(cursor.is_empty());
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::Ready { pid: 4242, now_ns: 17 });
        roundtrip(Frame::Hello { worker_id: 3, spec: "scidock:ad4:2x8".into(), heartbeat_ms: 150 });
        roundtrip(Frame::Run {
            job: 9,
            activity: 2,
            part_index: 31,
            attempt: 1,
            fate: WireFate::Fail,
            workdir: "/exp/dock/31".into(),
            part: vec![
                vec![
                    Value::Int(-5),
                    Value::Float(2.5),
                    Value::Text("1AEC".into()),
                    Value::Null,
                    Value::Timestamp(12.125),
                    Value::Bool(true),
                ],
                vec![Value::Text("ZINC04".into())],
            ],
        });
        roundtrip(Frame::FileReq { req: 7, path: "/exp/prep/0/r.pdbqt".into() });
        roundtrip(Frame::FileData { req: 7, contents: Some("ATOM…".into()) });
        roundtrip(Frame::FileData { req: 8, contents: None });
        roundtrip(Frame::Heartbeat { job: None, job_elapsed_ms: 0 });
        roundtrip(Frame::Heartbeat { job: Some(9), job_elapsed_ms: 340 });
        roundtrip(Frame::Done {
            job: 9,
            outcome: WireOutcome::Finished {
                tuples: vec![vec![Value::Float(-7.25)]],
                files: vec![("/exp/dock/31/out.dlg".into(), "DOCKED".into())],
                params: vec![
                    ("feb".into(), Some(-7.25), None),
                    ("pose".into(), None, Some("model 1".into())),
                ],
                spans: vec![WireSpan {
                    name: "dock".into(),
                    start_ns: 10,
                    end_ns: 999,
                    detail: Some("job=9".into()),
                }],
            },
        });
        roundtrip(Frame::Done {
            job: 10,
            outcome: WireOutcome::Failed {
                error: "missing input file".into(),
                files: vec![],
                spans: vec![],
            },
        });
        roundtrip(Frame::Shutdown);
    }

    #[test]
    fn fleet_frames_roundtrip() {
        // The scale-up handshake reuses Ready/Hello mid-run …
        roundtrip(Frame::Ready { pid: 0, now_ns: u64::MAX });
        roundtrip(Frame::Hello {
            worker_id: 17,
            spec: "unit:sleep:6:50".into(),
            heartbeat_ms: 100,
        });
        // … and drain-then-retire adds Drain/Bye.
        roundtrip(Frame::Drain);
        roundtrip(Frame::Bye { completed: 0 });
        roundtrip(Frame::Bye { completed: 12_345_678 });
    }

    #[test]
    fn stats_frames_roundtrip() {
        use telemetry::{HistogramSnapshot, StatsDelta};
        roundtrip(Frame::Stats { delta: StatsDelta::default() });
        let mut h = HistogramSnapshot::new();
        for v in [0u64, 17, 4096, 1 << 40, u64::MAX] {
            h.record(v);
        }
        roundtrip(Frame::Stats {
            delta: StatsDelta {
                counters: vec![("worker.jobs".into(), 3), ("worker.failures".into(), 1)],
                hists: vec![("activation.dock".into(), h.clone()), ("rank".into(), h)],
            },
        });
        // a truncated histogram body is a decode error, not a panic
        let body = encode(&Frame::Stats {
            delta: StatsDelta {
                counters: vec![],
                hists: vec![("h".into(), HistogramSnapshot::new())],
            },
        })
        .unwrap();
        assert!(decode(&body[..body.len() - 4]).unwrap_err().contains("truncated"));
    }

    #[test]
    fn rejects_bad_magic_truncation_and_trailing_bytes() {
        let mut body = encode(&Frame::Ready { pid: 1, now_ns: 2 }).unwrap();
        body[1] ^= 0xFF; // corrupt the magic
        assert!(decode(&body).unwrap_err().contains("bad magic"));

        let body =
            encode(&Frame::Hello { worker_id: 1, spec: "s".into(), heartbeat_ms: 1 }).unwrap();
        assert!(decode(&body[..body.len() - 2]).unwrap_err().contains("truncated"));

        let mut body = encode(&Frame::Shutdown).unwrap();
        body.push(0);
        assert!(decode(&body).unwrap_err().contains("trailing"));

        assert!(decode(&[99]).unwrap_err().contains("unknown frame tag"));
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = &wire[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_write_is_refused_without_touching_the_stream() {
        // A Done frame whose produced file blows past MAX_FRAME. Before the
        // fix, release builds wrote it anyway (the cap was a debug_assert)
        // and the peer's read_frame desynced — the master then declared a
        // healthy worker lost.
        let big = Frame::Done {
            job: 1,
            outcome: WireOutcome::Failed {
                error: "x".into(),
                files: vec![("/exp/big.map".into(), "G".repeat(MAX_FRAME + 1))],
                spans: vec![],
            },
        };
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, &big).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(frame_too_big(&err), "cap refusals must be distinguishable: {err}");
        assert!(wire.is_empty(), "no bytes may hit the wire for a refused frame");

        // The stream stays usable: the very next frame round-trips.
        write_frame(&mut wire, &Frame::Heartbeat { job: None, job_elapsed_ms: 3 }).unwrap();
        let mut cursor = &wire[..];
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Frame::Heartbeat { job: None, job_elapsed_ms: 3 }
        );
        assert!(cursor.is_empty());
    }

    #[test]
    fn length_prefix_overflow_is_a_checked_error() {
        // Lengths ≥ 4 GiB used to be cast `as u32`, silently truncating the
        // prefix. A 4 GiB string cannot be allocated in a unit test, so the
        // length path is exercised directly.
        let mut b = Buf::new();
        b.len32(u32::MAX as usize, "string");
        assert!(b.err.is_none(), "u32::MAX itself still fits");
        let mut b = Buf::new();
        b.len32(u32::MAX as usize + 1, "string");
        b.len32(u32::MAX as usize + 2, "tuple vector"); // only the first error is kept
        let err = b.finish().unwrap_err();
        assert!(
            err.contains("string length") && err.contains("overflows the u32"),
            "unexpected error: {err}"
        );
        // and frame_too_big does not claim overflow errors
        let io = std::io::Error::new(std::io::ErrorKind::InvalidData, err);
        assert!(!frame_too_big(&io));
    }

    #[test]
    fn random_bytes_never_panic_the_decoder() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xF022);
        for _ in 0..512 {
            let len = rng.gen_range(0..512);
            let buf: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let _ = decode(&buf); // must return Err, never panic or OOM
        }
        // Mutated valid frames: flip bytes in real encodings.
        let seed = encode(&Frame::Done {
            job: 3,
            outcome: WireOutcome::Finished {
                tuples: vec![vec![Value::Int(1), Value::Text("t".into())]],
                files: vec![("/f".into(), "c".into())],
                params: vec![("p".into(), Some(1.0), Some("s".into()))],
                spans: vec![WireSpan { name: "n".into(), start_ns: 0, end_ns: 1, detail: None }],
            },
        })
        .unwrap();
        for _ in 0..512 {
            let mut m = seed.clone();
            let i = rng.gen_range(0..m.len());
            m[i] = rng.gen();
            let _ = decode(&m); // Ok or Err both fine; panics are not
        }
    }
}
