//! The worker half of the distributed backend.
//!
//! A worker is a single TCP client (one per OS process, or one per thread
//! for in-process tests). It connects to the master, announces itself
//! ([`super::proto::Frame::Ready`]), resolves the workflow spec the master
//! names in its `Hello`, and then executes `Run` frames one at a time on a
//! dedicated executor thread while the socket thread keeps servicing
//! file-fetch responses and a heartbeat thread keeps the master convinced
//! it is alive. Input files it does not hold locally are pulled from the
//! master through the [`FileStore`] read-through hook (`FileReq` /
//! `FileData`), so workers start empty and warm up lazily.

use std::collections::HashMap;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::error::CumulusError;
use crate::workflow::{ActivationCtx, FileStore, WorkflowDef};

use super::proto::{self, Frame, WireFate, WireOutcome, WireSpan};

/// Maps the spec name shipped in the master's `Hello` to an executable
/// workflow definition. Activity functions are Rust closures and cannot
/// cross a process boundary, so master and worker must both link a
/// registry that rebuilds the same workflow from its name.
pub type WorkflowResolver = Arc<dyn Fn(&str) -> Option<WorkflowDef> + Send + Sync>;

/// Test and fault-drill knobs for [`serve_with`].
#[derive(Debug, Clone, Default)]
pub(crate) struct ServeOptions {
    /// Suppress heartbeats entirely (to test the master's liveness timeout).
    pub no_heartbeat: bool,
    /// Abruptly sever the connection upon *receiving* the Nth `Run` frame
    /// (1-based), simulating a SIGKILL for in-process crash tests.
    pub die_on_run: Option<usize>,
}

/// How long a read-through file fetch waits for the master's answer.
const FETCH_TIMEOUT: Duration = Duration::from_secs(30);

/// Connect to a master at `addr` and serve activations until it sends
/// `Shutdown` (or the connection drops). This is the entry point the
/// `scidock-worker` binary wraps.
pub fn serve(addr: &str, resolver: WorkflowResolver) -> Result<(), CumulusError> {
    serve_with(addr, resolver, ServeOptions::default())
}

pub(crate) fn serve_with(
    addr: &str,
    resolver: WorkflowResolver,
    opts: ServeOptions,
) -> Result<(), CumulusError> {
    let epoch = Instant::now();
    let now_ns = move |at: Instant| -> u64 { (at - epoch).as_nanos() as u64 };
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone()?;
    let writer = Arc::new(Mutex::new(stream));

    proto::write_frame(
        &mut *writer.lock(),
        &Frame::Ready { pid: std::process::id(), now_ns: now_ns(Instant::now()) },
    )?;
    let (spec, heartbeat_ms) = match proto::read_frame(&mut reader)? {
        Frame::Hello { spec, heartbeat_ms, .. } => (spec, heartbeat_ms),
        f => return Err(CumulusError::Protocol(format!("expected Hello, got {f:?}"))),
    };
    let def = resolver(&spec)
        .ok_or_else(|| CumulusError::Protocol(format!("unknown workflow spec {spec:?}")))?;

    // worker-local file store with read-through to the master
    let files = Arc::new(FileStore::new());
    let pending: Arc<Mutex<HashMap<u64, mpsc::Sender<Option<String>>>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let next_req = Arc::new(AtomicU64::new(1));
    {
        let writer = Arc::clone(&writer);
        let pending = Arc::clone(&pending);
        let next_req = Arc::clone(&next_req);
        files.set_fetch_hook(Box::new(move |path| {
            let req = next_req.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = mpsc::channel();
            pending.lock().insert(req, tx);
            let sent = proto::write_frame(
                &mut *writer.lock(),
                &Frame::FileReq { req, path: path.to_string() },
            )
            .is_ok();
            let got = if sent { rx.recv_timeout(FETCH_TIMEOUT).ok().flatten() } else { None };
            pending.lock().remove(&req);
            got
        }));
    }

    let alive = Arc::new(AtomicBool::new(true));
    // the job currently executing: (job id, started at), for heartbeats
    let current: Arc<Mutex<Option<(u64, Instant)>>> = Arc::new(Mutex::new(None));
    // lifetime Done count, reported in the Bye frame when drained
    let completed = Arc::new(AtomicU64::new(0));

    // worker-local metrics (activation latencies, outcome counters),
    // streamed to the master as Stats deltas at heartbeat cadence. The
    // collector's ring shards stay unused (spans ship inside Done frames),
    // so the smallest sizing suffices.
    let wtel = telemetry::Telemetry::with_config(telemetry::CollectorConfig {
        shards: 1,
        shard_capacity: 16,
    });
    let stats_cursor = Arc::new(Mutex::new(telemetry::DeltaCursor::default()));
    let flush_stats = {
        let wtel = wtel.clone();
        let cursor = Arc::clone(&stats_cursor);
        let writer = Arc::clone(&writer);
        Arc::new(move || -> bool {
            let delta = wtel.delta_since(&mut cursor.lock());
            delta.is_empty()
                || proto::write_frame(&mut *writer.lock(), &Frame::Stats { delta }).is_ok()
        })
    };

    let heartbeat = (!opts.no_heartbeat).then(|| {
        let writer = Arc::clone(&writer);
        let alive = Arc::clone(&alive);
        let current = Arc::clone(&current);
        let flush_stats = Arc::clone(&flush_stats);
        let interval = Duration::from_millis(heartbeat_ms.max(10));
        std::thread::spawn(move || {
            while alive.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                if !alive.load(Ordering::SeqCst) {
                    break;
                }
                let (job, elapsed) = match *current.lock() {
                    Some((j, at)) => (Some(j), at.elapsed().as_millis() as u64),
                    None => (None, 0),
                };
                let hb = Frame::Heartbeat { job, job_elapsed_ms: elapsed };
                if proto::write_frame(&mut *writer.lock(), &hb).is_err() {
                    break;
                }
                // piggyback a Stats frame when anything changed
                if !flush_stats() {
                    break;
                }
            }
        })
    });

    // dedicated executor: runs activations sequentially so the socket
    // thread stays responsive (file fetches must not wait behind compute)
    let (run_tx, run_rx) = mpsc::channel::<Frame>();
    let executor = {
        let writer = Arc::clone(&writer);
        let files = Arc::clone(&files);
        let current = Arc::clone(&current);
        let completed = Arc::clone(&completed);
        let wtel = wtel.clone();
        let def = Arc::new(def);
        std::thread::spawn(move || {
            while let Ok(frame) = run_rx.recv() {
                let Frame::Run { job, activity, part_index, attempt, fate, workdir, part } = frame
                else {
                    continue;
                };
                *current.lock() = Some((job, Instant::now()));
                let start = now_ns(Instant::now());
                let tag = def
                    .activities
                    .get(activity as usize)
                    .map(|a| a.tag.clone())
                    .unwrap_or_else(|| format!("activity-{activity}"));
                let outcome = match def.activities.get(activity as usize) {
                    None => WireOutcome::Failed {
                        error: format!("no activity at index {activity}"),
                        files: Vec::new(),
                        spans: Vec::new(),
                    },
                    Some(a) => {
                        let func = Arc::clone(&a.func);
                        let mut ctx = ActivationCtx::new(&files, &workdir);
                        let result = catch_unwind(AssertUnwindSafe(|| func(&part, &mut ctx)));
                        let shipped: Vec<(String, String)> = ctx
                            .produced_files()
                            .iter()
                            .map(|p| (p.clone(), files.read(p).unwrap_or_default()))
                            .collect();
                        let span = |detail: &str| WireSpan {
                            name: tag.clone(),
                            start_ns: start,
                            end_ns: now_ns(Instant::now()),
                            detail: Some(format!(
                                "job={job} part={part_index} attempt={attempt} {detail}"
                            )),
                        };
                        match (result, fate) {
                            // an injected failure executes (the work is
                            // lost) but its files persist, matching the
                            // local backend's shared store
                            (_, WireFate::Fail) => WireOutcome::Failed {
                                error: "injected failure".into(),
                                files: shipped,
                                spans: vec![span("failed(injected)")],
                            },
                            (Ok(Ok(tuples)), WireFate::Ok) => WireOutcome::Finished {
                                tuples,
                                files: shipped,
                                params: ctx.params.clone(),
                                spans: vec![span("finished")],
                            },
                            (Ok(Err(e)), WireFate::Ok) => WireOutcome::Failed {
                                error: e.to_string(),
                                files: shipped,
                                spans: vec![span("failed")],
                            },
                            (Err(panic), WireFate::Ok) => WireOutcome::Failed {
                                error: panic_message(&panic),
                                files: shipped,
                                spans: vec![span("panicked")],
                            },
                        }
                    }
                };
                *current.lock() = None;
                // stream-side metrics: per-activity latency plus outcome
                // counters, picked up by the next heartbeat's Stats frame
                if let Some(h) = wtel.histogram(&format!("activation.{tag}")) {
                    h.record(now_ns(Instant::now()).saturating_sub(start));
                }
                wtel.count(
                    match &outcome {
                        WireOutcome::Finished { .. } => "worker.finished",
                        WireOutcome::Failed { .. } => "worker.failed",
                    },
                    1,
                );
                // complete the first write in its own statement: a guard
                // created in a match scrutinee lives to the end of the
                // match, and the fallback arm must re-lock the writer
                let first = proto::write_frame(&mut *writer.lock(), &Frame::Done { job, outcome });
                let sent = match first {
                    Ok(()) => true,
                    Err(e) if proto::frame_too_big(&e) => {
                        // The result is too large for the wire. write_frame
                        // refused it *before* emitting bytes, so the stream
                        // is still framed: degrade to a Failed outcome the
                        // master records against the attempt, instead of
                        // desyncing the socket and being declared lost.
                        let fallback = Frame::Done {
                            job,
                            outcome: WireOutcome::Failed {
                                error: format!("oversized result: {e}"),
                                files: Vec::new(),
                                spans: Vec::new(),
                            },
                        };
                        proto::write_frame(&mut *writer.lock(), &fallback).is_ok()
                    }
                    Err(_) => false,
                };
                if !sent {
                    break;
                }
                completed.fetch_add(1, Ordering::SeqCst);
            }
        })
    };

    // socket loop: route frames until shutdown / disconnect / injected death
    let mut run_tx = Some(run_tx);
    let mut executor = Some(executor);
    let mut drain_helper: Option<std::thread::JoinHandle<()>> = None;
    let mut runs_seen = 0usize;
    let mut result = Ok(());
    loop {
        match proto::read_frame(&mut reader) {
            Ok(frame @ Frame::Run { .. }) => {
                runs_seen += 1;
                if opts.die_on_run == Some(runs_seen) {
                    // simulate SIGKILL: sever the socket without draining
                    alive.store(false, Ordering::SeqCst);
                    let _ = writer.lock().shutdown(std::net::Shutdown::Both);
                    drop(run_tx.take());
                    if let Some(h) = executor.take() {
                        let _ = h.join();
                    }
                    if let Some(h) = heartbeat {
                        let _ = h.join();
                    }
                    return Ok(());
                }
                match run_tx.as_ref() {
                    Some(tx) => {
                        if tx.send(frame).is_err() {
                            break;
                        }
                    }
                    None => {
                        result = Err(CumulusError::Protocol("Run frame after Drain".to_string()));
                        break;
                    }
                }
            }
            Ok(Frame::FileData { req, contents }) => {
                if let Some(tx) = pending.lock().remove(&req) {
                    let _ = tx.send(contents);
                }
            }
            Ok(Frame::Drain) => {
                // Finish everything already queued, confirm with Bye, exit.
                // The socket loop keeps running meanwhile: in-flight
                // activations may still need FileData answers. A helper
                // waits for the executor, sends Bye, and severs the socket
                // — which pops this loop out of read_frame.
                drop(run_tx.take());
                if let Some(h) = executor.take() {
                    let writer = Arc::clone(&writer);
                    let alive = Arc::clone(&alive);
                    let completed = Arc::clone(&completed);
                    let flush_stats = Arc::clone(&flush_stats);
                    drain_helper = Some(std::thread::spawn(move || {
                        let _ = h.join();
                        // final stats so the master's merged view does not
                        // miss this worker's last activations
                        let _ = flush_stats();
                        let bye = Frame::Bye { completed: completed.load(Ordering::SeqCst) };
                        let _ = proto::write_frame(&mut *writer.lock(), &bye);
                        alive.store(false, Ordering::SeqCst);
                        let _ = writer.lock().shutdown(std::net::Shutdown::Both);
                    }));
                }
            }
            Ok(Frame::Shutdown) => break,
            Ok(f) => {
                result = Err(CumulusError::Protocol(format!("unexpected frame {f:?}")));
                break;
            }
            Err(_) => break, // master gone; nothing left to serve
        }
    }

    // graceful drain: finish queued work (Done frames flush through the
    // writer), then tear the connection down
    drop(run_tx.take());
    if let Some(h) = executor.take() {
        let _ = h.join();
    }
    if let Some(h) = drain_helper {
        let _ = h.join();
    }
    let _ = flush_stats(); // best-effort: the master may already be gone
    alive.store(false, Ordering::SeqCst);
    let _ = writer.lock().shutdown(std::net::Shutdown::Both);
    if let Some(h) = heartbeat {
        let _ = h.join();
    }
    result
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("activation panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("activation panicked: {s}")
    } else {
        "activation panicked".to_string()
    }
}
