//! The `SDC1` client protocol: length-prefixed binary frames between a
//! docking client and a [`crate::serve`] daemon.
//!
//! Wire layout mirrors the worker protocol
//! ([`crate::distbackend::proto`] — the codec primitives are shared):
//!
//! ```text
//! [u32 LE body length][body]
//! body := [u32 magic "SDC1"][u8 frame tag][fields...]
//! ```
//!
//! Unlike `SDW1` (where only the opening `Ready` frame is magic-tagged),
//! *every* `SDC1` frame opens with the magic: client connections are
//! short-lived and the daemon must be able to reject a stray scraper or a
//! worker that dialed the wrong port on any frame, not just the first.
//! Bodies are capped at 64 MiB, same as the worker protocol.
//!
//! Client → daemon: `Submit`, `Status`, `Results`, `Cancel`, `Query`.
//! Daemon → client: `Accept`, `Reject` (admission control's explicit
//! backpressure, carrying a retry-after hint), `StatusReply`,
//! `ResultsReply`, `QueryReply`, `Error`.

use std::io::{Read, Write};

use crate::algebra::Tuple;
use crate::distbackend::proto::{Buf, Cur};

/// `"SDC1"` — SciDock Campaign protocol, version 1.
pub(crate) const MAGIC: u32 = 0x5344_4331;

/// Upper bound on a frame body; larger lengths are rejected before reading.
pub(crate) const MAX_FRAME: usize = 64 << 20;

/// Lifecycle state of a campaign as reported in a [`Msg::StatusReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignState {
    /// Admitted, waiting for a concurrency slot.
    Pending,
    /// Activations are dispatching over the shared fleet.
    Running,
    /// Every activation completed; results are queryable.
    Finished,
    /// Cancelled by the client before completion.
    Cancelled,
    /// The workflow definition failed validation at start time.
    Failed,
}

impl CampaignState {
    /// Stable lowercase name used on the wire and in `/campaigns` JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            CampaignState::Pending => "pending",
            CampaignState::Running => "running",
            CampaignState::Finished => "finished",
            CampaignState::Cancelled => "cancelled",
            CampaignState::Failed => "failed",
        }
    }

    fn tag(self) -> u8 {
        match self {
            CampaignState::Pending => 0,
            CampaignState::Running => 1,
            CampaignState::Finished => 2,
            CampaignState::Cancelled => 3,
            CampaignState::Failed => 4,
        }
    }

    fn from_tag(t: u8) -> Result<CampaignState, String> {
        Ok(match t {
            0 => CampaignState::Pending,
            1 => CampaignState::Running,
            2 => CampaignState::Finished,
            3 => CampaignState::Cancelled,
            4 => CampaignState::Failed,
            t => return Err(format!("bad campaign state tag {t}")),
        })
    }
}

/// One `SDC1` frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Msg {
    // -------------------------------------------------- client → daemon
    /// Submit a campaign: a workload spec (resolved daemon-side), on behalf
    /// of a tenant, with a scheduling priority (higher = sooner).
    Submit { tenant: String, priority: u8, spec: String },
    /// Ask for a campaign's lifecycle state and progress.
    Status { id: u64 },
    /// Fetch the final output relation of a finished campaign.
    Results { id: u64 },
    /// Cancel a pending or running campaign.
    Cancel { id: u64 },
    /// Run a read-only SQL query against the shared provenance store
    /// (campaign-scoped via `wkfid`, or cross-campaign without it).
    Query { sql: String },

    // -------------------------------------------------- daemon → client
    /// The campaign was admitted under this id.
    Accept { id: u64 },
    /// Admission control refused the submission; retry no sooner than
    /// `retry_after_ms` (0 = the refusal is permanent, e.g. a bad spec).
    Reject { reason: String, retry_after_ms: u64 },
    /// Answer to [`Msg::Status`].
    StatusReply {
        /// Campaign id.
        id: u64,
        /// Owning tenant.
        tenant: String,
        /// Lifecycle state.
        state: CampaignState,
        /// Completed activations.
        done: u64,
        /// Activations submitted to the dispatcher so far (grows as tuples
        /// stream downstream; equals `done` once finished).
        total: u64,
    },
    /// Answer to [`Msg::Results`]: the final activity's output relation.
    ResultsReply { columns: Vec<String>, tuples: Vec<Tuple> },
    /// Answer to [`Msg::Query`]: a provenance result set.
    QueryReply { columns: Vec<String>, rows: Vec<Tuple> },
    /// Answer to [`Msg::Cancel`]: whether the campaign was still live.
    CancelReply { cancelled: bool },
    /// The request could not be served (unknown id, malformed SQL, …).
    Error { msg: String },
}

fn columns(b: &mut Buf, cols: &[String]) {
    b.len32(cols.len(), "columns");
    for c in cols {
        b.str(c);
    }
}

fn columns_dec(c: &mut Cur<'_>) -> Result<Vec<String>, String> {
    let n = c.u32()? as usize;
    let mut cols = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        cols.push(c.str()?);
    }
    Ok(cols)
}

pub(crate) fn encode(msg: &Msg) -> Result<Vec<u8>, String> {
    let mut b = Buf::new();
    b.u32(MAGIC);
    match msg {
        Msg::Submit { tenant, priority, spec } => {
            b.u8(0);
            b.str(tenant);
            b.u8(*priority);
            b.str(spec);
        }
        Msg::Status { id } => {
            b.u8(1);
            b.u64(*id);
        }
        Msg::Results { id } => {
            b.u8(2);
            b.u64(*id);
        }
        Msg::Cancel { id } => {
            b.u8(3);
            b.u64(*id);
        }
        Msg::Query { sql } => {
            b.u8(4);
            b.str(sql);
        }
        Msg::Accept { id } => {
            b.u8(16);
            b.u64(*id);
        }
        Msg::Reject { reason, retry_after_ms } => {
            b.u8(17);
            b.str(reason);
            b.u64(*retry_after_ms);
        }
        Msg::StatusReply { id, tenant, state, done, total } => {
            b.u8(18);
            b.u64(*id);
            b.str(tenant);
            b.u8(state.tag());
            b.u64(*done);
            b.u64(*total);
        }
        Msg::ResultsReply { columns: cols, tuples } => {
            b.u8(19);
            columns(&mut b, cols);
            b.tuples(tuples);
        }
        Msg::QueryReply { columns: cols, rows } => {
            b.u8(20);
            columns(&mut b, cols);
            b.tuples(rows);
        }
        Msg::CancelReply { cancelled } => {
            b.u8(21);
            b.u8(u8::from(*cancelled));
        }
        Msg::Error { msg } => {
            b.u8(22);
            b.str(msg);
        }
    }
    b.finish()
}

pub(crate) fn decode(buf: &[u8]) -> Result<Msg, String> {
    let mut c = Cur::new(buf);
    let magic = c.u32()?;
    if magic != MAGIC {
        return Err(format!("bad SDC1 magic {magic:#x}"));
    }
    let msg = match c.u8()? {
        0 => Msg::Submit { tenant: c.str()?, priority: c.u8()?, spec: c.str()? },
        1 => Msg::Status { id: c.u64()? },
        2 => Msg::Results { id: c.u64()? },
        3 => Msg::Cancel { id: c.u64()? },
        4 => Msg::Query { sql: c.str()? },
        16 => Msg::Accept { id: c.u64()? },
        17 => Msg::Reject { reason: c.str()?, retry_after_ms: c.u64()? },
        18 => Msg::StatusReply {
            id: c.u64()?,
            tenant: c.str()?,
            state: CampaignState::from_tag(c.u8()?)?,
            done: c.u64()?,
            total: c.u64()?,
        },
        19 => Msg::ResultsReply { columns: columns_dec(&mut c)?, tuples: c.tuples()? },
        20 => Msg::QueryReply { columns: columns_dec(&mut c)?, rows: c.tuples()? },
        21 => Msg::CancelReply {
            cancelled: match c.u8()? {
                0 => false,
                1 => true,
                t => return Err(format!("bad bool tag {t}")),
            },
        },
        22 => Msg::Error { msg: c.str()? },
        t => return Err(format!("unknown SDC1 frame tag {t}")),
    };
    if !c.at_end() {
        return Err("trailing bytes after SDC1 frame".to_string());
    }
    Ok(msg)
}

/// Write one length-prefixed frame and flush it. An oversized frame is
/// refused with `InvalidData` before any byte hits the stream, keeping the
/// connection framed (same contract as the worker protocol).
pub(crate) fn write_msg<W: Write>(w: &mut W, msg: &Msg) -> std::io::Result<()> {
    let body = encode(msg).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    if body.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("SDC1 frame of {} bytes exceeds the {MAX_FRAME}-byte cap", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Read one length-prefixed frame.
pub(crate) fn read_msg<R: Read>(r: &mut R) -> std::io::Result<Msg> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("SDC1 frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    decode(&body).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use provenance::Value;

    fn roundtrip(m: Msg) {
        let mut wire = Vec::new();
        write_msg(&mut wire, &m).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_msg(&mut cursor).unwrap(), m);
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Msg::Submit {
            tenant: "alice".into(),
            priority: 7,
            spec: "unit:spin:4:0".into(),
        });
        roundtrip(Msg::Status { id: 42 });
        roundtrip(Msg::Results { id: 42 });
        roundtrip(Msg::Cancel { id: 9 });
        roundtrip(Msg::Query { sql: "SELECT * FROM hworkflow".into() });
        roundtrip(Msg::Accept { id: 1 });
        roundtrip(Msg::Reject { reason: "queue full".into(), retry_after_ms: 250 });
        for state in [
            CampaignState::Pending,
            CampaignState::Running,
            CampaignState::Finished,
            CampaignState::Cancelled,
            CampaignState::Failed,
        ] {
            roundtrip(Msg::StatusReply { id: 3, tenant: "bob".into(), state, done: 5, total: 8 });
        }
        roundtrip(Msg::ResultsReply {
            columns: vec!["x".into(), "feb".into()],
            tuples: vec![
                vec![Value::Int(1), Value::Float(-7.5)],
                vec![Value::Null, Value::Bool(true)],
            ],
        });
        roundtrip(Msg::QueryReply {
            columns: vec!["tag".into()],
            rows: vec![vec![Value::from("dock")]],
        });
        roundtrip(Msg::CancelReply { cancelled: true });
        roundtrip(Msg::Error { msg: "unknown campaign 77".into() });
    }

    #[test]
    fn rejects_bad_magic_and_trailing_bytes() {
        let mut body = encode(&Msg::Status { id: 1 }).unwrap();
        body[0] ^= 0xFF;
        assert!(decode(&body).unwrap_err().contains("magic"));

        let mut body = encode(&Msg::Status { id: 1 }).unwrap();
        body.push(0);
        assert!(decode(&body).unwrap_err().contains("trailing"));
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(wire);
        let err = read_msg(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("cap"));
    }

    #[test]
    fn random_bytes_never_panic_the_decoder() {
        // deterministic pseudo-random garbage: decode must error, not panic
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for _ in 0..2000 {
            let mut buf = Vec::with_capacity(48);
            for _ in 0..48 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                buf.push((x & 0xFF) as u8);
            }
            let _ = decode(&buf);
        }
    }
}
