//! `scidockd` — the always-on, multi-campaign docking service.
//!
//! Everything else in this crate runs one workflow and exits; this module
//! is the paper's cloud-service endgame: a daemon that accepts **campaign**
//! submissions over TCP (the [`proto`] `SDC1` protocol), multiplexes many
//! campaigns concurrently over one shared elastic worker fleet, and
//! persists every campaign into one durable provenance store — each
//! campaign under its own `wkfid` namespace, so results are queryable
//! per-campaign *and* across campaigns with the same SQL surface the
//! one-shot backends expose.
//!
//! Architecture (all std, no async runtime):
//!
//! ```text
//!   clients ──SDC1──▶ acceptor ──▶ handler threads ──Ctl──▶ ┌────────┐
//!                                                           │ engine │──▶ obs plane
//!   workers ◀──────────── WorkerMsg::Run ────────────────── │ thread │    (/campaigns)
//!      └────────────────── Done/Retired ──────────────────▶ └────────┘
//! ```
//!
//! * **Engine thread** — owns every campaign, the shared
//!   [`PipelineState`]s, and the worker fleet. All scheduling decisions
//!   (fair-share pick, admission, elastic scale) happen here, serially, so
//!   there are no cross-campaign races to reason about.
//! * **Worker threads** — one slot each; they execute activations through
//!   the *same* [`ActivityCtx`](crate::localbackend) machinery as the local
//!   backend, which is why a campaign's canonical PROV-N export is
//!   byte-identical to a one-shot run of the same workflow.
//! * **Fair share** — each free slot goes to the ready campaign whose
//!   tenant currently holds the fewest slots (ties: higher priority, then
//!   lower campaign id). A heavy tenant with ten campaigns cannot starve a
//!   light tenant with one.
//! * **Admission control** — a bounded pending queue and a per-tenant quota
//!   on live campaigns. Over either bound the daemon answers
//!   [`Reject`](proto::Msg::Reject) with a retry-after hint instead of
//!   queueing unboundedly: backpressure is explicit and immediate.
//! * **Elastic fleet** — the same [`Scheduler`](crate::fleet::Scheduler) /
//!   [`FleetController`] machinery the distributed backend and the
//!   simulator use, fed a [`FleetSnapshot`] aggregated across campaigns;
//!   `Grow` spawns worker threads, `Shrink` drains idle ones.
//! * **Steering** — one daemon-wide [`SteeringBridge`] publishes in-flight
//!   activations of *every* campaign into the shared store on a tick, so
//!   the paper's §V.C runtime queries answer mid-run, across campaigns.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cloudsim::FailureModel;
use provenance::{ProvenanceStore, WorkflowId};
use telemetry::Telemetry;

use crate::algebra::{Relation, Tuple};
use crate::backend::Workflow;
use crate::dispatch::{PipelineState, SubmitReq};
use crate::fleet::{FleetController, FleetSnapshot, ScaleDecision, SchedulerFactory, WorkerView};
use crate::localbackend::{ActOutcome, ActivityCtx, LocalConfig};
use crate::obs::{
    BoundAddr, CampaignRow, EventLog, HealthView, ObsServer, ObsState, Severity, WorkerHealth,
};
use crate::steer::SteeringBridge;

pub(crate) mod proto;

pub use proto::CampaignState;

/// Resolves a submitted spec string (e.g. `"scidock:ad4:2x2"`) to a
/// runnable workflow. The daemon owns the resolver so clients submit
/// *names*, not code — the service model of the paper's virtual
/// laboratory.
pub type CampaignResolver = Arc<dyn Fn(&str) -> Option<Workflow> + Send + Sync>;

/// Daemon configuration.
///
/// Marked `#[non_exhaustive]`: construct with [`ServeConfig::new`] (or
/// `Default`) plus the `with_*` builders.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Listen address for the `SDC1` endpoint (port 0 = ephemeral).
    pub addr: String,
    /// Initial worker fleet (threads, one activation slot each).
    pub workers: usize,
    /// Elastic floor: `Shrink` never drains below this many workers.
    pub min_workers: usize,
    /// Elastic ceiling: `Grow` never provisions above this many workers.
    pub max_workers: usize,
    /// Campaigns running concurrently; the rest wait in the pending queue.
    pub max_active: usize,
    /// Bound on the pending queue — submissions over it are `Reject`ed
    /// with a retry-after hint rather than queued.
    pub max_pending: usize,
    /// Max live (pending + running) campaigns per tenant; submissions over
    /// it are `Reject`ed.
    pub tenant_quota: usize,
    /// Retry-after hint carried in overload `Reject`s, milliseconds.
    pub retry_after_ms: u64,
    /// Elastic fleet policy (None = fixed fleet of `workers`).
    pub scheduler: Option<SchedulerFactory>,
    /// Publish in-flight activations of all campaigns into the store on
    /// this tick (None = no steering rows).
    pub steering_tick: Option<Duration>,
    /// Failure injection forwarded to every activation.
    pub failures: FailureModel,
    /// Retry budget per activation.
    pub max_retries: u32,
    /// Telemetry sink shared by the engine and all campaigns.
    pub telemetry: Telemetry,
    /// Structured event log (campaign lifecycle + fleet scale events).
    pub events: Option<EventLog>,
    /// Bind the observability HTTP endpoint here (None = no endpoint).
    pub metrics_addr: Option<String>,
    /// Resolves to the observability endpoint's actual bound address.
    pub metrics_bound: Option<BoundAddr>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            min_workers: 1,
            max_workers: 8,
            max_active: 4,
            max_pending: 16,
            tenant_quota: 8,
            retry_after_ms: 250,
            scheduler: None,
            steering_tick: None,
            failures: FailureModel::none(),
            max_retries: 3,
            telemetry: Telemetry::disabled(),
            events: None,
            metrics_addr: None,
            metrics_bound: None,
        }
    }
}

impl ServeConfig {
    /// The default configuration (2 fixed workers, 4 active campaigns, 16
    /// pending, tenant quota 8, no endpoint).
    pub fn new() -> ServeConfig {
        ServeConfig::default()
    }

    /// Set the `SDC1` listen address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> ServeConfig {
        self.addr = addr.into();
        self
    }

    /// Set the initial worker fleet size.
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers;
        self
    }

    /// Set the elastic fleet bounds.
    pub fn with_worker_bounds(mut self, min: usize, max: usize) -> ServeConfig {
        self.min_workers = min.max(1);
        self.max_workers = max.max(self.min_workers);
        self
    }

    /// Set how many campaigns run concurrently.
    pub fn with_max_active(mut self, n: usize) -> ServeConfig {
        self.max_active = n.max(1);
        self
    }

    /// Set the pending-queue bound (admission control).
    pub fn with_max_pending(mut self, n: usize) -> ServeConfig {
        self.max_pending = n;
        self
    }

    /// Set the per-tenant live-campaign quota.
    pub fn with_tenant_quota(mut self, n: usize) -> ServeConfig {
        self.tenant_quota = n.max(1);
        self
    }

    /// Set the retry-after hint for overload rejections.
    pub fn with_retry_after_ms(mut self, ms: u64) -> ServeConfig {
        self.retry_after_ms = ms;
        self
    }

    /// Drive the fleet elastically with a [`SchedulerFactory`].
    pub fn with_scheduler(mut self, factory: SchedulerFactory) -> ServeConfig {
        self.scheduler = Some(factory);
        self
    }

    /// Enable the steering bridge on this tick.
    pub fn with_steering_tick(mut self, tick: Duration) -> ServeConfig {
        self.steering_tick = Some(tick);
        self
    }

    /// Set failure injection for activations.
    pub fn with_failures(mut self, failures: FailureModel) -> ServeConfig {
        self.failures = failures;
        self
    }

    /// Set the per-activation retry budget.
    pub fn with_max_retries(mut self, n: u32) -> ServeConfig {
        self.max_retries = n;
        self
    }

    /// Attach a telemetry sink.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ServeConfig {
        self.telemetry = telemetry;
        self
    }

    /// Attach a structured event log.
    pub fn with_events(mut self, events: EventLog) -> ServeConfig {
        self.events = Some(events);
        self
    }

    /// Bind the observability HTTP endpoint at `addr`.
    pub fn with_metrics_addr(mut self, addr: impl Into<String>) -> ServeConfig {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Resolve the observability endpoint's bound address into `bound`.
    pub fn with_metrics_bound(mut self, bound: BoundAddr) -> ServeConfig {
        self.metrics_bound = Some(bound);
        self
    }
}

/// Outcome of a [`ServeClient::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted under this campaign id.
    Accepted {
        /// The campaign id to poll with.
        id: u64,
    },
    /// Refused by admission control.
    Rejected {
        /// Why (e.g. `"pending queue full"`, `"tenant quota exceeded"`).
        reason: String,
        /// Retry no sooner than this many milliseconds (0 = permanent).
        retry_after_ms: u64,
    },
}

/// A campaign's lifecycle state and progress, from [`ServeClient::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Campaign id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Lifecycle state.
    pub state: CampaignState,
    /// Completed activations.
    pub done: u64,
    /// Activations submitted to the dispatcher so far.
    pub total: u64,
}

/// A blocking `SDC1` client over one TCP connection.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connect to a daemon.
    pub fn connect(addr: SocketAddr) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient { stream })
    }

    fn roundtrip(&mut self, msg: &proto::Msg) -> std::io::Result<proto::Msg> {
        proto::write_msg(&mut self.stream, msg)?;
        proto::read_msg(&mut self.stream)
    }

    /// Submit a campaign on behalf of `tenant` with `priority` (higher =
    /// sooner among equals).
    pub fn submit(
        &mut self,
        tenant: &str,
        priority: u8,
        spec: &str,
    ) -> std::io::Result<SubmitOutcome> {
        match self.roundtrip(&proto::Msg::Submit {
            tenant: tenant.to_string(),
            priority,
            spec: spec.to_string(),
        })? {
            proto::Msg::Accept { id } => Ok(SubmitOutcome::Accepted { id }),
            proto::Msg::Reject { reason, retry_after_ms } => {
                Ok(SubmitOutcome::Rejected { reason, retry_after_ms })
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Poll a campaign's state and progress.
    pub fn status(&mut self, id: u64) -> std::io::Result<CampaignStatus> {
        match self.roundtrip(&proto::Msg::Status { id })? {
            proto::Msg::StatusReply { id, tenant, state, done, total } => {
                Ok(CampaignStatus { id, tenant, state, done, total })
            }
            proto::Msg::Error { msg } => Err(std::io::Error::other(msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the final output relation of a finished campaign.
    pub fn results(&mut self, id: u64) -> std::io::Result<(Vec<String>, Vec<Tuple>)> {
        match self.roundtrip(&proto::Msg::Results { id })? {
            proto::Msg::ResultsReply { columns, tuples } => Ok((columns, tuples)),
            proto::Msg::Error { msg } => Err(std::io::Error::other(msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Cancel a pending or running campaign; `Ok(true)` when it was still
    /// live.
    pub fn cancel(&mut self, id: u64) -> std::io::Result<bool> {
        match self.roundtrip(&proto::Msg::Cancel { id })? {
            proto::Msg::CancelReply { cancelled } => Ok(cancelled),
            proto::Msg::Error { msg } => Err(std::io::Error::other(msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Run a read-only SQL query against the daemon's shared provenance
    /// store. Scope to one campaign with its `wkfid`, or span campaigns by
    /// omitting it — every campaign lives in the same store.
    pub fn query(&mut self, sql: &str) -> std::io::Result<(Vec<String>, Vec<Tuple>)> {
        match self.roundtrip(&proto::Msg::Query { sql: sql.to_string() })? {
            proto::Msg::QueryReply { columns, rows } => Ok((columns, rows)),
            proto::Msg::Error { msg } => Err(std::io::Error::other(msg)),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(msg: &proto::Msg) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("unexpected reply {msg:?}"))
}

// ------------------------------------------------------------------ daemon

/// The running daemon: `SDC1` listener + engine + worker fleet.
#[derive(Debug)]
pub struct Daemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    engine_tx: Sender<EngineMsg>,
    accept_thread: Option<JoinHandle<()>>,
    engine_thread: Option<JoinHandle<()>>,
    obs_server: Option<ObsServer>,
    bridge: Option<Arc<SteeringBridge>>,
}

impl Daemon {
    /// Bind the `SDC1` endpoint and start serving campaigns resolved by
    /// `resolver`, persisting all provenance into `prov`.
    pub fn start(
        cfg: ServeConfig,
        resolver: CampaignResolver,
        prov: Arc<ProvenanceStore>,
    ) -> std::io::Result<Daemon> {
        let sockaddr = cfg
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other(format!("unresolvable addr {}", cfg.addr)))?;
        let listener = TcpListener::bind(sockaddr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let epoch = Instant::now();

        let bridge =
            cfg.steering_tick.map(|tick| SteeringBridge::start(Arc::clone(&prov), epoch, tick));

        let obs = cfg
            .metrics_addr
            .as_ref()
            .map(|_| ObsState::new(cfg.telemetry.clone(), cfg.events.clone().unwrap_or_default()));
        let obs_server = match (&cfg.metrics_addr, &obs) {
            (Some(maddr), Some(state)) => {
                let s = ObsServer::start(maddr, state.clone())?;
                if let Some(b) = &cfg.metrics_bound {
                    b.set(s.addr());
                }
                Some(s)
            }
            _ => None,
        };

        let (tx, rx) = channel::<EngineMsg>();
        let engine =
            Engine::new(cfg, resolver, Arc::clone(&prov), epoch, bridge.clone(), obs, tx.clone());
        let engine_thread = std::thread::Builder::new()
            .name("scidockd-engine".into())
            .spawn(move || engine.run(rx))?;

        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let tx2 = tx.clone();
        let accept_thread = std::thread::Builder::new()
            .name("scidockd-accept".into())
            .spawn(move || accept_loop(listener, tx2, prov, stop2))?;

        Ok(Daemon {
            addr,
            stop,
            engine_tx: tx,
            accept_thread: Some(accept_thread),
            engine_thread: Some(engine_thread),
            obs_server,
            bridge,
        })
    }

    /// The address the `SDC1` listener actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the worker fleet, and join every thread.
    /// In-flight activations finish; queued-but-undispatched work does not.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = self.engine_tx.send(EngineMsg::Ctl(Ctl::Shutdown));
        if let Some(t) = self.engine_thread.take() {
            let _ = t.join();
        }
        if let Some(b) = self.bridge.take() {
            b.stop();
        }
        if let Some(s) = self.obs_server.take() {
            s.shutdown();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<EngineMsg>,
    prov: Arc<ProvenanceStore>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let prov = Arc::clone(&prov);
                let stop = Arc::clone(&stop);
                let _ = std::thread::Builder::new()
                    .name("scidockd-conn".into())
                    .spawn(move || handle_client(stream, tx, prov, stop));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Serve one client connection: forward control requests to the engine,
/// answer provenance queries directly against the shared store.
fn handle_client(
    mut stream: TcpStream,
    tx: Sender<EngineMsg>,
    prov: Arc<ProvenanceStore>,
    stop: Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    loop {
        let msg = match proto::read_msg(&mut stream) {
            Ok(m) => m,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(_) => return, // client hung up or spoke garbage
        };
        let reply = match msg {
            proto::Msg::Query { sql } => match prov.query_limited(&sql, 100_000) {
                Ok(rs) => proto::Msg::QueryReply { columns: rs.columns, rows: rs.rows },
                Err(e) => proto::Msg::Error { msg: e.to_string() },
            },
            proto::Msg::Submit { tenant, priority, spec } => {
                ask(&tx, |reply| Ctl::Submit { tenant, priority, spec, reply })
            }
            proto::Msg::Status { id } => ask(&tx, |reply| Ctl::Status { id, reply }),
            proto::Msg::Results { id } => ask(&tx, |reply| Ctl::Results { id, reply }),
            proto::Msg::Cancel { id } => ask(&tx, |reply| Ctl::Cancel { id, reply }),
            other => proto::Msg::Error { msg: format!("client sent a server frame {other:?}") },
        };
        if proto::write_msg(&mut stream, &reply).is_err() {
            return;
        }
    }
}

/// Round-trip one control request through the engine thread.
fn ask(tx: &Sender<EngineMsg>, make: impl FnOnce(Sender<proto::Msg>) -> Ctl) -> proto::Msg {
    let (reply_tx, reply_rx) = channel();
    if tx.send(EngineMsg::Ctl(make(reply_tx))).is_err() {
        return proto::Msg::Error { msg: "daemon is shutting down".to_string() };
    }
    reply_rx
        .recv_timeout(Duration::from_secs(30))
        .unwrap_or(proto::Msg::Error { msg: "daemon did not answer".to_string() })
}

// ------------------------------------------------------------------ engine

enum Ctl {
    Submit { tenant: String, priority: u8, spec: String, reply: Sender<proto::Msg> },
    Status { id: u64, reply: Sender<proto::Msg> },
    Results { id: u64, reply: Sender<proto::Msg> },
    Cancel { id: u64, reply: Sender<proto::Msg> },
    Shutdown,
}

enum EngineMsg {
    Ctl(Ctl),
    Done { worker: usize, campaign: u64, activity: usize, outcome: ActOutcome, elapsed_ns: u64 },
    Retired { worker: usize },
}

impl std::fmt::Debug for EngineMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineMsg::Ctl(_) => write!(f, "Ctl(..)"),
            EngineMsg::Done { worker, campaign, activity, .. } => {
                write!(f, "Done{{worker:{worker},campaign:{campaign},activity:{activity}}}")
            }
            EngineMsg::Retired { worker } => write!(f, "Retired{{worker:{worker}}}"),
        }
    }
}

enum WorkerMsg {
    Run {
        campaign: u64,
        activity: usize,
        part: Vec<Tuple>,
        part_index: usize,
        ctx: Arc<ActivityCtx>,
    },
    Drain,
}

struct WorkerSlot {
    tx: Sender<WorkerMsg>,
    handle: Option<JoinHandle<()>>,
    /// Campaign currently running on this worker (one slot per worker).
    busy: Option<u64>,
    draining: bool,
    alive: bool,
}

struct Campaign {
    id: u64,
    tenant: String,
    priority: u8,
    state: CampaignState,
    /// Resolved workflow, consumed at start time.
    wf: Option<Workflow>,
    wkf: Option<WorkflowId>,
    pipe: Option<PipelineState>,
    ctxs: Vec<Arc<ActivityCtx>>,
    ready: VecDeque<SubmitReq>,
    in_flight: usize,
    done: u64,
    total: u64,
    submitted_at: Instant,
    saw_first_result: bool,
    cancel_requested: bool,
    outputs: Option<Vec<Relation>>,
    /// Dispatch→completion latency per activation, nanoseconds.
    lat_ns: Vec<u64>,
}

impl Campaign {
    fn live(&self) -> bool {
        matches!(self.state, CampaignState::Pending | CampaignState::Running)
    }

    fn p95_ms(&self) -> f64 {
        if self.lat_ns.is_empty() {
            return 0.0;
        }
        let mut v = self.lat_ns.clone();
        v.sort_unstable();
        let idx = ((v.len() as f64 * 0.95).ceil() as usize).clamp(1, v.len()) - 1;
        v[idx] as f64 / 1e6
    }
}

struct Engine {
    cfg: ServeConfig,
    resolver: CampaignResolver,
    prov: Arc<ProvenanceStore>,
    tel: Telemetry,
    events: Option<EventLog>,
    epoch: Instant,
    bridge: Option<Arc<SteeringBridge>>,
    obs: Option<ObsState>,
    campaigns: HashMap<u64, Campaign>,
    /// Submission order (stable display order for `/campaigns`).
    order: Vec<u64>,
    pending: VecDeque<u64>,
    next_id: u64,
    workers: Vec<WorkerSlot>,
    fleet: FleetController,
    /// Cloned into every worker thread for Done/Retired sends.
    worker_tx: Sender<EngineMsg>,
    shutting_down: bool,
}

impl Engine {
    fn new(
        cfg: ServeConfig,
        resolver: CampaignResolver,
        prov: Arc<ProvenanceStore>,
        epoch: Instant,
        bridge: Option<Arc<SteeringBridge>>,
        obs: Option<ObsState>,
        worker_tx: Sender<EngineMsg>,
    ) -> Engine {
        let fleet = match &cfg.scheduler {
            Some(f) => FleetController::new(f),
            None => FleetController::fixed(),
        };
        let tel = cfg.telemetry.clone();
        let events = cfg.events.clone();
        Engine {
            cfg,
            resolver,
            prov,
            tel,
            events,
            epoch,
            bridge,
            obs,
            campaigns: HashMap::new(),
            order: Vec::new(),
            pending: VecDeque::new(),
            next_id: 1,
            workers: Vec::new(),
            fleet,
            worker_tx,
            shutting_down: false,
        }
    }

    fn run(mut self, rx: Receiver<EngineMsg>) {
        for _ in 0..self.cfg.workers.max(1) {
            self.spawn_worker();
        }
        self.tel.gauge("fleet.size", self.provisioned() as f64);
        loop {
            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok(msg) => self.handle(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if !self.shutting_down {
                self.start_pending();
                self.dispatch();
            } else if self.workers.iter().all(|w| !w.alive) {
                break;
            }
            self.refresh_obs();
        }
    }

    fn emit(&self, severity: Severity, kind: &str, fields: &[(&str, String)]) {
        if let Some(ev) = &self.events {
            ev.emit(self.epoch.elapsed().as_secs_f64(), severity, kind, fields);
        }
    }

    // ------------------------------------------------------------ workers

    fn spawn_worker(&mut self) {
        let index = self.workers.len();
        let (tx, rx) = channel::<WorkerMsg>();
        let done_tx = self.worker_tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("scidockd-worker-{index}"))
            .spawn(move || worker_loop(rx, done_tx, index))
            .expect("spawn serve worker thread");
        self.workers.push(WorkerSlot {
            tx,
            handle: Some(handle),
            busy: None,
            draining: false,
            alive: true,
        });
    }

    /// Workers serving new activations: alive and not draining.
    fn provisioned(&self) -> usize {
        self.workers.iter().filter(|w| w.alive && !w.draining).count()
    }

    fn snapshot(&self) -> FleetSnapshot {
        let queued: usize = self.campaigns.values().map(|c| c.ready.len()).sum();
        let in_flight: usize = self.campaigns.values().map(|c| c.in_flight).sum();
        let idle =
            self.workers.iter().filter(|w| w.alive && !w.draining && w.busy.is_none()).count();
        let n_acts = self
            .campaigns
            .values()
            .filter(|c| c.state == CampaignState::Running)
            .map(|c| c.ctxs.len())
            .max()
            .unwrap_or(0);
        let mut queued_by_activity = vec![0usize; n_acts];
        for c in self.campaigns.values() {
            for req in &c.ready {
                if req.activity < queued_by_activity.len() {
                    queued_by_activity[req.activity] += 1;
                }
            }
        }
        FleetSnapshot {
            completions: 0, // overwritten by the controller
            queued,
            in_flight,
            fleet: self.provisioned(),
            idle,
            slots_per_worker: 1,
            queued_by_activity,
            stragglers: 0,
        }
    }

    fn apply_scale(&mut self, decision: ScaleDecision) {
        match decision {
            ScaleDecision::Hold => return,
            ScaleDecision::Grow(n) => {
                let room = self.cfg.max_workers.saturating_sub(self.provisioned());
                let grow = n.min(room);
                for _ in 0..grow {
                    self.spawn_worker();
                }
                if grow > 0 {
                    self.emit(
                        Severity::Info,
                        "fleet_scale",
                        &[
                            ("decision", format!("grow {grow}")),
                            ("fleet", self.provisioned().to_string()),
                        ],
                    );
                }
            }
            ScaleDecision::Shrink(n) => {
                let floor = self.cfg.min_workers.max(1);
                let can = self.provisioned().saturating_sub(floor);
                let mut left = n.min(can);
                let mut drained = 0usize;
                for w in self.workers.iter_mut() {
                    if left == 0 {
                        break;
                    }
                    if w.alive && !w.draining && w.busy.is_none() {
                        let _ = w.tx.send(WorkerMsg::Drain);
                        w.draining = true;
                        left -= 1;
                        drained += 1;
                    }
                }
                if drained > 0 {
                    self.emit(
                        Severity::Info,
                        "fleet_scale",
                        &[
                            ("decision", format!("drain {drained}")),
                            ("fleet", self.provisioned().to_string()),
                        ],
                    );
                }
            }
        }
        self.tel.gauge("fleet.size", self.provisioned() as f64);
    }

    // ---------------------------------------------------------- lifecycle

    fn handle(&mut self, msg: EngineMsg) {
        match msg {
            EngineMsg::Ctl(ctl) => self.handle_ctl(ctl),
            EngineMsg::Done { worker, campaign, activity, outcome, elapsed_ns } => {
                if let Some(w) = self.workers.get_mut(worker) {
                    w.busy = None;
                }
                self.fleet.note_completion();
                self.handle_done(campaign, activity, outcome, elapsed_ns);
                let snap = self.snapshot();
                let decision = self.fleet.evaluate(snap);
                self.apply_scale(decision);
            }
            EngineMsg::Retired { worker } => {
                if let Some(w) = self.workers.get_mut(worker) {
                    w.alive = false;
                    w.draining = true;
                    if let Some(h) = w.handle.take() {
                        let _ = h.join();
                    }
                }
                self.tel.gauge("fleet.size", self.provisioned() as f64);
            }
        }
    }

    fn handle_ctl(&mut self, ctl: Ctl) {
        match ctl {
            Ctl::Submit { tenant, priority, spec, reply } => {
                let msg = self.admit(tenant, priority, spec);
                let _ = reply.send(msg);
            }
            Ctl::Status { id, reply } => {
                let msg = match self.campaigns.get(&id) {
                    Some(c) => proto::Msg::StatusReply {
                        id,
                        tenant: c.tenant.clone(),
                        state: c.state,
                        done: c.done,
                        total: c.total.max(c.pipe.as_ref().map_or(0, |p| p.submitted() as u64)),
                    },
                    None => proto::Msg::Error { msg: format!("unknown campaign {id}") },
                };
                let _ = reply.send(msg);
            }
            Ctl::Results { id, reply } => {
                let msg = match self.campaigns.get(&id) {
                    Some(c) => match (&c.state, &c.outputs) {
                        (CampaignState::Finished, Some(outs)) => {
                            let last = outs.last();
                            proto::Msg::ResultsReply {
                                columns: last.map(|r| r.columns.clone()).unwrap_or_default(),
                                tuples: last.map(|r| r.tuples.clone()).unwrap_or_default(),
                            }
                        }
                        _ => proto::Msg::Error {
                            msg: format!("campaign {id} is {}", c.state.as_str()),
                        },
                    },
                    None => proto::Msg::Error { msg: format!("unknown campaign {id}") },
                };
                let _ = reply.send(msg);
            }
            Ctl::Cancel { id, reply } => {
                let msg = match self.cancel(id) {
                    Some(cancelled) => proto::Msg::CancelReply { cancelled },
                    None => proto::Msg::Error { msg: format!("unknown campaign {id}") },
                };
                let _ = reply.send(msg);
            }
            Ctl::Shutdown => {
                self.shutting_down = true;
                for w in self.workers.iter_mut() {
                    if w.alive && !w.draining {
                        let _ = w.tx.send(WorkerMsg::Drain);
                        w.draining = true;
                    }
                }
            }
        }
    }

    /// Admission control: bounded pending queue, per-tenant quota, then
    /// spec resolution. Rejections are explicit backpressure, never queued.
    fn admit(&mut self, tenant: String, priority: u8, spec: String) -> proto::Msg {
        let reject = |engine: &Engine, reason: &str, retry: u64, tenant: &str| {
            engine.tel.count("campaign.rejected", 1);
            engine.emit(
                Severity::Warn,
                "campaign_rejected",
                &[("tenant", tenant.to_string()), ("reason", reason.to_string())],
            );
            proto::Msg::Reject { reason: reason.to_string(), retry_after_ms: retry }
        };
        if self.shutting_down {
            return reject(self, "daemon is shutting down", 0, &tenant);
        }
        if self.pending.len() >= self.cfg.max_pending {
            return reject(self, "pending queue full", self.cfg.retry_after_ms, &tenant);
        }
        let live = self.campaigns.values().filter(|c| c.live() && c.tenant == tenant).count();
        if live >= self.cfg.tenant_quota {
            return reject(self, "tenant quota exceeded", self.cfg.retry_after_ms, &tenant);
        }
        let wf = match (self.resolver)(&spec) {
            Some(wf) => wf,
            None => return reject(self, "unknown spec", 0, &tenant),
        };
        if let Err(e) = wf.def.validate() {
            return reject(self, &format!("invalid workflow: {e}"), 0, &tenant);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.campaigns.insert(
            id,
            Campaign {
                id,
                tenant: tenant.clone(),
                priority,
                state: CampaignState::Pending,
                wf: Some(wf),
                wkf: None,
                pipe: None,
                ctxs: Vec::new(),
                ready: VecDeque::new(),
                in_flight: 0,
                done: 0,
                total: 0,
                submitted_at: Instant::now(),
                saw_first_result: false,
                cancel_requested: false,
                outputs: None,
                lat_ns: Vec::new(),
            },
        );
        self.order.push(id);
        self.pending.push_back(id);
        self.tel.count("campaign.submitted", 1);
        self.emit(
            Severity::Info,
            "campaign_submitted",
            &[
                ("campaign", id.to_string()),
                ("tenant", tenant),
                ("spec", spec),
                ("priority", priority.to_string()),
            ],
        );
        proto::Msg::Accept { id }
    }

    /// Instantiate pending campaigns while concurrency slots are free.
    fn start_pending(&mut self) {
        loop {
            let running =
                self.campaigns.values().filter(|c| c.state == CampaignState::Running).count();
            if running >= self.cfg.max_active {
                return;
            }
            let Some(id) = self.pending.pop_front() else { return };
            let c = self.campaigns.get_mut(&id).expect("pending id is live");
            if c.state != CampaignState::Pending {
                continue; // cancelled while queued
            }
            let wf = c.wf.take().expect("pending campaign holds its workflow");
            let wkf = self.prov.begin_workflow(&wf.def.tag, &wf.def.description, &wf.def.expdir);
            // the exact ActivityCtx machinery of the local backend, so the
            // campaign's provenance rows are shaped identically to a
            // one-shot run (the PROV-N parity test pins this)
            let lcfg = LocalConfig::new()
                .with_failures(self.cfg.failures)
                .with_max_retries(self.cfg.max_retries)
                .with_telemetry(self.tel.clone());
            let lcfg = match &self.events {
                Some(ev) => lcfg.with_events(ev.clone()),
                None => lcfg,
            };
            let ctxs: Vec<Arc<ActivityCtx>> = (0..wf.def.activities.len())
                .map(|i| {
                    Arc::new(ActivityCtx::build(
                        &wf.def,
                        i,
                        wkf,
                        &wf.files,
                        &self.prov,
                        &lcfg,
                        self.epoch,
                        &self.bridge,
                    ))
                })
                .collect();
            let (pipe, seeds) = PipelineState::new(Arc::new(wf.def), &wf.input, self.tel.clone());
            c.wkf = Some(wkf);
            c.ctxs = ctxs;
            c.ready = seeds.into();
            c.pipe = Some(pipe);
            c.state = CampaignState::Running;
            self.tel.count("campaign.started", 1);
            let tenant = c.tenant.clone();
            self.emit(
                Severity::Info,
                "campaign_started",
                &[("campaign", id.to_string()), ("tenant", tenant), ("wkfid", wkf.0.to_string())],
            );
            // a campaign with no seeds (empty input) finishes immediately
            self.try_finish(id);
        }
    }

    /// Fair-share pick: the ready campaign whose tenant holds the fewest
    /// worker slots right now; ties broken by priority (higher first), then
    /// by campaign id (older first).
    fn pick_campaign(&self) -> Option<u64> {
        let mut tenant_load: HashMap<&str, usize> = HashMap::new();
        for c in self.campaigns.values() {
            *tenant_load.entry(c.tenant.as_str()).or_insert(0) += c.in_flight;
        }
        self.campaigns
            .values()
            .filter(|c| c.state == CampaignState::Running && !c.ready.is_empty())
            .min_by_key(|c| {
                (
                    *tenant_load.get(c.tenant.as_str()).unwrap_or(&0),
                    std::cmp::Reverse(c.priority),
                    c.id,
                )
            })
            .map(|c| c.id)
    }

    /// Hand every idle worker slot one activation, fair-share across
    /// campaigns, placement via the fleet policy.
    fn dispatch(&mut self) {
        loop {
            let candidates: Vec<WorkerView> = self
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.alive && !w.draining && w.busy.is_none())
                .map(|(i, _)| WorkerView { index: i, in_flight: 0 })
                .collect();
            if candidates.is_empty() {
                return;
            }
            let Some(cid) = self.pick_campaign() else { return };
            let c = self.campaigns.get_mut(&cid).expect("picked campaign exists");
            let req = c.ready.pop_front().expect("picked campaign has ready work");
            let ctx = Arc::clone(&c.ctxs[req.activity]);
            c.in_flight += 1;
            let widx = self.fleet.place(req.activity, &candidates).unwrap_or(candidates[0].index);
            let w = &mut self.workers[widx];
            w.busy = Some(cid);
            let _ = w.tx.send(WorkerMsg::Run {
                campaign: cid,
                activity: req.activity,
                part: req.part,
                part_index: req.part_index,
                ctx,
            });
        }
    }

    fn handle_done(&mut self, cid: u64, activity: usize, outcome: ActOutcome, elapsed_ns: u64) {
        let Some(c) = self.campaigns.get_mut(&cid) else { return };
        c.in_flight = c.in_flight.saturating_sub(1);
        c.done += 1;
        c.lat_ns.push(elapsed_ns);
        if !c.saw_first_result && outcome.finished > 0 {
            c.saw_first_result = true;
            let since_submit = c.submitted_at.elapsed().as_nanos() as u64;
            if let Some(h) = self.tel.histogram("campaign.first_result") {
                h.record(since_submit);
            }
        }
        if c.cancel_requested {
            // ready queue is already dropped; just drain in-flight
            self.try_finish(cid);
            return;
        }
        if let Some(pipe) = c.pipe.as_mut() {
            let more = pipe.on_completion(activity, &outcome.tuples);
            c.ready.extend(more);
        }
        self.try_finish(cid);
    }

    /// Transition a running campaign to its terminal state when no work
    /// remains: `Finished` when the pipeline closed, `Cancelled` when the
    /// client asked and the in-flight tail has drained.
    fn try_finish(&mut self, cid: u64) {
        let Some(c) = self.campaigns.get_mut(&cid) else { return };
        if c.state != CampaignState::Running || c.in_flight > 0 {
            return;
        }
        if c.cancel_requested {
            c.state = CampaignState::Cancelled;
            c.pipe = None;
            c.ctxs.clear();
            self.prov.flush_wal();
            self.tel.count("campaign.cancelled", 1);
            let tenant = c.tenant.clone();
            self.emit(
                Severity::Warn,
                "campaign_cancelled",
                &[("campaign", cid.to_string()), ("tenant", tenant)],
            );
            return;
        }
        let done = match &c.pipe {
            Some(p) => p.done(),
            None => false,
        };
        if !done || !c.ready.is_empty() {
            return;
        }
        let pipe = c.pipe.take().expect("checked above");
        c.total = pipe.submitted() as u64;
        c.outputs = Some(pipe.into_outputs());
        c.ctxs.clear();
        c.state = CampaignState::Finished;
        // the campaign's terminal rows must survive a daemon crash
        self.prov.flush_wal();
        self.tel.count("campaign.finished", 1);
        let tenant = c.tenant.clone();
        let done_n = c.done;
        self.emit(
            Severity::Info,
            "campaign_finished",
            &[
                ("campaign", cid.to_string()),
                ("tenant", tenant),
                ("activations", done_n.to_string()),
            ],
        );
    }

    /// `Some(true)` = was live and is now cancelled (or draining toward
    /// it); `Some(false)` = already terminal; `None` = unknown id.
    fn cancel(&mut self, cid: u64) -> Option<bool> {
        let c = self.campaigns.get_mut(&cid)?;
        match c.state {
            CampaignState::Pending => {
                c.state = CampaignState::Cancelled;
                c.wf = None;
                self.pending.retain(|&p| p != cid);
                self.tel.count("campaign.cancelled", 1);
                let tenant = c.tenant.clone();
                self.emit(
                    Severity::Warn,
                    "campaign_cancelled",
                    &[("campaign", cid.to_string()), ("tenant", tenant)],
                );
                Some(true)
            }
            CampaignState::Running => {
                c.cancel_requested = true;
                c.ready.clear();
                self.try_finish(cid);
                Some(true)
            }
            _ => Some(false),
        }
    }

    // ------------------------------------------------------------- obs

    fn refresh_obs(&self) {
        let active = self.campaigns.values().filter(|c| c.state == CampaignState::Running).count();
        self.tel.gauge("campaign.active", active as f64);
        self.tel.gauge("campaign.queued", self.pending.len() as f64);
        let Some(obs) = &self.obs else { return };
        let rows: Vec<CampaignRow> = self
            .order
            .iter()
            .filter_map(|id| self.campaigns.get(id))
            .map(|c| CampaignRow {
                id: c.id,
                tenant: c.tenant.clone(),
                state: c.state.as_str().to_string(),
                done: c.done,
                total: c.total.max(c.pipe.as_ref().map_or(0, |p| p.submitted() as u64)),
                p95_ms: c.p95_ms(),
            })
            .collect();
        obs.set_campaigns(rows);
        obs.set_health(HealthView {
            phase: if self.shutting_down { "draining" } else { "running" }.to_string(),
            fleet: self.provisioned(),
            workers: self
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.alive)
                .map(|(i, w)| WorkerHealth {
                    id: i,
                    alive: w.alive,
                    draining: w.draining,
                    last_seen_ms: 0,
                    in_flight: usize::from(w.busy.is_some()),
                    stragglers: 0,
                })
                .collect(),
        });
    }
}

fn worker_loop(rx: Receiver<WorkerMsg>, tx: Sender<EngineMsg>, index: usize) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Run { campaign, activity, part, part_index, ctx } => {
                let t = Instant::now();
                let outcome = ctx.run_activation(&part, part_index);
                if tx
                    .send(EngineMsg::Done {
                        worker: index,
                        campaign,
                        activity,
                        outcome,
                        elapsed_ns: t.elapsed().as_nanos() as u64,
                    })
                    .is_err()
                {
                    return; // engine is gone; no one to report retirement to
                }
            }
            WorkerMsg::Drain => break,
        }
    }
    let _ = tx.send(EngineMsg::Retired { worker: index });
}
