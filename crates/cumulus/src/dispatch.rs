//! The ready-driven pipelined dispatcher, extracted from the local backend
//! so every master shares one scheduling state machine: the in-process pool
//! backend ([`crate::localbackend`]) and the multi-process distributed
//! backend ([`crate::distbackend`]) both drive a [`PipelineState`] and only
//! differ in *where* a [`SubmitReq`] executes.
//!
//! The state machine is purely logical: it owns no threads and performs no
//! I/O. Callers feed it completions (`activity produced these tuples`) and
//! it answers with the next batch of ready activations, preserving the
//! pipelined semantics documented on [`crate::localbackend::DispatchMode`]:
//! tuples flow downstream the instant they exist, and barriers remain only
//! where the algebra requires the whole relation (`Reduce`, `SRQuery`,
//! `MRQuery`).

use std::sync::Arc;

use telemetry::Telemetry;

use crate::algebra::{Operator, Relation, Tuple};
use crate::workflow::WorkflowDef;

/// One activation the dispatcher wants executed: `part` tuples of activity
/// `activity`, with `part_index` naming its working directory (arrival
/// order).
#[derive(Debug, Clone)]
pub(crate) struct SubmitReq {
    /// Index of the activity in the workflow definition.
    pub activity: usize,
    /// The activation's input tuples.
    pub part: Vec<Tuple>,
    /// Working-directory index (submission order within the activity).
    pub part_index: usize,
}

/// Dispatcher-side state of one activity.
struct ActState {
    /// `Reduce`/`SRQuery`/`MRQuery` need the whole input relation before
    /// partitioning; Map-like operators dispatch tuple-by-tuple.
    is_barrier_op: bool,
    /// Columns of this activity's *input* relation (upstream schema or the
    /// workflow input schema) — needed for route filtering and Reduce keys.
    input_columns: Vec<String>,
    /// Buffered input tuples (barrier operators only).
    buffer: Vec<Tuple>,
    /// When the first tuple was buffered (barrier operators only) — start
    /// of this activity's barrier-wait telemetry span.
    barrier_wait_start: Option<u64>,
    /// Upstream activities that have not closed yet.
    upstream_open: usize,
    /// Activations submitted but not yet completed.
    in_flight: usize,
    /// Next working-directory index (arrival order).
    next_part: usize,
    /// No more input will arrive (all upstreams closed + barrier flushed).
    input_done: bool,
    /// Output relation, filled in completion order.
    output: Relation,
    closed: bool,
}

/// The pipelined dispatcher state machine (see module docs).
///
/// Owns its workflow definition (`Arc`, cheap to share), so a pipeline can
/// outlive the scope that resolved the definition — a requirement for
/// [`crate::serve`], where campaigns are created dynamically at daemon
/// runtime and live in a long-running engine loop.
pub(crate) struct PipelineState {
    def: Arc<WorkflowDef>,
    tel: Telemetry,
    /// Successors with edge multiplicity (a duplicated dep feeds twice,
    /// just like `input_for`'s concatenation would).
    successors: Vec<Vec<usize>>,
    states: Vec<ActState>,
    /// Activities not yet closed; the run is done when this reaches zero.
    open: usize,
}

impl PipelineState {
    /// Build the dispatcher and seed it: source activities read the
    /// (route-filtered) workflow input. Returns the initial batch of ready
    /// activations. The definition must already be validated.
    pub fn new(
        def: Arc<WorkflowDef>,
        input: &Relation,
        tel: Telemetry,
    ) -> (PipelineState, Vec<SubmitReq>) {
        let n = def.activities.len();
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, deps) in def.deps.iter().enumerate() {
            for &d in deps {
                successors[d].push(i);
            }
        }
        let states: Vec<ActState> = (0..n)
            .map(|i| {
                let activity = &def.activities[i];
                let input_columns = if def.deps[i].is_empty() {
                    input.columns.clone()
                } else {
                    // input_for asserts upstreams share a schema; check the
                    // static column lists up front since we stream per-edge
                    let first = &def.activities[def.deps[i][0]].output_columns;
                    for &d in &def.deps[i] {
                        assert_eq!(
                            &def.activities[d].output_columns, first,
                            "activity {i}: upstream relations must share a schema"
                        );
                    }
                    first.clone()
                };
                ActState {
                    is_barrier_op: matches!(
                        activity.operator,
                        Operator::Reduce { .. } | Operator::SRQuery | Operator::MRQuery
                    ),
                    input_columns,
                    buffer: Vec::new(),
                    barrier_wait_start: None,
                    upstream_open: def.deps[i].len(),
                    in_flight: 0,
                    next_part: 0,
                    input_done: false,
                    output: Relation {
                        columns: activity.output_columns.clone(),
                        tuples: Vec::new(),
                    },
                    closed: false,
                }
            })
            .collect();
        let mut pipe = PipelineState { def, tel, successors, states, open: n };

        let mut reqs = Vec::new();
        let mut to_close: Vec<usize> = Vec::new();
        for i in 0..n {
            if pipe.def.deps[i].is_empty() {
                pipe.feed(i, input.tuples.clone(), &mut reqs);
                pipe.flush(i, &mut reqs);
                if pipe.states[i].in_flight == 0 {
                    to_close.push(i);
                }
            }
        }
        pipe.cascade(to_close, &mut reqs);
        (pipe, reqs)
    }

    /// Record that one activation of `activity` completed with these output
    /// tuples (empty for dropped/blacklisted activations), and return the
    /// activations that became ready as a result.
    pub fn on_completion(&mut self, activity: usize, tuples: &[Tuple]) -> Vec<SubmitReq> {
        let state = &mut self.states[activity];
        debug_assert!(state.in_flight > 0, "completion without a submission");
        state.in_flight -= 1;
        for t in tuples {
            assert_eq!(
                t.len(),
                state.output.columns.len(),
                "activity {} produced tuple of wrong arity",
                self.def.activities[activity].tag
            );
        }
        state.output.tuples.extend(tuples.iter().cloned());

        let mut reqs = Vec::new();
        // stream this activation's outputs straight into ready downstreams
        // (tuple-at-a-time operators start working on them immediately;
        // barrier operators buffer until this activity closes)
        if !tuples.is_empty() {
            for k in 0..self.successors[activity].len() {
                let d = self.successors[activity][k];
                self.feed(d, tuples.to_vec(), &mut reqs);
            }
        }
        let state = &self.states[activity];
        let mut to_close = Vec::new();
        if state.input_done && state.in_flight == 0 && !state.closed {
            to_close.push(activity);
        }
        self.cascade(to_close, &mut reqs);
        reqs
    }

    /// Have all activities closed?
    pub fn done(&self) -> bool {
        self.open == 0
    }

    /// Total activations submitted so far (all activities).
    pub fn submitted(&self) -> usize {
        self.states.iter().map(|s| s.next_part).sum()
    }

    /// The output relation of every activity, by activity index.
    pub fn into_outputs(self) -> Vec<Relation> {
        debug_assert!(self.open == 0, "outputs taken before the run closed");
        self.states.into_iter().map(|s| s.output).collect()
    }

    /// Deliver tuples to activity `i`, applying its route filter against its
    /// input schema exactly as `input_for` does on the assembled relation.
    fn feed(&mut self, i: usize, tuples: Vec<Tuple>, reqs: &mut Vec<SubmitReq>) {
        let state = &mut self.states[i];
        let mut accepted = tuples;
        if let Some((col, val)) = &self.def.activities[i].route {
            match state.input_columns.iter().position(|c| c.eq_ignore_ascii_case(col)) {
                Some(ci) => accepted.retain(|t| t[ci].sql_eq(val).unwrap_or(false)),
                None => accepted.clear(),
            }
        }
        if state.is_barrier_op {
            if state.barrier_wait_start.is_none() && !accepted.is_empty() {
                state.barrier_wait_start = Some(self.tel.now_ns());
            }
            state.buffer.extend(accepted);
        } else {
            // Map/SplitMap/Filter partition one activation per tuple, so
            // each tuple is ready the moment it arrives
            for t in accepted {
                Self::submit(state, i, vec![t], reqs);
            }
        }
    }

    /// When every upstream has closed: flush barrier operators (partition
    /// the buffered relation) and mark the input complete.
    fn flush(&mut self, i: usize, reqs: &mut Vec<SubmitReq>) {
        let state = &mut self.states[i];
        debug_assert!(!state.input_done);
        if state.is_barrier_op {
            // the span from "first tuple buffered" to "last upstream
            // closed" is exactly how long the algebra forced this
            // activity to wait at its barrier
            if let Some(start) = state.barrier_wait_start.take() {
                self.tel.record_span_at(
                    "barrier",
                    &format!("wait.{}", self.def.activities[i].tag),
                    None,
                    start,
                    self.tel.now_ns(),
                    Some("pipelined barrier operator waited for full input relation"),
                );
            }
            let rel = Relation {
                columns: state.input_columns.clone(),
                tuples: std::mem::take(&mut state.buffer),
            };
            for part in self.def.activities[i].operator.partition(&rel) {
                Self::submit(state, i, part, reqs);
            }
        }
        state.input_done = true;
    }

    fn submit(state: &mut ActState, i: usize, part: Vec<Tuple>, reqs: &mut Vec<SubmitReq>) {
        let j = state.next_part;
        state.next_part += 1;
        state.in_flight += 1;
        reqs.push(SubmitReq { activity: i, part, part_index: j });
    }

    /// Cascade closures; closing an activity may complete the input of (and
    /// immediately close) an empty downstream. Barrier flushes along the way
    /// append their submissions to `reqs`.
    fn cascade(&mut self, mut to_close: Vec<usize>, reqs: &mut Vec<SubmitReq>) {
        while let Some(i) = to_close.pop() {
            {
                let state = &mut self.states[i];
                debug_assert!(state.input_done && state.in_flight == 0 && !state.closed);
                state.closed = true;
            }
            self.open -= 1;
            // outputs were already streamed to successors as each
            // activation completed; closing only completes their input
            for k in 0..self.successors[i].len() {
                let d = self.successors[i][k];
                self.states[d].upstream_open -= 1;
                if self.states[d].upstream_open == 0 {
                    self.flush(d, reqs);
                    let dstate = &self.states[d];
                    if dstate.in_flight == 0 && !dstate.closed {
                        to_close.push(d);
                    }
                }
            }
        }
    }
}

/// Derive a stable key for one activation (provenance + failure rolls).
///
/// Single-tuple parts (Map/SplitMap/Filter activations) key on that tuple.
/// Multi-tuple parts (Reduce groups, query relations) must key *order-
/// insensitively*: the barrier executor assembles a group in submission
/// order while the pipelined one collects it in completion order, and the
/// key feeds both resume lookups and failure-fate rolls, which must agree
/// across modes (and across backends). They get the smallest per-tuple
/// render plus a digest over the sorted renders.
pub(crate) fn pair_key(tuples: &[Tuple]) -> String {
    match tuples {
        [] => String::from("<empty>"),
        [t] => tuple_key(t),
        many => {
            let mut keys: Vec<String> = many.iter().map(tuple_key).collect();
            keys.sort();
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for k in &keys {
                for b in k.as_bytes() {
                    h ^= *b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h = h.wrapping_mul(0x100_0000_01b3); // separator
            }
            let first = keys.swap_remove(0);
            format!("{first}*{h:016x}")
        }
    }
}

/// Render one tuple as a short key.
///
/// Integral floats render without the decimal point so that tuples resumed
/// from provenance (which stores all numerics as floats) key identically to
/// their original integer-typed versions.
fn tuple_key(t: &Tuple) -> String {
    let mut s = String::new();
    for (k, v) in t.iter().enumerate() {
        if k > 0 {
            s.push(':');
        }
        let text = match v {
            provenance::Value::Float(f) if f.fract() == 0.0 && f.abs() < 1e15 => {
                format!("{}", *f as i64)
            }
            other => other.to_string(),
        };
        // keep keys short: long values (file bodies) are truncated
        if text.len() > 24 {
            s.push_str(&text[..24]);
        } else {
            s.push_str(&text);
        }
    }
    s
}

/// Split a path into `(directory-with-trailing-slash, file name)`.
pub(crate) fn split_path(path: &str) -> (&str, &str) {
    match path.rfind('/') {
        Some(i) => (&path[..i + 1], &path[i + 1..]),
        None => ("", path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::Activity;
    use provenance::Value;
    use std::sync::Arc;

    fn ident() -> crate::workflow::ActivityFn {
        Arc::new(|t, _| Ok(t.to_vec()))
    }

    fn input(n: i64) -> Relation {
        let mut r = Relation::new(&["x"]);
        for k in 0..n {
            r.push(vec![Value::Int(k)]);
        }
        r
    }

    /// Drive a PipelineState synchronously with an identity executor and
    /// return the final outputs.
    fn drive(def: &WorkflowDef, input: &Relation) -> Vec<Relation> {
        let (mut pipe, mut queue) =
            PipelineState::new(Arc::new(def.clone()), input, Telemetry::disabled());
        while let Some(req) = queue.pop() {
            // identity semantics: every activation echoes its input part
            let more = pipe.on_completion(req.activity, &req.part);
            queue.extend(more);
        }
        assert!(pipe.done());
        pipe.into_outputs()
    }

    #[test]
    fn chain_streams_tuple_at_a_time() {
        let def = WorkflowDef {
            tag: "t".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![
                Activity::map("a", &["x"], ident()),
                Activity::map("b", &["x"], ident()),
            ],
            deps: vec![vec![], vec![0]],
        };
        let (mut pipe, reqs) = PipelineState::new(Arc::new(def), &input(3), Telemetry::disabled());
        // only the source is ready at seed time, one activation per tuple
        assert_eq!(reqs.len(), 3);
        assert!(reqs.iter().all(|r| r.activity == 0));
        assert_eq!(reqs.iter().map(|r| r.part_index).collect::<Vec<_>>(), vec![0, 1, 2]);
        // completing ONE source activation readies ONE downstream activation
        let next = pipe.on_completion(0, &reqs[0].part);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].activity, 1);
        assert!(!pipe.done());
    }

    #[test]
    fn barrier_operator_waits_for_all_upstreams() {
        let def = WorkflowDef {
            tag: "t".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![
                Activity::map("src", &["x"], ident()),
                Activity::map("all", &["x"], ident()).with_operator(Operator::SRQuery),
            ],
            deps: vec![vec![], vec![0]],
        };
        let (mut pipe, reqs) = PipelineState::new(Arc::new(def), &input(3), Telemetry::disabled());
        assert_eq!(reqs.len(), 3);
        // completing two of three source activations releases nothing
        assert!(pipe.on_completion(0, &reqs[0].part).is_empty());
        assert!(pipe.on_completion(0, &reqs[1].part).is_empty());
        // the third closes the source and flushes the barrier: one
        // activation over the whole 3-tuple relation
        let next = pipe.on_completion(0, &reqs[2].part);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].activity, 1);
        assert_eq!(next[0].part.len(), 3);
        assert!(pipe.on_completion(1, &next[0].part).is_empty());
        assert!(pipe.done());
        assert_eq!(pipe.submitted(), 4);
    }

    #[test]
    fn diamond_with_route_filters_and_empty_close_cascade() {
        let def = WorkflowDef {
            tag: "d".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![
                Activity::map("src_a", &["x"], ident()),
                Activity::map("src_b", &["x"], ident()),
                Activity::map("join", &["x"], ident()).with_route("x", Value::Int(1)),
            ],
            deps: vec![vec![], vec![], vec![0, 1]],
        };
        let outs = drive(&def, &input(3));
        assert_eq!(outs[0].len(), 3);
        assert_eq!(outs[1].len(), 3);
        // both sources emit 0..3; the route keeps only x == 1, twice
        assert_eq!(outs[2].len(), 2);
    }

    #[test]
    fn empty_input_closes_everything_without_submissions() {
        let def = WorkflowDef {
            tag: "t".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![
                Activity::map("a", &["x"], ident()),
                Activity::map("b", &["x"], ident()),
            ],
            deps: vec![vec![], vec![0]],
        };
        let (pipe, reqs) = PipelineState::new(Arc::new(def), &input(0), Telemetry::disabled());
        assert!(reqs.is_empty());
        assert!(pipe.done(), "empty workflow closes at seed time");
        assert_eq!(pipe.submitted(), 0);
    }

    #[test]
    fn pair_key_is_order_insensitive_for_groups() {
        let a = vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)]];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(pair_key(&a), pair_key(&b));
        assert_ne!(pair_key(&a), pair_key(&a[..2]));
        assert_eq!(pair_key(&[]), "<empty>");
        // integral floats key like their integer originals
        assert_eq!(pair_key(&[vec![Value::Int(7)]]), pair_key(&[vec![Value::Float(7.0)]]),);
    }

    #[test]
    fn split_path_splits() {
        assert_eq!(split_path("/a/b/c.dlg"), ("/a/b/", "c.dlg"));
        assert_eq!(split_path("file.txt"), ("", "file.txt"));
    }
}
