//! Activity command templates — SciCumulus' instrumentation mechanism
//! (paper Figs. 2–3): activity template files contain `%TAG%` placeholders
//! that are "replaced by actual values dynamically during the execution, as
//! executions are ready to be started". Capturing the substituted values is
//! what lets the engine record every parameter in the provenance database.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed template: literal segments interleaved with tag references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    segments: Vec<Segment>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(String),
    Tag(String),
}

/// Error from parsing or rendering a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// A `%` was opened but never closed.
    UnterminatedTag {
        /// Byte offset of the opening `%`.
        position: usize,
    },
    /// A tag had no value at render time.
    UnboundTag {
        /// The tag name.
        name: String,
    },
    /// A tag name was empty (`%%` is the escape for a literal percent, so
    /// this cannot occur from parsing; it guards programmatic construction).
    EmptyTag,
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::UnterminatedTag { position } => {
                write!(f, "unterminated %TAG% starting at byte {position}")
            }
            TemplateError::UnboundTag { name } => write!(f, "no value for tag %{name}%"),
            TemplateError::EmptyTag => write!(f, "empty tag name"),
        }
    }
}

impl std::error::Error for TemplateError {}

impl Template {
    /// Parse template text. `%NAME%` is a tag; `%%` is a literal `%`.
    pub fn parse(text: &str) -> Result<Template, TemplateError> {
        let mut segments = Vec::new();
        let mut literal = String::new();
        let bytes = text.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'%' {
                if i + 1 < bytes.len() && bytes[i + 1] == b'%' {
                    literal.push('%');
                    i += 2;
                    continue;
                }
                // find the closing %
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'%' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(TemplateError::UnterminatedTag { position: start });
                }
                let name = &text[i + 1..j];
                if name.is_empty() {
                    // handled by the %% escape above, but stay defensive
                    return Err(TemplateError::EmptyTag);
                }
                if !literal.is_empty() {
                    segments.push(Segment::Literal(std::mem::take(&mut literal)));
                }
                segments.push(Segment::Tag(name.to_string()));
                i = j + 1;
            } else {
                // push the full UTF-8 character, not just one byte
                let ch = text[i..].chars().next().expect("in-bounds char");
                literal.push(ch);
                i += ch.len_utf8();
            }
        }
        if !literal.is_empty() {
            segments.push(Segment::Literal(literal));
        }
        Ok(Template { segments })
    }

    /// All distinct tag names, in first-appearance order.
    pub fn tags(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        self.segments
            .iter()
            .filter_map(|s| match s {
                Segment::Tag(n) if seen.insert(n.as_str()) => Some(n.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Render with the given tag values; every tag must be bound.
    pub fn render(&self, values: &BTreeMap<String, String>) -> Result<String, TemplateError> {
        let mut out = String::new();
        for s in &self.segments {
            match s {
                Segment::Literal(l) => out.push_str(l),
                Segment::Tag(n) => match values.get(n) {
                    Some(v) => out.push_str(v),
                    None => return Err(TemplateError::UnboundTag { name: n.clone() }),
                },
            }
        }
        Ok(out)
    }

    /// Render, and also report which (tag, value) pairs were substituted —
    /// the instrumentation record SciCumulus stores in provenance.
    pub fn render_instrumented(
        &self,
        values: &BTreeMap<String, String>,
    ) -> Result<(String, Vec<(String, String)>), TemplateError> {
        let rendered = self.render(values)?;
        let used: Vec<(String, String)> =
            self.tags().iter().map(|t| (t.to_string(), values[*t].clone())).collect();
        Ok((rendered, used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn basic_substitution() {
        // the paper's Fig. 3 flavour: a babel command line
        let t = Template::parse("babel -isdf %LIGAND%.sdf -omol2 %LIGAND%.mol2").unwrap();
        assert_eq!(t.tags(), vec!["LIGAND"]);
        let out = t.render(&vals(&[("LIGAND", "0E6")])).unwrap();
        assert_eq!(out, "babel -isdf 0E6.sdf -omol2 0E6.mol2");
    }

    #[test]
    fn multiple_tags_in_order() {
        let t = Template::parse("%A% %B% %A% %C%").unwrap();
        assert_eq!(t.tags(), vec!["A", "B", "C"]);
        let out = t.render(&vals(&[("A", "1"), ("B", "2"), ("C", "3")])).unwrap();
        assert_eq!(out, "1 2 1 3");
    }

    #[test]
    fn percent_escape() {
        let t = Template::parse("load 100%% of %X%").unwrap();
        let out = t.render(&vals(&[("X", "cpu")])).unwrap();
        assert_eq!(out, "load 100% of cpu");
    }

    #[test]
    fn unbound_tag_errors() {
        let t = Template::parse("%MISSING%").unwrap();
        let err = t.render(&BTreeMap::new()).unwrap_err();
        assert_eq!(err, TemplateError::UnboundTag { name: "MISSING".into() });
        assert!(err.to_string().contains("MISSING"));
    }

    #[test]
    fn unterminated_tag_errors() {
        let err = Template::parse("hello %WORLD").unwrap_err();
        assert_eq!(err, TemplateError::UnterminatedTag { position: 6 });
    }

    #[test]
    fn no_tags_is_identity() {
        let t = Template::parse("plain text, no tags").unwrap();
        assert!(t.tags().is_empty());
        assert_eq!(t.render(&BTreeMap::new()).unwrap(), "plain text, no tags");
    }

    #[test]
    fn instrumented_render_reports_substitutions() {
        let t = Template::parse("dock %REC% %LIG% -out %LIG%_%REC%.dlg").unwrap();
        let (out, used) = t.render_instrumented(&vals(&[("REC", "2HHN"), ("LIG", "0E6")])).unwrap();
        assert_eq!(out, "dock 2HHN 0E6 -out 0E6_2HHN.dlg");
        assert_eq!(
            used,
            vec![("REC".to_string(), "2HHN".to_string()), ("LIG".to_string(), "0E6".to_string())]
        );
    }

    #[test]
    fn extra_values_are_fine() {
        let t = Template::parse("%A%").unwrap();
        let out = t.render(&vals(&[("A", "x"), ("UNUSED", "y")])).unwrap();
        assert_eq!(out, "x");
    }

    #[test]
    fn utf8_literals_survive() {
        let t = Template::parse("énergie → %E% kcal/mol").unwrap();
        assert_eq!(t.render(&vals(&[("E", "-7.2")])).unwrap(), "énergie → -7.2 kcal/mol");
    }

    #[test]
    fn multiline_template() {
        let text = "receptor = %REC%.pdbqt\nligand = %LIG%.pdbqt\nexhaustiveness = 8\n";
        let t = Template::parse(text).unwrap();
        let out = t.render(&vals(&[("REC", "1HUC"), ("LIG", "042")])).unwrap();
        assert!(out.contains("receptor = 1HUC.pdbqt"));
        assert!(out.contains("ligand = 042.pdbqt"));
        assert!(out.ends_with("exhaustiveness = 8\n"));
    }
}
