//! The unified execution-backend API.
//!
//! Every way of running a workflow — in-process threads
//! ([`LocalBackend`]), multiple OS processes ([`DistBackend`]), or the
//! discrete-event simulator ([`SimBackend`]) — implements one trait:
//!
//! ```
//! use std::sync::Arc;
//! use cumulus::{Backend, LocalBackend, LocalConfig, Relation, Workflow};
//! use cumulus::workflow::{Activity, WorkflowDef};
//! use provenance::{ProvenanceStore, Value};
//!
//! let def = WorkflowDef {
//!     tag: "demo".into(),
//!     description: "double each x".into(),
//!     expdir: "/exp/demo".into(),
//!     activities: vec![Activity::map(
//!         "double",
//!         &["x"],
//!         Arc::new(|t, _| {
//!             Ok(vec![vec![Value::Int(match t[0][0] { Value::Int(i) => i * 2, _ => 0 })]])
//!         }),
//!     )],
//!     deps: vec![vec![]],
//! };
//! let mut input = Relation::new(&["x"]);
//! input.push(vec![Value::Int(21)]);
//! let wf = Workflow::new(def, input);
//! let store = Arc::new(ProvenanceStore::new());
//! let backend: Box<dyn Backend> = Box::new(LocalBackend::new(LocalConfig::new()));
//! let outcome = backend.run(&wf, &store).unwrap();
//! assert_eq!(outcome.finished, 1);
//! assert_eq!(outcome.final_output().tuples, vec![vec![Value::Int(42)]]);
//! ```
//!
//! The older entry points ([`crate::run_local`], [`crate::simulate`],
//! [`crate::run_dist`]) remain as the underlying implementations, but new
//! code should go through [`Backend::run`]: it is the only surface that
//! yields the backend-independent [`RunOutcome`] (with per-activity wall
//! timings folded from provenance), and the only one that lets callers swap
//! execution substrates behind a `dyn Backend`.

use std::sync::Arc;

use provenance::{ProvenanceStore, Value, WorkflowId};
use telemetry::MetricsSnapshot;

use crate::algebra::{Operator, Relation};
use crate::distbackend::{run_dist, DistConfig};
use crate::error::CumulusError;
use crate::localbackend::{run_local_impl, LocalConfig, RunReport};
use crate::simbackend::{simulate_tasks, SimConfig, SimTask};
use crate::workflow::{FileStore, WorkflowDef};

/// A runnable workflow: the definition plus its input relation and the
/// shared file store activations exchange artifacts through.
#[derive(Debug, Clone)]
pub struct Workflow {
    /// The executable workflow definition.
    pub def: WorkflowDef,
    /// The workflow's input relation (consumed by source activities).
    pub input: Relation,
    /// The shared file store (pre-stage inputs into it before running).
    pub files: Arc<FileStore>,
}

impl Workflow {
    /// Bundle a definition and input with a fresh, empty file store.
    pub fn new(def: WorkflowDef, input: Relation) -> Workflow {
        Workflow { def, input, files: Arc::new(FileStore::new()) }
    }

    /// Use an existing file store (e.g. with staged input files).
    pub fn with_files(mut self, files: Arc<FileStore>) -> Workflow {
        self.files = files;
        self
    }
}

/// Wall-clock statistics for one activity, folded from the provenance
/// store's `FINISHED` activation rows after the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityTiming {
    /// Activity tag (`hactivity.tag`).
    pub tag: String,
    /// Number of activations that finished.
    pub activations: usize,
    /// Sum of activation wall times in seconds.
    pub total_s: f64,
    /// Mean activation wall time in seconds (0 when nothing finished).
    pub mean_s: f64,
    /// Longest activation wall time in seconds.
    pub max_s: f64,
}

/// The backend-independent outcome of [`Backend::run`].
///
/// Marked `#[non_exhaustive]` so future backends can add fields without a
/// breaking release; construct only via a backend.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunOutcome {
    /// Provenance id of this run.
    pub workflow: WorkflowId,
    /// Wall-clock (or simulated) duration of the whole run in seconds.
    pub total_seconds: f64,
    /// Successful activations.
    pub finished: usize,
    /// Failed attempts (each retried unless the budget ran out).
    pub failed_attempts: usize,
    /// Activations aborted after entering a looping/hanging state.
    pub aborted: usize,
    /// Activations skipped by the blacklist rule.
    pub blacklisted: usize,
    /// Activations skipped because a prior run already finished them.
    pub resumed: usize,
    /// Activations cancelled because an upstream was dropped (simulator
    /// only; real backends always retry or blacklist instead).
    pub cancelled: usize,
    /// Output relation of every activity, by activity index (empty for the
    /// simulator, which models costs rather than data).
    pub outputs: Vec<Relation>,
    /// Aggregated telemetry — `None` when no sink was attached.
    pub metrics: Option<MetricsSnapshot>,
    /// Per-activity wall-time statistics folded from provenance.
    pub activity_timings: Vec<ActivityTiming>,
    /// Scale decisions taken by the elastic fleet policy, in order (empty
    /// for fixed fleets). Identical across `DistBackend` and `SimBackend`
    /// under the same policy and workload — the parity tests assert this.
    pub scale_events: Vec<crate::fleet::ScaleEvent>,
    /// Largest provisioned fleet at any point in the run.
    pub peak_workers: usize,
    /// Fleet bill under the active cost model, when one applies.
    pub fleet_cost_usd: Option<f64>,
}

impl RunOutcome {
    /// The output relation of the final activity.
    ///
    /// # Panics
    /// Panics when the backend produced no output relations (the
    /// simulator) — check `outputs.is_empty()` first for `SimBackend`.
    pub fn final_output(&self) -> &Relation {
        self.outputs.last().expect("backend produced no output relations")
    }

    fn from_report(report: RunReport, store: &ProvenanceStore) -> RunOutcome {
        let activity_timings = activity_timings(store, report.workflow);
        RunOutcome {
            workflow: report.workflow,
            total_seconds: report.total_seconds,
            finished: report.finished,
            failed_attempts: report.failed_attempts,
            aborted: report.aborted,
            blacklisted: report.blacklisted,
            resumed: report.resumed,
            cancelled: 0,
            outputs: report.outputs,
            metrics: report.metrics,
            activity_timings,
            scale_events: report.scale_events,
            peak_workers: report.peak_workers,
            fleet_cost_usd: report.fleet_cost_usd,
        }
    }
}

/// Fold per-activity wall-time statistics out of the provenance store's
/// `FINISHED` rows for one workflow execution.
pub fn activity_timings(store: &ProvenanceStore, wkf: WorkflowId) -> Vec<ActivityTiming> {
    let rows = store
        .query_rows(
            "SELECT a.tag, t.starttime, t.endtime FROM hactivation t, hactivity a \
             WHERE t.actid = a.actid AND t.wkfid = ? AND t.status = 'FINISHED' \
             ORDER BY t.taskid",
            &[Value::Int(wkf.0)],
        )
        .expect("provenance schema is fixed");
    // preserve activity registration order
    let acts = store
        .query_rows(
            "SELECT tag FROM hactivity WHERE wkfid = ? ORDER BY actid",
            &[Value::Int(wkf.0)],
        )
        .expect("provenance schema is fixed");
    let mut out: Vec<ActivityTiming> = acts
        .rows
        .iter()
        .map(|r| ActivityTiming {
            tag: r[0].to_string(),
            activations: 0,
            total_s: 0.0,
            mean_s: 0.0,
            max_s: 0.0,
        })
        .collect();
    for row in &rows.rows {
        let tag = row[0].to_string();
        let (start, end) = match (&row[1], &row[2]) {
            (Value::Timestamp(s), Value::Timestamp(e)) => (*s, *e),
            _ => continue,
        };
        if let Some(t) = out.iter_mut().find(|t| t.tag == tag) {
            let dur = (end - start).max(0.0);
            t.activations += 1;
            t.total_s += dur;
            t.max_s = t.max_s.max(dur);
        }
    }
    for t in &mut out {
        if t.activations > 0 {
            t.mean_s = t.total_s / t.activations as f64;
        }
    }
    out
}

/// A way of executing a [`Workflow`] against a [`ProvenanceStore`].
///
/// All three implementations record the same PROV-Wf provenance shape, so
/// `provenance::export_provn_canonical` of a local and a distributed run of
/// the same workflow are byte-identical (the parity tests assert this).
pub trait Backend {
    /// Run the workflow to completion, recording provenance into `store`.
    fn run(&self, wf: &Workflow, store: &Arc<ProvenanceStore>) -> Result<RunOutcome, CumulusError>;
}

/// In-process execution on the work-stealing thread pool
/// (see [`crate::localbackend`]).
#[derive(Debug, Clone, Default)]
pub struct LocalBackend {
    cfg: LocalConfig,
}

impl LocalBackend {
    /// A local backend with the given configuration.
    pub fn new(cfg: LocalConfig) -> LocalBackend {
        LocalBackend { cfg }
    }
}

impl Backend for LocalBackend {
    fn run(&self, wf: &Workflow, store: &Arc<ProvenanceStore>) -> Result<RunOutcome, CumulusError> {
        let report = run_local_impl(
            &wf.def,
            wf.input.clone(),
            Arc::clone(&wf.files),
            Arc::clone(store),
            &self.cfg,
        )?;
        Ok(RunOutcome::from_report(report, store))
    }
}

/// Multi-process execution: a master shards activations over spawned
/// worker processes (see [`crate::distbackend`]).
#[derive(Debug, Clone)]
pub struct DistBackend {
    cfg: DistConfig,
}

impl DistBackend {
    /// A distributed backend with the given configuration.
    pub fn new(cfg: DistConfig) -> DistBackend {
        DistBackend { cfg }
    }
}

impl Backend for DistBackend {
    fn run(&self, wf: &Workflow, store: &Arc<ProvenanceStore>) -> Result<RunOutcome, CumulusError> {
        let report = run_dist(
            &wf.def,
            wf.input.clone(),
            Arc::clone(&wf.files),
            Arc::clone(store),
            &self.cfg,
        )?;
        Ok(RunOutcome::from_report(report, store))
    }
}

/// Discrete-event simulated execution on an elastic EC2 fleet
/// (see [`crate::simbackend`]).
///
/// The simulator models activation *costs*, not data, so the workflow's
/// activity functions never run: a synthetic activation DAG is derived from
/// the workflow shape (one task per input tuple for sources, 1:1 chains
/// through Map-like operators, a barrier task for Reduce/queries) and the
/// outcome's `outputs` are empty.
#[derive(Debug, Clone, Default)]
pub struct SimBackend {
    cfg: SimConfig,
}

impl SimBackend {
    /// A simulated backend with the given configuration. The config's
    /// `workflow_tag`/`activity_tags` are overridden from the workflow.
    pub fn new(cfg: SimConfig) -> SimBackend {
        SimBackend { cfg }
    }

    /// Derive the synthetic activation DAG the simulator will execute.
    fn synthesize(wf: &Workflow) -> Vec<SimTask> {
        let def = &wf.def;
        let mut tasks: Vec<SimTask> = Vec::new();
        // task indices produced by each activity
        let mut produced: Vec<Vec<usize>> = vec![Vec::new(); def.activities.len()];
        for (i, activity) in def.activities.iter().enumerate() {
            let upstream: Vec<usize> =
                def.deps[i].iter().flat_map(|&d| produced[d].iter().copied()).collect();
            let barrier = matches!(
                activity.operator,
                Operator::Reduce { .. } | Operator::SRQuery | Operator::MRQuery
            );
            if barrier {
                // one activation consuming the whole upstream relation
                let id = tasks.len();
                tasks.push(SimTask {
                    activity_index: i,
                    pair_key: format!("{}#all", activity.tag),
                    nominal_s: 1.0,
                    in_bytes: 0,
                    out_bytes: 0,
                    deps: upstream,
                    poison: false,
                });
                produced[i].push(id);
            } else if def.deps[i].is_empty() {
                // source Map-like: one activation per input tuple
                for (j, _) in wf.input.tuples.iter().enumerate() {
                    let id = tasks.len();
                    tasks.push(SimTask {
                        activity_index: i,
                        pair_key: format!("{}#{}", activity.tag, j),
                        nominal_s: 1.0,
                        in_bytes: 0,
                        out_bytes: 0,
                        deps: Vec::new(),
                        poison: false,
                    });
                    produced[i].push(id);
                }
            } else {
                // downstream Map-like: 1:1 with upstream activations
                for (j, &up) in upstream.iter().enumerate() {
                    let id = tasks.len();
                    tasks.push(SimTask {
                        activity_index: i,
                        pair_key: format!("{}#{}", activity.tag, j),
                        nominal_s: 1.0,
                        in_bytes: 0,
                        out_bytes: 0,
                        deps: vec![up],
                        poison: false,
                    });
                    produced[i].push(id);
                }
            }
        }
        tasks
    }
}

impl Backend for SimBackend {
    fn run(&self, wf: &Workflow, store: &Arc<ProvenanceStore>) -> Result<RunOutcome, CumulusError> {
        wf.def.validate().map_err(CumulusError::Invalid)?;
        let tasks = Self::synthesize(wf);
        let cfg = self
            .cfg
            .clone()
            .with_workflow_tag(wf.def.tag.clone())
            .with_activity_tags(wf.def.activities.iter().map(|a| a.tag.clone()).collect());
        let report = simulate_tasks(&tasks, &cfg, Some(store));
        // simulate_tasks() registers the workflow itself; recover its id
        let wkf = store
            .query_rows("SELECT max(wkfid) FROM hworkflow", &[])
            .ok()
            .and_then(|r| r.rows.first().map(|row| row[0].clone()))
            .and_then(|v| match v {
                Value::Int(i) => Some(WorkflowId(i)),
                _ => None,
            })
            .ok_or_else(|| {
                CumulusError::Provenance("simulated run registered no workflow".into())
            })?;
        Ok(RunOutcome {
            workflow: wkf,
            total_seconds: report.tet_s,
            finished: report.finished,
            failed_attempts: report.failed_attempts,
            aborted: report.aborted,
            blacklisted: report.blacklisted,
            resumed: 0,
            cancelled: report.cancelled,
            outputs: Vec::new(),
            metrics: report.metrics,
            activity_timings: activity_timings(store, wkf),
            scale_events: report.scale_events,
            peak_workers: report.peak_vms,
            fleet_cost_usd: Some(report.cost_usd),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::Activity;

    fn xy_def() -> WorkflowDef {
        WorkflowDef {
            tag: "bt".into(),
            description: "backend test".into(),
            expdir: "/exp/bt".into(),
            activities: vec![
                Activity::map(
                    "inc",
                    &["x"],
                    Arc::new(|t, _| {
                        Ok(t.iter()
                            .map(|row| {
                                vec![Value::Int(match row[0] {
                                    Value::Int(i) => i + 1,
                                    _ => 0,
                                })]
                            })
                            .collect())
                    }),
                ),
                Activity::map(
                    "sum",
                    &["total"],
                    Arc::new(|t: &[crate::algebra::Tuple], _: &mut _| {
                        let s: i64 = t
                            .iter()
                            .map(|row| match row[0] {
                                Value::Int(i) => i,
                                _ => 0,
                            })
                            .sum();
                        Ok(vec![vec![Value::Int(s)]])
                    }),
                )
                .with_operator(Operator::SRQuery),
            ],
            deps: vec![vec![], vec![0]],
        }
    }

    fn xy_input() -> Relation {
        let mut r = Relation::new(&["x"]);
        for i in 0..5 {
            r.push(vec![Value::Int(i)]);
        }
        r
    }

    #[test]
    fn local_backend_runs_and_folds_timings() {
        let wf = Workflow::new(xy_def(), xy_input());
        let store = Arc::new(ProvenanceStore::new());
        let backend: Box<dyn Backend> =
            Box::new(LocalBackend::new(LocalConfig::new().with_threads(2)));
        let out = backend.run(&wf, &store).unwrap();
        assert_eq!(out.finished, 6); // 5 inc + 1 sum
        assert_eq!(out.final_output().tuples, vec![vec![Value::Int(15)]]);
        assert_eq!(out.activity_timings.len(), 2);
        assert_eq!(out.activity_timings[0].tag, "inc");
        assert_eq!(out.activity_timings[0].activations, 5);
        assert_eq!(out.activity_timings[1].tag, "sum");
        assert_eq!(out.activity_timings[1].activations, 1);
        assert!(out.activity_timings[0].mean_s <= out.activity_timings[0].max_s + 1e-12);
    }

    #[test]
    fn sim_backend_runs_the_same_workflow_shape() {
        let wf = Workflow::new(xy_def(), xy_input());
        let store = Arc::new(ProvenanceStore::new());
        let backend: Box<dyn Backend> = Box::new(SimBackend::new(SimConfig::new()));
        let out = backend.run(&wf, &store).unwrap();
        assert_eq!(out.finished, 6);
        assert!(out.outputs.is_empty());
        assert!(out.total_seconds > 0.0);
        // provenance carries the workflow's own tags
        let tags = store.query_rows("SELECT tag FROM hactivity ORDER BY actid", &[]).unwrap();
        let tags: Vec<String> = tags.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(tags, vec!["inc", "sum"]);
        assert_eq!(out.activity_timings.len(), 2);
        assert_eq!(out.activity_timings[0].activations, 5);
    }

    #[test]
    fn local_and_sim_mirror_emit_the_same_event_sequence() {
        use crate::localbackend::DispatchMode;
        use crate::obs::EventLog;

        // serial local run: thread scheduling cannot reorder the lifecycle
        let local_events = EventLog::new();
        let wf = Workflow::new(xy_def(), xy_input());
        let store = Arc::new(ProvenanceStore::new());
        let local = LocalBackend::new(
            LocalConfig::new()
                .with_threads(1)
                .with_mode(DispatchMode::Barrier)
                .with_events(local_events.clone()),
        );
        local.run(&wf, &store).unwrap();

        // sim mirror of the same workflow shape, fixed seed
        let sim_events = EventLog::new();
        let sim_store = Arc::new(ProvenanceStore::new());
        let sim = SimBackend::new(SimConfig::new().with_seed(7).with_events(sim_events.clone()));
        sim.run(&wf, &sim_store).unwrap();

        let local_seq: Vec<_> =
            local_events.events().iter().map(|e| e.parity_signature()).collect();
        let sim_seq: Vec<_> = sim_events.events().iter().map(|e| e.parity_signature()).collect();
        assert!(!local_seq.is_empty());
        assert_eq!(
            local_seq, sim_seq,
            "a sim mirror must produce the same event sequence modulo timestamps \
             and backend-specific resource names"
        );
        // and the sequence is the expected lifecycle, start to finish
        let kinds: Vec<String> = local_events.events().iter().map(|e| e.kind.clone()).collect();
        assert_eq!(kinds.first().map(String::as_str), Some("run_started"));
        assert_eq!(kinds.last().map(String::as_str), Some("run_finished"));
        assert_eq!(kinds.iter().filter(|k| *k == "activation_finished").count(), 6);
    }

    #[test]
    fn invalid_workflow_maps_to_cumulus_error() {
        let mut def = xy_def();
        def.deps = vec![vec![1], vec![0]]; // cycle
        let wf = Workflow::new(def, xy_input());
        let store = Arc::new(ProvenanceStore::new());
        let err = LocalBackend::default().run(&wf, &store).unwrap_err();
        assert!(matches!(err, CumulusError::Invalid(_)));
    }
}
