//! Elastic fleet control: the [`Scheduler`] trait and its policies.
//!
//! The paper's central claim is *elastic* cloud execution — acquire workers
//! when the activation queue backs up, drain and retire them when it
//! empties. This module separates those **decisions** from the resource
//! bookkeeping that executes them (the DSLab-style split): a [`Scheduler`]
//! only ever sees a [`FleetSnapshot`] and answers with a [`ScaleDecision`];
//! the distributed master and the simulator each apply that decision with
//! their own machinery (spawn a `scidock-worker` process vs. acquire a
//! simulated VM).
//!
//! Because both backends feed the policy the *same* deterministic signals —
//! outstanding activations, provisioned fleet size, completion count — a
//! policy produces the identical decision trace in sim and for real on the
//! same workflow. That is the point: validate a policy cheaply in the
//! simulator, then run it unchanged against real processes.
//!
//! Three policies ship:
//!
//! * [`FixedScheduler`] — never scales; exactly the pre-elastic behavior.
//! * [`QueueDepthScheduler`] — grow while the backlog exceeds a multiple of
//!   fleet capacity, shrink when a smaller fleet still covers it, with
//!   completion-count cooldown hysteresis.
//! * [`CostAwareScheduler`] — HEFT-style: ranks remaining work with
//!   per-activity mean durations (from provenance via
//!   [`crate::sched::activity_profiles`]), grows only while the estimated
//!   time-to-clear misses a target makespan *and* the fleet bill stays
//!   under a $/hour ceiling from [`cloudsim::BillingModel`].

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use cloudsim::BillingModel;

use crate::workflow::WorkflowDef;

/// What a [`Scheduler`] sees when asked for a scale decision.
///
/// Every field is a *logical* quantity that evolves identically in the
/// simulator and the distributed master: no wall-clock, no socket state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSnapshot {
    /// Completion events processed so far (any fate: finished or failed).
    pub completions: usize,
    /// Activations ready to dispatch but not yet sent to a worker.
    pub queued: usize,
    /// Activations dispatched and not yet completed.
    pub in_flight: usize,
    /// Provisioned workers: connected + still booting/connecting, minus
    /// any that are draining or gone.
    pub fleet: usize,
    /// Connected workers currently running nothing.
    pub idle: usize,
    /// Concurrent activations one worker runs (`max_in_flight` for the
    /// dist backend, cores-per-VM for the simulator).
    pub slots_per_worker: usize,
    /// `queued` broken down by activity index (for rank-weighted policies).
    pub queued_by_activity: Vec<usize>,
    /// In-flight activations currently flagged as stragglers (running far
    /// beyond their activity's latency baseline). Always 0 for backends
    /// without a straggler detector, which keeps decision traces identical
    /// across backends unless a detector actually fires.
    pub stragglers: usize,
}

impl FleetSnapshot {
    /// Activations not yet completed: queued plus in flight.
    pub fn outstanding(&self) -> usize {
        self.queued + self.in_flight
    }

    /// Activations the provisioned fleet can run concurrently.
    pub fn capacity(&self) -> usize {
        self.fleet * self.slots_per_worker
    }

    /// Capacity discounted by straggling slots: a straggler occupies a slot
    /// without making progress, so policies should not count it as
    /// throughput. Equals [`FleetSnapshot::capacity`] when no detector ran.
    pub fn effective_capacity(&self) -> usize {
        self.capacity().saturating_sub(self.stragglers)
    }
}

/// A scheduler's answer to a [`FleetSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the fleet as it is.
    Hold,
    /// Provision this many additional workers.
    Grow(usize),
    /// Drain-then-retire this many workers.
    Shrink(usize),
}

/// One non-[`Hold`](ScaleDecision::Hold) decision, as recorded in the
/// controller's trace. Two backends running the same policy over the same
/// workflow must produce equal traces — that equality is asserted by the
/// sim-vs-dist parity test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// Completion count at decision time.
    pub completions: usize,
    /// Provisioned fleet size the decision was made against.
    pub fleet: usize,
    /// Outstanding activations (queued + in flight) at decision time.
    pub outstanding: usize,
    /// The decision itself (never `Hold`).
    pub decision: ScaleDecision,
}

/// Where the dispatcher may place one activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerView {
    /// Stable worker index (accept order in dist, VM id in sim).
    pub index: usize,
    /// Activations currently running on this worker.
    pub in_flight: usize,
}

/// Placement + scale decisions, separated from resource bookkeeping.
///
/// Implementations must be deterministic functions of the snapshots they
/// are shown (plus their own construction-time config): the sim-vs-dist
/// parity guarantee depends on it.
pub trait Scheduler: Send {
    /// Short policy name, used in telemetry and reports.
    fn name(&self) -> &'static str;

    /// Answer a snapshot with a scale decision. Called once before the
    /// first dispatch and once after every completion event.
    fn decide(&mut self, snap: &FleetSnapshot) -> ScaleDecision;

    /// Pick a worker for the next activation of `activity` among
    /// `candidates` (each with spare slots). Default: least loaded, ties
    /// to the lowest index — exactly the pre-elastic dispatcher.
    fn place(&mut self, activity: usize, candidates: &[WorkerView]) -> Option<usize> {
        let _ = activity;
        candidates.iter().min_by_key(|w| (w.in_flight, w.index)).map(|w| w.index)
    }

    /// The price of one worker-hour, when the policy carries one. Backends
    /// use it to bill the fleet in their run report.
    fn billing(&self) -> Option<BillingModel> {
        None
    }
}

/// Builds a fresh [`Scheduler`] per run, so one config can drive many runs
/// (and the parity test can hand the *same* factory to both backends).
#[derive(Clone)]
pub struct SchedulerFactory(Arc<dyn Fn() -> Box<dyn Scheduler> + Send + Sync>);

impl SchedulerFactory {
    /// Wrap a closure producing a fresh scheduler.
    pub fn new(f: impl Fn() -> Box<dyn Scheduler> + Send + Sync + 'static) -> SchedulerFactory {
        SchedulerFactory(Arc::new(f))
    }

    /// Instantiate a scheduler for one run.
    pub fn build(&self) -> Box<dyn Scheduler> {
        (self.0)()
    }
}

impl fmt::Debug for SchedulerFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SchedulerFactory({})", self.build().name())
    }
}

/// Runs one scheduler over one run: counts completions, records the
/// decision trace, and forwards placement queries. Both backends drive
/// their fleet through this so the trace semantics cannot drift apart.
pub struct FleetController {
    sched: Box<dyn Scheduler>,
    trace: Vec<ScaleEvent>,
    completions: usize,
}

impl FleetController {
    /// A controller over a fresh scheduler from `factory`.
    pub fn new(factory: &SchedulerFactory) -> FleetController {
        FleetController { sched: factory.build(), trace: Vec::new(), completions: 0 }
    }

    /// A controller that never scales (the default fixed fleet).
    pub fn fixed() -> FleetController {
        FleetController { sched: Box::new(FixedScheduler), trace: Vec::new(), completions: 0 }
    }

    /// The policy's name.
    pub fn name(&self) -> &'static str {
        self.sched.name()
    }

    /// Completion events recorded so far.
    pub fn completions(&self) -> usize {
        self.completions
    }

    /// Record one completion event (any fate).
    pub fn note_completion(&mut self) {
        self.completions += 1;
    }

    /// Ask the policy for a decision; `snap.completions` is overwritten
    /// with this controller's count so callers cannot desync it. Non-Hold
    /// decisions are appended to the trace.
    pub fn evaluate(&mut self, mut snap: FleetSnapshot) -> ScaleDecision {
        snap.completions = self.completions;
        let decision = self.sched.decide(&snap);
        if decision != ScaleDecision::Hold {
            self.trace.push(ScaleEvent {
                completions: snap.completions,
                fleet: snap.fleet,
                outstanding: snap.outstanding(),
                decision,
            });
        }
        decision
    }

    /// Forward a placement query to the policy.
    pub fn place(&mut self, activity: usize, candidates: &[WorkerView]) -> Option<usize> {
        self.sched.place(activity, candidates)
    }

    /// The policy's billing model, if any.
    pub fn billing(&self) -> Option<BillingModel> {
        self.sched.billing()
    }

    /// The decision trace so far.
    pub fn trace(&self) -> &[ScaleEvent] {
        &self.trace
    }

    /// Consume the controller, yielding its decision trace.
    pub fn into_trace(self) -> Vec<ScaleEvent> {
        self.trace
    }
}

/// Never scales: today's fixed-fleet behavior, and the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedScheduler;

impl Scheduler for FixedScheduler {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn decide(&mut self, _snap: &FleetSnapshot) -> ScaleDecision {
        ScaleDecision::Hold
    }
}

/// Tuning for [`QueueDepthScheduler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueDepthConfig {
    /// Grow while `outstanding > backlog_factor × capacity`.
    pub backlog_factor: f64,
    /// Workers added per grow decision.
    pub grow_step: usize,
    /// Completion events that must pass between scale decisions
    /// (hysteresis, so one burst does not thrash the fleet).
    pub cooldown: usize,
    /// Never shrink below this many workers.
    pub min_workers: usize,
    /// Never grow above this many workers.
    pub max_workers: usize,
}

impl Default for QueueDepthConfig {
    fn default() -> QueueDepthConfig {
        QueueDepthConfig {
            backlog_factor: 2.0,
            grow_step: 1,
            cooldown: 2,
            min_workers: 1,
            max_workers: 4,
        }
    }
}

/// Queue-depth autoscaling with cooldown hysteresis.
///
/// Grows one step while the backlog exceeds `backlog_factor ×` fleet
/// capacity; shrinks to the smallest fleet whose capacity still covers the
/// backlog once it falls below what the current fleet minus one worker
/// could run. Decisions are gated by a completions-based cooldown, which
/// (unlike a wall-clock cooldown) ticks identically in sim and dist.
#[derive(Debug, Clone)]
pub struct QueueDepthScheduler {
    cfg: QueueDepthConfig,
    last_scale: Option<usize>,
}

impl QueueDepthScheduler {
    /// A scheduler with the given tuning.
    pub fn new(cfg: QueueDepthConfig) -> QueueDepthScheduler {
        QueueDepthScheduler { cfg, last_scale: None }
    }

    fn cooling_down(&self, completions: usize) -> bool {
        matches!(self.last_scale, Some(at) if completions < at + self.cfg.cooldown)
    }
}

impl Scheduler for QueueDepthScheduler {
    fn name(&self) -> &'static str {
        "queue-depth"
    }

    fn decide(&mut self, snap: &FleetSnapshot) -> ScaleDecision {
        if self.cooling_down(snap.completions) {
            return ScaleDecision::Hold;
        }
        let slots = snap.slots_per_worker.max(1);
        let outstanding = snap.outstanding();
        // straggling slots are stalled, not capacity: discounting them
        // makes the policy grow sooner when part of the fleet is wedged
        if outstanding as f64 > self.cfg.backlog_factor * snap.effective_capacity() as f64
            && snap.fleet < self.cfg.max_workers
        {
            let step = self.cfg.grow_step.min(self.cfg.max_workers - snap.fleet).max(1);
            self.last_scale = Some(snap.completions);
            return ScaleDecision::Grow(step);
        }
        if snap.fleet > self.cfg.min_workers && outstanding <= (snap.fleet - 1) * slots {
            let needed = outstanding.div_ceil(slots).max(self.cfg.min_workers).max(1);
            if needed < snap.fleet {
                self.last_scale = Some(snap.completions);
                return ScaleDecision::Shrink(snap.fleet - needed);
            }
        }
        ScaleDecision::Hold
    }
}

/// Tuning for [`CostAwareScheduler`].
#[derive(Debug, Clone)]
pub struct CostAwareConfig {
    /// What one worker costs per started hour.
    pub billing: BillingModel,
    /// HEFT upward rank per activity index, in seconds (see
    /// [`upward_ranks`]). Missing/extra indices fall back to the mean rank.
    pub ranks: Vec<f64>,
    /// Ceiling on the fleet's aggregate $/hour burn rate.
    pub max_usd_per_hour: f64,
    /// Grow while the estimated time-to-clear exceeds this many seconds.
    pub target_seconds: f64,
    /// Completion events between scale decisions.
    pub cooldown: usize,
    /// Never shrink below this many workers.
    pub min_workers: usize,
}

impl CostAwareConfig {
    /// A config billing at `billing` with HEFT `ranks`, a burn ceiling and
    /// a target time-to-clear.
    pub fn new(billing: BillingModel, ranks: Vec<f64>) -> CostAwareConfig {
        CostAwareConfig {
            billing,
            ranks,
            max_usd_per_hour: 2.0,
            target_seconds: 60.0,
            cooldown: 2,
            min_workers: 1,
        }
    }
}

/// HEFT-style cost-aware autoscaling.
///
/// Estimates remaining work as `Σ queued_by_activity[a] × rank[a]` (upward
/// ranks weight an activation by everything still downstream of it), turns
/// that into a time-to-clear for the current fleet, and grows only while
/// that estimate misses `target_seconds` *and* one more worker keeps the
/// aggregate burn rate under `max_usd_per_hour`. Shrinks as soon as a
/// smaller fleet still meets the target — with per-started-hour billing,
/// an idle worker retired early is pure savings.
#[derive(Debug, Clone)]
pub struct CostAwareScheduler {
    cfg: CostAwareConfig,
    last_scale: Option<usize>,
}

impl CostAwareScheduler {
    /// A scheduler with the given tuning.
    pub fn new(cfg: CostAwareConfig) -> CostAwareScheduler {
        CostAwareScheduler { cfg, last_scale: None }
    }

    fn remaining_seconds(&self, snap: &FleetSnapshot) -> f64 {
        let mean = if self.cfg.ranks.is_empty() {
            1.0
        } else {
            self.cfg.ranks.iter().sum::<f64>() / self.cfg.ranks.len() as f64
        };
        let rank = |a: usize| self.cfg.ranks.get(a).copied().unwrap_or(mean).max(0.0);
        let queued: f64 =
            snap.queued_by_activity.iter().enumerate().map(|(a, &n)| n as f64 * rank(a)).sum();
        // In-flight work is already placed; assume half of a mean rank
        // remains on each (we cannot see per-activation progress). A
        // straggler has blown its baseline, so charge it a full extra rank.
        queued + snap.in_flight as f64 * mean * 0.5 + snap.stragglers as f64 * mean
    }
}

impl Scheduler for CostAwareScheduler {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn decide(&mut self, snap: &FleetSnapshot) -> ScaleDecision {
        if matches!(self.last_scale, Some(at) if snap.completions < at + self.cfg.cooldown) {
            return ScaleDecision::Hold;
        }
        let slots = snap.slots_per_worker.max(1);
        let work_s = self.remaining_seconds(snap);
        let affordable = (self.cfg.max_usd_per_hour / self.cfg.billing.hourly_usd).floor() as usize;
        let max_fleet = affordable.max(self.cfg.min_workers);
        let eta = |fleet: usize| work_s / (fleet.max(1) * slots) as f64;
        if eta(snap.fleet) > self.cfg.target_seconds && snap.fleet < max_fleet {
            self.last_scale = Some(snap.completions);
            return ScaleDecision::Grow(1);
        }
        if snap.fleet > self.cfg.min_workers && eta(snap.fleet - 1) <= self.cfg.target_seconds {
            let mut needed = snap.fleet - 1;
            while needed > self.cfg.min_workers && eta(needed - 1) <= self.cfg.target_seconds {
                needed -= 1;
            }
            self.last_scale = Some(snap.completions);
            return ScaleDecision::Shrink(snap.fleet - needed);
        }
        ScaleDecision::Hold
    }

    fn billing(&self) -> Option<BillingModel> {
        Some(self.cfg.billing)
    }
}

/// HEFT upward ranks for a workflow: `rank(i) = mean_duration(i) + max`
/// over successors' ranks, so an activation's rank is the critical-path
/// time from its start to workflow completion.
///
/// `profile` maps activity tags to mean durations in seconds — typically
/// [`crate::sched::activity_profiles`] over a prior run's provenance.
/// Activities without a profile entry count 1.0 s.
pub fn upward_ranks(def: &WorkflowDef, profile: &HashMap<String, f64>) -> Vec<f64> {
    let n = def.activities.len();
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ups) in def.deps.iter().enumerate() {
        for &u in ups {
            if u < n {
                successors[u].push(i);
            }
        }
    }
    // Activities are topologically ordered (validated), so one reverse
    // sweep settles every rank.
    let mut ranks = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mean = profile.get(&def.activities[i].tag).copied().unwrap_or(1.0);
        let down = successors[i].iter().map(|&s| ranks[s]).fold(0.0f64, f64::max);
        ranks[i] = mean + down;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::Activity;

    fn snap(queued: usize, in_flight: usize, fleet: usize, slots: usize) -> FleetSnapshot {
        FleetSnapshot {
            completions: 0,
            queued,
            in_flight,
            fleet,
            idle: 0,
            slots_per_worker: slots,
            queued_by_activity: vec![queued],
            stragglers: 0,
        }
    }

    #[test]
    fn fixed_always_holds() {
        let mut s = FixedScheduler;
        assert_eq!(s.decide(&snap(1000, 4, 1, 1)), ScaleDecision::Hold);
        assert_eq!(s.decide(&snap(0, 0, 8, 4)), ScaleDecision::Hold);
    }

    #[test]
    fn default_placement_is_least_loaded_lowest_index() {
        let mut s = FixedScheduler;
        let cands = [
            WorkerView { index: 0, in_flight: 2 },
            WorkerView { index: 1, in_flight: 1 },
            WorkerView { index: 2, in_flight: 1 },
        ];
        assert_eq!(s.place(0, &cands), Some(1));
        assert_eq!(s.place(0, &[]), None);
    }

    #[test]
    fn queue_depth_grows_under_backlog_and_respects_max() {
        let mut s = QueueDepthScheduler::new(QueueDepthConfig {
            backlog_factor: 2.0,
            grow_step: 1,
            cooldown: 0,
            min_workers: 1,
            max_workers: 3,
        });
        assert_eq!(s.decide(&snap(10, 0, 1, 1)), ScaleDecision::Grow(1));
        assert_eq!(s.decide(&snap(10, 2, 2, 1)), ScaleDecision::Grow(1));
        // at max: backlog no longer grows the fleet
        assert_eq!(s.decide(&snap(10, 3, 3, 1)), ScaleDecision::Hold);
    }

    #[test]
    fn queue_depth_shrinks_to_what_the_backlog_needs() {
        let mut s = QueueDepthScheduler::new(QueueDepthConfig {
            backlog_factor: 2.0,
            grow_step: 1,
            cooldown: 0,
            min_workers: 1,
            max_workers: 4,
        });
        // 1 outstanding on a fleet of 3 → only 1 worker needed
        assert_eq!(s.decide(&snap(1, 0, 3, 1)), ScaleDecision::Shrink(2));
        // empty queue → down to min_workers
        assert_eq!(s.decide(&snap(0, 0, 4, 1)), ScaleDecision::Shrink(3));
        // min respected
        assert_eq!(s.decide(&snap(0, 0, 1, 1)), ScaleDecision::Hold);
    }

    #[test]
    fn queue_depth_cooldown_suppresses_consecutive_scaling() {
        let mut s = QueueDepthScheduler::new(QueueDepthConfig {
            cooldown: 3,
            max_workers: 8,
            ..QueueDepthConfig::default()
        });
        let mut sn = snap(50, 0, 1, 1);
        assert_eq!(s.decide(&sn), ScaleDecision::Grow(1));
        sn.completions = 1;
        sn.fleet = 2;
        assert_eq!(s.decide(&sn), ScaleDecision::Hold, "cooling down");
        sn.completions = 3;
        assert_eq!(s.decide(&sn), ScaleDecision::Grow(1), "cooldown expired");
    }

    #[test]
    fn stragglers_discount_capacity_and_grow_the_fleet_sooner() {
        let mut s = QueueDepthScheduler::new(QueueDepthConfig {
            backlog_factor: 2.0,
            grow_step: 1,
            cooldown: 0,
            min_workers: 1,
            max_workers: 4,
        });
        // 6 outstanding on 3×1 slots: 6 ≤ 2×3, so a healthy fleet holds…
        let healthy = snap(3, 3, 3, 1);
        assert_eq!(s.decide(&healthy), ScaleDecision::Hold);
        // …but with two of those slots wedged, effective capacity is 1 and
        // the same backlog now warrants growth
        let wedged = FleetSnapshot { stragglers: 2, ..healthy };
        assert_eq!(wedged.effective_capacity(), 1);
        assert_eq!(s.decide(&wedged), ScaleDecision::Grow(1));
    }

    #[test]
    fn cost_aware_grows_until_the_budget_ceiling() {
        // $0.50/worker-hour, $1.00 ceiling → at most 2 workers.
        let cfg = CostAwareConfig {
            billing: BillingModel::per_hour(0.50),
            ranks: vec![10.0],
            max_usd_per_hour: 1.00,
            target_seconds: 5.0,
            cooldown: 0,
            min_workers: 1,
        };
        let mut s = CostAwareScheduler::new(cfg);
        // 4 queued × 10 s = 40 s of work ≫ 5 s target
        let mut sn = snap(4, 0, 1, 1);
        assert_eq!(s.decide(&sn), ScaleDecision::Grow(1));
        sn.fleet = 2;
        assert_eq!(s.decide(&sn), ScaleDecision::Hold, "ceiling caps the fleet at 2");
        assert_eq!(s.billing(), Some(BillingModel::per_hour(0.50)));
    }

    #[test]
    fn cost_aware_retires_workers_the_target_no_longer_needs() {
        let cfg = CostAwareConfig {
            billing: BillingModel::per_hour(0.10),
            ranks: vec![1.0],
            max_usd_per_hour: 1.00,
            target_seconds: 60.0,
            cooldown: 0,
            min_workers: 1,
        };
        let mut s = CostAwareScheduler::new(cfg);
        // 3 queued × 1 s on 4 workers: one worker clears it in 3 s ≤ 60 s
        assert_eq!(s.decide(&snap(3, 0, 4, 1)), ScaleDecision::Shrink(3));
    }

    #[test]
    fn controller_records_only_non_hold_decisions() {
        let factory = SchedulerFactory::new(|| {
            Box::new(QueueDepthScheduler::new(QueueDepthConfig {
                cooldown: 0,
                max_workers: 2,
                ..QueueDepthConfig::default()
            }))
        });
        let mut c = FleetController::new(&factory);
        assert_eq!(c.name(), "queue-depth");
        assert_eq!(c.evaluate(snap(10, 0, 1, 1)), ScaleDecision::Grow(1));
        c.note_completion();
        assert_eq!(c.evaluate(snap(4, 1, 2, 1)), ScaleDecision::Hold);
        let trace = c.into_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(
            trace[0],
            ScaleEvent {
                completions: 0,
                fleet: 1,
                outstanding: 10,
                decision: ScaleDecision::Grow(1)
            }
        );
    }

    #[test]
    fn controller_overrides_snapshot_completions() {
        let mut c = FleetController::fixed();
        c.note_completion();
        c.note_completion();
        let mut sn = snap(1, 0, 1, 1);
        sn.completions = 99; // caller lies; controller corrects
        c.evaluate(sn);
        assert_eq!(c.completions(), 2);
        assert!(c.trace().is_empty());
        assert_eq!(c.name(), "fixed");
        assert!(c.billing().is_none());
    }

    fn chain_def() -> WorkflowDef {
        // a → b → c, a also → c (diamond-ish)
        let act = |tag: &str| {
            Activity::map(tag, &["x"], Arc::new(|tuples: &[_], _ctx: &mut _| Ok(tuples.to_vec())))
        };
        WorkflowDef {
            tag: "ranks".into(),
            description: String::new(),
            expdir: "/exp/ranks".into(),
            activities: vec![act("a"), act("b"), act("c")],
            deps: vec![vec![], vec![0], vec![0, 1]],
        }
    }

    #[test]
    fn upward_ranks_accumulate_downstream_critical_path() {
        let def = chain_def();
        let mut profile = HashMap::new();
        profile.insert("a".to_string(), 2.0);
        profile.insert("b".to_string(), 3.0);
        profile.insert("c".to_string(), 5.0);
        let ranks = upward_ranks(&def, &profile);
        // c: 5; b: 3 + 5 = 8; a: 2 + max(8, 5) = 10
        assert_eq!(ranks, vec![10.0, 8.0, 5.0]);
    }

    #[test]
    fn upward_ranks_default_unprofiled_activities_to_one_second() {
        let def = chain_def();
        let ranks = upward_ranks(&def, &HashMap::new());
        assert_eq!(ranks, vec![3.0, 2.0, 1.0]);
    }
}
