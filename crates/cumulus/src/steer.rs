//! Live-steering bridge: flushes *in-flight* activation state into the
//! [`ProvenanceStore`] on a tick, so the paper's §V.C runtime queries
//! (`status_summary`, `failures_by_activity`, …) answer **during** a run
//! instead of only after it.
//!
//! Workers register an attempt with [`SteeringBridge::begin`] before
//! executing it and resolve it with [`SteeringBridge::resolve`] when its
//! row (terminal or failed-attempt) is known. A background ticker walks the
//! in-flight table every `tick` and writes/refreshes a `RUNNING` row per
//! attempt via [`ProvenanceStore::record_activation`] /
//! [`ProvenanceStore::update_activation`]; `resolve` then *replaces* that
//! row in place, so steering queries never double-count an activation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use provenance::{
    ActivationRecord, ActivationStatus, ActivityId, ProvenanceStore, TaskId, WorkflowId,
};

/// Identifies one registered in-flight attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(u64);

#[derive(Debug)]
struct InFlight {
    activity: ActivityId,
    workflow: WorkflowId,
    pair_key: String,
    start_time: f64,
    retries: i64,
    /// `RUNNING` row already written for this attempt, if the ticker fired.
    flushed: Option<TaskId>,
}

#[derive(Debug, Default)]
struct BridgeInner {
    next_slot: u64,
    in_flight: HashMap<u64, InFlight>,
}

/// The bridge; see module docs. Cheap to share (`Arc`), stopped explicitly
/// with [`SteeringBridge::stop`] or implicitly on drop.
pub struct SteeringBridge {
    prov: Arc<ProvenanceStore>,
    epoch: Instant,
    inner: Mutex<BridgeInner>,
    shutdown: Arc<AtomicBool>,
    ticker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for SteeringBridge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SteeringBridge(in_flight: {})", self.inner.lock().in_flight.len())
    }
}

impl SteeringBridge {
    /// Start a bridge whose ticker flushes every `tick`. `epoch` is the
    /// run's time origin (the same `Instant` activation timestamps are
    /// measured from).
    pub fn start(
        prov: Arc<ProvenanceStore>,
        epoch: Instant,
        tick: Duration,
    ) -> Arc<SteeringBridge> {
        let bridge = Arc::new(SteeringBridge {
            prov,
            epoch,
            inner: Mutex::new(BridgeInner::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
            ticker: Mutex::new(None),
        });
        let b = Arc::clone(&bridge);
        let handle = std::thread::Builder::new()
            .name("steering-tick".into())
            .spawn(move || {
                while !b.shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    b.flush_now();
                }
            })
            .expect("spawn steering ticker");
        *bridge.ticker.lock() = Some(handle);
        bridge
    }

    /// Register an attempt that is about to execute.
    pub fn begin(
        &self,
        activity: ActivityId,
        workflow: WorkflowId,
        pair_key: &str,
        start_time: f64,
        retries: i64,
    ) -> SlotId {
        let mut g = self.inner.lock();
        let id = g.next_slot;
        g.next_slot += 1;
        g.in_flight.insert(
            id,
            InFlight {
                activity,
                workflow,
                pair_key: pair_key.to_string(),
                start_time,
                retries,
                flushed: None,
            },
        );
        SlotId(id)
    }

    /// Resolve an attempt with its definitive row. If the ticker already
    /// published a `RUNNING` row for this slot it is replaced in place;
    /// otherwise the record is inserted normally. Returns the row's task id.
    pub fn resolve(&self, slot: SlotId, rec: &ActivationRecord) -> TaskId {
        let flushed = self.inner.lock().in_flight.remove(&slot.0).and_then(|e| e.flushed);
        match flushed {
            Some(task) => {
                let updated = self.prov.update_activation(task, rec);
                debug_assert!(updated, "flushed RUNNING row must exist");
                task
            }
            None => self.prov.record_activation(rec),
        }
    }

    /// Abandon an attempt without writing anything new (e.g. the activation
    /// turned out to be resumed/blacklisted before executing). Any already
    /// published `RUNNING` row is superseded by the caller's own terminal
    /// insert, so this only drops the in-flight entry.
    pub fn forget(&self, slot: SlotId) -> Option<TaskId> {
        self.inner.lock().in_flight.remove(&slot.0).and_then(|e| e.flushed)
    }

    /// Write/refresh a `RUNNING` row for every in-flight attempt right now
    /// (the ticker calls this; tests may call it for determinism).
    pub fn flush_now(&self) {
        let now = self.epoch.elapsed().as_secs_f64();
        let mut g = self.inner.lock();
        for entry in g.in_flight.values_mut() {
            let rec = ActivationRecord {
                activity: entry.activity,
                workflow: entry.workflow,
                status: ActivationStatus::Running,
                start_time: entry.start_time,
                // "last seen alive" — refreshed every tick so a steering
                // query sees how long the attempt has been running
                end_time: now.max(entry.start_time),
                machine: None,
                retries: entry.retries,
                pair_key: entry.pair_key.clone(),
            };
            match entry.flushed {
                Some(task) => {
                    self.prov.update_activation(task, &rec);
                }
                None => entry.flushed = Some(self.prov.record_activation(&rec)),
            }
        }
        drop(g);
        // make the RUNNING rows crash-visible: a process killed mid-run
        // recovers knowing which attempts were in flight (no-op for
        // in-memory stores)
        self.prov.flush_wal();
    }

    /// Number of attempts currently registered.
    pub fn in_flight(&self) -> usize {
        self.inner.lock().in_flight.len()
    }

    /// Stop the ticker thread (idempotent).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.ticker.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for SteeringBridge {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<ProvenanceStore>, WorkflowId, ActivityId) {
        let prov = Arc::new(ProvenanceStore::new());
        let w = prov.begin_workflow("live", "", "/e");
        let a = prov.register_activity(w, "vina", "Map");
        (prov, w, a)
    }

    fn running_count(prov: &ProvenanceStore) -> i64 {
        let r = prov
            .query_rows("SELECT count(*) FROM hactivation WHERE status = 'RUNNING'", &[])
            .unwrap();
        r.rows.first().and_then(|row| row[0].as_f64()).unwrap_or(0.0) as i64
    }

    #[test]
    fn tick_publishes_running_rows_and_resolve_replaces_them() {
        let (prov, w, a) = setup();
        // long tick: the test drives flushes explicitly
        let bridge =
            SteeringBridge::start(Arc::clone(&prov), Instant::now(), Duration::from_secs(60));
        let s1 = bridge.begin(a, w, "R1:L1", 0.5, 0);
        let s2 = bridge.begin(a, w, "R2:L2", 0.7, 1);
        assert_eq!(running_count(&prov), 0, "nothing flushed yet");

        bridge.flush_now();
        assert_eq!(running_count(&prov), 2);
        // a second flush refreshes in place — still two rows
        bridge.flush_now();
        assert_eq!(running_count(&prov), 2);
        assert_eq!(bridge.in_flight(), 2);

        let rec = ActivationRecord {
            activity: a,
            workflow: w,
            status: ActivationStatus::Finished,
            start_time: 0.5,
            end_time: 2.0,
            machine: None,
            retries: 0,
            pair_key: "R1:L1".into(),
        };
        bridge.resolve(s1, &rec);
        assert_eq!(running_count(&prov), 1, "resolved row replaced in place");
        let finished = prov
            .query_rows("SELECT count(*) FROM hactivation WHERE status = 'FINISHED'", &[])
            .unwrap();
        assert_eq!(finished.cell(0, 0).as_f64(), Some(1.0));

        // resolving an unflushed slot inserts a fresh row
        let s3 = bridge.begin(a, w, "R3:L3", 1.0, 0);
        bridge.resolve(s3, &ActivationRecord { pair_key: "R3:L3".into(), ..rec.clone() });
        let total = prov.query_rows("SELECT count(*) FROM hactivation", &[]).unwrap();
        assert_eq!(total.cell(0, 0).as_f64(), Some(3.0), "s1 + s2-running + s3");

        bridge.forget(s2);
        assert_eq!(bridge.in_flight(), 0);
        bridge.stop();
    }

    #[test]
    fn ticker_thread_flushes_on_its_own() {
        let (prov, w, a) = setup();
        let bridge =
            SteeringBridge::start(Arc::clone(&prov), Instant::now(), Duration::from_millis(5));
        let slot = bridge.begin(a, w, "R:L", 0.0, 0);
        // wait for at least one tick
        let deadline = Instant::now() + Duration::from_secs(2);
        while running_count(&prov) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(running_count(&prov), 1, "ticker never flushed");
        bridge.resolve(
            slot,
            &ActivationRecord {
                activity: a,
                workflow: w,
                status: ActivationStatus::Aborted,
                start_time: 0.0,
                end_time: 1.0,
                machine: None,
                retries: 0,
                pair_key: "R:L".into(),
            },
        );
        bridge.stop();
        assert_eq!(running_count(&prov), 0);
    }
}
