//! Scheduling policies and the master's cost model.
//!
//! SciCumulus uses "a native weighted cost model associated with a greedy
//! scheduling algorithm" (§V.C): long activations go to powerful VMs, and
//! the master pays a planning cost that grows with the queue and the number
//! of VMs — the source of the efficiency decline from 32 to 128 cores
//! (Fig. 9).

use std::collections::VecDeque;

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Scheduling policy (greedy is the paper's; the others are ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Weighted greedy: heaviest ready task first, fastest slot first.
    GreedyWeighted,
    /// FIFO round-robin.
    RoundRobin,
    /// Uniformly random ready task.
    Random,
}

/// A ready task as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadyTask {
    /// Index into the simulation's task array.
    pub task: usize,
    /// Estimated (nominal) duration used as the weight.
    pub weight: f64,
}

/// The ready queue, ordered per policy.
///
/// Greedy uses a max-heap so `pop` is O(log n) — the *modeled* planning cost
/// (the paper's growing scheduling overhead) is charged separately by
/// [`MasterCostModel`]; the simulator itself must stay fast at 10⁵ tasks.
#[derive(Debug)]
pub struct ReadyQueue {
    policy: Policy,
    fifo: VecDeque<ReadyTask>,
    heap: std::collections::BinaryHeap<HeapEntry>,
    seq: u64,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    weight: f64,
    seq: u64,
    task: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // max-heap by weight; FIFO (lower seq first) on ties
        self.weight.total_cmp(&other.weight).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl ReadyQueue {
    /// Empty queue with the given policy.
    pub fn new(policy: Policy) -> ReadyQueue {
        ReadyQueue {
            policy,
            fifo: VecDeque::new(),
            heap: std::collections::BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Add a ready task.
    ///
    /// Weights are estimates and can be garbage (a cold profile divides by
    /// zero, a bad cost row goes negative). `total_cmp` sorts NaN above
    /// +inf, so a single NaN entry would sit at the top of the greedy heap
    /// and also poison tie-breaking below it — sanitize here instead of
    /// trusting every producer.
    pub fn push(&mut self, t: ReadyTask) {
        let weight = if t.weight.is_nan() { 0.0 } else { t.weight.max(0.0) };
        match self.policy {
            Policy::GreedyWeighted => {
                let seq = self.seq;
                self.seq += 1;
                self.heap.push(HeapEntry { weight, seq, task: t.task });
            }
            _ => self.fifo.push_back(ReadyTask { task: t.task, weight }),
        }
    }

    /// Remove and return the next task per policy.
    pub fn pop(&mut self, rng: &mut ChaCha8Rng) -> Option<ReadyTask> {
        match self.policy {
            Policy::RoundRobin => self.fifo.pop_front(),
            Policy::GreedyWeighted => {
                self.heap.pop().map(|e| ReadyTask { task: e.task, weight: e.weight })
            }
            Policy::Random => {
                if self.fifo.is_empty() {
                    return None;
                }
                // swap the pick to the back and pop: O(1) instead of the
                // O(n) shift `VecDeque::remove` does. Random order anyway,
                // so the shuffle it causes is free.
                let i = rng.gen_range(0..self.fifo.len());
                let last = self.fifo.len() - 1;
                self.fifo.swap(i, last);
                self.fifo.pop_back()
            }
        }
    }

    /// Number of ready tasks.
    pub fn len(&self) -> usize {
        self.fifo.len() + self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The master's per-dispatch planning cost.
///
/// Two components model the paper's observed overheads:
/// * `overhead = c0 + c1 × cores × min(queue, window)` — a linearized
///   stand-in for the greedy plan scan (touches every ready-task × slot
///   pair), paid *serially* on the master and therefore a throughput limit
///   at large fleets;
/// * `latency_per_vm × alive VMs` — added to each activation's wall time
///   (distribution messages, s3fs metadata sync), a smooth per-task tax
///   that grows with fleet size and produces the gradual efficiency
///   decline of Fig. 9.
#[derive(Debug, Clone, Copy)]
pub struct MasterCostModel {
    /// Fixed per-dispatch cost (message round trip, bookkeeping) in seconds.
    pub c0: f64,
    /// Scan cost per (core × queued task) pair in seconds.
    pub c1: f64,
    /// Queue window the greedy scan actually considers.
    pub window: usize,
    /// Per-activation latency per alive VM, in seconds.
    pub latency_per_vm: f64,
}

impl Default for MasterCostModel {
    fn default() -> Self {
        MasterCostModel { c0: 0.015, c1: 5.0e-6, window: 512, latency_per_vm: 0.40 }
    }
}

impl MasterCostModel {
    /// Planning cost of one dispatch decision.
    pub fn dispatch_overhead(&self, queue_len: usize, total_cores: u32) -> f64 {
        self.c0 + self.c1 * total_cores as f64 * queue_len.min(self.window) as f64
    }

    /// Extra per-activation latency with `alive_vms` VMs in the fleet.
    pub fn distribution_latency(&self, alive_vms: usize) -> f64 {
        self.latency_per_vm * alive_vms as f64
    }
}

/// Per-activity mean durations mined from a prior run's provenance — the
/// paper's cost-model input: "By monitoring or querying Vina's execution
/// history in the provenance database, SciCumulus …".
///
/// Returns `tag → mean FINISHED duration (s)`. Empty map when the store has
/// no finished activations.
pub fn activity_profiles(
    prov: &provenance::ProvenanceStore,
) -> std::collections::HashMap<String, f64> {
    let mut out = std::collections::HashMap::new();
    if let Ok(rs) = prov.query_rows(
        "SELECT a.tag, avg(extract('epoch' from (t.endtime - t.starttime))) \
         FROM hactivity a, hactivation t \
         WHERE a.actid = t.actid AND t.status = 'FINISHED' GROUP BY a.tag",
        &[],
    ) {
        for r in &rs.rows {
            if let (Some(tag), Some(avg)) = (r[0].as_str(), r[1].as_f64()) {
                out.insert(tag.to_string(), avg);
            }
        }
    }
    out
}

/// Adaptive elasticity configuration (SciCumulus "scales the amount of VMs
/// up and down according to performance behavior").
#[derive(Debug, Clone, Copy)]
pub struct ElasticityConfig {
    /// Acquire a VM when `ready_queue > grow_factor × total_cores`.
    pub grow_factor: f64,
    /// Minimum simulated seconds between acquisitions.
    pub cooldown_s: f64,
    /// Release a VM whose cores have all been idle this long while the
    /// queue is empty.
    pub idle_release_s: f64,
    /// Hard cap on VMs.
    pub max_vms: usize,
}

impl Default for ElasticityConfig {
    fn default() -> Self {
        ElasticityConfig {
            grow_factor: 16.0,
            cooldown_s: 120.0,
            idle_release_s: 600.0,
            max_vms: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    fn q(policy: Policy) -> ReadyQueue {
        let mut q = ReadyQueue::new(policy);
        q.push(ReadyTask { task: 0, weight: 5.0 });
        q.push(ReadyTask { task: 1, weight: 50.0 });
        q.push(ReadyTask { task: 2, weight: 20.0 });
        q
    }

    #[test]
    fn greedy_pops_heaviest_first() {
        let mut queue = q(Policy::GreedyWeighted);
        let mut r = rng();
        assert_eq!(queue.pop(&mut r).unwrap().task, 1);
        assert_eq!(queue.pop(&mut r).unwrap().task, 2);
        assert_eq!(queue.pop(&mut r).unwrap().task, 0);
        assert!(queue.pop(&mut r).is_none());
    }

    #[test]
    fn round_robin_is_fifo() {
        let mut queue = q(Policy::RoundRobin);
        let mut r = rng();
        let order: Vec<usize> = std::iter::from_fn(|| queue.pop(&mut r)).map(|t| t.task).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn random_pops_everything_once() {
        let mut queue = q(Policy::Random);
        let mut r = rng();
        let mut order: Vec<usize> =
            std::iter::from_fn(|| queue.pop(&mut r)).map(|t| t.task).collect();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn nan_weight_does_not_hijack_greedy_order() {
        let mut queue = ReadyQueue::new(Policy::GreedyWeighted);
        queue.push(ReadyTask { task: 0, weight: f64::NAN });
        queue.push(ReadyTask { task: 1, weight: 50.0 });
        queue.push(ReadyTask { task: 2, weight: -3.0 });
        queue.push(ReadyTask { task: 3, weight: 20.0 });
        let mut r = rng();
        // NaN and negative weights clamp to 0.0 and sink to the bottom
        // (FIFO among themselves), instead of NaN sorting above +inf.
        let order: Vec<usize> = std::iter::from_fn(|| queue.pop(&mut r)).map(|t| t.task).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn nan_weight_sanitized_in_fifo_policies_too() {
        let mut queue = ReadyQueue::new(Policy::RoundRobin);
        queue.push(ReadyTask { task: 0, weight: f64::NAN });
        let mut r = rng();
        assert_eq!(queue.pop(&mut r).unwrap().weight, 0.0);
    }

    #[test]
    fn random_pop_uniform_over_large_queue() {
        // also a smoke test that swap-based removal keeps every element
        // reachable; with the old O(n) remove this test still passed but
        // took quadratic time at scale
        let mut queue = ReadyQueue::new(Policy::Random);
        for task in 0..500 {
            queue.push(ReadyTask { task, weight: 1.0 });
        }
        let mut r = rng();
        let mut order: Vec<usize> =
            std::iter::from_fn(|| queue.pop(&mut r)).map(|t| t.task).collect();
        assert_ne!(order[..10], (0..10).collect::<Vec<_>>()[..]);
        order.sort_unstable();
        assert_eq!(order, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn queue_len_tracking() {
        let mut queue = q(Policy::GreedyWeighted);
        assert_eq!(queue.len(), 3);
        assert!(!queue.is_empty());
        let mut r = rng();
        queue.pop(&mut r);
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn activity_profiles_from_provenance() {
        use provenance::{ActivationRecord, ActivationStatus, ProvenanceStore};
        let p = ProvenanceStore::new();
        let w = p.begin_workflow("x", "", "");
        let a = p.register_activity(w, "dock", "Map");
        let b = p.register_activity(w, "prep", "Map");
        for (act, dur) in [(a, 30.0), (a, 50.0), (b, 4.0)] {
            p.record_activation(&ActivationRecord {
                activity: act,
                workflow: w,
                status: ActivationStatus::Finished,
                start_time: 0.0,
                end_time: dur,
                machine: None,
                retries: 0,
                pair_key: "p".into(),
            });
        }
        // a FAILED row must not pollute the profile
        p.record_activation(&ActivationRecord {
            activity: b,
            workflow: w,
            status: ActivationStatus::Failed,
            start_time: 0.0,
            end_time: 500.0,
            machine: None,
            retries: 0,
            pair_key: "p".into(),
        });
        let prof = activity_profiles(&p);
        assert_eq!(prof.len(), 2);
        assert!((prof["dock"] - 40.0).abs() < 1e-9);
        assert!((prof["prep"] - 4.0).abs() < 1e-9);
        assert!(activity_profiles(&ProvenanceStore::new()).is_empty());
    }

    #[test]
    fn overhead_grows_with_cores_and_queue() {
        let m = MasterCostModel::default();
        let small = m.dispatch_overhead(10, 2);
        let more_cores = m.dispatch_overhead(10, 128);
        let more_queue = m.dispatch_overhead(400, 2);
        assert!(more_cores > small);
        assert!(more_queue > small);
        // the window caps queue influence
        assert_eq!(m.dispatch_overhead(100_000, 32), m.dispatch_overhead(m.window, 32));
    }

    #[test]
    fn overhead_has_fixed_floor() {
        let m = MasterCostModel { c0: 0.5, c1: 0.0, window: 10, latency_per_vm: 0.0 };
        assert_eq!(m.dispatch_overhead(0, 1), 0.5);
        assert_eq!(m.dispatch_overhead(999, 999), 0.5);
    }
}
