//! SciCumulus XML workflow specifications (paper Fig. 2) and the minimal
//! XML parser behind them.
//!
//! SciCumulus workflows are declared in an XML file listing the database,
//! the workflow tag/exectag/expdir, and each activity with its activation
//! command template, input/output relations, and instrumented files. This
//! module parses and renders that dialect; binding activity tags to
//! executable Rust functions happens in [`crate::workflow`].

use std::fmt;

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlElement {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements (text content is not preserved; the dialect is
    /// attribute-only).
    pub children: Vec<XmlElement>,
}

impl XmlElement {
    /// Attribute value by case-insensitive name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Children with a given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.name.eq_ignore_ascii_case(name))
    }

    /// First child with a given tag name.
    pub fn child(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// XML parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the problem.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parse an XML document (subset: declaration, comments, elements with
/// double-quoted attributes, self-closing tags; text nodes are skipped).
pub fn parse_xml(input: &str) -> Result<XmlElement, XmlError> {
    let mut p = XmlParser { input: input.as_bytes(), pos: 0 };
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if p.pos != p.input.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct XmlParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError { position: self.pos, message: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, XML declarations, comments, and stray text.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(off) => self.pos += off + 2,
                    None => return Err(self.err("unterminated <?...?>")),
                }
            } else if self.starts_with("<!--") {
                match self.input[self.pos..].windows(3).position(|w| w == b"-->") {
                    Some(off) => self.pos += off + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ch = c as char;
            if ch.is_ascii_alphanumeric() || ch == '_' || ch == '-' || ch == ':' || ch == '.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn element(&mut self) -> Result<XmlElement, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(XmlElement { name, attributes, children: Vec::new() });
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(format!("expected '=' after attribute {key}")));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    if self.peek() != Some(b'"') {
                        return Err(self.err("expected '\"'"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'"') {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.pos += 1;
                    attributes.push((key, unescape(&raw)));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // children until matching close tag
        let mut children = Vec::new();
        loop {
            self.skip_misc()?;
            // skip plain text content
            while self.peek().is_some_and(|c| c != b'<') {
                self.pos += 1;
            }
            if self.peek().is_none() {
                return Err(self.err(format!("missing </{name}>")));
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if !close.eq_ignore_ascii_case(&name) {
                    return Err(self.err(format!("mismatched </{close}>, expected </{name}>")));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in close tag"));
                }
                self.pos += 1;
                return Ok(XmlElement { name, attributes, children });
            }
            if self.starts_with("<!--") {
                self.skip_misc()?;
                continue;
            }
            children.push(self.element()?);
        }
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

// ---------------------------------------------------------------------------
// The SciCumulus dialect
// ---------------------------------------------------------------------------

/// `<database .../>` connection info (kept for fidelity; our store is
/// in-process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseSpec {
    /// Database name.
    pub name: String,
    /// Server host.
    pub server: String,
    /// TCP port.
    pub port: u16,
}

/// `<Relation reltype=… name=… filename=…/>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSpec {
    /// Input or output.
    pub reltype: RelType,
    /// Relation name.
    pub name: String,
    /// Backing file of the relation.
    pub filename: String,
}

/// Input or output relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelType {
    /// Consumed by the activity.
    Input,
    /// Produced by the activity.
    Output,
}

/// `<File filename=… instrumented=…/>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSpec {
    /// File name inside the template directory.
    pub filename: String,
    /// Whether SciCumulus instruments it (tag substitution).
    pub instrumented: bool,
}

/// One `<SciCumulusActivity …>` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityXml {
    /// Activity tag.
    pub tag: String,
    /// Template directory path.
    pub templatedir: String,
    /// Activation command.
    pub activation: String,
    /// Algebraic operator name (`MAP`, `FILTER`, `SPLITMAP`, `REDUCE`, …).
    pub operator: String,
    /// Input/output relations.
    pub relations: Vec<RelationSpec>,
    /// Instrumented files.
    pub files: Vec<FileSpec>,
}

/// A complete `<SciCumulus>` specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SciCumulusSpec {
    /// Provenance database connection.
    pub database: DatabaseSpec,
    /// Workflow tag.
    pub tag: String,
    /// Human description.
    pub description: String,
    /// Execution tag.
    pub exectag: String,
    /// Experiment directory.
    pub expdir: String,
    /// The workflow's activities.
    pub activities: Vec<ActivityXml>,
}

impl SciCumulusSpec {
    /// Parse a SciCumulus XML document.
    pub fn from_xml(text: &str) -> Result<SciCumulusSpec, XmlError> {
        let root = parse_xml(text)?;
        if !root.name.eq_ignore_ascii_case("SciCumulus") {
            return Err(XmlError {
                position: 0,
                message: format!("root element is <{}>, expected <SciCumulus>", root.name),
            });
        }
        let db = root
            .child("database")
            .ok_or_else(|| XmlError { position: 0, message: "missing <database>".into() })?;
        let database = DatabaseSpec {
            name: db.attr("name").unwrap_or("scicumulus").to_string(),
            server: db.attr("server").unwrap_or("localhost").to_string(),
            port: db.attr("port").and_then(|p| p.parse().ok()).unwrap_or(5432),
        };
        let wf = root.child("SciCumulusWorkflow").ok_or_else(|| XmlError {
            position: 0,
            message: "missing <SciCumulusWorkflow>".into(),
        })?;
        let req = |el: &XmlElement, a: &str| -> Result<String, XmlError> {
            el.attr(a).map(str::to_string).ok_or_else(|| XmlError {
                position: 0,
                message: format!("<{}> missing attribute {a:?}", el.name),
            })
        };
        let mut activities = Vec::new();
        for act in wf.children_named("SciCumulusActivity") {
            let mut relations = Vec::new();
            for rel in act.children_named("Relation") {
                let reltype = match rel.attr("reltype") {
                    Some(t) if t.eq_ignore_ascii_case("input") => RelType::Input,
                    Some(t) if t.eq_ignore_ascii_case("output") => RelType::Output,
                    other => {
                        return Err(XmlError {
                            position: 0,
                            message: format!("bad reltype {other:?}"),
                        })
                    }
                };
                relations.push(RelationSpec {
                    reltype,
                    name: req(rel, "name")?,
                    filename: req(rel, "filename")?,
                });
            }
            let files = act
                .children_named("File")
                .map(|f| {
                    Ok(FileSpec {
                        filename: req(f, "filename")?,
                        instrumented: f
                            .attr("instrumented")
                            .map(|v| v.eq_ignore_ascii_case("true"))
                            .unwrap_or(false),
                    })
                })
                .collect::<Result<Vec<_>, XmlError>>()?;
            activities.push(ActivityXml {
                tag: req(act, "tag")?,
                templatedir: act.attr("templatedir").unwrap_or("").to_string(),
                activation: act.attr("activation").unwrap_or("").to_string(),
                operator: act.attr("operator").unwrap_or("MAP").to_string(),
                relations,
                files,
            });
        }
        Ok(SciCumulusSpec {
            database,
            tag: req(wf, "tag")?,
            description: wf.attr("description").unwrap_or("").to_string(),
            exectag: wf.attr("exectag").unwrap_or("").to_string(),
            expdir: wf.attr("expdir").unwrap_or("").to_string(),
            activities,
        })
    }

    /// Render back to XML (round-trips through [`SciCumulusSpec::from_xml`]).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        out.push_str("<?xml version=\"1.0\"?>\n<SciCumulus>\n");
        out.push_str(&format!(
            "  <database name=\"{}\" port=\"{}\" server=\"{}\"/>\n",
            escape(&self.database.name),
            self.database.port,
            escape(&self.database.server)
        ));
        out.push_str(&format!(
            "  <SciCumulusWorkflow tag=\"{}\" description=\"{}\" exectag=\"{}\" expdir=\"{}\">\n",
            escape(&self.tag),
            escape(&self.description),
            escape(&self.exectag),
            escape(&self.expdir)
        ));
        for a in &self.activities {
            out.push_str(&format!(
                "    <SciCumulusActivity tag=\"{}\" templatedir=\"{}\" activation=\"{}\" operator=\"{}\">\n",
                escape(&a.tag),
                escape(&a.templatedir),
                escape(&a.activation),
                escape(&a.operator)
            ));
            for r in &a.relations {
                out.push_str(&format!(
                    "      <Relation reltype=\"{}\" name=\"{}\" filename=\"{}\"/>\n",
                    match r.reltype {
                        RelType::Input => "Input",
                        RelType::Output => "Output",
                    },
                    escape(&r.name),
                    escape(&r.filename)
                ));
            }
            for f in &a.files {
                out.push_str(&format!(
                    "      <File filename=\"{}\" instrumented=\"{}\"/>\n",
                    escape(&f.filename),
                    f.instrumented
                ));
            }
            out.push_str("    </SciCumulusActivity>\n");
        }
        out.push_str("  </SciCumulusWorkflow>\n</SciCumulus>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 2 excerpt, completed into a well-formed document.
    const FIG2: &str = r#"<?xml version="1.0"?>
<SciCumulus>
  <database name="scicumulus" port="5432" server="ec2-50-17-107-164.compute-1.amazonaws.com"/>
  <SciCumulusWorkflow tag="SciDock" description="Docking" exectag="scidock" expdir="/root/scidock/">
    <SciCumulusActivity tag="babel" templatedir="/root/scidock/template_babel/" activation="./experiment.cmd">
      <Relation reltype="Input" name="rel_in_1" filename="input_1.txt"/>
      <Relation reltype="Output" name="rel_out1" filename="output_1.txt"/>
      <File filename="experiment.cmd" instrumented="true"/>
    </SciCumulusActivity>
  </SciCumulusWorkflow>
</SciCumulus>
"#;

    #[test]
    fn parses_fig2() {
        let spec = SciCumulusSpec::from_xml(FIG2).unwrap();
        assert_eq!(spec.tag, "SciDock");
        assert_eq!(spec.exectag, "scidock");
        assert_eq!(spec.expdir, "/root/scidock/");
        assert_eq!(spec.database.port, 5432);
        assert!(spec.database.server.starts_with("ec2-50-17"));
        assert_eq!(spec.activities.len(), 1);
        let a = &spec.activities[0];
        assert_eq!(a.tag, "babel");
        assert_eq!(a.activation, "./experiment.cmd");
        assert_eq!(a.relations.len(), 2);
        assert_eq!(a.relations[0].reltype, RelType::Input);
        assert_eq!(a.relations[1].filename, "output_1.txt");
        assert_eq!(a.files.len(), 1);
        assert!(a.files[0].instrumented);
        // default operator
        assert_eq!(a.operator, "MAP");
    }

    #[test]
    fn xml_roundtrip() {
        let spec = SciCumulusSpec::from_xml(FIG2).unwrap();
        let text = spec.to_xml();
        let again = SciCumulusSpec::from_xml(&text).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn escaping_roundtrip() {
        let mut spec = SciCumulusSpec::from_xml(FIG2).unwrap();
        spec.description = "a <b> & \"c\"".to_string();
        let again = SciCumulusSpec::from_xml(&spec.to_xml()).unwrap();
        assert_eq!(again.description, "a <b> & \"c\"");
    }

    #[test]
    fn self_closing_and_comments() {
        let doc = "<root><!-- note --><leaf a=\"1\"/><!-- tail --></root>";
        let el = parse_xml(doc).unwrap();
        assert_eq!(el.children.len(), 1);
        assert_eq!(el.children[0].attr("a"), Some("1"));
    }

    #[test]
    fn mismatched_close_rejected() {
        let err = parse_xml("<a><b></a></b>").unwrap_err();
        assert!(err.to_string().contains("mismatched"));
    }

    #[test]
    fn unterminated_rejected() {
        assert!(parse_xml("<a><b></b>").is_err());
        assert!(parse_xml("<a attr=\"x>").is_err());
        assert!(parse_xml("<?xml never closed").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_xml("<a/><b/>").is_err());
    }

    #[test]
    fn missing_required_parts() {
        assert!(SciCumulusSpec::from_xml("<root/>").is_err());
        assert!(SciCumulusSpec::from_xml("<SciCumulus></SciCumulus>").is_err());
        let no_wf = "<SciCumulus><database name=\"d\" port=\"1\" server=\"s\"/></SciCumulus>";
        assert!(SciCumulusSpec::from_xml(no_wf).is_err());
    }

    #[test]
    fn bad_reltype_rejected() {
        let doc = r#"<SciCumulus>
  <database name="d" port="1" server="s"/>
  <SciCumulusWorkflow tag="T" description="" exectag="t" expdir="/">
    <SciCumulusActivity tag="x" activation="cmd">
      <Relation reltype="Sideways" name="r" filename="f"/>
    </SciCumulusActivity>
  </SciCumulusWorkflow>
</SciCumulus>"#;
        let err = SciCumulusSpec::from_xml(doc).unwrap_err();
        assert!(err.to_string().contains("reltype"));
    }

    #[test]
    fn attr_lookup_case_insensitive() {
        let el = parse_xml("<x Foo=\"bar\"/>").unwrap();
        assert_eq!(el.attr("foo"), Some("bar"));
        assert_eq!(el.attr("FOO"), Some("bar"));
        assert_eq!(el.attr("nope"), None);
    }
}
