//! Executable workflow definitions: activities bound to Rust functions, plus
//! the shared file store activations exchange artifacts through.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use provenance::Value;

use crate::algebra::{Operator, Relation, Tuple};

/// Read-through hook consulted by [`FileStore::read`] on a local miss (e.g.
/// a distributed worker fetching a staged input from the master's store).
/// Returns `None` when the remote side doesn't have the file either.
pub type FetchFn = Box<dyn Fn(&str) -> Option<String> + Send + Sync>;

/// The in-memory shared filesystem (stands in for the s3fs mount): path →
/// file contents. Thread-safe; activations on any worker see each other's
/// files.
///
/// A store may carry a read-through [`FetchFn`]: on a local `read` miss the
/// hook is consulted and a hit is cached locally, so a distributed worker
/// transparently pulls inputs it doesn't hold yet. `exists`/`size`/`list`
/// stay strictly local — only `read` reaches out.
#[derive(Default)]
pub struct FileStore {
    files: Mutex<HashMap<String, String>>,
    fetch: OnceLock<FetchFn>,
}

impl fmt::Debug for FileStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileStore")
            .field("files", &self.files)
            .field("fetch", &self.fetch.get().map(|_| "<hook>"))
            .finish()
    }
}

impl FileStore {
    /// Empty store.
    pub fn new() -> FileStore {
        FileStore::default()
    }

    /// Write (or overwrite) a file.
    pub fn write(&self, path: &str, contents: impl Into<String>) {
        self.files.lock().insert(path.to_string(), contents.into());
    }

    /// Read a file's contents. On a local miss, consults the remote-fetch
    /// hook (if [`FileStore::set_fetch_hook`] installed one) and caches a
    /// hit locally so repeat reads stay in-process.
    pub fn read(&self, path: &str) -> Option<String> {
        if let Some(c) = self.files.lock().get(path).cloned() {
            return Some(c);
        }
        let fetched = self.fetch.get()?(path)?;
        self.files.lock().entry(path.to_string()).or_insert_with(|| fetched.clone());
        Some(fetched)
    }

    /// Install the read-through hook consulted on local `read` misses.
    /// Settable once per store; a second call is ignored (the first hook
    /// wins), which keeps an already-wired worker store consistent.
    pub fn set_fetch_hook(&self, hook: FetchFn) {
        let _ = self.fetch.set(hook);
    }

    /// File size in bytes, if present.
    pub fn size(&self, path: &str) -> Option<u64> {
        self.files.lock().get(path).map(|c| c.len() as u64)
    }

    /// Does a file exist?
    pub fn exists(&self, path: &str) -> bool {
        self.files.lock().contains_key(path)
    }

    /// All paths under a prefix (sorted).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> =
            self.files.lock().keys().filter(|k| k.starts_with(prefix)).cloned().collect();
        v.sort();
        v
    }

    /// Number of files stored.
    pub fn len(&self) -> usize {
        self.files.lock().len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.files.lock().is_empty()
    }

    /// Total bytes stored (the paper's "600 GB per execution" figure is the
    /// real-system analogue of this counter).
    pub fn total_bytes(&self) -> u64 {
        self.files.lock().values().map(|c| c.len() as u64).sum()
    }
}

/// Error from an activity function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityError(pub String);

impl fmt::Display for ActivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "activity error: {}", self.0)
    }
}

impl std::error::Error for ActivityError {}

/// Per-activation context: file I/O plus provenance instrumentation.
///
/// Mirrors SciCumulus' template/extractor instrumentation: activities write
/// files through the context (recorded into `hfile`) and extract domain
/// values (recorded into `hparameter`).
pub struct ActivationCtx<'a> {
    /// The shared file store.
    pub files: &'a FileStore,
    /// Working directory of this activation (expdir/activity/tuple).
    pub workdir: String,
    pub(crate) produced: Vec<String>,
    pub(crate) params: Vec<(String, Option<f64>, Option<String>)>,
}

impl<'a> ActivationCtx<'a> {
    /// New context rooted at `workdir`.
    pub fn new(files: &'a FileStore, workdir: impl Into<String>) -> ActivationCtx<'a> {
        ActivationCtx { files, workdir: workdir.into(), produced: Vec::new(), params: Vec::new() }
    }

    /// Write an output file into the workdir; records it for provenance.
    pub fn write_file(&mut self, name: &str, contents: impl Into<String>) -> String {
        let path = format!("{}/{}", self.workdir.trim_end_matches('/'), name);
        self.files.write(&path, contents);
        self.produced.push(path.clone());
        path
    }

    /// Write an output file at an absolute path (for artifacts shared
    /// across activations, e.g. per-receptor grid maps); records it for
    /// provenance like [`ActivationCtx::write_file`].
    pub fn write_file_at(&mut self, path: &str, contents: impl Into<String>) {
        self.files.write(path, contents);
        self.produced.push(path.to_string());
    }

    /// Read any file from the shared store.
    pub fn read_file(&self, path: &str) -> Result<String, ActivityError> {
        self.files.read(path).ok_or_else(|| ActivityError(format!("missing input file {path}")))
    }

    /// Record an extracted domain parameter (SciCumulus extractor component).
    pub fn record_param(&mut self, name: &str, num: Option<f64>, text: Option<&str>) {
        self.params.push((name.to_string(), num, text.map(str::to_string)));
    }

    /// Paths written so far.
    pub fn produced_files(&self) -> &[String] {
        &self.produced
    }
}

/// The function executed per activation: receives the activation's input
/// tuples (one for Map/Filter, a group for Reduce, everything for queries)
/// and returns output tuples.
pub type ActivityFn = Arc<
    dyn Fn(&[Tuple], &mut ActivationCtx<'_>) -> Result<Vec<Tuple>, ActivityError> + Send + Sync,
>;

/// Predicate marking tuples that must not be executed (poison inputs, e.g.
/// Hg-containing receptors — paper §V.C).
pub type BlacklistFn = Arc<dyn Fn(&Tuple) -> bool + Send + Sync>;

/// An executable activity.
#[derive(Clone)]
pub struct Activity {
    /// Tag used in provenance (`hactivity.tag`).
    pub tag: String,
    /// Algebraic operator.
    pub operator: Operator,
    /// Output relation column names.
    pub output_columns: Vec<String>,
    /// The activation function.
    pub func: ActivityFn,
    /// Consume only input tuples where `column == value` (routing after a
    /// Filter activity, e.g. small→AD4, large→Vina).
    pub route: Option<(String, Value)>,
    /// Poison-input rule: matching tuples are recorded as BLACKLISTED and
    /// skipped.
    pub blacklist: Option<BlacklistFn>,
}

impl fmt::Debug for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Activity")
            .field("tag", &self.tag)
            .field("operator", &self.operator)
            .field("output_columns", &self.output_columns)
            .field("route", &self.route)
            .field("has_blacklist", &self.blacklist.is_some())
            .finish()
    }
}

impl Activity {
    /// A Map activity with no routing or blacklist.
    pub fn map(tag: &str, output_columns: &[&str], func: ActivityFn) -> Activity {
        Activity {
            tag: tag.to_string(),
            operator: Operator::Map,
            output_columns: output_columns.iter().map(|s| s.to_string()).collect(),
            func,
            route: None,
            blacklist: None,
        }
    }

    /// Builder: set the operator.
    pub fn with_operator(mut self, op: Operator) -> Activity {
        self.operator = op;
        self
    }

    /// Builder: route on `column == value`.
    pub fn with_route(mut self, column: &str, value: Value) -> Activity {
        self.route = Some((column.to_string(), value));
        self
    }

    /// Builder: install a blacklist predicate.
    pub fn with_blacklist(mut self, f: BlacklistFn) -> Activity {
        self.blacklist = Some(f);
        self
    }
}

/// A workflow: activities plus dataflow dependencies.
#[derive(Debug, Clone)]
pub struct WorkflowDef {
    /// Workflow tag (`hworkflow.tag`).
    pub tag: String,
    /// Human description.
    pub description: String,
    /// Experiment directory (paths of produced files live under it).
    pub expdir: String,
    /// Activities in topological order.
    pub activities: Vec<Activity>,
    /// `deps[i]` = indices of activities whose outputs feed activity `i`
    /// (empty = consumes the workflow's input relation).
    pub deps: Vec<Vec<usize>>,
}

impl WorkflowDef {
    /// Validate structural invariants; returns an error message on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.activities.len() != self.deps.len() {
            return Err(format!(
                "{} activities but {} dependency lists",
                self.activities.len(),
                self.deps.len()
            ));
        }
        let mut tags = std::collections::HashSet::new();
        for (i, a) in self.activities.iter().enumerate() {
            if !tags.insert(a.tag.clone()) {
                return Err(format!("duplicate activity tag {:?}", a.tag));
            }
            for &d in &self.deps[i] {
                if d >= i {
                    return Err(format!(
                        "activity {i} ({}) depends on {d}, which is not upstream",
                        a.tag
                    ));
                }
            }
        }
        Ok(())
    }

    /// Assemble the input relation of activity `i` from upstream outputs
    /// (or the workflow input when it has no dependencies), applying the
    /// activity's route filter.
    pub fn input_for(&self, i: usize, workflow_input: &Relation, outputs: &[Relation]) -> Relation {
        let a = &self.activities[i];
        let mut rel = if self.deps[i].is_empty() {
            workflow_input.clone()
        } else {
            let first = &outputs[self.deps[i][0]];
            let mut r = Relation { columns: first.columns.clone(), tuples: Vec::new() };
            for &d in &self.deps[i] {
                let o = &outputs[d];
                assert_eq!(
                    o.columns, r.columns,
                    "activity {i}: upstream relations must share a schema"
                );
                r.tuples.extend(o.tuples.iter().cloned());
            }
            r
        };
        if let Some((col, val)) = &a.route {
            if let Some(ci) = rel.column(col) {
                rel.tuples.retain(|t| t[ci].sql_eq(val).unwrap_or(false));
            } else {
                rel.tuples.clear();
            }
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_fn() -> ActivityFn {
        Arc::new(|tuples, _ctx| Ok(tuples.to_vec()))
    }

    #[test]
    fn filestore_basics() {
        let fs = FileStore::new();
        assert!(fs.is_empty());
        fs.write("/a/b.txt", "hello");
        assert!(fs.exists("/a/b.txt"));
        assert_eq!(fs.read("/a/b.txt").as_deref(), Some("hello"));
        assert_eq!(fs.size("/a/b.txt"), Some(5));
        assert_eq!(fs.read("/nope"), None);
        fs.write("/a/c.txt", "x");
        assert_eq!(fs.list("/a/"), vec!["/a/b.txt", "/a/c.txt"]);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.total_bytes(), 6);
    }

    #[test]
    fn filestore_fetch_hook_reads_through_and_caches() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = Arc::new(AtomicUsize::new(0));
        let fs = FileStore::new();
        let c = Arc::clone(&calls);
        fs.set_fetch_hook(Box::new(move |path| {
            c.fetch_add(1, Ordering::SeqCst);
            (path == "/remote/only.txt").then(|| "from master".to_string())
        }));
        // local files never hit the hook
        fs.write("/local.txt", "here");
        assert_eq!(fs.read("/local.txt").as_deref(), Some("here"));
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        // miss → fetch → cached, so the second read is local
        assert_eq!(fs.read("/remote/only.txt").as_deref(), Some("from master"));
        assert_eq!(fs.read("/remote/only.txt").as_deref(), Some("from master"));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        // exists/size stay strictly local
        assert!(!fs.exists("/remote/other.txt"));
        assert_eq!(fs.size("/remote/other.txt"), None);
        // a remote miss is a miss (and not cached)
        assert_eq!(fs.read("/remote/other.txt"), None);
        assert_eq!(fs.read("/remote/other.txt"), None);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        // second hook install is ignored
        fs.set_fetch_hook(Box::new(|_| Some("usurper".into())));
        assert_eq!(fs.read("/remote/other.txt"), None);
    }

    #[test]
    fn filestore_overwrite() {
        let fs = FileStore::new();
        fs.write("/f", "one");
        fs.write("/f", "two!");
        assert_eq!(fs.read("/f").as_deref(), Some("two!"));
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn ctx_records_files_and_params() {
        let fs = FileStore::new();
        let mut ctx = ActivationCtx::new(&fs, "/exp/babel/0/");
        let p = ctx.write_file("out.mol2", "MOL");
        assert_eq!(p, "/exp/babel/0/out.mol2");
        assert!(fs.exists(&p));
        assert_eq!(ctx.produced_files(), std::slice::from_ref(&p));
        ctx.record_param("feb", Some(-5.0), None);
        assert_eq!(ctx.params.len(), 1);
        assert_eq!(ctx.read_file(&p).unwrap(), "MOL");
        assert!(ctx.read_file("/missing").is_err());
    }

    #[test]
    fn workflow_validation() {
        let wf = WorkflowDef {
            tag: "T".into(),
            description: String::new(),
            expdir: "/exp".into(),
            activities: vec![
                Activity::map("a", &["x"], identity_fn()),
                Activity::map("b", &["x"], identity_fn()),
            ],
            deps: vec![vec![], vec![0]],
        };
        assert!(wf.validate().is_ok());

        let mut bad = wf.clone();
        bad.deps = vec![vec![], vec![1]];
        assert!(bad.validate().unwrap_err().contains("not upstream"));

        let mut dup = wf.clone();
        dup.activities[1].tag = "a".into();
        assert!(dup.validate().unwrap_err().contains("duplicate"));

        let mut mismatch = wf;
        mismatch.deps.pop();
        assert!(mismatch.validate().is_err());
    }

    #[test]
    fn input_routing() {
        let wf = WorkflowDef {
            tag: "T".into(),
            description: String::new(),
            expdir: "/exp".into(),
            activities: vec![
                Activity::map("src", &["pair", "engine"], identity_fn()),
                Activity::map("ad4", &["pair"], identity_fn())
                    .with_route("engine", Value::from("AD4")),
            ],
            deps: vec![vec![], vec![0]],
        };
        let mut out0 = Relation::new(&["pair", "engine"]);
        out0.push(vec!["p1".into(), "AD4".into()]);
        out0.push(vec!["p2".into(), "VINA".into()]);
        out0.push(vec!["p3".into(), "AD4".into()]);
        let input = wf.input_for(1, &Relation::new(&["pair", "engine"]), &[out0]);
        assert_eq!(input.len(), 2);
        assert_eq!(input.tuples[0][0], Value::from("p1"));
        assert_eq!(input.tuples[1][0], Value::from("p3"));
    }

    #[test]
    fn input_concatenates_multiple_upstreams() {
        let wf = WorkflowDef {
            tag: "T".into(),
            description: String::new(),
            expdir: "/exp".into(),
            activities: vec![
                Activity::map("a", &["x"], identity_fn()),
                Activity::map("b", &["x"], identity_fn()),
                Activity::map("c", &["x"], identity_fn()),
            ],
            deps: vec![vec![], vec![], vec![0, 1]],
        };
        let mut o0 = Relation::new(&["x"]);
        o0.push(vec![Value::Int(1)]);
        let mut o1 = Relation::new(&["x"]);
        o1.push(vec![Value::Int(2)]);
        let input = wf.input_for(2, &Relation::new(&["x"]), &[o0, o1, Relation::new(&["x"])]);
        assert_eq!(input.len(), 2);
    }

    #[test]
    fn source_activity_reads_workflow_input() {
        let wf = WorkflowDef {
            tag: "T".into(),
            description: String::new(),
            expdir: "/exp".into(),
            activities: vec![Activity::map("a", &["x"], identity_fn())],
            deps: vec![vec![]],
        };
        let mut input = Relation::new(&["x"]);
        input.push(vec![Value::Int(9)]);
        let got = wf.input_for(0, &input, &[]);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn route_on_missing_column_drops_everything() {
        let act = Activity::map("a", &["x"], identity_fn()).with_route("nope", Value::Int(1));
        let wf = WorkflowDef {
            tag: "T".into(),
            description: String::new(),
            expdir: "/e".into(),
            activities: vec![act],
            deps: vec![vec![]],
        };
        let mut input = Relation::new(&["x"]);
        input.push(vec![Value::Int(1)]);
        assert!(wf.input_for(0, &input, &[]).is_empty());
    }

    #[test]
    fn activity_debug_format() {
        let a = Activity::map("tag1", &["c"], identity_fn())
            .with_blacklist(Arc::new(|_| false))
            .with_operator(Operator::Filter);
        let s = format!("{a:?}");
        assert!(s.contains("tag1"));
        assert!(s.contains("Filter"));
        assert!(s.contains("has_blacklist: true"));
    }

    #[test]
    fn filestore_concurrent_access() {
        let fs = Arc::new(FileStore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let fs = Arc::clone(&fs);
            handles.push(std::thread::spawn(move || {
                for k in 0..50 {
                    fs.write(&format!("/t{t}/f{k}"), format!("{t}:{k}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fs.len(), 400);
        assert_eq!(fs.read("/t3/f7").as_deref(), Some("3:7"));
    }
}
