//! # cumulus — a SciCumulus-style cloud Scientific Workflow Management System
//!
//! The workflow engine of the SciDock reproduction:
//!
//! * [`algebra`] — the relational workflow algebra (Map/SplitMap/Reduce/
//!   Filter/SRQuery/MRQuery over relations of tuples);
//! * [`xmlspec`] — the SciCumulus XML workflow dialect (paper Fig. 2) with a
//!   from-scratch XML parser;
//! * [`workflow`] — executable workflow definitions and the shared file
//!   store activations exchange artifacts through;
//! * [`pool`] — a from-scratch work-stealing thread pool (the MPJ stand-in);
//! * [`localbackend`] — real parallel execution with provenance capture,
//!   failure injection, retries, and poison-input blacklisting;
//! * [`sched`] — the weighted greedy scheduler, its master cost model, and
//!   elasticity configuration;
//! * [`fleet`] — the elastic fleet layer: the [`Scheduler`](fleet::Scheduler)
//!   trait (placement + scale decisions, separated from resource
//!   bookkeeping) with fixed, queue-depth, and cost-aware policies, driven
//!   identically by the distributed backend and the simulator;
//! * [`steer`] — the live-steering bridge that publishes in-flight
//!   activation state into the provenance store on a tick, so the paper's
//!   §V.C runtime queries answer during a run;
//! * [`obs`] — the live observability plane: structured event log, fleet
//!   health view, and a std-only HTTP endpoint serving Prometheus text
//!   exposition, snapshot JSON, health and events mid-run;
//! * [`template`] — %TAG% activity command templates (the instrumentation
//!   mechanism of paper Figs. 2–3);
//! * [`simbackend`] — a discrete-event simulation of the engine on an
//!   elastic EC2 fleet, for the cloud-scale studies of Figures 7–9;
//! * [`serve`] — `scidockd`, the always-on campaign service: many
//!   concurrent campaigns from many tenants over one shared elastic fleet
//!   and one durable provenance store, with fair-share scheduling and
//!   explicit admission control.

#![warn(missing_docs)]

pub mod algebra;
pub mod backend;
mod dispatch;
pub mod distbackend;
pub mod error;
pub mod fleet;
pub mod localbackend;
pub mod obs;
pub mod pool;
pub mod sched;
pub mod serve;
pub mod simbackend;
pub mod steer;
pub mod template;
pub mod workflow;
pub mod xmlspec;

pub use algebra::{Operator, Relation, Tuple};
pub use backend::{
    ActivityTiming, Backend, DistBackend, LocalBackend, RunOutcome, SimBackend, Workflow,
};
pub use distbackend::{run_dist, DistConfig, KillPlan};
pub use error::CumulusError;
pub use fleet::{
    upward_ranks, CostAwareConfig, CostAwareScheduler, FixedScheduler, FleetSnapshot,
    QueueDepthConfig, QueueDepthScheduler, ScaleDecision, ScaleEvent, Scheduler, SchedulerFactory,
};
#[allow(deprecated)]
pub use localbackend::run_local;
pub use localbackend::{DispatchMode, EngineError, LocalConfig, RunReport};
pub use obs::{BoundAddr, EventLog, HealthView, ObsEvent, Severity};
pub use pool::Pool;
pub use sched::{ElasticityConfig, MasterCostModel, Policy};
pub use serve::{
    CampaignResolver, CampaignState, CampaignStatus, Daemon, ServeClient, ServeConfig,
    SubmitOutcome,
};
#[allow(deprecated)]
pub use simbackend::simulate;
pub use simbackend::{simulate_tasks, SimConfig, SimReport, SimTask};
pub use steer::SteeringBridge;
pub use template::{Template, TemplateError};
pub use workflow::{
    ActivationCtx, Activity, ActivityError, ActivityFn, FetchFn, FileStore, WorkflowDef,
};
