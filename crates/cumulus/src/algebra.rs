//! The relational workflow algebra (Ogasawara et al., VLDB 2011) that
//! SciCumulus executes: activities are operators over relations, and every
//! tuple of an input relation becomes an independent *activation*.

use provenance::{Value, ValueType};
use serde::{Deserialize, Serialize};

/// One tuple of a workflow relation.
pub type Tuple = Vec<Value>;

/// A workflow relation: named, typed columns + tuples.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Column names.
    pub columns: Vec<String>,
    /// Tuples, each of the same arity as `columns`.
    pub tuples: Vec<Tuple>,
}

impl Relation {
    /// New empty relation with the given column names.
    pub fn new(columns: &[&str]) -> Relation {
        Relation { columns: columns.iter().map(|s| s.to_string()).collect(), tuples: Vec::new() }
    }

    /// Add a tuple.
    ///
    /// # Panics
    /// Panics on arity mismatch (a workflow construction bug).
    pub fn push(&mut self, tuple: Tuple) {
        assert_eq!(tuple.len(), self.columns.len(), "tuple arity mismatch");
        self.tuples.push(tuple);
    }

    /// Index of a column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Value of `column` in `tuple` (both must exist).
    pub fn value<'a>(&self, tuple: &'a Tuple, column: &str) -> Option<&'a Value> {
        self.column(column).map(|i| &tuple[i])
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuples are present.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Infer a provenance-style schema (column → ValueType) from the first
    /// non-NULL value of each column.
    pub fn inferred_types(&self) -> Vec<(String, Option<ValueType>)> {
        self.columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let ty = self.tuples.iter().find_map(|t| t[i].value_type());
                (c.clone(), ty)
            })
            .collect()
    }
}

/// The algebraic operator of an activity — determines the ratio between
/// input tuples and activations/output tuples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operator {
    /// 1 input tuple → 1 output tuple (one activation per tuple).
    Map,
    /// 1 input tuple → N output tuples (one activation per tuple).
    SplitMap,
    /// Groups of input tuples (by key columns) → 1 output tuple per group.
    Reduce {
        /// Grouping key column names.
        keys: Vec<String>,
    },
    /// 1 input tuple → 0 or 1 output tuples.
    Filter,
    /// Relational query over a single input relation (one activation total).
    SRQuery,
    /// Relational query over multiple input relations (one activation total).
    MRQuery,
}

impl Operator {
    /// Short name used in provenance records (`acttype` column).
    pub fn name(&self) -> &'static str {
        match self {
            Operator::Map => "Map",
            Operator::SplitMap => "SplitMap",
            Operator::Reduce { .. } => "Reduce",
            Operator::Filter => "Filter",
            Operator::SRQuery => "SRQuery",
            Operator::MRQuery => "MRQuery",
        }
    }

    /// Parse an operator from its XML-spec spelling (`MAP`, `SPLITMAP`,
    /// `REDUCE(key1,key2)`, `FILTER`, `SRQUERY`, `MRQUERY`).
    pub fn from_spec_name(name: &str) -> Option<Operator> {
        let t = name.trim();
        let upper = t.to_ascii_uppercase();
        if let Some(rest) = upper.strip_prefix("REDUCE") {
            let keys: Vec<String> = rest
                .trim()
                .trim_start_matches('(')
                .trim_end_matches(')')
                .split(',')
                .map(|k| k.trim().to_lowercase())
                .filter(|k| !k.is_empty())
                .collect();
            return Some(Operator::Reduce { keys });
        }
        match upper.as_str() {
            "MAP" => Some(Operator::Map),
            "SPLITMAP" => Some(Operator::SplitMap),
            "FILTER" => Some(Operator::Filter),
            "SRQUERY" => Some(Operator::SRQuery),
            "MRQUERY" => Some(Operator::MRQuery),
            _ => None,
        }
    }

    /// Partition an input relation into activation inputs.
    ///
    /// * Map/SplitMap/Filter: one activation per tuple.
    /// * Reduce: one activation per distinct key combination, receiving all
    ///   tuples of the group (in input order).
    /// * SRQuery/MRQuery: a single activation receiving every tuple.
    pub fn partition(&self, rel: &Relation) -> Vec<Vec<Tuple>> {
        match self {
            Operator::Map | Operator::SplitMap | Operator::Filter => {
                rel.tuples.iter().map(|t| vec![t.clone()]).collect()
            }
            Operator::Reduce { keys } => {
                let idx: Vec<usize> = keys
                    .iter()
                    .map(|k| {
                        rel.column(k).unwrap_or_else(|| panic!("reduce key {k:?} not in relation"))
                    })
                    .collect();
                let mut order: Vec<String> = Vec::new();
                let mut groups: std::collections::HashMap<String, Vec<Tuple>> = Default::default();
                for t in &rel.tuples {
                    let key: String = idx.iter().map(|&i| format!("{}\u{1}", t[i])).collect();
                    groups
                        .entry(key.clone())
                        .or_insert_with(|| {
                            order.push(key.clone());
                            Vec::new()
                        })
                        .push(t.clone());
                }
                order.into_iter().map(|k| groups.remove(&k).expect("group present")).collect()
            }
            Operator::SRQuery | Operator::MRQuery => {
                if rel.tuples.is_empty() {
                    Vec::new()
                } else {
                    vec![rel.tuples.clone()]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        let mut r = Relation::new(&["receptor", "ligand", "size"]);
        r.push(vec!["1AEC".into(), "042".into(), Value::Int(100)]);
        r.push(vec!["1AEC".into(), "074".into(), Value::Int(100)]);
        r.push(vec!["2ACT".into(), "042".into(), Value::Int(250)]);
        r
    }

    #[test]
    fn relation_basics() {
        let r = rel();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.column("LIGAND"), Some(1));
        assert_eq!(r.column("nope"), None);
        assert_eq!(r.value(&r.tuples[2], "receptor"), Some(&Value::from("2ACT")));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = Relation::new(&["a", "b"]);
        r.push(vec![Value::Int(1)]);
    }

    #[test]
    fn map_partitions_per_tuple() {
        let r = rel();
        let parts = Operator::Map.partition(&r);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn filter_partitions_like_map() {
        assert_eq!(Operator::Filter.partition(&rel()).len(), 3);
        assert_eq!(Operator::SplitMap.partition(&rel()).len(), 3);
    }

    #[test]
    fn reduce_groups_by_key() {
        let r = rel();
        let op = Operator::Reduce { keys: vec!["receptor".into()] };
        let parts = op.partition(&r);
        assert_eq!(parts.len(), 2);
        // group order follows first appearance
        assert_eq!(parts[0].len(), 2, "1AEC group has two tuples");
        assert_eq!(parts[1].len(), 1);
    }

    #[test]
    fn reduce_multi_key() {
        let r = rel();
        let op = Operator::Reduce { keys: vec!["receptor".into(), "ligand".into()] };
        assert_eq!(op.partition(&r).len(), 3);
    }

    #[test]
    #[should_panic(expected = "not in relation")]
    fn reduce_unknown_key_panics() {
        let op = Operator::Reduce { keys: vec!["missing".into()] };
        op.partition(&rel());
    }

    #[test]
    fn queries_single_activation() {
        let r = rel();
        let parts = Operator::SRQuery.partition(&r);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 3);
        // empty input -> no activations at all
        let empty = Relation::new(&["x"]);
        assert!(Operator::MRQuery.partition(&empty).is_empty());
    }

    #[test]
    fn spec_name_roundtrip() {
        for op in [
            Operator::Map,
            Operator::SplitMap,
            Operator::Filter,
            Operator::SRQuery,
            Operator::MRQuery,
        ] {
            assert_eq!(
                Operator::from_spec_name(&op.name().to_uppercase()),
                Some(op.clone()),
                "{op:?}"
            );
        }
        assert_eq!(
            Operator::from_spec_name("reduce(receptor, ligand)"),
            Some(Operator::Reduce { keys: vec!["receptor".into(), "ligand".into()] })
        );
        assert_eq!(Operator::from_spec_name("REDUCE"), Some(Operator::Reduce { keys: vec![] }));
        assert_eq!(Operator::from_spec_name("TELEPORT"), None);
    }

    #[test]
    fn operator_names() {
        assert_eq!(Operator::Map.name(), "Map");
        assert_eq!(Operator::Reduce { keys: vec![] }.name(), "Reduce");
        assert_eq!(Operator::Filter.name(), "Filter");
    }

    #[test]
    fn inferred_types() {
        let r = rel();
        let t = r.inferred_types();
        assert_eq!(t[0].1, Some(ValueType::Text));
        assert_eq!(t[2].1, Some(ValueType::Int));
        // all-NULL column infers None
        let mut r2 = Relation::new(&["n"]);
        r2.push(vec![Value::Null]);
        assert_eq!(r2.inferred_types()[0].1, None);
    }
}
