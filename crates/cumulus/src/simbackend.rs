//! The simulated execution backend: a discrete-event simulation of
//! SciCumulus running an activation DAG on an elastic EC2 fleet.
//!
//! This backend produces the paper's cloud-scale numbers (Figures 7–9):
//! Total Execution Time, speedup, and efficiency at 2–128 virtual cores,
//! including the effects the paper discusses — VM heterogeneity and
//! virtualization noise, shared-filesystem staging, ~10% activation
//! failures with re-execution, hang detection, poison-input blacklisting,
//! serialized master dispatch whose planning cost grows with queue × VMs,
//! and adaptive elasticity.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use cloudsim::{
    sim_ns, Cluster, EventQueue, FailureModel, Fate, InstanceType, NoiseModel, SharedFsModel,
    SimTime, VmId,
};
use provenance::{ActivationRecord, ActivationStatus, ActivityId, MachineId, ProvenanceStore};
use telemetry::{MetricsSnapshot, Telemetry};

use crate::fleet::{FleetController, FleetSnapshot, ScaleDecision, ScaleEvent, SchedulerFactory};
use crate::obs::{EventLog, Severity};
use crate::sched::{ElasticityConfig, MasterCostModel, Policy, ReadyQueue, ReadyTask};

/// One activation to simulate.
#[derive(Debug, Clone)]
pub struct SimTask {
    /// Position of this task's activity in the workflow (indexes
    /// [`SimConfig`]-registered activity tags).
    pub activity_index: usize,
    /// Which receptor–ligand pair (or other tuple) this activation serves.
    pub pair_key: String,
    /// Nominal compute seconds on a 1.0-speed core.
    pub nominal_s: f64,
    /// Input bytes staged in through the shared FS.
    pub in_bytes: u64,
    /// Output bytes staged out.
    pub out_bytes: u64,
    /// Indices of tasks that must finish first.
    pub deps: Vec<usize>,
    /// Poison input (Hg receptor): blacklisted when the rule is on,
    /// guaranteed hang when it is off.
    pub poison: bool,
}

/// Simulation configuration.
///
/// Marked `#[non_exhaustive]`: construct it with [`SimConfig::new`] (or
/// `Default`) and the `with_*` builder methods rather than a struct
/// literal, so new knobs can be added without breaking downstream crates.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SimConfig {
    /// Master seed for every stochastic component.
    pub seed: u64,
    /// Initial fleet.
    pub fleet: Vec<&'static InstanceType>,
    /// VM performance-noise model.
    pub noise: NoiseModel,
    /// Failure injection.
    pub failures: FailureModel,
    /// Retry budget per activation.
    pub max_retries: u32,
    /// A hanging activation is aborted after `hang_timeout_factor ×
    /// nominal_s` (the engine's hang detector).
    pub hang_timeout_factor: f64,
    /// Shared-filesystem model.
    pub sharedfs: SharedFsModel,
    /// Scheduling policy.
    pub policy: Policy,
    /// Master dispatch cost model.
    pub master: MasterCostModel,
    /// Adaptive elasticity (None = fixed fleet). Ignored when
    /// [`SimConfig::scheduler`] is set — the policy owns scaling then.
    pub elasticity: Option<ElasticityConfig>,
    /// Elastic fleet policy — the same [`crate::fleet::Scheduler`] the
    /// distributed backend runs. `None` = fixed fleet. When set, the
    /// controller evaluates once over the seeded backlog and then after
    /// every completion, exactly like the distributed master, so the
    /// decision traces are comparable event-for-event.
    pub scheduler: Option<SchedulerFactory>,
    /// Instance type acquired on a `Grow` decision.
    pub scale_itype: &'static InstanceType,
    /// Is the provenance-driven Hg blacklist rule installed?
    pub hg_rule: bool,
    /// Workflow tag recorded in provenance.
    pub workflow_tag: String,
    /// Activity tags by `activity_index`.
    pub activity_tags: Vec<String>,
    /// Scheduling weights per `activity_index` mined from a prior run's
    /// provenance (see [`crate::sched::activity_profiles`]). `None` = the
    /// scheduler sees each task's true nominal cost (oracle weights).
    pub weight_profile: Option<Vec<f64>>,
    /// Telemetry sink. Spans are recorded at *simulated* timestamps, one
    /// trace lane per VM, so a Chrome trace of a simulated run lays out like
    /// a real one.
    pub telemetry: Telemetry,
    /// Structured event log. Events are emitted at *simulated* timestamps
    /// with the same kinds and lifecycle ordering as the real backends, so a
    /// sim mirror of a run produces the same event sequence (modulo
    /// timestamps and resource names — see
    /// [`crate::obs::ObsEvent::parity_signature`]).
    pub events: Option<EventLog>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            fleet: vec![&cloudsim::M3_XLARGE],
            noise: NoiseModel::default(),
            failures: FailureModel::none(),
            max_retries: 3,
            hang_timeout_factor: 10.0,
            sharedfs: SharedFsModel::default(),
            policy: Policy::GreedyWeighted,
            master: MasterCostModel::default(),
            elasticity: None,
            scheduler: None,
            scale_itype: &cloudsim::M3_XLARGE,
            hg_rule: true,
            workflow_tag: "SciDock".to_string(),
            activity_tags: Vec::new(),
            weight_profile: None,
            telemetry: Telemetry::disabled(),
            events: None,
        }
    }
}

impl SimConfig {
    /// The default configuration (one m3.xlarge, greedy-weighted policy,
    /// no failure injection, Hg rule on, telemetry disabled).
    pub fn new() -> SimConfig {
        SimConfig::default()
    }

    /// Set the master seed for every stochastic component.
    pub fn with_seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Set the initial fleet.
    pub fn with_fleet(mut self, fleet: Vec<&'static InstanceType>) -> SimConfig {
        self.fleet = fleet;
        self
    }

    /// Set the VM performance-noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> SimConfig {
        self.noise = noise;
        self
    }

    /// Set the failure-injection model.
    pub fn with_failures(mut self, failures: FailureModel) -> SimConfig {
        self.failures = failures;
        self
    }

    /// Set the per-activation retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> SimConfig {
        self.max_retries = max_retries;
        self
    }

    /// Set the hang-detector timeout factor.
    pub fn with_hang_timeout_factor(mut self, factor: f64) -> SimConfig {
        self.hang_timeout_factor = factor;
        self
    }

    /// Set the shared-filesystem model.
    pub fn with_sharedfs(mut self, sharedfs: SharedFsModel) -> SimConfig {
        self.sharedfs = sharedfs;
        self
    }

    /// Set the scheduling policy.
    pub fn with_policy(mut self, policy: Policy) -> SimConfig {
        self.policy = policy;
        self
    }

    /// Set the master dispatch cost model.
    pub fn with_master(mut self, master: MasterCostModel) -> SimConfig {
        self.master = master;
        self
    }

    /// Enable adaptive elasticity.
    pub fn with_elasticity(mut self, elasticity: ElasticityConfig) -> SimConfig {
        self.elasticity = Some(elasticity);
        self
    }

    /// Drive the fleet elastically with a [`SchedulerFactory`] — the same
    /// policy object the distributed backend accepts.
    pub fn with_scheduler(mut self, factory: SchedulerFactory) -> SimConfig {
        self.scheduler = Some(factory);
        self
    }

    /// Set the instance type acquired on `Grow` decisions.
    pub fn with_scale_instance(mut self, itype: &'static InstanceType) -> SimConfig {
        self.scale_itype = itype;
        self
    }

    /// Install (or remove) the provenance-driven Hg blacklist rule.
    pub fn with_hg_rule(mut self, on: bool) -> SimConfig {
        self.hg_rule = on;
        self
    }

    /// Set the workflow tag recorded in provenance.
    pub fn with_workflow_tag(mut self, tag: impl Into<String>) -> SimConfig {
        self.workflow_tag = tag.into();
        self
    }

    /// Set the activity tags by `activity_index`.
    pub fn with_activity_tags(mut self, tags: Vec<String>) -> SimConfig {
        self.activity_tags = tags;
        self
    }

    /// Feed the scheduler per-activity weights mined from a prior run.
    pub fn with_weight_profile(mut self, profile: Vec<f64>) -> SimConfig {
        self.weight_profile = Some(profile);
        self
    }

    /// Attach a telemetry sink.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> SimConfig {
        self.telemetry = telemetry;
        self
    }

    /// Attach a structured event log (events carry simulated timestamps).
    pub fn with_events(mut self, events: EventLog) -> SimConfig {
        self.events = Some(events);
        self
    }
}

/// Simulation outcome.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Total execution time (TET) in simulated seconds.
    pub tet_s: f64,
    /// Activations that finished.
    pub finished: usize,
    /// Failed attempts (all retried or dropped).
    pub failed_attempts: usize,
    /// Activations aborted by the hang detector.
    pub aborted: usize,
    /// Activations skipped by the blacklist rule.
    pub blacklisted: usize,
    /// Tasks cancelled because an upstream task was dropped.
    pub cancelled: usize,
    /// Core-seconds of actual compute (including lost failed work).
    pub busy_core_seconds: f64,
    /// Seconds the master spent planning dispatches.
    pub master_overhead_s: f64,
    /// Seconds spent staging files through the shared FS.
    pub staging_s: f64,
    /// Total cloud bill in USD.
    pub cost_usd: f64,
    /// Peak number of alive VMs.
    pub peak_vms: usize,
    /// Final number of virtual cores.
    pub final_cores: u32,
    /// Aggregated telemetry over the simulated timeline — `None` when no
    /// sink was attached.
    pub metrics: Option<MetricsSnapshot>,
    /// Scale decisions taken by the fleet policy, in order (empty unless
    /// [`SimConfig::scheduler`] is set).
    pub scale_events: Vec<ScaleEvent>,
}

#[derive(Debug)]
enum Event {
    VmReady(VmId),
    TaskDone { task: usize, vm: VmId, attempt: u32, fate: Fate },
}

/// Run the simulation. When `prov` is given, every activation is recorded
/// with its simulated timestamps, so the paper's provenance queries run
/// against simulated executions too.
///
/// Deprecated: prefer [`crate::backend::Backend::run`] on a
/// [`crate::backend::SimBackend`] when simulating a real [`crate::workflow::WorkflowDef`]
/// — it synthesizes the task DAG from the workflow shape and returns the
/// backend-independent [`crate::backend::RunOutcome`]. Cost-model studies
/// that build [`SimTask`]s directly (the paper's scaling sweeps) should call
/// [`simulate_tasks`], which is this function under its non-deprecated name.
#[deprecated(
    since = "0.1.0",
    note = "use `Backend::run` on a `SimBackend` for workflow simulation, or \
            `simulate_tasks` for raw task-DAG cost-model studies"
)]
pub fn simulate(tasks: &[SimTask], cfg: &SimConfig, prov: Option<&ProvenanceStore>) -> SimReport {
    simulate_tasks(tasks, cfg, prov)
}

/// Run the discrete-event simulation over a raw [`SimTask`] DAG.
///
/// This is the engine behind [`crate::backend::SimBackend`] and the
/// deprecated [`simulate`] wrapper. It stays public (and non-deprecated)
/// because task-level cost-model sweeps have no workflow definition to hand
/// to the `Backend` trait.
pub fn simulate_tasks(
    tasks: &[SimTask],
    cfg: &SimConfig,
    prov: Option<&ProvenanceStore>,
) -> SimReport {
    assert!(!cfg.fleet.is_empty(), "fleet must contain at least one VM");
    let n = tasks.len();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x5C4E_D01E);

    // provenance registration
    let (wkf, act_ids): (Option<_>, Vec<Option<ActivityId>>) = match prov {
        Some(p) => {
            let w = p.begin_workflow(&cfg.workflow_tag, "simulated run", "/root/scidock/");
            let ids =
                cfg.activity_tags.iter().map(|t| Some(p.register_activity(w, t, "Map"))).collect();
            (Some(w), ids)
        }
        None => (None, vec![None; cfg.activity_tags.len().max(1)]),
    };
    let act_id = |i: usize| -> Option<ActivityId> { act_ids.get(i).copied().flatten() };

    // structured events, mirroring the distributed master's lifecycle
    // emissions at simulated timestamps
    let evlog = cfg.events.clone();
    let tag_of =
        |i: usize| -> String { cfg.activity_tags.get(i).cloned().unwrap_or_else(|| "task".into()) };
    if let Some(ev) = &evlog {
        ev.emit(
            0.0,
            Severity::Info,
            "run_started",
            &[
                ("workflow", cfg.workflow_tag.clone()),
                ("backend", "sim".to_string()),
                ("workers", cfg.fleet.len().to_string()),
            ],
        );
    }

    // dependency bookkeeping
    let mut dep_count: Vec<usize> = tasks.iter().map(|t| t.deps.len()).collect();
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, t) in tasks.iter().enumerate() {
        for &d in &t.deps {
            assert!(d < n, "task {i} depends on out-of-range {d}");
            successors[d].push(i);
        }
    }
    let mut attempts = vec![0u32; n];
    let mut dropped = vec![false; n];

    // cluster + slots
    let tel = &cfg.telemetry;
    let mut cluster = Cluster::with_telemetry(cfg.seed, cfg.noise, tel.clone());
    let mut events: EventQueue<Event> = EventQueue::new();
    let mut free_slots: Vec<VmId> = Vec::new();
    let mut vm_busy: Vec<u32> = Vec::new();
    let mut vm_machine: Vec<Option<MachineId>> = Vec::new();
    let mut released: Vec<bool> = Vec::new();
    // fleet policy asked this VM to retire: no new tasks; released the
    // moment its last in-flight task completes (drain-then-retire)
    let mut draining: Vec<bool> = Vec::new();

    let acquire =
        |itype: &'static InstanceType,
         t: SimTime,
         cluster: &mut Cluster,
         events: &mut EventQueue<Event>,
         vm_busy: &mut Vec<u32>,
         vm_machine: &mut Vec<Option<MachineId>>,
         released: &mut Vec<bool>,
         draining: &mut Vec<bool>| {
            let id = cluster.acquire(itype, t);
            events.push(cluster.vm(id).ready_at, Event::VmReady(id));
            vm_busy.push(0);
            released.push(false);
            draining.push(false);
            vm_machine.push(prov.map(|p| {
                p.register_machine(&format!("vm-{}", id.0), itype.name, itype.cores as i64)
            }));
        };
    for itype in &cfg.fleet {
        acquire(
            itype,
            0.0,
            &mut cluster,
            &mut events,
            &mut vm_busy,
            &mut vm_machine,
            &mut released,
            &mut draining,
        );
    }

    // fleet-policy state, mirroring the distributed master: the controller
    // owns the completion counter, the snapshot carries logical quantities
    // only, so the decision trace is reproducible across substrates
    let mut controller = cfg.scheduler.as_ref().map(FleetController::new);
    let mut sim_in_flight: usize = 0;
    let n_acts = tasks
        .iter()
        .map(|t| t.activity_index + 1)
        .max()
        .unwrap_or(1)
        .max(cfg.activity_tags.len().max(1));
    let mut ready_by_activity = vec![0usize; n_acts];
    let slots_per_worker = cfg.fleet.iter().map(|f| f.cores as usize).max().unwrap_or(1);
    let apply_scale = |decision: ScaleDecision,
                       now: SimTime,
                       cluster: &mut Cluster,
                       events: &mut EventQueue<Event>,
                       vm_busy: &mut Vec<u32>,
                       vm_machine: &mut Vec<Option<MachineId>>,
                       released: &mut Vec<bool>,
                       draining: &mut Vec<bool>,
                       free_slots: &mut Vec<VmId>,
                       report: &mut SimReport| {
        match decision {
            ScaleDecision::Hold => {}
            ScaleDecision::Grow(k) => {
                for _ in 0..k {
                    acquire(
                        cfg.scale_itype,
                        now,
                        cluster,
                        events,
                        vm_busy,
                        vm_machine,
                        released,
                        draining,
                    );
                }
                report.peak_vms = report.peak_vms.max(vm_busy.len());
                if let Some(ev) = &evlog {
                    ev.emit(
                        now,
                        Severity::Info,
                        "fleet_scale",
                        &[
                            ("decision", format!("grow {k}")),
                            ("fleet", released.iter().filter(|r| !**r).count().to_string()),
                        ],
                    );
                }
            }
            ScaleDecision::Shrink(k) => {
                if k > 0 {
                    if let Some(ev) = &evlog {
                        ev.emit(
                            now,
                            Severity::Info,
                            "fleet_scale",
                            &[
                                ("decision", format!("drain {k}")),
                                ("fleet", released.iter().filter(|r| !**r).count().to_string()),
                            ],
                        );
                    }
                }
                // booted VMs, idle first, lowest id first; whatever the
                // policy asked for, at least one VM keeps serving
                let mut targets: Vec<usize> = (0..released.len())
                    .filter(|&v| {
                        !released[v] && !draining[v] && cluster.vm(VmId(v)).ready_at <= now
                    })
                    .collect();
                targets.sort_by_key(|&v| (vm_busy[v] > 0, v));
                let booting = (0..released.len())
                    .filter(|&v| !released[v] && !draining[v] && cluster.vm(VmId(v)).ready_at > now)
                    .count();
                let k = k.min((targets.len() + booting).saturating_sub(1));
                for &v in targets.iter().take(k) {
                    draining[v] = true;
                    free_slots.retain(|s| s.0 != v);
                    if vm_busy[v] == 0 {
                        // idle: the drain completes immediately
                        released[v] = true;
                        cluster.release(VmId(v), now);
                    }
                }
            }
        }
    };

    let mut report = SimReport {
        tet_s: 0.0,
        finished: 0,
        failed_attempts: 0,
        aborted: 0,
        blacklisted: 0,
        cancelled: 0,
        busy_core_seconds: 0.0,
        master_overhead_s: 0.0,
        staging_s: 0.0,
        cost_usd: 0.0,
        peak_vms: cfg.fleet.len(),
        final_cores: 0,
        metrics: None,
        scale_events: Vec::new(),
    };

    let mut ready = ReadyQueue::new(cfg.policy);
    // scheduling weight: profiled per-activity mean if available, else the
    // task's true nominal cost
    let weight_of = |t: &SimTask| -> f64 {
        cfg.weight_profile
            .as_ref()
            .and_then(|p| p.get(t.activity_index))
            .copied()
            .unwrap_or(t.nominal_s)
    };
    // cancel a task and everything downstream of it
    let cancel_downstream = |start: usize,
                             dropped: &mut Vec<bool>,
                             report: &mut SimReport,
                             successors: &Vec<Vec<usize>>| {
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for &s in &successors[u] {
                if !dropped[s] {
                    dropped[s] = true;
                    report.cancelled += 1;
                    stack.push(s);
                }
            }
        }
    };

    // seed ready queue; handle blacklisted roots
    for (i, t) in tasks.iter().enumerate() {
        if dep_count[i] != 0 {
            continue;
        }
        if t.poison && cfg.hg_rule {
            // provenance-driven rule fires before execution
            if let Some(ev) = &evlog {
                ev.emit(
                    0.0,
                    Severity::Error,
                    "activation_blacklisted",
                    &[("activity", tag_of(t.activity_index)), ("key", t.pair_key.clone())],
                );
            }
            if let Some(p) = prov {
                p.record_activation(&ActivationRecord {
                    activity: act_id(t.activity_index).expect("registered activity"),
                    workflow: wkf.expect("workflow registered"),
                    status: ActivationStatus::Blacklisted,
                    start_time: 0.0,
                    end_time: 0.0,
                    machine: None,
                    retries: 0,
                    pair_key: t.pair_key.clone(),
                });
            }
            report.blacklisted += 1;
            dropped[i] = true;
            cancel_downstream(i, &mut dropped, &mut report, &successors);
        } else {
            ready_by_activity[t.activity_index] += 1;
            ready.push(ReadyTask { task: i, weight: weight_of(t) });
        }
    }

    let mut master_free: SimTime = 0.0;
    let mut last_acquire: SimTime = 0.0;
    let mut now: SimTime = 0.0;

    // the policy's first look: the whole seeded backlog, before any
    // dispatch — the distributed master evaluates at the same instant
    if let Some(ctrl) = controller.as_mut() {
        let decision = ctrl.evaluate(sim_snapshot(
            ready.len(),
            &ready_by_activity,
            sim_in_flight,
            &released,
            &draining,
            &vm_busy,
            &cluster,
            now,
            slots_per_worker,
        ));
        apply_scale(
            decision,
            now,
            &mut cluster,
            &mut events,
            &mut vm_busy,
            &mut vm_machine,
            &mut released,
            &mut draining,
            &mut free_slots,
            &mut report,
        );
    }

    loop {
        // dispatch as long as both a free slot and a ready task exist
        loop {
            if ready.is_empty() || free_slots.is_empty() {
                break;
            }
            let total_cores = cluster.cores_at(now).max(
                cfg.fleet.iter().map(|f| f.cores).sum(), // before boot completes
            );
            let overhead = cfg.master.dispatch_overhead(ready.len(), total_cores);
            let master_start = master_free.max(now);
            let dispatch_at = master_start + overhead;
            master_free = dispatch_at;
            report.master_overhead_s += overhead;

            let rt = ready.pop(&mut rng).expect("non-empty");
            let task = &tasks[rt.task];
            ready_by_activity[task.activity_index] =
                ready_by_activity[task.activity_index].saturating_sub(1);
            sim_in_flight += 1;
            // slot choice: greedy takes the fastest VM, others take the last
            let slot_idx = match cfg.policy {
                Policy::GreedyWeighted => free_slots
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        cluster.vm(**a).core_speed().total_cmp(&cluster.vm(**b).core_speed())
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty"),
                _ => free_slots.len() - 1,
            };
            let vm_id = free_slots.swap_remove(slot_idx);
            vm_busy[vm_id.0] += 1;

            let attempt = attempts[rt.task];
            let fate = if task.poison && !cfg.hg_rule {
                Fate::Hang // without the rule, poison inputs always hang
            } else {
                cfg.failures.fate(&format!("{}#{}", task.pair_key, task.activity_index), attempt)
            };
            let vm = cluster.vm(vm_id);
            let alive_vms = released.iter().filter(|r| !**r).count();
            let n_vms = vm_busy.iter().filter(|&&b| b > 0).count().max(1) as u32;
            let staging = cfg.sharedfs.transfer_time(task.in_bytes, n_vms)
                + cfg.sharedfs.transfer_time(task.out_bytes, n_vms)
                + cfg.master.distribution_latency(alive_vms);
            let compute = vm.runtime_for(task.nominal_s);
            let duration = match fate {
                Fate::Ok => staging + compute,
                Fate::Fail => staging + compute * cfg.failures.fail_at_fraction,
                Fate::Hang => staging + cfg.hang_timeout_factor * compute,
            };
            report.staging_s += staging;
            report.busy_core_seconds += duration;
            let done_at = dispatch_at + duration;
            if tel.is_enabled() {
                // the full timing is known at dispatch: record the task's
                // span on its VM's trace lane at simulated timestamps, with
                // the shared-FS stage-in/out windows at its edges
                let lane = Some(cluster.track(vm_id));
                let tag = cfg
                    .activity_tags
                    .get(task.activity_index)
                    .map(|s| s.as_str())
                    .unwrap_or("task");
                tel.record_span_at(
                    "sim.task",
                    tag,
                    lane,
                    sim_ns(dispatch_at),
                    sim_ns(done_at),
                    Some(&format!("pair={} attempt={attempt} fate={fate:?}", task.pair_key)),
                );
                let stage_in = cfg.sharedfs.transfer_time(task.in_bytes, n_vms);
                if task.in_bytes > 0 {
                    tel.record_span_at(
                        "sim.sharedfs",
                        "stage_in",
                        lane,
                        sim_ns(dispatch_at),
                        sim_ns(dispatch_at + stage_in),
                        Some(&format!("bytes={}", task.in_bytes)),
                    );
                }
                if task.out_bytes > 0 && fate == Fate::Ok {
                    let stage_out = cfg.sharedfs.transfer_time(task.out_bytes, n_vms);
                    tel.record_span_at(
                        "sim.sharedfs",
                        "stage_out",
                        lane,
                        sim_ns(done_at - stage_out),
                        sim_ns(done_at),
                        Some(&format!("bytes={}", task.out_bytes)),
                    );
                }
                tel.gauge_at("sim.ready_queue", sim_ns(now), ready.len() as f64);
                tel.count("sim.dispatched", 1);
            }
            events.push(done_at, Event::TaskDone { task: rt.task, vm: vm_id, attempt, fate });

            // adaptive elasticity (legacy knob): grow when backlogged.
            // Superseded by the fleet policy when one is installed.
            if let Some(el) = cfg.elasticity.as_ref().filter(|_| cfg.scheduler.is_none()) {
                let alive = cluster.alive_at(now).len()
                    + cluster
                        .vms()
                        .iter()
                        .filter(|v| v.ready_at > now && v.released_at.is_none())
                        .count();
                if ready.len() as f64 > el.grow_factor * total_cores as f64
                    && now - last_acquire >= el.cooldown_s
                    && alive < el.max_vms
                {
                    let itype = if alive.is_multiple_of(2) {
                        &cloudsim::M3_2XLARGE
                    } else {
                        &cloudsim::M3_XLARGE
                    };
                    acquire(
                        itype,
                        now,
                        &mut cluster,
                        &mut events,
                        &mut vm_busy,
                        &mut vm_machine,
                        &mut released,
                        &mut draining,
                    );
                    last_acquire = now;
                    report.peak_vms = report.peak_vms.max(vm_busy.len());
                }
            }
        }

        let Some((t, ev)) = events.pop() else { break };
        tel.count("sim.events", 1);
        now = t;
        report.tet_s = report.tet_s.max(now);
        match ev {
            Event::VmReady(vm) => {
                if !released[vm.0] && !draining[vm.0] {
                    for _ in 0..cluster.vm(vm).itype.cores {
                        free_slots.push(vm);
                    }
                }
            }
            Event::TaskDone { task: ti, vm, attempt, fate } => {
                vm_busy[vm.0] = vm_busy[vm.0].saturating_sub(1);
                sim_in_flight = sim_in_flight.saturating_sub(1);
                if draining[vm.0] {
                    // no new work for a draining VM; retire it the moment
                    // its last in-flight task lands
                    if vm_busy[vm.0] == 0 && !released[vm.0] {
                        released[vm.0] = true;
                        cluster.release(vm, now);
                    }
                } else {
                    free_slots.push(vm);
                }
                let task = &tasks[ti];
                let record = |status: ActivationStatus, start: f64, end: f64, retries: i64| {
                    if let Some(p) = prov {
                        return Some(p.record_activation(&ActivationRecord {
                            activity: act_id(task.activity_index).expect("registered activity"),
                            workflow: wkf.expect("workflow registered"),
                            status,
                            start_time: start,
                            end_time: end,
                            machine: vm_machine[vm.0],
                            retries,
                            pair_key: task.pair_key.clone(),
                        }));
                    }
                    None
                };
                match fate {
                    Fate::Ok => {
                        let task_id = record(
                            ActivationStatus::Finished,
                            now - tasks[ti].nominal_s.min(now),
                            now,
                            attempt as i64,
                        );
                        // the activation's output artifact (what the shared
                        // FS staged out) — makes Query 2 and the data-volume
                        // bookkeeping work against simulated runs too
                        if let (Some(p), Some(tid)) = (prov, task_id) {
                            let tag = cfg
                                .activity_tags
                                .get(task.activity_index)
                                .map(|s| s.as_str())
                                .unwrap_or("act");
                            let safe_pair = task.pair_key.replace(':', "_");
                            let ext = if tag.contains("dock") { "dlg" } else { "out" };
                            p.record_file(
                                tid,
                                act_id(task.activity_index).expect("registered activity"),
                                wkf.expect("workflow registered"),
                                &format!("{safe_pair}.{ext}"),
                                task.out_bytes as i64,
                                &format!("/root/exp_SciDock/{tag}/"),
                            );
                        }
                        report.finished += 1;
                        if let Some(ev) = &evlog {
                            ev.emit(
                                now,
                                Severity::Info,
                                "activation_finished",
                                &[
                                    ("activity", tag_of(task.activity_index)),
                                    ("key", task.pair_key.clone()),
                                    ("attempt", attempt.to_string()),
                                ],
                            );
                        }
                        for &s in &successors[ti] {
                            if dropped[s] {
                                continue;
                            }
                            dep_count[s] -= 1;
                            if dep_count[s] == 0 {
                                let st = &tasks[s];
                                if st.poison && cfg.hg_rule {
                                    if let Some(ev) = &evlog {
                                        ev.emit(
                                            now,
                                            Severity::Error,
                                            "activation_blacklisted",
                                            &[
                                                ("activity", tag_of(st.activity_index)),
                                                ("key", st.pair_key.clone()),
                                            ],
                                        );
                                    }
                                    record_blacklist(prov, wkf, act_id(st.activity_index), st, now);
                                    report.blacklisted += 1;
                                    dropped[s] = true;
                                    cancel_downstream(s, &mut dropped, &mut report, &successors);
                                } else {
                                    ready_by_activity[st.activity_index] += 1;
                                    ready.push(ReadyTask { task: s, weight: weight_of(st) });
                                }
                            }
                        }
                    }
                    Fate::Fail => {
                        record(
                            ActivationStatus::Failed,
                            now - 1.0_f64.min(now),
                            now,
                            attempt as i64,
                        );
                        report.failed_attempts += 1;
                        if let Some(ev) = &evlog {
                            let sev = if attempt < cfg.max_retries {
                                Severity::Warn // will be retried
                            } else {
                                Severity::Error // budget exhausted: terminal
                            };
                            ev.emit(
                                now,
                                sev,
                                "activation_failed",
                                &[
                                    ("activity", tag_of(task.activity_index)),
                                    ("key", task.pair_key.clone()),
                                    ("attempt", attempt.to_string()),
                                ],
                            );
                        }
                        if attempt < cfg.max_retries {
                            attempts[ti] = attempt + 1;
                            ready_by_activity[task.activity_index] += 1;
                            ready.push(ReadyTask { task: ti, weight: weight_of(task) });
                        } else {
                            dropped[ti] = true;
                            cancel_downstream(ti, &mut dropped, &mut report, &successors);
                        }
                    }
                    Fate::Hang => {
                        record(
                            ActivationStatus::Aborted,
                            now - 1.0_f64.min(now),
                            now,
                            attempt as i64,
                        );
                        report.aborted += 1;
                        if let Some(ev) = &evlog {
                            ev.emit(
                                now,
                                Severity::Warn,
                                "activation_aborted",
                                &[
                                    ("activity", tag_of(task.activity_index)),
                                    ("key", task.pair_key.clone()),
                                    ("attempt", attempt.to_string()),
                                ],
                            );
                        }
                        dropped[ti] = true;
                        cancel_downstream(ti, &mut dropped, &mut report, &successors);
                    }
                }

                // legacy elasticity: release idle VMs when nothing is
                // queued (the fleet policy replaces this path too)
                if let Some(el) = cfg.elasticity.as_ref().filter(|_| cfg.scheduler.is_none()) {
                    if ready.is_empty() {
                        let alive = cluster.alive_at(now);
                        for v in alive {
                            if vm_busy[v.0] == 0 && !released[v.0] && now > el.idle_release_s {
                                // keep at least one VM
                                let still_alive = released.iter().filter(|r| !**r).count();
                                if still_alive <= 1 {
                                    break;
                                }
                                released[v.0] = true;
                                cluster.release(v, now);
                                free_slots.retain(|s| *s != v);
                            }
                        }
                    }
                }

                // every completion is a scheduler tick, exactly like the
                // distributed master processing a Done frame
                if let Some(ctrl) = controller.as_mut() {
                    ctrl.note_completion();
                    let decision = ctrl.evaluate(sim_snapshot(
                        ready.len(),
                        &ready_by_activity,
                        sim_in_flight,
                        &released,
                        &draining,
                        &vm_busy,
                        &cluster,
                        now,
                        slots_per_worker,
                    ));
                    apply_scale(
                        decision,
                        now,
                        &mut cluster,
                        &mut events,
                        &mut vm_busy,
                        &mut vm_machine,
                        &mut released,
                        &mut draining,
                        &mut free_slots,
                        &mut report,
                    );
                }
            }
        }
    }

    report.cost_usd = cluster.total_cost(report.tet_s);
    report.final_cores = cluster.cores_at(report.tet_s);
    report.peak_vms = report.peak_vms.max(cluster.vms().len());
    report.metrics = tel.snapshot();
    if let Some(ctrl) = controller {
        report.scale_events = ctrl.into_trace();
    }
    if let Some(ev) = &evlog {
        ev.emit(
            report.tet_s,
            Severity::Info,
            "run_finished",
            &[
                ("workflow", cfg.workflow_tag.clone()),
                ("finished", report.finished.to_string()),
                ("failed_attempts", report.failed_attempts.to_string()),
                ("aborted", report.aborted.to_string()),
                ("blacklisted", report.blacklisted.to_string()),
            ],
        );
    }
    report
}

/// The scheduler's view of a simulated run, shaped identically to the
/// distributed master's: logical queue depths, provisioned fleet (booted +
/// booting, minus draining), and per-worker slot capacity.
#[allow(clippy::too_many_arguments)]
fn sim_snapshot(
    ready_len: usize,
    ready_by_activity: &[usize],
    in_flight: usize,
    released: &[bool],
    draining: &[bool],
    vm_busy: &[u32],
    cluster: &Cluster,
    now: SimTime,
    slots_per_worker: usize,
) -> FleetSnapshot {
    let fleet = (0..released.len()).filter(|&v| !released[v] && !draining[v]).count();
    let idle = (0..released.len())
        .filter(|&v| {
            !released[v] && !draining[v] && vm_busy[v] == 0 && cluster.vm(VmId(v)).ready_at <= now
        })
        .count();
    FleetSnapshot {
        completions: 0, // the controller stamps its own count
        queued: ready_len,
        in_flight,
        fleet,
        idle,
        slots_per_worker,
        queued_by_activity: ready_by_activity.to_vec(),
        // the simulator has no wall-clock variance, so nothing straggles
        stragglers: 0,
    }
}

fn record_blacklist(
    prov: Option<&ProvenanceStore>,
    wkf: Option<provenance::WorkflowId>,
    act: Option<ActivityId>,
    task: &SimTask,
    now: SimTime,
) {
    if let Some(p) = prov {
        p.record_activation(&ActivationRecord {
            activity: act.expect("registered activity"),
            workflow: wkf.expect("workflow registered"),
            status: ActivationStatus::Blacklisted,
            start_time: now,
            end_time: now,
            machine: None,
            retries: 0,
            pair_key: task.pair_key.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `pairs` chains of `acts` activities, each activation `nominal_s`.
    fn chain_tasks(pairs: usize, acts: usize, nominal_s: f64) -> Vec<SimTask> {
        let mut tasks = Vec::new();
        for p in 0..pairs {
            for a in 0..acts {
                let deps = if a == 0 { vec![] } else { vec![p * acts + a - 1] };
                tasks.push(SimTask {
                    activity_index: a,
                    pair_key: format!("pair{p}"),
                    nominal_s,
                    in_bytes: 0,
                    out_bytes: 0,
                    deps,
                    poison: false,
                });
            }
        }
        tasks
    }

    fn base_cfg(cores: u32) -> SimConfig {
        SimConfig {
            fleet: cloudsim::fleet_for_cores(cores),
            noise: NoiseModel { amplitude: 0.0 },
            sharedfs: SharedFsModel { latency_s: 0.0, bandwidth_bps: 1e12, contention: 0.0 },
            master: MasterCostModel { c0: 0.0, c1: 0.0, window: 1, latency_per_vm: 0.0 },
            activity_tags: (0..8).map(|i| format!("act{i}")).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn all_tasks_finish() {
        let tasks = chain_tasks(10, 3, 5.0);
        let r = simulate_tasks(&tasks, &base_cfg(8), None);
        assert_eq!(r.finished, 30);
        assert_eq!(r.failed_attempts, 0);
        assert_eq!(r.cancelled, 0);
        assert!(r.tet_s > 0.0);
    }

    #[test]
    fn ideal_speedup_without_overheads() {
        // 64 independent 10 s tasks: 4 cores → ~160 s + boot; 16 cores → ~40 s + boot
        let tasks = chain_tasks(64, 1, 10.0);
        let t4 = simulate_tasks(&tasks, &base_cfg(4), None).tet_s;
        let t16 = simulate_tasks(&tasks, &base_cfg(16), None).tet_s;
        let boot = cloudsim::M3_2XLARGE.boot_seconds.max(cloudsim::M3_XLARGE.boot_seconds);
        let s = (t4 - boot) / (t16 - boot);
        assert!(
            (3.0..5.0).contains(&s),
            "speedup 4→16 cores should be ~4, got {s} ({t4} vs {t16})"
        );
    }

    #[test]
    fn chains_respect_dependencies() {
        // 1 pair, 5 sequential 10 s activities on plenty of cores: TET ≈ 50 s
        // + boot — dependencies force serialization
        let tasks = chain_tasks(1, 5, 10.0);
        let r = simulate_tasks(&tasks, &base_cfg(16), None);
        // the chain can start no earlier than the fastest-booting VM type
        let boot = cloudsim::M3_XLARGE.boot_seconds.min(cloudsim::M3_2XLARGE.boot_seconds);
        assert!(r.tet_s >= boot + 50.0 - 1e-6, "TET {} must serialize the chain", r.tet_s);
    }

    #[test]
    fn failures_retried_and_counted() {
        let mut cfg = base_cfg(8);
        cfg.failures =
            FailureModel { fail_rate: 0.25, hang_rate: 0.0, fail_at_fraction: 0.5, seed: 3 };
        cfg.max_retries = 10;
        let tasks = chain_tasks(40, 2, 5.0);
        let r = simulate_tasks(&tasks, &cfg, None);
        assert_eq!(r.finished, 80, "with retries everything finishes");
        assert!(r.failed_attempts > 5);
        // failures cost extra wall-clock vs a failure-free run
        let clean = simulate_tasks(&tasks, &base_cfg(8), None);
        assert!(r.tet_s > clean.tet_s);
    }

    #[test]
    fn hangs_abort_and_cancel_downstream() {
        let mut cfg = base_cfg(8);
        cfg.failures =
            FailureModel { fail_rate: 0.0, hang_rate: 0.9, fail_at_fraction: 0.5, seed: 1 };
        let tasks = chain_tasks(20, 3, 2.0);
        let r = simulate_tasks(&tasks, &cfg, None);
        assert!(r.aborted > 10, "most first activations hang");
        assert!(r.cancelled > 10, "downstream activations get cancelled");
        assert_eq!(r.finished + r.aborted + r.cancelled + r.failed_attempts, 60);
    }

    #[test]
    fn poison_blacklisted_with_rule() {
        let mut tasks = chain_tasks(10, 2, 2.0);
        for p in 0..3 {
            tasks[p * 2].poison = true;
        }
        let mut cfg = base_cfg(4);
        cfg.hg_rule = true;
        let r = simulate_tasks(&tasks, &cfg, None);
        assert_eq!(r.blacklisted, 3);
        assert_eq!(r.cancelled, 3, "their second activations are cancelled");
        assert_eq!(r.finished, 14);
    }

    #[test]
    fn poison_hangs_without_rule() {
        let mut tasks = chain_tasks(10, 2, 2.0);
        tasks[0].poison = true;
        let mut cfg = base_cfg(4);
        cfg.hg_rule = false;
        cfg.hang_timeout_factor = 20.0;
        let r = simulate_tasks(&tasks, &cfg, None);
        assert_eq!(r.blacklisted, 0);
        assert_eq!(r.aborted, 1);
        // the hang burned ~20× the nominal runtime
        let clean = simulate_tasks(
            &chain_tasks(10, 2, 2.0),
            &{
                let mut c = base_cfg(4);
                c.hg_rule = false;
                c
            },
            None,
        );
        assert!(r.busy_core_seconds > clean.busy_core_seconds);
    }

    #[test]
    fn master_overhead_slows_large_fleets() {
        let tasks = chain_tasks(400, 1, 5.0);
        let mut cheap = base_cfg(32);
        cheap.master = MasterCostModel { c0: 0.0, c1: 0.0, window: 1, latency_per_vm: 0.0 };
        let mut costly = base_cfg(32);
        costly.master = MasterCostModel { c0: 0.05, c1: 1e-4, window: 512, latency_per_vm: 0.0 };
        let fast = simulate_tasks(&tasks, &cheap, None);
        let slow = simulate_tasks(&tasks, &costly, None);
        assert!(slow.tet_s > fast.tet_s, "{} vs {}", slow.tet_s, fast.tet_s);
        assert!(slow.master_overhead_s > 0.0);
        assert_eq!(fast.master_overhead_s, 0.0);
    }

    #[test]
    fn provenance_recorded_with_simulated_times() {
        let prov = ProvenanceStore::new();
        let tasks = chain_tasks(5, 2, 3.0);
        let mut cfg = base_cfg(4);
        cfg.activity_tags = vec!["prep".into(), "dock".into()];
        let r = simulate_tasks(&tasks, &cfg, Some(&prov));
        assert_eq!(r.finished, 10);
        let q = prov
            .query_rows(
                "SELECT a.tag, count(*) FROM hactivity a, hactivation t \
                 WHERE a.actid = t.actid GROUP BY a.tag ORDER BY a.tag",
                &[],
            )
            .unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.cell(0, 1), &provenance::Value::Int(5));
        // durations queryable via extract(epoch …)
        let d = prov
            .query_rows(
                "SELECT max(extract('epoch' from (endtime - starttime))) FROM hactivation",
                &[],
            )
            .unwrap();
        assert!(d.cell(0, 0).as_f64().unwrap() > 0.0);
    }

    #[test]
    fn elasticity_grows_fleet_under_backlog() {
        let tasks = chain_tasks(3000, 1, 10.0);
        let mut cfg = base_cfg(4);
        cfg.elasticity = Some(ElasticityConfig {
            grow_factor: 2.0,
            cooldown_s: 10.0,
            idle_release_s: 50.0,
            max_vms: 8,
        });
        let r = simulate_tasks(&tasks, &cfg, None);
        assert!(r.peak_vms > cfg.fleet.len(), "fleet should grow, peak {}", r.peak_vms);
        // grown fleet must beat the fixed one
        let fixed = simulate_tasks(&tasks, &base_cfg(4), None);
        assert!(r.tet_s < fixed.tet_s);
    }

    #[test]
    fn fleet_policy_drives_simulated_scaling() {
        use crate::fleet::{QueueDepthConfig, QueueDepthScheduler};
        let tasks = chain_tasks(10, 1, 5.0);
        let cfg = SimConfig {
            fleet: vec![&cloudsim::M1_SMALL],
            scale_itype: &cloudsim::M1_SMALL,
            scheduler: Some(SchedulerFactory::new(|| {
                Box::new(QueueDepthScheduler::new(QueueDepthConfig {
                    max_workers: 3,
                    ..QueueDepthConfig::default()
                }))
            })),
            noise: NoiseModel { amplitude: 0.0 },
            sharedfs: SharedFsModel { latency_s: 0.0, bandwidth_bps: 1e12, contention: 0.0 },
            master: MasterCostModel { c0: 0.0, c1: 0.0, window: 1, latency_per_vm: 0.0 },
            activity_tags: vec!["work".into()],
            ..Default::default()
        };
        let r = simulate_tasks(&tasks, &cfg, None);
        assert_eq!(r.finished, 10);
        assert_eq!(r.peak_vms, 3, "the policy grew to its cap");
        use crate::fleet::ScaleDecision::{Grow, Shrink};
        let got: Vec<_> = r
            .scale_events
            .iter()
            .map(|e| (e.completions, e.fleet, e.outstanding, e.decision))
            .collect();
        assert_eq!(
            got,
            vec![
                (0, 1, 10, Grow(1)),
                (2, 2, 8, Grow(1)),
                (8, 3, 2, Shrink(1)),
                (10, 2, 0, Shrink(1))
            ],
            "queue-depth decisions over a 10-task flat backlog"
        );
        // determinism: the same config reproduces the same trace
        let again = simulate_tasks(&tasks, &cfg, None);
        assert_eq!(r.scale_events, again.scale_events);
        assert_eq!(r.tet_s, again.tet_s);
    }

    #[test]
    fn deterministic_given_seed() {
        let tasks = chain_tasks(50, 2, 4.0);
        let mut cfg = base_cfg(8);
        cfg.noise = NoiseModel { amplitude: 0.1 };
        cfg.failures =
            FailureModel { fail_rate: 0.1, hang_rate: 0.01, fail_at_fraction: 0.5, seed: 7 };
        let a = simulate_tasks(&tasks, &cfg, None);
        let b = simulate_tasks(&tasks, &cfg, None);
        assert_eq!(a.tet_s, b.tet_s);
        assert_eq!(a.finished, b.finished);
        assert_eq!(a.failed_attempts, b.failed_attempts);
        assert_eq!(a.cost_usd, b.cost_usd);
    }

    #[test]
    fn cost_scales_with_fleet() {
        let tasks = chain_tasks(100, 1, 10.0);
        let small = simulate_tasks(&tasks, &base_cfg(4), None);
        let big = simulate_tasks(&tasks, &base_cfg(64), None);
        assert!(big.cost_usd > small.cost_usd, "{} vs {}", big.cost_usd, small.cost_usd);
    }

    #[test]
    #[should_panic(expected = "fleet must contain")]
    fn empty_fleet_panics() {
        let cfg = SimConfig { fleet: vec![], ..Default::default() };
        simulate_tasks(&[], &cfg, None);
    }

    #[test]
    fn telemetry_records_simulated_timeline() {
        let tel = Telemetry::attached();
        let mut cfg = base_cfg(4);
        cfg.sharedfs = SharedFsModel { latency_s: 0.05, bandwidth_bps: 1e6, contention: 0.0 };
        cfg.telemetry = tel.clone();
        let mut tasks = chain_tasks(6, 2, 3.0);
        for t in &mut tasks {
            t.in_bytes = 500_000;
            t.out_bytes = 250_000;
        }
        let r = simulate_tasks(&tasks, &cfg, None);
        assert_eq!(r.finished, 12);

        let snap = r.metrics.expect("sink attached => metrics present");
        assert_eq!(snap.counter("sim.dispatched"), Some(12));
        assert!(snap.counter("sim.events").unwrap() >= 12, "every DES event counted");
        assert!(snap.counter("sim.vm_acquired").unwrap() >= 1);
        let vm_lane = snap.tracks.iter().find(|t| t.name.starts_with("vm-0")).expect("vm lane");
        assert!(vm_lane.spans >= 2, "boot + task spans on the VM lane");
        // records carry *simulated* timestamps, so the snapshot's wall clock
        // tracks the TET, not the microseconds the simulation took for real
        assert!(
            snap.wall_s >= r.tet_s * 0.9,
            "snapshot wall {} vs simulated TET {}",
            snap.wall_s,
            r.tet_s
        );
        assert!(!snap.gauges.is_empty(), "ready-queue depth series present");

        let trace = tel.export_chrome_trace().unwrap();
        telemetry::json::validate(&trace)
            .unwrap_or_else(|off| panic!("invalid trace JSON at byte {off}"));
        assert!(trace.contains("stage_in") && trace.contains("stage_out"));
        assert!(trace.contains("\"cat\":\"sim.task\""));
    }

    #[test]
    fn greedy_beats_random_on_heterogeneous_tasks() {
        // mix of long and short tasks: greedy (LPT-style) should do no worse
        let mut tasks = Vec::new();
        for p in 0..120 {
            tasks.push(SimTask {
                activity_index: 0,
                pair_key: format!("p{p}"),
                nominal_s: if p % 10 == 0 { 120.0 } else { 4.0 },
                in_bytes: 0,
                out_bytes: 0,
                deps: vec![],
                poison: false,
            });
        }
        let mut greedy = base_cfg(16);
        greedy.policy = Policy::GreedyWeighted;
        let mut random = base_cfg(16);
        random.policy = Policy::Random;
        let g = simulate_tasks(&tasks, &greedy, None);
        let r = simulate_tasks(&tasks, &random, None);
        assert!(
            g.tet_s <= r.tet_s * 1.05,
            "greedy {} should not lose badly to random {}",
            g.tet_s,
            r.tet_s
        );
    }
}
