//! The unified error type shared by every execution backend.
//!
//! Historically each backend had its own ad-hoc error surface
//! ([`crate::localbackend::EngineError`], panics in the simulator, …).
//! The [`crate::backend::Backend`] trait funnels them all through
//! [`CumulusError`] so callers match one enum regardless of where the
//! workflow ran.

use std::fmt;

use crate::localbackend::EngineError;

/// Errors from running a workflow through any backend.
///
/// Marked `#[non_exhaustive]`: new failure classes (e.g. future remote
/// backends) may add variants without a breaking release, so downstream
/// matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CumulusError {
    /// Structural validation of the workflow (or its configuration) failed.
    Invalid(String),
    /// Every worker died or disconnected while activations were still
    /// pending, so the run cannot make progress.
    WorkerLost(String),
    /// A peer spoke the wire protocol wrong: bad magic, an unexpected frame
    /// for the connection state, or an undecodable payload.
    Protocol(String),
    /// The provenance store rejected or lost a write the run depends on.
    Provenance(String),
    /// A deadline expired: worker connect/handshake, heartbeat liveness, or
    /// a per-activation execution timeout.
    Timeout(String),
    /// Socket- or process-level I/O failure (bind, spawn, read, write).
    Io(String),
}

impl fmt::Display for CumulusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CumulusError::Invalid(m) => write!(f, "invalid workflow: {m}"),
            CumulusError::WorkerLost(m) => write!(f, "worker lost: {m}"),
            CumulusError::Protocol(m) => write!(f, "protocol error: {m}"),
            CumulusError::Provenance(m) => write!(f, "provenance error: {m}"),
            CumulusError::Timeout(m) => write!(f, "timed out: {m}"),
            CumulusError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for CumulusError {}

impl From<EngineError> for CumulusError {
    fn from(e: EngineError) -> CumulusError {
        match e {
            EngineError::Invalid(m) => CumulusError::Invalid(m),
        }
    }
}

impl From<std::io::Error> for CumulusError {
    fn from(e: std::io::Error) -> CumulusError {
        CumulusError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_prefixed_and_error_impl_works() {
        let cases: Vec<(CumulusError, &str)> = vec![
            (CumulusError::Invalid("cycle".into()), "invalid workflow: cycle"),
            (CumulusError::WorkerLost("all 2 dead".into()), "worker lost: all 2 dead"),
            (CumulusError::Protocol("bad magic".into()), "protocol error: bad magic"),
            (CumulusError::Provenance("wal".into()), "provenance error: wal"),
            (CumulusError::Timeout("connect".into()), "timed out: connect"),
            (CumulusError::Io("refused".into()), "i/o error: refused"),
        ];
        for (e, s) in cases {
            assert_eq!(e.to_string(), s);
            let _: &dyn std::error::Error = &e;
        }
    }

    #[test]
    fn converts_from_engine_and_io_errors() {
        let e: CumulusError = EngineError::Invalid("deps".into()).into();
        assert_eq!(e, CumulusError::Invalid("deps".into()));
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "refused");
        assert!(matches!(CumulusError::from(io), CumulusError::Io(_)));
    }
}
