//! Aggregated metrics view over a collector: per-histogram quantiles,
//! counter totals, gauge time series, and per-track busy time /
//! utilisation. This is what `RunReport` / `SimReport` surface after a run.

use crate::{Collector, Record};
use std::collections::BTreeMap;

/// Summary statistics for one histogram (durations reported in seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStats {
    /// Histogram name (e.g. `activation.vina`).
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Mean, seconds.
    pub mean_s: f64,
    /// Approximate median, seconds.
    pub p50_s: f64,
    /// Approximate 95th percentile, seconds.
    pub p95_s: f64,
    /// Exact maximum, seconds.
    pub max_s: f64,
}

/// A gauge's timestamped samples: `(seconds since epoch, value)`.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSeries {
    /// Gauge name (e.g. `pool.queue_depth`).
    pub name: String,
    /// Samples in time order.
    pub samples: Vec<(f64, f64)>,
}

/// Busy time and utilisation for one track (worker thread or simulated VM).
#[derive(Debug, Clone, PartialEq)]
pub struct TrackStats {
    /// Track id.
    pub track: u64,
    /// Track name, if one was registered (empty otherwise).
    pub name: String,
    /// Seconds covered by top-level spans on this track.
    pub busy_s: f64,
    /// Number of spans recorded on this track.
    pub spans: usize,
    /// `busy_s` over the snapshot's observed wall-clock window (0 when the
    /// window is empty).
    pub utilization: f64,
}

/// Point-in-time aggregation of everything a collector has seen.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Observed window: latest event end minus earliest event start, seconds.
    pub wall_s: f64,
    /// Counter totals, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Histogram summaries, name-sorted.
    pub histograms: Vec<HistogramStats>,
    /// Gauge series, name-sorted.
    pub gauges: Vec<GaugeSeries>,
    /// Per-track busy/utilisation, track-sorted.
    pub tracks: Vec<TrackStats>,
    /// Ring-buffer records overwritten before this snapshot (0 = complete).
    pub dropped_records: u64,
}

impl MetricsSnapshot {
    /// Value of a named counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Stats for a named histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStats> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Samples of a named gauge.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSeries> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Mean utilisation across tracks that recorded at least one span.
    pub fn mean_utilization(&self) -> f64 {
        let busy: Vec<_> = self.tracks.iter().filter(|t| t.spans > 0).collect();
        if busy.is_empty() {
            0.0
        } else {
            busy.iter().map(|t| t.utilization).sum::<f64>() / busy.len() as f64
        }
    }

    /// Render the snapshot as one JSON object (std-only, via
    /// [`crate::json`]) — served from `/snapshot.json` and embedded in the
    /// bench sidecars.
    pub fn to_json(&self) -> String {
        use crate::json::{escape, num};
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"wall_s\":{},\"dropped_records\":{},\"counters\":{{",
            num(self.wall_s),
            self.dropped_records
        );
        for (i, (n, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\"{}\":{v}", escape(n));
        }
        s.push_str("},\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}{{\"name\":\"{}\",\"count\":{},\"mean_s\":{},\"p50_s\":{},\
                 \"p95_s\":{},\"max_s\":{}}}",
                escape(&h.name),
                h.count,
                num(h.mean_s),
                num(h.p50_s),
                num(h.p95_s),
                num(h.max_s)
            );
        }
        s.push_str("],\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let last = g.samples.last().map(|(_, v)| *v).unwrap_or(0.0);
            let _ = write!(
                s,
                "{sep}{{\"name\":\"{}\",\"samples\":{},\"last\":{}}}",
                escape(&g.name),
                g.samples.len(),
                num(last)
            );
        }
        s.push_str("],\"tracks\":[");
        for (i, t) in self.tracks.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}{{\"track\":{},\"name\":\"{}\",\"busy_s\":{},\"spans\":{},\
                 \"utilization\":{}}}",
                t.track,
                escape(&t.name),
                num(t.busy_s),
                t.spans,
                num(t.utilization)
            );
        }
        s.push_str("]}");
        s
    }

    /// Multi-line human-readable rendering (used by examples and reports).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "window: {:.3} s  (dropped records: {})",
            self.wall_s, self.dropped_records
        );
        if !self.counters.is_empty() {
            let _ = writeln!(s, "counters:");
            for (n, v) in &self.counters {
                let _ = writeln!(s, "  {n:<32} {v}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                s,
                "histograms:                        count      p50      p95      max (s)"
            );
            for h in &self.histograms {
                let _ = writeln!(
                    s,
                    "  {:<32} {:>5} {:>8.4} {:>8.4} {:>8.4}",
                    h.name, h.count, h.p50_s, h.p95_s, h.max_s
                );
            }
        }
        if !self.tracks.is_empty() {
            let _ = writeln!(s, "tracks:");
            for t in &self.tracks {
                let name =
                    if t.name.is_empty() { format!("track-{}", t.track) } else { t.name.clone() };
                let _ = writeln!(
                    s,
                    "  {name:<32} busy {:>8.3} s  util {:>5.1}%  spans {}",
                    t.busy_s,
                    t.utilization * 100.0,
                    t.spans
                );
            }
        }
        s
    }
}

const NS: f64 = 1e9;

pub(crate) fn build_snapshot(col: &Collector) -> MetricsSnapshot {
    let (records, dropped) = col.drain_snapshot();

    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    let mut gauges: BTreeMap<&'static str, Vec<(f64, f64)>> = BTreeMap::new();
    // track -> (busy ns from top-level spans, span count)
    let mut tracks: BTreeMap<u64, (u64, usize)> = BTreeMap::new();

    for r in &records {
        match r {
            Record::Span { parent, track, start_ns, end_ns, .. } => {
                t_min = t_min.min(*start_ns);
                t_max = t_max.max(*end_ns);
                let e = tracks.entry(*track).or_default();
                if *parent == 0 {
                    e.0 += end_ns.saturating_sub(*start_ns);
                }
                e.1 += 1;
            }
            Record::Instant { ts_ns, .. } => {
                t_min = t_min.min(*ts_ns);
                t_max = t_max.max(*ts_ns);
            }
            Record::Gauge { name, ts_ns, value } => {
                t_min = t_min.min(*ts_ns);
                t_max = t_max.max(*ts_ns);
                gauges.entry(name).or_default().push((*ts_ns as f64 / NS, *value));
            }
        }
    }

    let wall_s = if t_max > t_min { (t_max - t_min) as f64 / NS } else { 0.0 };
    let names: BTreeMap<u64, String> = col.track_names().into_iter().collect();

    MetricsSnapshot {
        wall_s,
        counters: col.counter_values(),
        histograms: col
            .hist_handles()
            .into_iter()
            .map(|(name, h)| HistogramStats {
                name,
                count: h.count(),
                mean_s: h.mean() / NS,
                p50_s: h.quantile(0.50) / NS,
                p95_s: h.quantile(0.95) / NS,
                max_s: h.max() as f64 / NS,
            })
            .collect(),
        gauges: gauges
            .into_iter()
            .map(|(name, samples)| GaugeSeries { name: name.to_string(), samples })
            .collect(),
        tracks: tracks
            .into_iter()
            .map(|(track, (busy_ns, spans))| {
                let busy_s = busy_ns as f64 / NS;
                TrackStats {
                    track,
                    name: names.get(&track).cloned().unwrap_or_default(),
                    busy_s,
                    spans,
                    utilization: if wall_s > 0.0 { (busy_s / wall_s).min(1.0) } else { 0.0 },
                }
            })
            .collect(),
        dropped_records: dropped,
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn snapshot_aggregates_counters_hists_gauges_tracks() {
        let tel = Telemetry::attached();
        tel.name_current_track("main");
        tel.count("events", 7);
        let h = tel.histogram("lat").unwrap();
        h.record(1_000_000); // 1 ms
        h.record(3_000_000);
        tel.gauge_at("depth", 0, 1.0);
        tel.gauge_at("depth", 500_000_000, 3.0);
        tel.record_span_at("t", "work", None, 0, 1_000_000_000, None);

        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.counter("events"), Some(7));
        let lat = snap.histogram("lat").unwrap();
        assert_eq!(lat.count, 2);
        assert!(lat.max_s > 0.0029 && lat.max_s < 0.0031);
        let depth = snap.gauge("depth").unwrap();
        assert_eq!(depth.samples.len(), 2);
        assert_eq!(depth.samples[1].1, 3.0);
        assert_eq!(snap.dropped_records, 0);
        let main = snap.tracks.iter().find(|t| t.name == "main").unwrap();
        assert!((main.busy_s - 1.0).abs() < 1e-9);
        assert!(main.utilization > 0.9);
        assert!(!snap.render().is_empty());
    }

    #[test]
    fn snapshot_json_is_valid() {
        let tel = Telemetry::attached();
        tel.name_current_track("main \"lane\"");
        tel.count("a.b", 1);
        tel.histogram("h").unwrap().record(500);
        tel.gauge_at("g", 0, 2.5);
        tel.record_span_at("t", "w", None, 0, 10, None);
        let j = tel.snapshot().unwrap().to_json();
        crate::json::validate(&j).unwrap_or_else(|off| panic!("invalid JSON at byte {off}: {j}"));
        assert!(j.contains("\"a.b\":1"));
        assert!(j.contains("\"last\":2.5"));
    }

    #[test]
    fn nested_spans_do_not_double_count_busy_time() {
        let tel = Telemetry::attached();
        {
            let _outer = tel.span("t", "outer");
            std::thread::sleep(std::time::Duration::from_millis(5));
            let _inner = tel.span("t", "inner");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let snap = tel.snapshot().unwrap();
        let t = &snap.tracks[0];
        assert_eq!(t.spans, 2);
        // busy time counts only the root span, so utilisation can't exceed 1
        assert!(t.utilization <= 1.0);
        assert!(t.busy_s <= snap.wall_s + 1e-9);
    }

    #[test]
    fn empty_snapshot_is_well_formed() {
        let snap = Telemetry::attached().snapshot().unwrap();
        assert_eq!(snap.wall_s, 0.0);
        assert!(snap.tracks.is_empty());
        assert_eq!(snap.mean_utilization(), 0.0);
    }
}
