//! # telemetry — lock-cheap structured telemetry for the SciDock stack
//!
//! The paper's §V.C workflow is a scientist *watching* a running campaign;
//! this crate is the instrumentation layer that makes watching possible:
//!
//! * **Spans** — timed intervals with ids, parent linkage (a thread-local
//!   span stack), and a per-thread *track* so a trace viewer can lay them
//!   out one lane per worker thread or per simulated VM;
//! * **Counters** — named `AtomicU64`s (pool parks, steals, DES events …);
//! * **Histograms** — log₂-bucketed latency histograms with exact max,
//!   powering per-activity p50/p95/max in [`MetricsSnapshot`];
//! * **Gauges** — timestamped value samples (queue depth over time);
//! * a **sharded ring-buffer collector** behind everything, safe to write
//!   from many threads with one short mutex hold per record;
//! * a **Chrome-trace exporter** ([`Telemetry::export_chrome_trace`]) whose
//!   output opens directly in `chrome://tracing` or Perfetto.
//!
//! Instrumentation is *always compiled* but near-free when no sink is
//! attached: a [`Telemetry`] handle is an `Option<Arc<Collector>>`, and every
//! entry point starts with one branch on that option — no allocation, no
//! clock read, no locking on the disabled path (`telemetry_bench` measures
//! this; see EXPERIMENTS.md).
//!
//! ```
//! use telemetry::Telemetry;
//!
//! let tel = Telemetry::attached();
//! {
//!     let _outer = tel.span("demo", "outer");
//!     let _inner = tel.span("demo", "inner"); // parent-linked to `outer`
//! }
//! tel.count("demo.widgets", 3);
//! let snap = tel.snapshot().unwrap();
//! assert_eq!(snap.counter("demo.widgets"), Some(3));
//! let trace = tel.export_chrome_trace().unwrap();
//! assert!(trace.contains("traceEvents"));
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod registry;

pub use metrics::{GaugeSeries, HistogramStats, MetricsSnapshot, TrackStats};

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process-wide track allocator: tracks are unique across collectors so a
/// thread's lazily-assigned track id is valid for any collector it records
/// into. Track 0 is reserved ("no track").
static NEXT_TRACK: AtomicU64 = AtomicU64::new(1);
/// Process-wide collector instance ids (thread-local span stacks tag
/// entries with the collector they belong to).
static NEXT_COLLECTOR: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's track id (0 = not yet assigned).
    static THREAD_TRACK: Cell<u64> = const { Cell::new(0) };
    /// Stack of open spans on this thread: `(collector id, span id)`.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Track id of the current thread, assigning one on first use.
pub fn current_track() -> u64 {
    THREAD_TRACK.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TRACK.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// A monotonically increasing named counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets in a [`Histogram`] (and its serialized
/// [`HistogramSnapshot`] form).
pub const HIST_BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` samples (nanoseconds by convention).
///
/// Bucket `i` holds values whose highest set bit is `i-1` (bucket 0 holds
/// zero), i.e. the range `[2^(i-1), 2^i)`. Quantiles are approximate (bucket
/// geometric midpoint); the maximum is exact.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        // values with the top bit set land in the last bucket
        ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Representative value of bucket `i` (geometric midpoint of its range).
    fn bucket_rep(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            1.5 * 2f64.powi(i as i32 - 1)
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket midpoint, exact max for
    /// the top sample).
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of this histogram's state, suitable for
    /// serialization and merging. Concurrent writers may leave `count`,
    /// `sum` and the bucket totals momentarily out of step with each other;
    /// each field is individually consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (b, out) in self.buckets.iter().zip(buckets.iter_mut()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Merge a (possibly remote) snapshot's samples into this histogram:
    /// bucket counts, count and sum add; max takes the maximum.
    pub fn merge_from(&self, snap: &HistogramSnapshot) {
        for (b, v) in self.buckets.iter().zip(snap.buckets.iter()) {
            if *v > 0 {
                b.fetch_add(*v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }
}

/// A lossless, mergeable serialized form of a [`Histogram`]: the raw bucket
/// counts plus count/sum/max. This is what workers stream to the master in
/// `Stats` frames and what quantile math runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (same log₂ layout as [`Histogram`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0 && self.buckets.iter().all(|b| *b == 0)
    }

    /// Record one sample (handy for tests and offline aggregation; live
    /// recording goes through [`Histogram::record`]).
    pub fn record(&mut self, v: u64) {
        self.buckets[Histogram::bucket_of(v)] += 1;
        self.count += 1;
        // wrap like the live histogram's atomic adds do
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
    }

    /// Merge `other` into `self`: bucket counts, count and sum add; max
    /// takes the maximum. Merging two snapshots is exactly equivalent to
    /// having recorded the union of their sample streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The samples recorded since `earlier` (bucket counts, count and sum
    /// subtract, saturating; max carries the current cumulative maximum so
    /// that merging deltas preserves the exact max).
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, (a, b)) in buckets.iter_mut().zip(self.buckets.iter().zip(earlier.buckets.iter()))
        {
            *out = a.saturating_sub(*b);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket midpoint, exact max for
    /// the top sample).
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count;
        if n == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        if target >= n {
            return self.max as f64;
        }
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += *b;
            if seen >= target {
                // the top bucket's representative can overshoot the true
                // maximum; clamp to the exact max
                return Histogram::bucket_rep(i).min(self.max as f64);
            }
        }
        self.max as f64
    }

    /// Serialize to a flat word vector: `[count, sum, max, bucket 0 .. 63]`.
    pub fn to_words(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(3 + HIST_BUCKETS);
        w.push(self.count);
        w.push(self.sum);
        w.push(self.max);
        w.extend_from_slice(&self.buckets);
        w
    }

    /// Deserialize the [`HistogramSnapshot::to_words`] layout. `None` when
    /// the word count is wrong.
    pub fn from_words(w: &[u64]) -> Option<HistogramSnapshot> {
        if w.len() != 3 + HIST_BUCKETS {
            return None;
        }
        let mut buckets = [0u64; HIST_BUCKETS];
        buckets.copy_from_slice(&w[3..]);
        Some(HistogramSnapshot { buckets, count: w[0], sum: w[1], max: w[2] })
    }
}

/// One record in the ring buffer.
#[derive(Debug, Clone)]
pub(crate) enum Record {
    /// A completed span.
    Span {
        id: u64,
        parent: u64,
        track: u64,
        cat: &'static str,
        name: Box<str>,
        start_ns: u64,
        end_ns: u64,
        detail: Option<Box<str>>,
    },
    /// An instantaneous event.
    Instant { track: u64, cat: &'static str, name: Box<str>, ts_ns: u64, detail: Option<Box<str>> },
    /// A timestamped gauge sample.
    Gauge { name: &'static str, ts_ns: u64, value: f64 },
}

impl Record {
    pub(crate) fn order_key(&self) -> u64 {
        match self {
            Record::Span { start_ns, .. } => *start_ns,
            Record::Instant { ts_ns, .. } => *ts_ns,
            Record::Gauge { ts_ns, .. } => *ts_ns,
        }
    }
}

#[derive(Debug)]
struct Shard {
    buf: Vec<Record>,
    cap: usize,
    /// Next overwrite position once the buffer is full.
    head: usize,
    dropped: u64,
}

impl Shard {
    fn push(&mut self, r: Record) {
        if self.buf.len() < self.cap {
            self.buf.push(r);
        } else {
            self.buf[self.head] = r;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

/// Collector sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct CollectorConfig {
    /// Number of ring-buffer shards (writers pick `track % shards`).
    pub shards: usize,
    /// Capacity of each shard; the oldest records are overwritten beyond it.
    pub shard_capacity: usize,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig { shards: 16, shard_capacity: 16 * 1024 }
    }
}

/// The event sink: sharded ring buffers plus counter/histogram registries.
#[derive(Debug)]
pub struct Collector {
    id: u64,
    epoch: Instant,
    next_span: AtomicU64,
    shards: Vec<Mutex<Shard>>,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
    tracks: Mutex<Vec<(u64, String)>>,
}

impl Collector {
    fn new(cfg: CollectorConfig) -> Collector {
        let shards = cfg.shards.max(1);
        Collector {
            id: NEXT_COLLECTOR.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        buf: Vec::new(),
                        cap: cfg.shard_capacity.max(16),
                        head: 0,
                        dropped: 0,
                    })
                })
                .collect(),
            counters: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            tracks: Mutex::new(Vec::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push(&self, track: u64, r: Record) {
        let shard = &self.shards[(track as usize) % self.shards.len()];
        shard.lock().expect("telemetry shard poisoned").push(r);
    }

    /// All records, oldest first, plus the total number of overwritten ones.
    pub(crate) fn drain_snapshot(&self) -> (Vec<Record>, u64) {
        let mut out = Vec::new();
        let mut dropped = 0;
        for s in &self.shards {
            let g = s.lock().expect("telemetry shard poisoned");
            out.extend(g.buf.iter().cloned());
            dropped += g.dropped;
        }
        out.sort_by_key(|r| r.order_key());
        (out, dropped)
    }

    pub(crate) fn track_names(&self) -> Vec<(u64, String)> {
        self.tracks.lock().expect("telemetry tracks poisoned").clone()
    }

    pub(crate) fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .expect("telemetry counters poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    pub(crate) fn hist_handles(&self) -> Vec<(String, Arc<Histogram>)> {
        self.hists
            .lock()
            .expect("telemetry hists poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

/// A live span; records itself into the collector when dropped.
///
/// Obtained from [`Telemetry::span`]; a span from a disabled handle is a
/// zero-cost no-op.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    col: Arc<Collector>,
    id: u64,
    parent: u64,
    track: u64,
    cat: &'static str,
    name: Box<str>,
    start_ns: u64,
    detail: Option<Box<str>>,
    hist: Option<Arc<Histogram>>,
}

impl Span {
    /// Attach/replace the span's detail string (e.g. an outcome discovered
    /// mid-span). No-op on disabled spans; the closure is not called.
    pub fn set_detail(&mut self, f: impl FnOnce() -> String) {
        if let Some(i) = self.inner.as_mut() {
            i.detail = Some(f().into_boxed_str());
        }
    }

    /// Also record this span's duration into `hist` when it closes.
    pub fn with_histogram(mut self, hist: Option<Arc<Histogram>>) -> Span {
        if let Some(i) = self.inner.as_mut() {
            i.hist = hist;
        }
        self
    }

    /// The span id (0 for disabled spans).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(i) = self.inner.take() else { return };
        let end_ns = i.col.now_ns();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|e| *e == (i.col.id, i.id)) {
                stack.truncate(pos);
            }
        });
        if let Some(h) = &i.hist {
            h.record(end_ns.saturating_sub(i.start_ns));
        }
        i.col.push(
            i.track,
            Record::Span {
                id: i.id,
                parent: i.parent,
                track: i.track,
                cat: i.cat,
                name: i.name,
                start_ns: i.start_ns,
                end_ns,
                detail: i.detail,
            },
        );
    }
}

/// A cheap, cloneable telemetry handle: either disabled (the default — every
/// operation is a single branch) or attached to a shared [`Collector`].
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Collector>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(c) => write!(f, "Telemetry(attached #{})", c.id),
            None => write!(f, "Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    /// The no-op handle: nothing is recorded, nothing is allocated.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A handle attached to a fresh collector with default sizing.
    pub fn attached() -> Telemetry {
        Telemetry::with_config(CollectorConfig::default())
    }

    /// A handle attached to a fresh collector with explicit sizing.
    pub fn with_config(cfg: CollectorConfig) -> Telemetry {
        Telemetry { inner: Some(Arc::new(Collector::new(cfg))) }
    }

    /// Is a sink attached?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the collector's epoch (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |c| c.now_ns())
    }

    /// Open a span on the current thread's track. `name` is only copied when
    /// a sink is attached.
    pub fn span(&self, cat: &'static str, name: &str) -> Span {
        let Some(col) = &self.inner else { return Span { inner: None } };
        let id = col.next_span.fetch_add(1, Ordering::Relaxed);
        let track = current_track();
        let parent = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find_map(|(cid, sid)| (*cid == col.id).then_some(*sid))
                .unwrap_or(0);
            stack.push((col.id, id));
            parent
        });
        Span {
            inner: Some(SpanInner {
                col: Arc::clone(col),
                id,
                parent,
                track,
                cat,
                name: name.into(),
                start_ns: col.now_ns(),
                detail: None,
                hist: None,
            }),
        }
    }

    /// Open a span with a lazily-built detail string (not evaluated when
    /// disabled).
    pub fn span_detail(
        &self,
        cat: &'static str,
        name: &str,
        detail: impl FnOnce() -> String,
    ) -> Span {
        let mut s = self.span(cat, name);
        s.set_detail(detail);
        s
    }

    /// Record an already-measured interval (used for simulated clocks, where
    /// `start_ns`/`end_ns` are simulated nanoseconds). `track` of `None`
    /// means the current thread's track. Returns the span id (0 if disabled).
    pub fn record_span_at(
        &self,
        cat: &'static str,
        name: &str,
        track: Option<u64>,
        start_ns: u64,
        end_ns: u64,
        detail: Option<&str>,
    ) -> u64 {
        let Some(col) = &self.inner else { return 0 };
        let id = col.next_span.fetch_add(1, Ordering::Relaxed);
        let track = track.unwrap_or_else(current_track);
        col.push(
            track,
            Record::Span {
                id,
                parent: 0,
                track,
                cat,
                name: name.into(),
                start_ns,
                end_ns: end_ns.max(start_ns),
                detail: detail.map(Into::into),
            },
        );
        id
    }

    /// Record an instantaneous event on the current thread's track (or an
    /// explicit one).
    pub fn instant(&self, cat: &'static str, name: &str, detail: Option<&str>) {
        self.instant_at(cat, name, None, self.now_ns(), detail);
    }

    /// Record an instantaneous event with an explicit timestamp/track.
    pub fn instant_at(
        &self,
        cat: &'static str,
        name: &str,
        track: Option<u64>,
        ts_ns: u64,
        detail: Option<&str>,
    ) {
        let Some(col) = &self.inner else { return };
        let track = track.unwrap_or_else(current_track);
        col.push(
            track,
            Record::Instant {
                track,
                cat,
                name: name.into(),
                ts_ns,
                detail: detail.map(Into::into),
            },
        );
    }

    /// Record a gauge sample (timestamped value series, e.g. queue depth).
    pub fn gauge(&self, name: &'static str, value: f64) {
        let Some(col) = &self.inner else { return };
        let ts_ns = col.now_ns();
        self.gauge_at(name, ts_ns, value);
    }

    /// Record a gauge sample at an explicit (e.g. simulated) timestamp.
    pub fn gauge_at(&self, name: &'static str, ts_ns: u64, value: f64) {
        let Some(col) = &self.inner else { return };
        col.push(0, Record::Gauge { name, ts_ns, value });
    }

    /// Handle to the named counter (None when disabled). Hot paths should
    /// call this once and keep the `Arc`.
    pub fn counter(&self, name: &str) -> Option<Arc<Counter>> {
        let col = self.inner.as_ref()?;
        let mut g = col.counters.lock().expect("telemetry counters poisoned");
        Some(Arc::clone(g.entry(name.to_string()).or_default()))
    }

    /// Add `delta` to the named counter (registry lookup per call — fine off
    /// the hot path).
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(c) = self.counter(name) {
            c.add(delta);
        }
    }

    /// Handle to the named histogram (None when disabled).
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        let col = self.inner.as_ref()?;
        let mut g = col.hists.lock().expect("telemetry hists poisoned");
        Some(Arc::clone(g.entry(name.to_string()).or_default()))
    }

    /// Allocate a fresh named track (a lane in the trace viewer, e.g. one
    /// per simulated VM). Returns 0 when disabled.
    pub fn alloc_track(&self, name: &str) -> u64 {
        let Some(col) = &self.inner else { return 0 };
        let id = NEXT_TRACK.fetch_add(1, Ordering::Relaxed);
        col.tracks.lock().expect("telemetry tracks poisoned").push((id, name.to_string()));
        id
    }

    /// Name the current thread's track (e.g. "cumulus-worker-3").
    pub fn name_current_track(&self, name: &str) {
        let Some(col) = &self.inner else { return };
        let id = current_track();
        let mut g = col.tracks.lock().expect("telemetry tracks poisoned");
        if let Some(e) = g.iter_mut().find(|(t, _)| *t == id) {
            e.1 = name.to_string();
        } else {
            g.push((id, name.to_string()));
        }
    }

    /// Aggregate everything recorded so far into a [`MetricsSnapshot`]
    /// (None when disabled).
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|c| metrics::build_snapshot(c))
    }

    /// Export everything recorded so far as Chrome-trace JSON (open in
    /// `chrome://tracing` or <https://ui.perfetto.dev>). None when disabled.
    pub fn export_chrome_trace(&self) -> Option<String> {
        self.inner.as_ref().map(|c| chrome::export(c))
    }

    /// Counter and histogram growth since `cursor`'s last position,
    /// advancing the cursor. This is the worker side of metrics streaming:
    /// call it periodically and ship the (small) delta; the receiver feeds
    /// each delta to [`Telemetry::absorb`]. An empty delta (and a disabled
    /// handle) returns [`StatsDelta::is_empty`]` == true`.
    pub fn delta_since(&self, cursor: &mut DeltaCursor) -> StatsDelta {
        let mut out = StatsDelta::default();
        let Some(col) = &self.inner else { return out };
        for (name, cur) in col.counter_values() {
            let last = cursor.counters.get(&name).copied().unwrap_or(0);
            if cur > last {
                out.counters.push((name.clone(), cur - last));
            }
            cursor.counters.insert(name, cur);
        }
        for (name, h) in col.hist_handles() {
            let snap = h.snapshot();
            let delta = match cursor.hists.get(&name) {
                Some(prev) => snap.delta_since(prev),
                None => snap.clone(),
            };
            if !delta.is_empty() {
                out.hists.push((name.clone(), delta));
            }
            cursor.hists.insert(name, snap);
        }
        out
    }

    /// Merge a [`StatsDelta`] (usually streamed from a remote worker) into
    /// this collector's counters and histograms. No-op when disabled.
    pub fn absorb(&self, delta: &StatsDelta) {
        if self.inner.is_none() {
            return;
        }
        for (name, v) in &delta.counters {
            self.count(name, *v);
        }
        for (name, snap) in &delta.hists {
            if let Some(h) = self.histogram(name) {
                h.merge_from(snap);
            }
        }
    }

    /// Merge spans measured on a *remote* clock into this collector, placed
    /// on `track` (usually one lane per worker, from [`Telemetry::alloc_track`]).
    /// Each timestamp is shifted by `offset_ns` — the master-epoch time minus
    /// the remote-epoch time at a common instant — so remote spans line up
    /// with local ones in a Chrome trace. No-op when disabled.
    pub fn import_spans(&self, track: u64, offset_ns: i64, spans: &[RemoteSpan]) {
        if self.inner.is_none() {
            return;
        }
        let shift = |t: u64| -> u64 { (t as i64).saturating_add(offset_ns).max(0) as u64 };
        for s in spans {
            self.record_span_at(
                "worker",
                &s.name,
                Some(track),
                shift(s.start_ns),
                shift(s.end_ns),
                s.detail.as_deref(),
            );
        }
    }
}

/// Counter increments and histogram sample deltas accumulated between two
/// [`Telemetry::delta_since`] calls — the payload of a worker `Stats` frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsDelta {
    /// Counter increments since the cursor position, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Histogram sample deltas since the cursor position, name-sorted.
    pub hists: Vec<(String, HistogramSnapshot)>,
}

impl StatsDelta {
    /// True when nothing changed since the cursor position.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }
}

/// Remembers the counter/histogram state last seen by
/// [`Telemetry::delta_since`], so successive calls return only growth.
#[derive(Debug, Default)]
pub struct DeltaCursor {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, HistogramSnapshot>,
}

/// A span measured on a remote worker's own monotonic clock, shipped back in
/// a result frame and merged into the master's collector with
/// [`Telemetry::import_spans`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteSpan {
    /// Span name (e.g. the activity tag the worker executed).
    pub name: String,
    /// Start, in nanoseconds since the worker's epoch.
    pub start_ns: u64,
    /// End, in nanoseconds since the worker's epoch.
    pub end_ns: u64,
    /// Optional human detail (pair key, attempt number, …).
    pub detail: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert_eq!(tel.now_ns(), 0);
        let mut s = tel.span("a", "b");
        s.set_detail(|| panic!("detail closure must not run when disabled"));
        drop(s);
        tel.count("x", 5);
        tel.gauge("g", 1.0);
        assert!(tel.counter("x").is_none());
        assert!(tel.histogram("h").is_none());
        assert!(tel.snapshot().is_none());
        assert!(tel.export_chrome_trace().is_none());
    }

    #[test]
    fn spans_nest_via_thread_stack() {
        let tel = Telemetry::attached();
        let outer = tel.span("t", "outer");
        let outer_id = outer.id();
        let inner = tel.span("t", "inner");
        let inner_id = inner.id();
        drop(inner);
        drop(outer);
        let (records, dropped) = tel.inner.as_ref().unwrap().drain_snapshot();
        assert_eq!(dropped, 0);
        let mut parents = std::collections::HashMap::new();
        for r in &records {
            if let Record::Span { id, parent, .. } = r {
                parents.insert(*id, *parent);
            }
        }
        assert_eq!(parents[&inner_id], outer_id);
        assert_eq!(parents[&outer_id], 0);
    }

    #[test]
    fn sibling_spans_share_parent() {
        let tel = Telemetry::attached();
        let outer = tel.span("t", "outer");
        let oid = outer.id();
        let a = tel.span("t", "a");
        let aid = a.id();
        drop(a);
        let b = tel.span("t", "b");
        let bid = b.id();
        drop(b);
        drop(outer);
        let (records, _) = tel.inner.as_ref().unwrap().drain_snapshot();
        let parent_of = |want: u64| {
            records
                .iter()
                .find_map(|r| match r {
                    Record::Span { id, parent, .. } if *id == want => Some(*parent),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(parent_of(aid), oid);
        assert_eq!(parent_of(bid), oid);
    }

    #[test]
    fn two_collectors_do_not_cross_link() {
        let t1 = Telemetry::attached();
        let t2 = Telemetry::attached();
        let outer = t1.span("t", "outer1");
        let s2 = t2.span("t", "lone2");
        let s2id = s2.id();
        drop(s2);
        drop(outer);
        let (r2, _) = t2.inner.as_ref().unwrap().drain_snapshot();
        let p2 = r2
            .iter()
            .find_map(|r| match r {
                Record::Span { id, parent, .. } if *id == s2id => Some(*parent),
                _ => None,
            })
            .unwrap();
        assert_eq!(p2, 0, "a span must not adopt a parent from a different collector");
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let tel = Telemetry::attached();
        let c = tel.counter("pool.steals").unwrap();
        c.add(2);
        c.incr();
        assert_eq!(c.get(), 3);
        let h = tel.histogram("lat").unwrap();
        for v in [100u64, 200, 400, 800, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100_000);
        assert!(h.mean() > 0.0);
        let p50 = h.quantile(0.5);
        assert!((100.0..=1024.0).contains(&p50), "p50 {p50}");
        assert!(h.quantile(1.0) <= 100_000.0);
        // same name returns the same underlying histogram
        let h2 = tel.histogram("lat").unwrap();
        assert_eq!(h2.count(), 5);
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let q: Vec<f64> = [0.1, 0.5, 0.9, 0.95, 1.0].iter().map(|&p| h.quantile(p)).collect();
        for w in q.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {q:?}");
        }
        assert_eq!(h.quantile(1.0), 1_000_000.0);
    }

    #[test]
    fn ring_buffer_overwrites_oldest() {
        let tel = Telemetry::with_config(CollectorConfig { shards: 1, shard_capacity: 16 });
        for i in 0..40 {
            tel.instant("t", &format!("e{i}"), None);
        }
        let (records, dropped) = tel.inner.as_ref().unwrap().drain_snapshot();
        assert_eq!(records.len(), 16);
        assert_eq!(dropped, 24);
        // the survivors are the newest events
        assert!(records.iter().all(|r| match r {
            Record::Instant { name, .. } =>
                name.trim_start_matches('e').parse::<usize>().unwrap() >= 24,
            _ => false,
        }));
    }

    #[test]
    fn explicit_time_spans_for_simulated_clocks() {
        let tel = Telemetry::attached();
        let vm = tel.alloc_track("vm-0 (m3.xlarge)");
        assert!(vm > 0);
        let id = tel.record_span_at("sim", "boot", Some(vm), 0, 95_000_000_000, None);
        assert!(id > 0);
        let snap = tel.snapshot().unwrap();
        let t = snap.tracks.iter().find(|t| t.track == vm).expect("vm track present");
        assert_eq!(t.name, "vm-0 (m3.xlarge)");
        assert!((t.busy_s - 95.0).abs() < 1e-9);
    }

    #[test]
    fn remote_spans_merge_onto_their_track_with_clock_shift() {
        let tel = Telemetry::attached();
        let lane = tel.alloc_track("worker-1 (pid 4242)");
        let spans = vec![
            RemoteSpan {
                name: "vina".into(),
                start_ns: 5_000,
                end_ns: 1_000_005_000,
                detail: Some("pair=1AEC:042 attempt=0".into()),
            },
            RemoteSpan { name: "rank".into(), start_ns: 10, end_ns: 20, detail: None },
        ];
        // offset larger than the remote timestamps: all spans shift forward
        tel.import_spans(lane, 2_000_000_000, &spans);
        let snap = tel.snapshot().unwrap();
        let t = snap.tracks.iter().find(|t| t.track == lane).expect("worker lane present");
        assert_eq!(t.name, "worker-1 (pid 4242)");
        assert!((t.busy_s - 1.0).abs() < 1e-6, "busy {} != imported span time", t.busy_s);
        let trace = tel.export_chrome_trace().unwrap();
        assert!(trace.contains("pair=1AEC:042 attempt=0"));
        // a negative offset saturates at 0 instead of wrapping
        tel.import_spans(lane, -1_000_000, &[spans[1].clone()]);
        json::validate(&tel.export_chrome_trace().unwrap()).unwrap();
        // disabled handles ignore imports entirely
        Telemetry::disabled().import_spans(lane, 0, &spans);
    }

    #[test]
    fn histogram_snapshot_round_trips_and_merges() {
        let h = Histogram::default();
        for v in [0u64, 1, 7, 1000, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.max(), u64::MAX);
        assert_eq!(HistogramSnapshot::from_words(&snap.to_words()), Some(snap.clone()));
        assert_eq!(HistogramSnapshot::from_words(&[1, 2, 3]), None);

        // merge(a, b) == recording the union stream
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        let mut union = HistogramSnapshot::new();
        for v in [5u64, 80, 80, 4096] {
            a.record(v);
            union.record(v);
        }
        for v in [1u64, 80, 1 << 40] {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a, union);
        assert_eq!(a.quantile(1.0), (1u64 << 40) as f64);

        // merge_from feeds a snapshot back into a live histogram
        let live = Histogram::default();
        live.record(2);
        live.merge_from(&union);
        assert_eq!(live.count(), union.count() + 1);
        assert_eq!(live.max(), union.max());
    }

    #[test]
    fn delta_since_streams_only_growth() {
        let tel = Telemetry::attached();
        let mut cur = DeltaCursor::default();
        tel.count("jobs", 3);
        tel.histogram("lat").unwrap().record(500);

        let d1 = tel.delta_since(&mut cur);
        assert_eq!(d1.counters, vec![("jobs".to_string(), 3)]);
        assert_eq!(d1.hists.len(), 1);
        assert_eq!(d1.hists[0].1.count(), 1);

        // nothing new → empty delta
        assert!(tel.delta_since(&mut cur).is_empty());

        tel.count("jobs", 2);
        tel.histogram("lat").unwrap().record(9000);
        let d2 = tel.delta_since(&mut cur);
        assert_eq!(d2.counters, vec![("jobs".to_string(), 2)]);
        assert_eq!(d2.hists[0].1.count(), 1);
        assert_eq!(d2.hists[0].1.max(), 9000, "delta carries the cumulative max");

        // absorbing both deltas reconstructs the full stream elsewhere
        let master = Telemetry::attached();
        master.absorb(&d1);
        master.absorb(&d2);
        let snap = master.snapshot().unwrap();
        assert_eq!(snap.counter("jobs"), Some(5));
        let lat = snap.histogram("lat").unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.max_s, 9000.0 / 1e9);

        // disabled handles stream nothing and absorb nothing
        let off = Telemetry::disabled();
        assert!(off.delta_since(&mut DeltaCursor::default()).is_empty());
        off.absorb(&d1);
    }

    #[test]
    fn threads_get_distinct_tracks() {
        let tel = Telemetry::attached();
        let tel2 = tel.clone();
        let here = {
            let _s = tel.span("t", "main");
            current_track()
        };
        let there = std::thread::spawn(move || {
            let _s = tel2.span("t", "worker");
            current_track()
        })
        .join()
        .unwrap();
        assert_ne!(here, there);
    }
}
