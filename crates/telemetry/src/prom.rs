//! Prometheus text exposition (version 0.0.4) over a [`MetricsSnapshot`],
//! plus a tiny parser used by tests and `scidock-top` — std-only, like the
//! rest of the crate.
//!
//! Counters render as `scidock_<name>_total`, histograms as summaries
//! (`quantile="0.5"`/`"0.95"`, `_sum`, `_count`, and a `_max_seconds`
//! gauge, all in seconds), and gauges as their most recent sample. Metric
//! names are sanitized to the Prometheus grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`).

use crate::MetricsSnapshot;
use std::fmt::Write as _;

/// Map an internal metric name (dots, dashes, …) onto the Prometheus name
/// grammar: invalid characters become `_`, and a leading digit gets a `_`
/// prefix.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else {
        format!("{v}")
    }
}

/// Render the snapshot in Prometheus text exposition format. Every metric
/// is prefixed `scidock_`.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut s = String::new();
    for (name, v) in &snap.counters {
        let n = format!("scidock_{}_total", sanitize(name));
        let _ = writeln!(s, "# TYPE {n} counter");
        let _ = writeln!(s, "{n} {v}");
    }
    for h in &snap.histograms {
        let n = format!("scidock_{}_seconds", sanitize(&h.name));
        let _ = writeln!(s, "# TYPE {n} summary");
        let _ = writeln!(s, "{n}{{quantile=\"0.5\"}} {}", fmt_value(h.p50_s));
        let _ = writeln!(s, "{n}{{quantile=\"0.95\"}} {}", fmt_value(h.p95_s));
        let _ = writeln!(s, "{n}_sum {}", fmt_value(h.mean_s * h.count as f64));
        let _ = writeln!(s, "{n}_count {}", h.count);
        let _ = writeln!(s, "# TYPE {n}_max gauge");
        let _ = writeln!(s, "{n}_max {}", fmt_value(h.max_s));
    }
    for g in &snap.gauges {
        if let Some((_, last)) = g.samples.last() {
            let n = format!("scidock_{}", sanitize(&g.name));
            let _ = writeln!(s, "# TYPE {n} gauge");
            let _ = writeln!(s, "{n} {}", fmt_value(*last));
        }
    }
    s
}

/// One parsed sample: metric name, label pairs, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label key/value pairs, in exposition order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parse Prometheus text exposition into samples, validating the line
/// grammar. Comment (`#`) and blank lines are skipped. Returns the byte
/// line number (1-based) of the first malformed line.
pub fn parse(text: &str) -> Result<Vec<Sample>, usize> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).ok_or(lineno + 1)?);
    }
    Ok(out)
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn parse_sample(line: &str) -> Option<Sample> {
    let (head, value) = line.rsplit_once(|c: char| c.is_ascii_whitespace())?;
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse().ok()?,
    };
    let head = head.trim();
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((n, rest)) => {
            let body = rest.strip_suffix('}')?;
            let mut labels = Vec::new();
            if !body.is_empty() {
                for pair in body.split(',') {
                    let (k, v) = pair.split_once('=')?;
                    if !valid_name(k) {
                        return None;
                    }
                    let v = v.strip_prefix('"')?.strip_suffix('"')?;
                    labels.push((k.to_string(), v.to_string()));
                }
            }
            (n.to_string(), labels)
        }
    };
    if !valid_name(&name) {
        return None;
    }
    Some(Sample { name, labels, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn sanitize_maps_to_prometheus_grammar() {
        assert_eq!(sanitize("dist.master.wakeups"), "dist_master_wakeups");
        assert_eq!(sanitize("activation.dock-2"), "activation_dock_2");
        assert_eq!(sanitize("0weird"), "_0weird");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn render_parses_back() {
        let tel = Telemetry::attached();
        tel.count("dist.jobs", 7);
        let h = tel.histogram("activation.dock").unwrap();
        h.record(1_000_000);
        h.record(5_000_000);
        tel.gauge_at("fleet.size", 0, 2.0);
        tel.gauge_at("fleet.size", 100, 3.0);

        let text = render(&tel.snapshot().unwrap());
        let samples = parse(&text).expect("rendered exposition must parse");
        let get = |n: &str| samples.iter().find(|s| s.name == n).map(|s| s.value);
        assert_eq!(get("scidock_dist_jobs_total"), Some(7.0));
        assert_eq!(get("scidock_activation_dock_seconds_count"), Some(2.0));
        assert_eq!(get("scidock_fleet_size"), Some(3.0), "gauges expose the last sample");
        let q50 = samples
            .iter()
            .find(|s| {
                s.name == "scidock_activation_dock_seconds"
                    && s.labels == vec![("quantile".to_string(), "0.5".to_string())]
            })
            .expect("quantile sample");
        assert!(q50.value > 0.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("good_metric 1\nbad metric line\n").is_err());
        assert!(parse("no_value\n").is_err());
        assert!(parse("m{unquoted=x} 1\n").is_err());
        assert_eq!(parse("# just a comment\n\n").unwrap().len(), 0);
        let s = parse("m{a=\"b\",c=\"d\"} +Inf").unwrap();
        assert_eq!(s[0].labels.len(), 2);
        assert!(s[0].value.is_infinite());
    }
}
