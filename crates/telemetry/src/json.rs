//! Minimal JSON writing and validation helpers (std-only — the trace
//! exporter and the bench sidecar hand-roll their JSON, and tests validate
//! the output with the tiny recursive-descent checker here).

use std::fmt::Write as _;

/// Escape `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number (`null` for NaN/inf, which JSON cannot
/// represent; integral values render without a fractional part).
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Validate that `s` is one well-formed JSON value. Returns the byte offset
/// of the first error. This is a *checker*, not a parser — it builds nothing.
pub fn validate(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i == b.len() {
        Ok(())
    } else {
        Err(i)
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), usize> {
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        _ => Err(*i),
    }
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if b[*i..].starts_with(lit) {
        *i += lit.len();
        Ok(())
    } else {
        Err(*i)
    }
}

fn number(b: &[u8], i: &mut usize) -> Result<(), usize> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(start);
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(*i);
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(*i);
        }
    }
    Ok(())
}

fn string(b: &[u8], i: &mut usize) -> Result<(), usize> {
    if b.get(*i) != Some(&b'"') {
        return Err(*i);
    }
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        if b.len() < *i + 5 || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(*i);
                        }
                        *i += 5;
                    }
                    _ => return Err(*i),
                }
            }
            0x00..=0x1f => return Err(*i),
            _ => *i += 1,
        }
    }
    Err(*i)
}

fn array(b: &[u8], i: &mut usize) -> Result<(), usize> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => {
                *i += 1;
                skip_ws(b, i);
            }
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(*i),
        }
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), usize> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(*i);
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => {
                *i += 1;
                skip_ws(b, i);
            }
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(*i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn num_renders_cleanly() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(3.5), "3.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(-0.25), "-0.25");
    }

    #[test]
    fn validator_accepts_good_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "\"a\\u00e9b\"",
            r#"{"a":[1,2,{"b":null}],"c":"x"}"#,
            " { \"k\" : [ true , false ] } ",
        ] {
            assert!(validate(ok).is_ok(), "should accept {ok}");
        }
    }

    #[test]
    fn validator_rejects_bad_json() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "01x", "\"unterminated", "{} extra", "{'a':1}"] {
            assert!(validate(bad).is_err(), "should reject {bad}");
        }
    }
}
