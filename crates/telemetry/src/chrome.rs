//! Chrome-trace (Trace Event Format) exporter.
//!
//! The output is a JSON object `{"traceEvents": [...], "displayTimeUnit":
//! "ms"}` that loads directly in `chrome://tracing` or
//! <https://ui.perfetto.dev>. Spans become `"X"` (complete) events on
//! `pid = 1` with `tid` = the span's track, so each worker thread or
//! simulated VM renders as its own lane; named tracks emit `thread_name`
//! metadata events; instants become `"i"` events and gauges `"C"` counter
//! events.

use crate::json::{escape, num};
use crate::{Collector, Record};
use std::fmt::Write as _;

const US: f64 = 1000.0; // ns per microsecond

/// Render everything currently held by `col` as Chrome-trace JSON.
pub(crate) fn export(col: &Collector) -> String {
    let (records, dropped) = col.drain_snapshot();
    let mut out = String::with_capacity(records.len() * 128 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&ev);
    };

    for (track, name) in col.track_names() {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&name)
            ),
        );
    }

    for r in &records {
        match r {
            Record::Span { id, parent, track, cat, name, start_ns, end_ns, detail } => {
                let mut args = format!("\"id\":{id}");
                if *parent != 0 {
                    let _ = write!(args, ",\"parent\":{parent}");
                }
                if let Some(d) = detail {
                    let _ = write!(args, ",\"detail\":\"{}\"", escape(d));
                }
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{track},\"ts\":{},\"dur\":{},\
                         \"name\":\"{}\",\"cat\":\"{}\",\"args\":{{{args}}}}}",
                        num(*start_ns as f64 / US),
                        num(end_ns.saturating_sub(*start_ns) as f64 / US),
                        escape(name),
                        escape(cat),
                    ),
                );
            }
            Record::Instant { track, cat, name, ts_ns, detail } => {
                let args = match detail {
                    Some(d) => format!("{{\"detail\":\"{}\"}}", escape(d)),
                    None => "{}".to_string(),
                };
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{track},\"ts\":{},\
                         \"name\":\"{}\",\"cat\":\"{}\",\"args\":{args}}}",
                        num(*ts_ns as f64 / US),
                        escape(name),
                        escape(cat),
                    ),
                );
            }
            Record::Gauge { name, ts_ns, value } => {
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"C\",\"pid\":1,\"ts\":{},\"name\":\"{}\",\
                         \"args\":{{\"value\":{}}}}}",
                        num(*ts_ns as f64 / US),
                        escape(name),
                        num(*value),
                    ),
                );
            }
        }
    }

    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_records\":{dropped}}}}}"
    );
    out
}

#[cfg(test)]
mod tests {
    use crate::json::validate;
    use crate::Telemetry;

    #[test]
    fn export_is_valid_json_with_expected_events() {
        let tel = Telemetry::attached();
        tel.name_current_track("main \"thread\"");
        {
            let _outer = tel.span("test", "outer");
            let _inner = tel.span_detail("test", "inner", || "k=v".into());
        }
        tel.instant("test", "tick", Some("note"));
        tel.gauge("queue.depth", 4.0);
        let vm = tel.alloc_track("vm-0");
        tel.record_span_at("sim", "boot", Some(vm), 0, 1_000_000, None);

        let trace = tel.export_chrome_trace().unwrap();
        validate(&trace).unwrap_or_else(|off| {
            panic!("invalid JSON at byte {off}: …{}…", &trace[off.saturating_sub(40)..]);
        });
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.contains("thread_name"));
        assert!(trace.contains("main \\\"thread\\\""));
        assert!(trace.contains("\"parent\""), "inner span should carry a parent arg");
    }

    #[test]
    fn empty_collector_exports_cleanly() {
        let tel = Telemetry::attached();
        let trace = tel.export_chrome_trace().unwrap();
        assert!(validate(&trace).is_ok());
    }
}
