//! Metric-name registry: the closed set of counter/histogram/gauge names
//! any crate in the workspace may emit.
//!
//! The authoritative human-readable table lives in DESIGN.md §12; this
//! module is its machine-checkable mirror. A test that snapshots a fully
//! exercised run asserts emitted names ⊆ registry, so a silent rename (which
//! would break dashboards scraping `/metrics`) fails CI instead of shipping.
//! Add the new name HERE and to the DESIGN.md table when introducing a
//! metric.

use crate::MetricsSnapshot;

/// Every registered counter name, sorted.
pub const COUNTERS: &[&str] = &[
    "campaign.cancelled",
    "campaign.finished",
    "campaign.rejected",
    "campaign.started",
    "campaign.submitted",
    "dist.master.wakeups",
    "dist.stragglers",
    "dock.evaluations",
    "fleet.spawn_timeouts",
    "gridcache.bytes",
    "gridcache.hit",
    "gridcache.miss",
    "gridcache.persist.bytes",
    "gridcache.persist.hit",
    "gridcache.persist.miss",
    "gridcache.persist.write",
    "pool.completed",
    "pool.parks",
    "pool.steals",
    "pool.submitted",
    "pool.timeout_wakeups",
    "pool.unparks",
    "proto.oversized_done",
    "provstore.checkpoints",
    "provstore.wal_appends",
    "sim.dispatched",
    "sim.events",
    "sim.vm_acquired",
    "sim.vm_released",
    "worker.failed",
    "worker.finished",
];

/// Every registered fixed histogram name, sorted. Histograms may also use a
/// registered dynamic prefix (see [`HISTOGRAM_PREFIXES`]).
pub const HISTOGRAMS: &[&str] = &[
    "campaign.first_result",
    "dist.heartbeat.job_elapsed",
    "pool.queue_wait",
    "provstore.commit_batch",
    "provstore.group_commit",
    "provstore.wal_append",
];

/// Registered dynamic histogram families: `<prefix><activity tag>`.
pub const HISTOGRAM_PREFIXES: &[&str] = &["activation."];

/// Every registered gauge name, sorted.
pub const GAUGES: &[&str] =
    &["campaign.active", "campaign.queued", "fleet.size", "pool.queue_depth", "sim.ready_queue"];

/// Names in `snap` that are NOT in the registry, each prefixed with its
/// metric kind (e.g. `"counter:dist.jobs"`). Empty means the snapshot is
/// clean.
pub fn unregistered(snap: &MetricsSnapshot) -> Vec<String> {
    let mut bad = Vec::new();
    for (name, _) in &snap.counters {
        if !COUNTERS.contains(&name.as_str()) {
            bad.push(format!("counter:{name}"));
        }
    }
    for h in &snap.histograms {
        let fixed = HISTOGRAMS.contains(&h.name.as_str());
        let dynamic =
            HISTOGRAM_PREFIXES.iter().any(|p| h.name.starts_with(p) && h.name.len() > p.len());
        if !fixed && !dynamic {
            bad.push(format!("histogram:{}", h.name));
        }
    }
    for g in &snap.gauges {
        if !GAUGES.contains(&g.name.as_str()) {
            bad.push(format!("gauge:{}", g.name));
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn registry_tables_are_sorted_and_unique() {
        for table in [COUNTERS, HISTOGRAMS, GAUGES] {
            for w in table.windows(2) {
                assert!(w[0] < w[1], "registry out of order near {:?}", w);
            }
        }
    }

    #[test]
    fn unregistered_flags_strays_and_accepts_dynamic_activation_histograms() {
        let tel = Telemetry::attached();
        tel.count("worker.finished", 1);
        tel.count("dist.jobs", 1); // unregistered test-only name
        if let Some(h) = tel.histogram("activation.score") {
            h.record(1_000);
        }
        if let Some(h) = tel.histogram("activation.") {
            h.record(1_000); // bare prefix is not a valid family member
        }
        tel.gauge("fleet.size", 2.0);
        let bad = unregistered(&tel.snapshot().expect("attached"));
        assert_eq!(bad, vec!["counter:dist.jobs".to_string(), "histogram:activation.".to_string()]);
    }
}
