//! # scidock — the SciDock molecular-docking virtual-screening workflow
//!
//! The paper's primary contribution, rebuilt on the substrates of this
//! workspace:
//!
//! * [`dataset`] — the Table 2 inputs: 238 cysteine-protease receptors ×
//!   42 ligands (~10,000 pairs), generated deterministically;
//! * [`activities`] — the eight SciDock activities (Fig. 1) as executable
//!   [`cumulus`] workflow activities, including the adaptive AD4/Vina size
//!   split and the Hg blacklist rule;
//! * [`cost`] — the activity cost model calibrated to the paper's Fig. 10
//!   provenance measurements, for the simulated cloud-scale studies;
//! * [`analysis`] — Table 3 (FEB(−) counts, average FEB/RMSD) and top-
//!   interaction ranking;
//! * [`redock`] — §V.D's suggested refinements: redocking from a known pose
//!   and AD4↔Vina engine-agreement checks;
//! * [`experiments`] — drivers that regenerate every table and figure of
//!   the evaluation section.
//!
//! ```no_run
//! use scidock::activities::{EngineMode, SciDockConfig};
//! use scidock::experiments::run_screening;
//!
//! // dock two receptors against one ligand with Vina, on 4 threads
//! let out = run_screening(&["1HUC", "2HHN"], &["0D6"], EngineMode::VinaOnly,
//!                         4, &SciDockConfig::default());
//! for r in &out.results {
//!     println!("{}-{}: FEB {:.1} kcal/mol", r.receptor, r.ligand, r.feb);
//! }
//! // the provenance DB answers the paper's queries
//! let q = out.prov.query_rows("SELECT count(*) FROM hactivation", &[]).unwrap();
//! println!("{q}");
//! ```

#![warn(missing_docs)]

pub mod activities;
pub mod analysis;
pub mod cost;
pub mod dataset;
pub mod experiments;
pub mod redock;

pub use activities::{build_scidock, scidock_xml_spec, stage_inputs, EngineMode, SciDockConfig};
pub use analysis::{table3, top_interactions, total_feb_negative, PairResult, Table3Row};
pub use cost::{build_sim_tasks, CostModel};
pub use dataset::{Dataset, DatasetParams, LIGAND_CODES, RECEPTOR_IDS};
pub use experiments::{
    headline, run_screening, scaling_sweep, simulate_at, Headline, ScalePoint, ScreeningOutcome,
    SweepConfig, PAPER_CORE_COUNTS,
};
