//! Result analysis: Table 3 (FEB(−) counts, average FEB, average RMSD per
//! ligand) and the top-interaction ranking of §V.D.

use cumulus::Relation;
use provenance::ProvenanceStore;

#[cfg(test)]
use provenance::Value;

/// One docked pair's extracted values.
#[derive(Debug, Clone, PartialEq)]
pub struct PairResult {
    /// Receptor id.
    pub receptor: String,
    /// Ligand code.
    pub ligand: String,
    /// Program name (`autodock4` / `vina`).
    pub engine: String,
    /// Estimated free energy of binding, kcal/mol (negative = favorable).
    pub feb: f64,
    /// Reported RMSD in Å.
    pub rmsd: f64,
}

/// Collect pair results from a docking activity's output relation
/// (`[receptor, ligand, engine, feb, rmsd, log_file]`).
pub fn results_from_relation(rel: &Relation) -> Vec<PairResult> {
    rel.tuples
        .iter()
        .filter_map(|t| {
            Some(PairResult {
                receptor: t[0].as_str()?.to_string(),
                ligand: t[1].as_str()?.to_string(),
                engine: t[2].as_str()?.to_string(),
                feb: t[3].as_f64()?,
                rmsd: t[4].as_f64()?,
            })
        })
        .collect()
}

/// Collect pair results from the provenance store (the extractor-recorded
/// `feb`/`rmsd`/`pair`/`engine` parameters), via the SQL engine.
pub fn results_from_provenance(prov: &ProvenanceStore) -> Vec<PairResult> {
    let sql = "SELECT p_pair.pvalue_text, p_engine.pvalue_text, \
                      p_feb.pvalue_num, p_rmsd.pvalue_num \
               FROM hparameter p_pair, hparameter p_engine, hparameter p_feb, hparameter p_rmsd \
               WHERE p_pair.pname = 'pair' \
                 AND p_engine.pname = 'engine' \
                 AND p_feb.pname = 'feb' \
                 AND p_rmsd.pname = 'rmsd' \
                 AND p_pair.taskid = p_engine.taskid \
                 AND p_pair.taskid = p_feb.taskid \
                 AND p_pair.taskid = p_rmsd.taskid";
    let rs = prov.query_rows(sql, &[]).unwrap_or_else(|e| panic!("provenance query failed: {e}"));
    rs.rows
        .iter()
        .filter_map(|r| {
            let pair = r[0].as_str()?;
            let (receptor, ligand) = pair.split_once('-')?;
            Some(PairResult {
                receptor: receptor.to_string(),
                ligand: ligand.to_string(),
                engine: r[1].as_str()?.to_string(),
                feb: r[2].as_f64()?,
                rmsd: r[3].as_f64()?,
            })
        })
        .collect()
}

/// One row of Table 3 for one engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Ligand code.
    pub ligand: String,
    /// Number of pairs with negative FEB (favorable interactions).
    pub feb_neg_count: usize,
    /// Average FEB over the FEB(−) pairs, kcal/mol.
    pub avg_feb_neg: f64,
    /// Average RMSD over all docked pairs, Å.
    pub avg_rmsd: f64,
}

/// Compute Table 3 rows for one engine, restricted to `ligands` (the paper
/// uses 042/074/0D6/0E6).
pub fn table3(results: &[PairResult], engine: &str, ligands: &[&str]) -> Vec<Table3Row> {
    ligands
        .iter()
        .map(|lig| {
            let rows: Vec<&PairResult> =
                results.iter().filter(|r| r.engine == engine && r.ligand == *lig).collect();
            let neg: Vec<&&PairResult> = rows.iter().filter(|r| r.feb < 0.0).collect();
            let avg_feb_neg = if neg.is_empty() {
                0.0
            } else {
                neg.iter().map(|r| r.feb).sum::<f64>() / neg.len() as f64
            };
            let avg_rmsd = if rows.is_empty() {
                0.0
            } else {
                rows.iter().map(|r| r.rmsd).sum::<f64>() / rows.len() as f64
            };
            Table3Row { ligand: lig.to_string(), feb_neg_count: neg.len(), avg_feb_neg, avg_rmsd }
        })
        .collect()
}

/// Total FEB(−) count for one engine (the paper's "287 with AD4, 355 with
/// Vina" headline for the first 1,000 pairs).
pub fn total_feb_negative(results: &[PairResult], engine: &str) -> usize {
    results.iter().filter(|r| r.engine == engine && r.feb < 0.0).count()
}

/// The best (most negative FEB) interactions across engines, `n` of them —
/// the paper's "best three interactions are 2HHN-0E6, 1S4V-0D6 and
/// 1HUC-0D6" analysis.
pub fn top_interactions(results: &[PairResult], n: usize) -> Vec<PairResult> {
    let mut v: Vec<PairResult> = results.to_vec();
    v.sort_by(|a, b| a.feb.total_cmp(&b.feb));
    v.truncate(n);
    v
}

/// Render Table 3 in the paper's layout (both engines side by side).
pub fn render_table3(ad4: &[Table3Row], vina: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Ligand | FEB(-) AD4 | FEB(-) Vina | avgFEB AD4 | avgFEB Vina | avgRMSD AD4 | avgRMSD Vina\n",
    );
    out.push_str(
        "-------+------------+-------------+------------+-------------+-------------+-------------\n",
    );
    for (a, v) in ad4.iter().zip(vina) {
        assert_eq!(a.ligand, v.ligand, "rows must align by ligand");
        out.push_str(&format!(
            "{:>6} | {:>10} | {:>11} | {:>10.1} | {:>11.1} | {:>11.1} | {:>12.1}\n",
            a.ligand,
            a.feb_neg_count,
            v.feb_neg_count,
            a.avg_feb_neg,
            v.avg_feb_neg,
            a.avg_rmsd,
            v.avg_rmsd
        ));
    }
    out
}

/// Histogram of values into `bins` equal-width buckets over [min, max].
/// Returns `(bucket_low, bucket_high, count)` triples (Fig. 5's shape).
pub fn histogram(values: &[f64], bins: usize) -> Vec<(f64, f64, usize)> {
    assert!(bins > 0, "need at least one bin");
    if values.is_empty() {
        return Vec::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let width = ((hi - lo) / bins as f64).max(1e-12);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let mut b = ((v - lo) / width) as usize;
        if b >= bins {
            b = bins - 1;
        }
        counts[b] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (lo + i as f64 * width, lo + (i + 1) as f64 * width, c))
        .collect()
}

/// Activation durations of a workflow, via the paper's Fig. 5 query.
pub fn activation_durations(prov: &ProvenanceStore, wkfid: i64) -> Vec<f64> {
    let sql = format!(
        "SELECT extract('epoch' from (t.endtime-t.starttime)) \
         FROM hworkflow w, hactivity a, hactivation t \
         WHERE w.wkfid = a.wkfid AND a.actid = t.actid AND w.wkfid = {wkfid} \
         ORDER BY t.endtime"
    );
    prov.query_rows(&sql, &[])
        .map(|rs| rs.rows.iter().filter_map(|r| r[0].as_f64()).collect())
        .unwrap_or_default()
}

/// Per-activity duration stats (tag, min, max, sum, avg) — the paper's
/// Query 1 (Fig. 10) — for Fig. 6's per-activity distribution.
pub fn per_activity_stats(prov: &ProvenanceStore, wkfid: i64) -> Vec<(String, f64, f64, f64, f64)> {
    let sql = format!(
        "SELECT a.tag, \
           min(extract('epoch' from (t.endtime-t.starttime))), \
           max(extract('epoch' from (t.endtime-t.starttime))), \
           sum(extract('epoch' from (t.endtime-t.starttime))), \
           avg(extract('epoch' from (t.endtime-t.starttime))) \
         FROM hworkflow w, hactivity a, hactivation t \
         WHERE w.wkfid = a.wkfid AND a.actid = t.actid AND w.wkfid = {wkfid} \
         GROUP BY a.tag ORDER BY a.tag"
    );
    prov.query_rows(&sql, &[])
        .map(|rs| {
            rs.rows
                .iter()
                .filter_map(|r| {
                    Some((
                        r[0].as_str()?.to_string(),
                        r[1].as_f64()?,
                        r[2].as_f64()?,
                        r[3].as_f64()?,
                        r[4].as_f64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(receptor: &str, ligand: &str, engine: &str, feb: f64, rmsd: f64) -> PairResult {
        PairResult {
            receptor: receptor.into(),
            ligand: ligand.into(),
            engine: engine.into(),
            feb,
            rmsd,
        }
    }

    fn sample() -> Vec<PairResult> {
        vec![
            mk("2HHN", "0E6", "autodock4", -7.2, 53.0),
            mk("1S4V", "0D6", "autodock4", -8.4, 55.0),
            mk("1HUC", "0D6", "autodock4", 1.5, 50.0),
            mk("2HHN", "0E6", "vina", -5.2, 9.5),
            mk("1S4V", "0D6", "vina", -5.7, 9.7),
            mk("1HUC", "0D6", "vina", -4.0, 10.1),
        ]
    }

    #[test]
    fn table3_counts_and_averages() {
        let rows = table3(&sample(), "autodock4", &["0D6", "0E6"]);
        assert_eq!(rows.len(), 2);
        let d6 = &rows[0];
        assert_eq!(d6.ligand, "0D6");
        assert_eq!(d6.feb_neg_count, 1, "only 1S4V-0D6 is negative for AD4");
        assert!((d6.avg_feb_neg + 8.4).abs() < 1e-12);
        assert!((d6.avg_rmsd - 52.5).abs() < 1e-12, "avg of 55 and 50");
        let e6 = &rows[1];
        assert_eq!(e6.feb_neg_count, 1);
    }

    #[test]
    fn table3_empty_ligand_is_zeroed() {
        let rows = table3(&sample(), "autodock4", &["042"]);
        assert_eq!(rows[0].feb_neg_count, 0);
        assert_eq!(rows[0].avg_feb_neg, 0.0);
        assert_eq!(rows[0].avg_rmsd, 0.0);
    }

    #[test]
    fn feb_negative_totals() {
        let r = sample();
        assert_eq!(total_feb_negative(&r, "autodock4"), 2);
        assert_eq!(total_feb_negative(&r, "vina"), 3);
    }

    #[test]
    fn top_interactions_sorted_most_negative_first() {
        let top = top_interactions(&sample(), 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].receptor, "1S4V");
        assert!((top[0].feb - (-8.4)).abs() < 1e-12);
        assert!(top.windows(2).all(|w| w[0].feb <= w[1].feb));
    }

    #[test]
    fn render_table3_layout() {
        let ad4 = table3(&sample(), "autodock4", &["0D6", "0E6"]);
        let vina = table3(&sample(), "vina", &["0D6", "0E6"]);
        let s = render_table3(&ad4, &vina);
        assert!(s.contains("0D6"));
        assert!(s.contains("0E6"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "align by ligand")]
    fn render_table3_misaligned_panics() {
        let ad4 = table3(&sample(), "autodock4", &["0D6"]);
        let vina = table3(&sample(), "vina", &["0E6"]);
        render_table3(&ad4, &vina);
    }

    #[test]
    fn histogram_bins() {
        let vals = vec![1.0, 2.0, 3.0, 4.0, 5.0, 5.0, 5.0];
        let h = histogram(&vals, 4);
        assert_eq!(h.len(), 4);
        let total: usize = h.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, 7);
        // last bin [4,5] holds the 4.0 plus the three 5.0s
        assert_eq!(h[3].2, 4);
        assert!(histogram(&[], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        histogram(&[1.0], 0);
    }

    #[test]
    fn results_from_relation_roundtrip() {
        let mut rel = Relation::new(&["receptor", "ligand", "engine", "feb", "rmsd", "log_file"]);
        rel.push(vec![
            "2HHN".into(),
            "0E6".into(),
            "vina".into(),
            Value::Float(-5.5),
            Value::Float(9.0),
            "/x.log".into(),
        ]);
        let rs = results_from_relation(&rel);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].receptor, "2HHN");
        assert_eq!(rs[0].feb, -5.5);
    }

    #[test]
    fn results_from_provenance_four_way_join() {
        let prov = ProvenanceStore::new();
        let w = prov.begin_workflow("t", "", "");
        let a = prov.register_activity(w, "vina", "Map");
        let task = prov.record_activation(&provenance::ActivationRecord {
            activity: a,
            workflow: w,
            status: provenance::ActivationStatus::Finished,
            start_time: 0.0,
            end_time: 1.0,
            machine: None,
            retries: 0,
            pair_key: "2HHN:0E6".into(),
        });
        prov.record_parameter(task, w, "feb", Some(-6.1), None);
        prov.record_parameter(task, w, "rmsd", Some(8.8), None);
        prov.record_parameter(task, w, "pair", None, Some("2HHN-0E6"));
        prov.record_parameter(task, w, "engine", None, Some("vina"));
        let rs = results_from_provenance(&prov);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].receptor, "2HHN");
        assert_eq!(rs[0].ligand, "0E6");
        assert_eq!(rs[0].engine, "vina");
        assert_eq!(rs[0].feb, -6.1);
    }
}
