//! The experiment dataset of Table 2: 238 cysteine-protease receptors of
//! clan Peptidase_CA (CL0125) and 42 CP-specific ligands — ~10,000
//! receptor–ligand pairs.
//!
//! Structures are generated deterministically per identifier (see
//! [`molkit::synth`] and DESIGN.md §1 for the substitution rationale). The
//! receptor/ligand *identifiers* are the paper's own (five ligand codes are
//! unreadable in the source scan and are filled with plausible CP-ligand
//! codes, documented in DESIGN.md).

use molkit::synth::{
    generate_ligand, generate_receptor, ligand_hangs, name_seed, LigandParams, ReceptorParams,
};
use molkit::{Element, Molecule, Vec3};

/// The 238 receptor PDB identifiers of Table 2, in the paper's order.
pub const RECEPTOR_IDS: [&str; 238] = [
    "1AEC", "1AIM", "1ATK", "1AU0", "1AU2", "1AU3", "1AU4", "1AYU", "1AYV", "1AYW", "1BGO", "1BP4",
    "1BQI", "1BY8", "1CJL", "1CPJ", "1CQD", "1CS8", "1CSB", "1CTE", "1CVZ", "1DEU", "1EF7", "1EWL",
    "1EWM", "1EWO", "1EWP", "1F29", "1F2A", "1F2B", "1F2C", "1FH0", "1GEC", "1GLO", "1GMY", "1HUC",
    "1ICF", "1ITO", "1IWD", "1JQP", "1K3B", "1KHP", "1KHQ", "1M6D", "1ME3", "1ME4", "1MEG", "1MEM",
    "1MHW", "1MIR", "1MS6", "1NB3", "1NB5", "1NL6", "1NLJ", "1NPZ", "1NQC", "1O0E", "1PAD", "1PBH",
    "1PCI", "1PE6", "1PIP", "1POP", "1PPD", "1PPN", "1PPO", "1PPP", "1Q6K", "1QDQ", "1S4V", "1SNK",
    "1SP4", "1STF", "1THE", "1TU6", "1U9Q", "1U9V", "1U9W", "1U9X", "1VSN", "1XKG", "1YAL", "1YK7",
    "1YK8", "1YT7", "1YVB", "2ACT", "2AIM", "2AS8", "2ATO", "2AUX", "2AUZ", "2B1M", "2B1N", "2BDL",
    "2BDZ", "2C0Y", "2CIO", "2DC6", "2DC7", "2DC8", "2DC9", "2DCA", "2DCB", "2DCC", "2DCD", "2DJF",
    "2DJG", "2F1G", "2F7D", "2F05", "2FQ9", "2FRA", "2FRQ", "2FT2", "2FTD", "2FUD", "2FYE", "2G6D",
    "2G7Y", "2GHU", "2H7J", "2HH5", "2HHN", "2HXZ", "2IPP", "2NQD", "2O6X", "2OP3", "2OUL", "2OZ2",
    "2P7U", "2P86", "2PAD", "2PBH", "2PNS", "2PRE", "2R6N", "2R9M", "2R9N", "2R9O", "2VHS", "2WBF",
    "2XU1", "2XU3", "2XU4", "2XU5", "2YJ2", "2YJ8", "2YJ9", "2YJB", "2YJC", "3AI8", "3BC3", "3BCN",
    "3BPF", "3BPM", "3BWK", "3C9E", "3CBJ", "3CBK", "3CH2", "3CH3", "3D6S", "3E1Z", "3F5V", "3F75",
    "3H6S", "3H7D", "3H89", "3H8B", "3H8C", "3HD3", "3HHA", "3HHI", "3HWN", "3I06", "3IEJ", "3IMA",
    "3IOQ", "3IUT", "3IV2", "3K24", "3K9M", "3KFQ", "3KKU", "3KSE", "3KW9", "3KWB", "3KWN", "3KWZ",
    "3KX1", "3LFY", "3LXS", "3MOR", "3MPE", "3MPF", "3N3G", "3N4C", "3O0U", "3O1G", "3OF8", "3OF9",
    "3OIS", "3OVX", "3OVZ", "3P5U", "3P5V", "3P5W", "3P5X", "3PBH", "3PDF", "3PNR", "3QJ3", "3QSD",
    "3QT4", "3RVV", "3RVW", "3RVX", "3S3Q", "3S3R", "3TNX", "3U8E", "3USV", "4AXL", "4AXM", "4DMX",
    "4DMY", "4HWY", "4K7C", "4KLB", "4PAD", "5PAD", "6PAD", "7PCK", "8PCH", "9PAP",
];

/// The 42 ligand codes of Table 2. The first four (`042`, `074`, `0D6`,
/// `0E6`) are the ones Table 3 evaluates in detail.
pub const LIGAND_CODES: [&str; 42] = [
    "042", "074", "0D6", "0E6", "0I5", "0IW", "0LB", "0LC", "0PC", "0QE", "186", "1EV", "1ZE",
    "23Z", "25B", "2CA", "2HP", "3FC", "424", "4MC", "4PR", "599", "59A", "73V", "74M", "75V",
    "76V", "77B", "78A", "935", "93N", "ACE", "ACT", "ACY", "AEM", "ALD", "APD",
    // the last five codes are illegible in the source scan; filled with
    // well-known CP-ligand codes (documented in DESIGN.md)
    "E64", "GOL", "ACL", "BAA", "CSW",
];

/// Parameters controlling dataset generation.
#[derive(Debug, Clone)]
pub struct DatasetParams {
    /// Receptor generation knobs.
    pub receptor: ReceptorParams,
    /// Ligand generation knobs.
    pub ligand: LigandParams,
    /// Heavy-atom threshold of the activity-6 docking filter: receptors at
    /// or below go to AD4 (Scenario I, "small"), above to Vina (Scenario II,
    /// "large").
    pub size_threshold_atoms: usize,
    /// Magnitude of the crystal-frame offset applied to receptors (real PDB
    /// entries are not centered at the origin; this is what makes AD4's
    /// input-frame RMSD values large, as in Table 3).
    pub frame_offset: f64,
}

impl Default for DatasetParams {
    fn default() -> Self {
        DatasetParams {
            receptor: ReceptorParams::default(),
            ligand: LigandParams::default(),
            size_threshold_atoms: 650,
            frame_offset: 52.0,
        }
    }
}

/// A receptor entry: id + generated structure (raw, pre-preparation).
#[derive(Debug, Clone)]
pub struct ReceptorEntry {
    /// PDB-style identifier.
    pub id: String,
    /// The raw structure (as if parsed from the PDB file).
    pub structure: Molecule,
    /// Heavy-atom count (the docking filter's size measure).
    pub heavy_atoms: usize,
    /// Does the structure contain mercury (the poison-input rule)?
    pub has_hg: bool,
}

/// A ligand entry: code + generated structure (raw SDF-level).
#[derive(Debug, Clone)]
pub struct LigandEntry {
    /// Ligand code.
    pub code: String,
    /// The raw structure.
    pub structure: Molecule,
    /// Is this one of the ligands that make docking programs loop?
    pub hangs: bool,
}

/// Generate one receptor with its crystal-frame offset applied.
pub fn make_receptor(id: &str, params: &DatasetParams) -> ReceptorEntry {
    let mut structure = generate_receptor(id, &params.receptor);
    // displace into an arbitrary crystal frame, deterministic per id
    let s = name_seed(id);
    let dir = Vec3::new(
        ((s & 0xFF) as f64 / 255.0) * 2.0 - 1.0,
        (((s >> 8) & 0xFF) as f64 / 255.0) * 2.0 - 1.0,
        (((s >> 16) & 0xFF) as f64 / 255.0) * 2.0 - 1.0,
    );
    let offset = dir.normalized().unwrap_or(Vec3::new(1.0, 0.0, 0.0)) * params.frame_offset;
    structure.translate(offset);
    let heavy_atoms = structure.heavy_atom_count();
    let has_hg = structure.contains_element(Element::Hg);
    ReceptorEntry { id: id.to_string(), structure, heavy_atoms, has_hg }
}

/// Generate one ligand.
pub fn make_ligand(code: &str, params: &DatasetParams) -> LigandEntry {
    let structure = generate_ligand(code, &params.ligand);
    LigandEntry { code: code.to_string(), structure, hangs: ligand_hangs(code, &params.ligand) }
}

/// The full dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The receptor entries.
    pub receptors: Vec<ReceptorEntry>,
    /// The ligand entries.
    pub ligands: Vec<LigandEntry>,
    /// The parameters they were generated with.
    pub params: DatasetParams,
}

impl Dataset {
    /// Generate the full Table 2 dataset (238 receptors × 42 ligands).
    pub fn full(params: DatasetParams) -> Dataset {
        Self::subset(&RECEPTOR_IDS, &LIGAND_CODES, params)
    }

    /// Generate a subset (used by tests and the "first 1,000 pairs"
    /// analysis of Table 3: 238 receptors × 4 ligands).
    pub fn subset(receptor_ids: &[&str], ligand_codes: &[&str], params: DatasetParams) -> Dataset {
        let receptors = receptor_ids.iter().map(|id| make_receptor(id, &params)).collect();
        let ligands = ligand_codes.iter().map(|c| make_ligand(c, &params)).collect();
        Dataset { receptors, ligands, params }
    }

    /// Number of receptor–ligand pairs.
    pub fn pair_count(&self) -> usize {
        self.receptors.len() * self.ligands.len()
    }

    /// Is this receptor "small" (routed to AD4) per the activity-6 filter?
    pub fn is_small(&self, r: &ReceptorEntry) -> bool {
        r.heavy_atoms <= self.params.size_threshold_atoms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts() {
        assert_eq!(RECEPTOR_IDS.len(), 238);
        assert_eq!(LIGAND_CODES.len(), 42);
        // ~10,000 pairs, as the paper rounds it
        assert_eq!(238 * 42, 9996);
    }

    #[test]
    fn no_duplicate_identifiers() {
        let mut r: Vec<&str> = RECEPTOR_IDS.to_vec();
        r.sort_unstable();
        r.dedup();
        assert_eq!(r.len(), 238, "duplicate receptor ids");
        let mut l: Vec<&str> = LIGAND_CODES.to_vec();
        l.sort_unstable();
        l.dedup();
        assert_eq!(l.len(), 42, "duplicate ligand codes");
    }

    #[test]
    fn table3_ligands_are_the_first_four() {
        assert_eq!(&LIGAND_CODES[..4], &["042", "074", "0D6", "0E6"]);
        // 238 × 4 = the paper's "first 1,000 receptor-ligand pairs"
        assert_eq!(238 * 4, 952);
    }

    #[test]
    fn receptor_generation_deterministic() {
        let p = DatasetParams::default();
        let a = make_receptor("1HUC", &p);
        let b = make_receptor("1HUC", &p);
        assert_eq!(a.structure, b.structure);
        assert_eq!(a.heavy_atoms, b.heavy_atoms);
    }

    #[test]
    fn receptors_displaced_from_origin() {
        let p = DatasetParams::default();
        let r = make_receptor("2HHN", &p);
        let c = r.structure.centroid();
        assert!(
            c.norm() > p.frame_offset * 0.5,
            "crystal frame offset should move the centroid, got {c}"
        );
    }

    #[test]
    fn subset_sizes() {
        let d = Dataset::subset(&["1AEC", "2ACT"], &["042"], DatasetParams::default());
        assert_eq!(d.receptors.len(), 2);
        assert_eq!(d.ligands.len(), 1);
        assert_eq!(d.pair_count(), 2);
    }

    #[test]
    fn size_split_produces_both_classes() {
        // over the full receptor list both small and large must occur,
        // otherwise the adaptive AD4/Vina split is vacuous
        let p = DatasetParams::default();
        let mut small = 0;
        let mut large = 0;
        let d = Dataset::subset(&RECEPTOR_IDS[..40], &["042"], p);
        for r in &d.receptors {
            if d.is_small(r) {
                small += 1;
            } else {
                large += 1;
            }
        }
        assert!(small > 0, "no small receptors in first 40");
        assert!(large > 0, "no large receptors in first 40");
    }

    #[test]
    fn some_receptors_carry_hg() {
        let p = DatasetParams::default();
        let with_hg = RECEPTOR_IDS.iter().filter(|id| make_receptor(id, &p).has_hg).count();
        // ~4% of 238 ≈ 9-10; allow a broad band
        assert!((2..=30).contains(&with_hg), "Hg receptors: {with_hg}");
    }

    #[test]
    fn some_ligands_hang() {
        let p = DatasetParams::default();
        let hangs = LIGAND_CODES.iter().filter(|c| make_ligand(c, &p).hangs).count();
        assert!(hangs <= 6, "hang set should be small: {hangs}");
    }

    #[test]
    fn ligands_connected_and_nonempty() {
        let p = DatasetParams::default();
        for code in &LIGAND_CODES[..8] {
            let l = make_ligand(code, &p);
            assert!(l.structure.atom_count() > 5, "{code}");
            assert!(l.structure.is_connected(), "{code} must be a single molecule");
        }
    }
}
