//! Experiment drivers: every table and figure of the paper's evaluation
//! section is regenerated through these functions (the `figures` binary in
//! the bench crate prints them).

use std::sync::Arc;

use cloudsim::{fleet_for_cores, FailureModel, NoiseModel, SharedFsModel};
use cumulus::localbackend::{DispatchMode, LocalConfig};
use cumulus::simbackend::{simulate_tasks, SimConfig, SimReport};
use cumulus::workflow::FileStore;
use cumulus::{
    Backend, ElasticityConfig, LocalBackend, MasterCostModel, Policy, RunOutcome, Workflow,
};
use provenance::ProvenanceStore;
use telemetry::Telemetry;

use crate::activities::{build_scidock, stage_inputs, EngineMode, SciDockConfig};
use crate::analysis::{results_from_relation, PairResult};
use crate::cost::{build_sim_tasks, CostModel, SIM_ACTIVITY_TAGS};
use crate::dataset::{Dataset, DatasetParams, LIGAND_CODES, RECEPTOR_IDS};

/// Outcome of a real (local-backend) screening run.
pub struct ScreeningOutcome {
    /// The backend-independent outcome of the run.
    pub report: RunOutcome,
    /// Provenance database of the run (query it!).
    pub prov: Arc<ProvenanceStore>,
    /// The shared file store with every produced artifact.
    pub files: Arc<FileStore>,
    /// Extracted docking results.
    pub results: Vec<PairResult>,
}

/// Run a real screening of `receptor_ids × ligand_codes` with one engine.
///
/// This is the Table 3 workload when called with 238 receptors × the four
/// detail ligands; tests call it with much smaller slices.
pub fn run_screening(
    receptor_ids: &[&str],
    ligand_codes: &[&str],
    mode: EngineMode,
    threads: usize,
    cfg: &SciDockConfig,
) -> ScreeningOutcome {
    run_screening_dispatched(
        receptor_ids,
        ligand_codes,
        mode,
        threads,
        cfg,
        DispatchMode::default(),
    )
}

/// [`run_screening`] with an explicit activation dispatch strategy
/// (pipelined dataflow vs per-activity barriers) — the knob the straggler
/// benchmarks compare.
pub fn run_screening_dispatched(
    receptor_ids: &[&str],
    ligand_codes: &[&str],
    mode: EngineMode,
    threads: usize,
    cfg: &SciDockConfig,
    dispatch: DispatchMode,
) -> ScreeningOutcome {
    let ds = Dataset::subset(receptor_ids, ligand_codes, DatasetParams::default());
    let files = Arc::new(FileStore::new());
    let prov = Arc::new(ProvenanceStore::new());
    let input = stage_inputs(&ds, &files, &cfg.expdir);
    let wf = build_scidock(mode, cfg, Arc::clone(&files));
    let backend = LocalBackend::new(
        LocalConfig::new()
            .with_threads(threads)
            .with_failures(FailureModel::none())
            .with_max_retries(3)
            .with_mode(dispatch),
    );
    let report = backend
        .run(&Workflow::new(wf, input).with_files(Arc::clone(&files)), &prov)
        .expect("workflow validated");
    let mut results = Vec::new();
    // docking activities are the trailing ones; collect from all that carry
    // the dock output schema
    for rel in &report.outputs {
        if rel.columns.len() == 6 && rel.columns[3] == "feb" {
            results.extend(results_from_relation(rel));
        }
    }
    ScreeningOutcome { report, prov, files, results }
}

/// One point of the scaling study (Figures 7–9).
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Total virtual cores of the fleet.
    pub cores: u32,
    /// Total execution time, simulated seconds.
    pub tet_s: f64,
    /// Speedup vs the 1-core baseline.
    pub speedup: f64,
    /// Efficiency = speedup / cores.
    pub efficiency: f64,
    /// Cloud bill in USD.
    pub cost_usd: f64,
    /// The full simulator report.
    pub report: SimReport,
}

/// Simulation parameters for the scaling sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seed for all stochastic components.
    pub seed: u64,
    /// Receptor ids to screen (default: the full Table 2 set).
    pub receptor_ids: Vec<String>,
    /// Ligand codes to screen.
    pub ligand_codes: Vec<String>,
    /// Failure model (paper: ~10% of activations fail).
    pub failures: FailureModel,
    /// Scheduling policy.
    pub policy: Policy,
    /// Master dispatch cost model.
    pub master: MasterCostModel,
    /// Shared FS model.
    pub sharedfs: SharedFsModel,
    /// VM noise.
    pub noise: NoiseModel,
    /// Elasticity (None = fixed fleet per point, the paper's setup for
    /// Figs 7–9).
    pub elasticity: Option<ElasticityConfig>,
    /// Honor the Hg blacklist rule.
    pub hg_rule: bool,
    /// Scheduling weights per activity tag, mined from a prior run's
    /// provenance (`cumulus::sched::activity_profiles`). `None` = oracle
    /// weights (the scheduler sees true task costs).
    pub weight_profile: Option<std::collections::HashMap<String, f64>>,
    /// Telemetry sink for the simulated runs (disabled by default; attach
    /// one to get a `MetricsSnapshot` in the returned report).
    pub telemetry: Telemetry,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 2014,
            receptor_ids: RECEPTOR_IDS.iter().map(|s| s.to_string()).collect(),
            ligand_codes: LIGAND_CODES.iter().map(|s| s.to_string()).collect(),
            failures: FailureModel {
                fail_rate: 0.08,
                hang_rate: 0.015,
                fail_at_fraction: 0.6,
                seed: 2014,
            },
            policy: Policy::GreedyWeighted,
            master: MasterCostModel::default(),
            sharedfs: SharedFsModel::default(),
            noise: NoiseModel::default(),
            elasticity: None,
            hg_rule: true,
            weight_profile: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Simulate one engine mode at one core count.
pub fn simulate_at(
    cores: u32,
    mode: EngineMode,
    sweep: &SweepConfig,
    prov: Option<&ProvenanceStore>,
) -> SimReport {
    let ids: Vec<&str> = sweep.receptor_ids.iter().map(|s| s.as_str()).collect();
    let codes: Vec<&str> = sweep.ligand_codes.iter().map(|s| s.as_str()).collect();
    let ds = Dataset::subset(&ids, &codes, DatasetParams::default());
    let tasks = build_sim_tasks(&ds, mode, &CostModel::default());
    let mut cfg = SimConfig::new()
        .with_seed(sweep.seed)
        .with_fleet(fleet_for_cores(cores))
        .with_noise(sweep.noise)
        .with_failures(sweep.failures)
        .with_max_retries(3)
        .with_hang_timeout_factor(10.0)
        .with_sharedfs(sweep.sharedfs)
        .with_policy(sweep.policy)
        .with_master(sweep.master)
        .with_hg_rule(sweep.hg_rule)
        .with_telemetry(sweep.telemetry.clone())
        .with_workflow_tag(match mode {
            EngineMode::Ad4Only => "SciDock-AD4",
            EngineMode::VinaOnly => "SciDock-Vina",
            EngineMode::Adaptive => "SciDock",
        })
        .with_activity_tags(SIM_ACTIVITY_TAGS.iter().map(|s| s.to_string()).collect());
    if let Some(elasticity) = sweep.elasticity {
        cfg = cfg.with_elasticity(elasticity);
    }
    if let Some(prof) = &sweep.weight_profile {
        cfg = cfg.with_weight_profile(
            SIM_ACTIVITY_TAGS.iter().map(|tag| prof.get(*tag).copied().unwrap_or(1.0)).collect(),
        );
    }
    simulate_tasks(&tasks, &cfg, prov)
}

/// Run the Figure 7–9 sweep: TET/speedup/efficiency at each core count.
///
/// The 1-core point is simulated as the speedup baseline (the paper
/// normalizes against "the best-performing workflow execution on a single
/// core").
pub fn scaling_sweep(
    core_counts: &[u32],
    mode: EngineMode,
    sweep: &SweepConfig,
) -> Vec<ScalePoint> {
    let baseline = simulate_at(1, mode, sweep, None).tet_s;
    core_counts
        .iter()
        .map(|&cores| {
            let report = simulate_at(cores, mode, sweep, None);
            let speedup = baseline / report.tet_s;
            ScalePoint {
                cores,
                tet_s: report.tet_s,
                speedup,
                efficiency: speedup / cores as f64,
                cost_usd: report.cost_usd,
                report,
            }
        })
        .collect()
}

/// The paper's headline numbers derived from a sweep (§I, §V.C, §VI).
#[derive(Debug, Clone)]
pub struct Headline {
    /// TET at the smallest core count, in days.
    pub tet_low_days: f64,
    /// TET at the largest core count, in hours.
    pub tet_high_hours: f64,
    /// Percent improvement of the 32-core point over the smallest.
    pub improvement_at_32: Option<f64>,
    /// Speedup at 16 cores.
    pub speedup_at_16: Option<f64>,
}

/// Extract headline numbers from a sweep (expects ascending core counts).
pub fn headline(points: &[ScalePoint]) -> Headline {
    let first = points.first().expect("non-empty sweep");
    let last = points.last().expect("non-empty sweep");
    let at = |c: u32| points.iter().find(|p| p.cores == c);
    Headline {
        tet_low_days: first.tet_s / 86_400.0,
        tet_high_hours: last.tet_s / 3_600.0,
        improvement_at_32: at(32).map(|p| 100.0 * (1.0 - p.tet_s / first.tet_s)),
        speedup_at_16: at(16).map(|p| p.speedup),
    }
}

/// The paper's core-count axis for Figures 7–9.
pub const PAPER_CORE_COUNTS: [u32; 7] = [2, 4, 8, 16, 32, 64, 128];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{table3, total_feb_negative};
    use docking::engine::DockConfig;
    use docking::search::{LgaConfig, McConfig};

    fn fast_scidock_cfg() -> SciDockConfig {
        SciDockConfig {
            dock: DockConfig {
                ad4_runs: 1,
                lga: LgaConfig { population: 6, generations: 3, ..Default::default() },
                mc: McConfig { restarts: 2, steps: 2, ..Default::default() },
                grid_spacing: 1.5,
                box_edge: 14.0,
                ..Default::default()
            },
            hg_rule: false,
            ..Default::default()
        }
    }

    /// A sweep over a small slice of the dataset to keep tests quick.
    fn small_sweep() -> SweepConfig {
        SweepConfig {
            receptor_ids: RECEPTOR_IDS[..10].iter().map(|s| s.to_string()).collect(),
            ligand_codes: LIGAND_CODES[..4].iter().map(|s| s.to_string()).collect(),
            failures: FailureModel::none(),
            noise: NoiseModel { amplitude: 0.0 },
            ..Default::default()
        }
    }

    #[test]
    fn screening_produces_results() {
        let out = run_screening(
            &["1HUC", "2HHN"],
            &["042"],
            EngineMode::VinaOnly,
            2,
            &fast_scidock_cfg(),
        );
        assert_eq!(out.results.len(), 2);
        assert!(out.results.iter().all(|r| r.engine == "vina"));
        assert!(out.results.iter().all(|r| r.feb.is_finite()));
        // files were produced and recorded
        assert!(out.files.len() > 6);
        let q = out
            .prov
            .query_rows("SELECT count(*) FROM hactivation WHERE status = 'FINISHED'", &[])
            .unwrap();
        assert!(q.cell(0, 0).as_f64().unwrap() >= 16.0);
    }

    #[test]
    fn screening_feeds_table3() {
        let out = run_screening(
            &["1HUC", "2HHN", "1S4V"],
            &["0D6"],
            EngineMode::Ad4Only,
            2,
            &fast_scidock_cfg(),
        );
        let rows = table3(&out.results, "autodock4", &["0D6"]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].feb_neg_count <= 3);
        let _ = total_feb_negative(&out.results, "autodock4");
    }

    #[test]
    fn sweep_tet_decreases_with_cores() {
        let sweep = small_sweep();
        let points = scaling_sweep(&[2, 8, 32], EngineMode::VinaOnly, &sweep);
        assert_eq!(points.len(), 3);
        assert!(points[0].tet_s > points[1].tet_s);
        assert!(points[1].tet_s > points[2].tet_s);
        // speedup grows, efficiency ≤ ~1
        assert!(points[2].speedup > points[0].speedup);
        for p in &points {
            assert!(p.efficiency <= 1.3, "efficiency {} at {} cores", p.efficiency, p.cores);
            assert!(p.efficiency > 0.0);
        }
    }

    #[test]
    fn sweep_deterministic() {
        let sweep = small_sweep();
        let a = scaling_sweep(&[4], EngineMode::Ad4Only, &sweep);
        let b = scaling_sweep(&[4], EngineMode::Ad4Only, &sweep);
        assert_eq!(a[0].tet_s, b[0].tet_s);
        assert_eq!(a[0].cost_usd, b[0].cost_usd);
    }

    #[test]
    fn vina_beats_ad4_in_simulation() {
        let sweep = small_sweep();
        let ad4 = simulate_at(8, EngineMode::Ad4Only, &sweep, None);
        let vina = simulate_at(8, EngineMode::VinaOnly, &sweep, None);
        assert!(vina.tet_s < ad4.tet_s, "{} vs {}", vina.tet_s, ad4.tet_s);
    }

    #[test]
    fn headline_extraction() {
        let sweep = small_sweep();
        let points = scaling_sweep(&[2, 16, 32], EngineMode::VinaOnly, &sweep);
        let h = headline(&points);
        assert!(h.tet_low_days > 0.0);
        assert!(h.tet_high_hours > 0.0);
        assert!(h.improvement_at_32.unwrap() > 50.0, "32 cores must be a big win over 2");
        assert!(h.speedup_at_16.unwrap() > 2.0);
    }

    #[test]
    fn simulation_records_provenance_when_asked() {
        let sweep = small_sweep();
        let prov = ProvenanceStore::new();
        let r = simulate_at(4, EngineMode::VinaOnly, &sweep, Some(&prov));
        assert!(r.finished > 0);
        let q = prov
            .query_rows("SELECT count(*) FROM hactivation WHERE status = 'FINISHED'", &[])
            .unwrap();
        assert_eq!(q.cell(0, 0).as_f64().unwrap() as usize, r.finished);
        // the seven simulated activity tags are registered
        let tags = prov.query_rows("SELECT count(*) FROM hactivity", &[]).unwrap();
        assert_eq!(tags.cell(0, 0), &provenance::Value::Int(7));
    }

    #[test]
    fn failures_visible_in_sweep() {
        let mut sweep = small_sweep();
        sweep.failures =
            FailureModel { fail_rate: 0.10, hang_rate: 0.0, fail_at_fraction: 0.6, seed: 1 };
        let r = simulate_at(8, EngineMode::VinaOnly, &sweep, None);
        let n_tasks = 10 * 4 * 7;
        assert!(r.failed_attempts > n_tasks / 50, "~10% failures expected");
        assert!(r.finished > n_tasks / 2);
    }
}
