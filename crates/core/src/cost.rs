//! Calibrated activity cost model for the simulated cloud-scale studies.
//!
//! Per-activity nominal durations are calibrated to the paper's own
//! provenance measurements — the Query 1 result of Fig. 10 (min/avg/max
//! seconds per activation over the 1,000-pair run) — plus the headline TETs
//! (12.5 days at 2 cores for AD4, ~9 days for Vina over 10,000 pairs),
//! which pin the AD4 docking activity the figure does not list.

use molkit::synth::name_seed;

use crate::activities::EngineMode;
use crate::dataset::Dataset;
use cumulus::simbackend::SimTask;

/// Distribution of one activity's activation duration: min/mean/max seconds
/// on a nominal 1.0-speed core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostDist {
    /// Minimum duration.
    pub min_s: f64,
    /// Mean duration.
    pub mean_s: f64,
    /// Maximum duration (tail clamp).
    pub max_s: f64,
}

impl CostDist {
    /// Deterministic draw for a given key: a clamped exponential around the
    /// mean, reproducing the heavy right tails of Fig. 10.
    pub fn sample(&self, key: &str) -> f64 {
        let h = name_seed(key);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        let x = -(1.0 - u).ln(); // Exp(1), mean 1
        (self.min_s + (self.mean_s - self.min_s) * x).clamp(self.min_s, self.max_s)
    }
}

/// The seven per-pair activities of the simulated SciDock run, in paper
/// order (the Fig. 10 tags).
pub const SIM_ACTIVITY_TAGS: [&str; 7] = [
    "babel1k",
    "autoligand41k",
    "autoreceptor41k",
    "autogpf41k",
    "autogrid41k",
    "configprep1k",
    "docking",
];

/// Bytes written per activity (calibrated so a full 10,000-pair execution
/// produces ≈600 GB, the paper's per-execution data volume).
const OUT_BYTES: [u64; 7] = [
    200_000,    // mol2
    400_000,    // ligand pdbqt
    2_000_000,  // receptor pdbqt
    100_000,    // gpf
    45_000_000, // grid maps (the bulk of the volume)
    100_000,    // dpf / conf
    12_000_000, // dlg / poses / logs
];

/// The calibrated cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Activities 1–6 (indices 0–5 of [`SIM_ACTIVITY_TAGS`]).
    pub prep: [CostDist; 6],
    /// AD4 docking (activity 7 when the pair routes to AD4).
    pub dock_ad4: CostDist,
    /// Vina docking.
    pub dock_vina: CostDist,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            prep: [
                // Fig. 10 rows: min / avg / max
                CostDist { min_s: 0.88, mean_s: 2.42, max_s: 12.56 }, // babel1k
                CostDist { min_s: 2.04, mean_s: 27.45, max_s: 457.53 }, // autoligand41k
                CostDist { min_s: 1.16, mean_s: 23.12, max_s: 122.59 }, // autoreceptor41k
                CostDist { min_s: 1.48, mean_s: 19.99, max_s: 53.29 }, // autogpf41k
                CostDist { min_s: 1.51, mean_s: 18.48, max_s: 163.44 }, // autogrid41k
                CostDist { min_s: 18.71, mean_s: 42.95, max_s: 66.60 }, // configprep1k
            ],
            // Vina: Fig. 10's autodockvina1k row
            dock_vina: CostDist { min_s: 1.88, mean_s: 27.81, max_s: 561.94 },
            // AD4: not in Fig. 10; calibrated so Σ(per-pair means) ≈ 216 s,
            // which reproduces TET ≈ 12.5 days at 2 cores over 10,000 pairs
            dock_ad4: CostDist { min_s: 5.0, mean_s: 74.0, max_s: 1500.0 },
        }
    }
}

impl CostModel {
    /// Expected per-pair total compute (sum of activity means).
    pub fn per_pair_mean(&self, engine: EngineMode) -> f64 {
        let prep: f64 = self.prep.iter().map(|d| d.mean_s).sum();
        match engine {
            EngineMode::Ad4Only => prep + self.dock_ad4.mean_s,
            EngineMode::VinaOnly => prep + self.dock_vina.mean_s,
            EngineMode::Adaptive => prep + 0.5 * (self.dock_ad4.mean_s + self.dock_vina.mean_s),
        }
    }
}

/// Build the simulated activation DAG for a dataset: one 7-activity chain
/// per receptor–ligand pair.
///
/// `size_bias` couples durations to structure size: a pair's draws are
/// scaled by the receptor's size relative to the dataset mean, reproducing
/// the correlation the paper observes between input size and runtime.
pub fn build_sim_tasks(ds: &Dataset, mode: EngineMode, cost: &CostModel) -> Vec<SimTask> {
    let mean_atoms = ds.receptors.iter().map(|r| r.heavy_atoms as f64).sum::<f64>()
        / ds.receptors.len().max(1) as f64;
    let mut tasks = Vec::with_capacity(ds.pair_count() * 7);
    for r in &ds.receptors {
        let size_factor = (r.heavy_atoms as f64 / mean_atoms).clamp(0.4, 2.5);
        for l in &ds.ligands {
            let pair = format!("{}:{}", r.id, l.code);
            let base = tasks.len();
            let ad4 = match mode {
                EngineMode::Ad4Only => true,
                EngineMode::VinaOnly => false,
                EngineMode::Adaptive => ds.is_small(r),
            };
            for a in 0..7 {
                let dist = if a < 6 {
                    cost.prep[a]
                } else if ad4 {
                    cost.dock_ad4
                } else {
                    cost.dock_vina
                };
                let nominal = dist.sample(&format!("{pair}#{a}")) * size_factor;
                tasks.push(SimTask {
                    activity_index: a,
                    pair_key: pair.clone(),
                    nominal_s: nominal,
                    in_bytes: if a == 0 { 300_000 } else { OUT_BYTES[a - 1] },
                    out_bytes: OUT_BYTES[a],
                    deps: if a == 0 { vec![] } else { vec![base + a - 1] },
                    // Hg receptors poison the receptor-prep activation
                    poison: a == 2 && r.has_hg,
                });
            }
        }
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetParams, LIGAND_CODES, RECEPTOR_IDS};

    #[test]
    fn sample_within_bounds_and_deterministic() {
        let d = CostDist { min_s: 1.0, mean_s: 20.0, max_s: 100.0 };
        for k in 0..500 {
            let key = format!("k{k}");
            let v = d.sample(&key);
            assert!((1.0..=100.0).contains(&v), "{v}");
            assert_eq!(v, d.sample(&key));
        }
    }

    #[test]
    fn sample_mean_near_target() {
        let d = CostDist { min_s: 0.0, mean_s: 30.0, max_s: 1.0e9 };
        let n = 20_000;
        let mean: f64 = (0..n).map(|k| d.sample(&format!("m{k}"))).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 2.0, "sample mean {mean}");
    }

    #[test]
    fn per_pair_means_match_headline_tets() {
        let c = CostModel::default();
        // AD4: 10,000 pairs on 2 cores ≈ 12.5 days
        let ad4_days = c.per_pair_mean(EngineMode::Ad4Only) * 10_000.0 / 2.0 / 86_400.0;
        assert!((11.0..14.0).contains(&ad4_days), "AD4 2-core TET ≈ {ad4_days:.1} days");
        // Vina: ≈ 9 days
        let vina_days = c.per_pair_mean(EngineMode::VinaOnly) * 10_000.0 / 2.0 / 86_400.0;
        assert!((8.0..10.5).contains(&vina_days), "Vina 2-core TET ≈ {vina_days:.1} days");
        // Vina is the faster engine
        assert!(c.per_pair_mean(EngineMode::VinaOnly) < c.per_pair_mean(EngineMode::Ad4Only));
    }

    fn small_ds() -> Dataset {
        let mut p = DatasetParams::default();
        p.receptor.min_residues = 20;
        p.receptor.max_residues = 60;
        Dataset::subset(&RECEPTOR_IDS[..6], &LIGAND_CODES[..3], p)
    }

    #[test]
    fn sim_tasks_shape() {
        let ds = small_ds();
        let tasks = build_sim_tasks(&ds, EngineMode::VinaOnly, &CostModel::default());
        assert_eq!(tasks.len(), 6 * 3 * 7);
        // chains: every non-first activity depends on its predecessor
        for (i, t) in tasks.iter().enumerate() {
            if t.activity_index == 0 {
                assert!(t.deps.is_empty());
            } else {
                assert_eq!(t.deps, vec![i - 1]);
                assert_eq!(tasks[i - 1].pair_key, t.pair_key);
            }
            assert!(t.nominal_s > 0.0);
            assert!(t.out_bytes > 0);
        }
    }

    #[test]
    fn full_run_data_volume_near_600gb() {
        let per_pair: u64 = OUT_BYTES.iter().sum();
        let total_gb = per_pair as f64 * 9996.0 / 1e9;
        assert!((450.0..750.0).contains(&total_gb), "≈600 GB target, got {total_gb:.0} GB");
    }

    #[test]
    fn ad4_tasks_heavier_than_vina() {
        let ds = small_ds();
        let c = CostModel::default();
        let ad4: f64 =
            build_sim_tasks(&ds, EngineMode::Ad4Only, &c).iter().map(|t| t.nominal_s).sum();
        let vina: f64 =
            build_sim_tasks(&ds, EngineMode::VinaOnly, &c).iter().map(|t| t.nominal_s).sum();
        assert!(ad4 > vina, "{ad4} vs {vina}");
    }

    #[test]
    fn poison_marks_hg_receptor_prep_only() {
        let mut p = DatasetParams::default();
        p.receptor.hg_fraction = 1.0; // every receptor poisoned
        let ds = Dataset::subset(&RECEPTOR_IDS[..2], &LIGAND_CODES[..1], p);
        let tasks = build_sim_tasks(&ds, EngineMode::Ad4Only, &CostModel::default());
        for t in &tasks {
            assert_eq!(t.poison, t.activity_index == 2, "{t:?}");
        }
    }

    #[test]
    fn size_bias_scales_costs() {
        let mut small_p = DatasetParams::default();
        small_p.receptor.min_residues = 20;
        small_p.receptor.max_residues = 25;
        let mut big_p = DatasetParams::default();
        big_p.receptor.min_residues = 200;
        big_p.receptor.max_residues = 220;
        let small = crate::dataset::make_receptor("1AEC", &small_p);
        let big = crate::dataset::make_receptor("1AEC", &big_p);
        let lig = crate::dataset::make_ligand("042", &small_p);
        let ds = Dataset { receptors: vec![small, big], ligands: vec![lig], params: small_p };
        let tasks = build_sim_tasks(&ds, EngineMode::VinaOnly, &CostModel::default());
        let small_total: f64 = tasks[..7].iter().map(|t| t.nominal_s).sum();
        let big_total: f64 = tasks[7..].iter().map(|t| t.nominal_s).sum();
        assert!(big_total > small_total, "bigger receptor must cost more");
    }
}
