//! The eight SciDock activities (paper Fig. 1) as executable workflow
//! activities, and the workflow builder that assembles them.
//!
//! | # | tag | macro-activity | what it does |
//! |---|-----|----------------|--------------|
//! | 1 | `babel` | A: input preparation | SDF → MOL2 conversion |
//! | 2 | `prepligand` | A | MOL2 → ligand PDBQT (charges, polar-H merge, torsion tree) |
//! | 3 | `prepreceptor` | A | PDB → receptor PDBQT (Hg blacklist rule lives here) |
//! | 4 | `autogpf4` | B: coordinates generation | grid parameter file (GPF) |
//! | 5 | `autogrid4` | B | AutoGrid affinity maps |
//! | 6 | `dockfilter` | C: docking preparation | size split: small→AD4, large→Vina |
//! | 7 | `autodpf4` / `vinaconfig` | C | DPF / Vina config generation |
//! | 8 | `autodock4` / `vina` | D: molecular docking | the docking run, `.dlg`/log output |

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use cumulus::workflow::{Activity, ActivityError, ActivityFn, FileStore, WorkflowDef};
use cumulus::{Operator, Relation, Template};
use docking::autogrid::GridSet;
use docking::dlg::{parse_dlg_feb, parse_dlg_rmsd, parse_vina_modes, write_dlg, write_vina_log};
use docking::engine::{dock_with_grids, DockConfig, EngineKind};
use molkit::charges::assign_gasteiger;
use molkit::formats::{mol2, pdb, pdbqt, sdf};
use molkit::synth::name_seed;
use molkit::torsion::build_torsion_tree;
use molkit::typer::{assign_ad_types, merge_nonpolar_hydrogens};
use molkit::Element;
use provenance::Value;
use std::collections::BTreeMap;

use crate::dataset::Dataset;

/// Which docking program(s) the workflow uses (paper Fig. 4 scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Scenario I: the whole set with AutoDock 4.
    Ad4Only,
    /// Scenario II: the whole set with Vina.
    VinaOnly,
    /// SciDock's adaptive mode: small receptors → AD4, large → Vina.
    Adaptive,
}

/// SciDock configuration.
#[derive(Debug, Clone)]
pub struct SciDockConfig {
    /// Docking search parameters.
    pub dock: DockConfig,
    /// Heavy-atom threshold of the activity-6 size filter.
    pub size_threshold_atoms: usize,
    /// Experiment directory in the shared file store.
    pub expdir: String,
    /// Enable the provenance-derived Hg blacklist rule on activity 3.
    pub hg_rule: bool,
    /// Append the SRQuery ranking activity: one activation that consumes
    /// every docked tuple, ranks by FEB, and writes `ranking.txt` (the
    /// §V.D "top interactions" analysis as a workflow step).
    pub with_ranking: bool,
    /// Directory for the persistent cross-campaign grid cache; `None`
    /// keeps the cache in-memory per workflow (the pre-PR-9 behavior).
    pub grid_cache_dir: Option<std::path::PathBuf>,
}

impl Default for SciDockConfig {
    fn default() -> Self {
        SciDockConfig {
            dock: DockConfig {
                ad4_runs: 3,
                lga: docking::search::LgaConfig {
                    population: 20,
                    generations: 18,
                    ..Default::default()
                },
                mc: docking::search::McConfig { restarts: 5, steps: 10, ..Default::default() },
                grid_spacing: 1.0,
                box_edge: 20.0,
                ..Default::default()
            },
            size_threshold_atoms: 650,
            expdir: "/root/exp_SciDock".to_string(),
            hg_rule: true,
            with_ranking: false,
            grid_cache_dir: None,
        }
    }
}

/// Content-addressed cache of receptor grids (AutoGrid output is shared by
/// every ligand docked against the same receptor — and, content-addressed,
/// by every *campaign* docking the same receptor under the same knobs).
///
/// Keys are [`docking::gridio::grid_set_digest`] values over the receptor
/// PDBQT text plus every map-shaping knob, so renamed or re-staged receptors
/// still share one entry. Three read-through tiers:
///
/// 1. in-memory (per workflow instance),
/// 2. an optional on-disk directory (`<digest>.grid` entries, shared across
///    runs, campaigns, and worker processes on one machine; writes use
///    temp+rename like `provenance::durable` snapshots, so readers never see
///    a torn entry),
/// 3. the shared [`FileStore`] under `/gridcache/` — on a distributed worker
///    a read miss triggers the existing `FileReq` fetch hook, pulling an
///    entry the master already holds instead of rebuilding it.
///
/// Entries are written *directly* to tiers 2–3, never through the activation
/// context: cache traffic must not appear as produced files in provenance
/// (a warm-cache run stays byte-identical to a cold one).
#[derive(Default)]
pub struct GridCache {
    inner: Mutex<HashMap<u64, Arc<GridSet>>>,
    persist: Option<GridCachePersist>,
}

struct GridCachePersist {
    dir: std::path::PathBuf,
    files: Arc<FileStore>,
}

impl GridCachePersist {
    fn entry_path(&self, digest: u64) -> std::path::PathBuf {
        self.dir.join(format!("{digest:016x}.grid"))
    }

    fn store_path(digest: u64) -> String {
        format!("/gridcache/{digest:016x}.grid")
    }
}

/// Every AD type a generated ligand can contain — cached receptor grids
/// carry all of them so one AutoGrid run serves every ligand (exactly how
/// the real pipeline shares maps across a screening campaign).
const LIGAND_TYPE_SUPERSET: [molkit::AdType; 12] = [
    molkit::AdType::C,
    molkit::AdType::A,
    molkit::AdType::N,
    molkit::AdType::NA,
    molkit::AdType::OA,
    molkit::AdType::S,
    molkit::AdType::SA,
    molkit::AdType::HD,
    molkit::AdType::H,
    molkit::AdType::F,
    molkit::AdType::Cl,
    molkit::AdType::Br,
];

/// Monotonic temp-name counter so concurrent writers in one process never
/// collide on the same temp file (the pid separates processes).
static GRID_TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl GridCache {
    /// A cache whose entries persist in `dir` across runs and campaigns and
    /// are published to (and fetched from) `files` under `/gridcache/`.
    pub fn persistent(dir: impl Into<std::path::PathBuf>, files: Arc<FileStore>) -> GridCache {
        GridCache {
            inner: Mutex::new(HashMap::new()),
            persist: Some(GridCachePersist { dir: dir.into(), files }),
        }
    }

    /// Cached grid lookup / computation. Grids are ligand-independent: the
    /// box is sized from the receptor pocket + `cfg.box_edge` and carries
    /// affinity maps for the whole ligand-type superset.
    ///
    /// Emits `gridcache.hit` / `gridcache.miss` counters (memory tier) plus
    /// `gridcache.bytes` (resident map bytes of freshly built sets) through
    /// `cfg.telemetry`, and builds maps with `cfg.threads` slab workers.
    /// With a persistent tier configured, a memory miss additionally emits
    /// `gridcache.persist.hit` (entry loaded from disk or the shared file
    /// store), or `gridcache.persist.miss` + `gridcache.persist.write`
    /// (built and persisted), and `gridcache.persist.bytes` (entry bytes
    /// moved through the tier).
    pub fn get_or_build(
        &self,
        _receptor_id: &str,
        receptor_pdbqt: &str,
        engine: EngineKind,
        cfg: &DockConfig,
    ) -> Result<Arc<GridSet>, ActivityError> {
        let digest = docking::gridio::grid_set_digest(
            receptor_pdbqt,
            engine.program_name(),
            cfg.grid_spacing,
            cfg.box_edge,
            cfg.pocket_probe,
            &LIGAND_TYPE_SUPERSET,
        );
        if let Some(g) = self.inner.lock().get(&digest) {
            cfg.telemetry.count("gridcache.hit", 1);
            return Ok(Arc::clone(g));
        }
        cfg.telemetry.count("gridcache.miss", 1);

        if let Some(p) = &self.persist {
            if let Some(grids) = self.load_persisted(p, digest, cfg) {
                let arc = Arc::new(grids);
                self.inner.lock().insert(digest, Arc::clone(&arc));
                return Ok(arc);
            }
            cfg.telemetry.count("gridcache.persist.miss", 1);
        }

        let grids = Self::build(receptor_pdbqt, engine, cfg)?;
        cfg.telemetry.count("gridcache.bytes", grids.bytes());
        if let Some(p) = &self.persist {
            let text = docking::gridio::serialize_grid_set(&grids);
            cfg.telemetry.count("gridcache.persist.write", 1);
            cfg.telemetry.count("gridcache.persist.bytes", text.len() as u64);
            Self::write_entry(p, digest, &text);
            p.files.write(&GridCachePersist::store_path(digest), text);
        }
        let arc = Arc::new(grids);
        self.inner.lock().insert(digest, Arc::clone(&arc));
        Ok(arc)
    }

    /// Try the persistent tiers (disk, then shared file store / `FileReq`
    /// fetch). A hit back-fills whichever tier was missing.
    fn load_persisted(
        &self,
        p: &GridCachePersist,
        digest: u64,
        cfg: &DockConfig,
    ) -> Option<GridSet> {
        let disk = std::fs::read_to_string(p.entry_path(digest)).ok();
        let (text, from_disk) = match disk {
            Some(t) => (t, true),
            None => (p.files.read(&GridCachePersist::store_path(digest))?, false),
        };
        // a corrupt or torn entry (integrity digest mismatch) falls back to
        // a rebuild instead of failing the activation
        let grids = match docking::gridio::deserialize_grid_set(&text) {
            Ok(g) => g,
            Err(_) => return None,
        };
        cfg.telemetry.count("gridcache.persist.hit", 1);
        cfg.telemetry.count("gridcache.persist.bytes", text.len() as u64);
        if from_disk {
            if !p.files.exists(&GridCachePersist::store_path(digest)) {
                p.files.write(&GridCachePersist::store_path(digest), text);
            }
        } else {
            Self::write_entry(p, digest, &text);
        }
        Some(grids)
    }

    /// Atomically publish an entry on disk: write to a uniquely named temp
    /// file, then rename over the final path (the `provenance::durable`
    /// snapshot discipline). Racing writers produce identical bytes, so
    /// whichever rename lands last is as good as the first; readers only
    /// ever see a complete entry.
    fn write_entry(p: &GridCachePersist, digest: u64, text: &str) {
        if std::fs::create_dir_all(&p.dir).is_err() {
            return; // persistence is best-effort; the build already succeeded
        }
        let seq = GRID_TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = p.dir.join(format!("{digest:016x}.grid.tmp.{}.{seq}", std::process::id()));
        if std::fs::write(&tmp, text).is_ok() {
            let _ = std::fs::rename(&tmp, p.entry_path(digest));
        }
        let _ = std::fs::remove_file(&tmp); // no-op after a successful rename
    }

    fn build(
        receptor_pdbqt: &str,
        engine: EngineKind,
        cfg: &DockConfig,
    ) -> Result<GridSet, ActivityError> {
        let receptor = pdbqt::read_receptor_pdbqt(receptor_pdbqt)
            .map_err(|e| ActivityError(format!("receptor pdbqt: {e}")))?;
        let pocket = molkit::geometry::find_pocket(&receptor, cfg.pocket_probe)
            .ok_or_else(|| ActivityError("no binding pocket detected".into()))?;
        let spec =
            docking::grid::GridSpec::with_edge(pocket.center, cfg.box_edge, cfg.grid_spacing);
        Ok(match engine {
            EngineKind::Ad4 => docking::autogrid::build_ad4_grids_threads(
                &receptor,
                spec,
                &LIGAND_TYPE_SUPERSET,
                &docking::params::Ad4Params::new(),
                cfg.threads,
            ),
            EngineKind::Vina => docking::autogrid::build_vina_grids_threads(
                &receptor,
                spec,
                &LIGAND_TYPE_SUPERSET,
                &docking::params::VinaParams::default(),
                cfg.threads,
            ),
        })
    }

    /// Number of cached grid sets.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

fn text(t: &[Value], i: usize) -> Result<String, ActivityError> {
    t.get(i)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| ActivityError(format!("tuple column {i} is not text")))
}

fn int(t: &[Value], i: usize) -> Result<i64, ActivityError> {
    match t.get(i) {
        Some(Value::Int(n)) => Ok(*n),
        // tuples resumed from provenance store numerics as Float
        Some(Value::Float(f)) if f.fract() == 0.0 => Ok(*f as i64),
        other => Err(ActivityError(format!("tuple column {i} is not int: {other:?}"))),
    }
}

/// Stage the dataset's raw structure files into the shared store and build
/// the workflow input relation: `(receptor, ligand, pdb_file, sdf_file)`.
pub fn stage_inputs(ds: &Dataset, files: &FileStore, expdir: &str) -> Relation {
    let dir = format!("{}/input", expdir.trim_end_matches('/'));
    for r in &ds.receptors {
        files.write(&format!("{dir}/{}.pdb", r.id), pdb::write_pdb(&r.structure));
    }
    for l in &ds.ligands {
        files.write(&format!("{dir}/{}.sdf", l.code), sdf::write_sdf(&l.structure));
    }
    let mut rel = Relation::new(&["receptor", "ligand", "pdb_file", "sdf_file"]);
    for r in &ds.receptors {
        for l in &ds.ligands {
            rel.push(vec![
                r.id.as_str().into(),
                l.code.as_str().into(),
                format!("{dir}/{}.pdb", r.id).into(),
                format!("{dir}/{}.sdf", l.code).into(),
            ]);
        }
    }
    rel
}

/// Build the SciDock workflow.
///
/// The returned definition has 8 activities for `Ad4Only`/`VinaOnly` and 10
/// for `Adaptive` (7a/7b and 8a/8b both present, routed by the activity-6
/// engine column). `files` is the shared store the workflow will run
/// against; the Hg blacklist rule inspects staged receptor files through it.
pub fn build_scidock(mode: EngineMode, cfg: &SciDockConfig, files: Arc<FileStore>) -> WorkflowDef {
    let cache = match &cfg.grid_cache_dir {
        Some(dir) => Arc::new(GridCache::persistent(dir.clone(), Arc::clone(&files))),
        None => Arc::new(GridCache::default()),
    };
    let cfga = Arc::new(cfg.clone());

    // -- activity 1: babel (SDF -> MOL2) ------------------------------------
    let a1: ActivityFn = Arc::new(move |tuples, ctx| {
        let t = &tuples[0];
        let (receptor, ligand) = (text(t, 0)?, text(t, 1)?);
        let sdf_text = ctx.read_file(&text(t, 3)?)?;
        let mol = sdf::read_sdf(&sdf_text).map_err(|e| ActivityError(format!("sdf: {e}")))?;
        let out = ctx.write_file(&format!("{ligand}.mol2"), mol2::write_mol2(&mol));
        Ok(vec![vec![
            receptor.as_str().into(),
            ligand.as_str().into(),
            text(t, 2)?.into(),
            out.into(),
        ]])
    });

    // -- activity 2: prepare_ligand4 (MOL2 -> ligand PDBQT) -----------------
    let a2: ActivityFn = Arc::new(move |tuples, ctx| {
        let t = &tuples[0];
        let (receptor, ligand) = (text(t, 0)?, text(t, 1)?);
        let mol2_text = ctx.read_file(&text(t, 3)?)?;
        let mut mol =
            mol2::read_mol2(&mol2_text).map_err(|e| ActivityError(format!("mol2: {e}")))?;
        assign_ad_types(&mut mol);
        assign_gasteiger(&mut mol, &Default::default());
        merge_nonpolar_hydrogens(&mut mol);
        let tree = build_torsion_tree(&mol);
        let lig = pdbqt::PdbqtLigand { mol, tree };
        let out = ctx.write_file(&format!("{ligand}.pdbqt"), pdbqt::write_ligand_pdbqt(&lig));
        ctx.record_param("torsdof", Some(lig.tree.torsdof() as f64), None);
        Ok(vec![vec![
            receptor.as_str().into(),
            ligand.as_str().into(),
            text(t, 2)?.into(),
            out.into(),
        ]])
    });

    // -- activity 3: prepare_receptor4 (PDB -> receptor PDBQT) --------------
    let a3: ActivityFn = Arc::new(move |tuples, ctx| {
        let t = &tuples[0];
        let (receptor, ligand) = (text(t, 0)?, text(t, 1)?);
        let pdb_text = ctx.read_file(&text(t, 2)?)?;
        let mut mol = pdb::read_pdb(&pdb_text).map_err(|e| ActivityError(format!("pdb: {e}")))?;
        mol.name = receptor.clone();
        assign_ad_types(&mut mol);
        assign_gasteiger(&mut mol, &Default::default());
        let out = ctx.write_file(&format!("{receptor}.pdbqt"), pdbqt::write_receptor_pdbqt(&mol));
        ctx.record_param("receptor_atoms", Some(mol.heavy_atom_count() as f64), None);
        Ok(vec![vec![
            receptor.as_str().into(),
            ligand.as_str().into(),
            text(t, 3)?.into(),
            out.into(),
            Value::Int(mol.heavy_atom_count() as i64),
        ]])
    });

    // -- activity 4: GPF preparation ----------------------------------------
    let cfg4 = Arc::clone(&cfga);
    let a4: ActivityFn = Arc::new(move |tuples, ctx| {
        let t = &tuples[0];
        let (receptor, ligand) = (text(t, 0)?, text(t, 1)?);
        let lig_text = ctx.read_file(&text(t, 2)?)?;
        let lig = pdbqt::read_ligand_pdbqt(&lig_text)
            .map_err(|e| ActivityError(format!("ligand pdbqt: {e}")))?;
        let types: Vec<String> = lig.mol.ad_types().iter().map(|t| t.label().to_string()).collect();
        let npts = (cfg4.dock.box_edge / cfg4.dock.grid_spacing).ceil() as usize + 1;
        let mut gpf = String::new();
        gpf.push_str(&format!("npts {npts} {npts} {npts}\n"));
        gpf.push_str(&format!("spacing {}\n", cfg4.dock.grid_spacing));
        gpf.push_str(&format!("ligand_types {}\n", types.join(" ")));
        gpf.push_str(&format!("receptor {receptor}.pdbqt\n"));
        gpf.push_str("gridcenter auto\n");
        let out = ctx.write_file(&format!("{ligand}_{receptor}.gpf"), gpf);
        Ok(vec![vec![
            receptor.as_str().into(),
            ligand.as_str().into(),
            text(t, 2)?.into(),
            text(t, 3)?.into(),
            Value::Int(int(t, 4)?),
            out.into(),
        ]])
    });

    // -- activity 5: AutoGrid map generation ---------------------------------
    let cache5 = Arc::clone(&cache);
    let cfg5 = Arc::clone(&cfga);
    let a5: ActivityFn = Arc::new(move |tuples, ctx| {
        let t = &tuples[0];
        let (receptor, ligand) = (text(t, 0)?, text(t, 1)?);
        let lig_text = ctx.read_file(&text(t, 2)?)?;
        let lig = pdbqt::read_ligand_pdbqt(&lig_text)
            .map_err(|e| ActivityError(format!("ligand pdbqt: {e}")))?;
        let _ = &lig; // parsed for validation; grids are ligand-independent
        let rec_path = text(t, 3)?;
        let rec_text = ctx.read_file(&rec_path)?;
        let grids = cache5.get_or_build(&receptor, &rec_text, EngineKind::Ad4, &cfg5.dock)?;
        // AutoGrid's outputs: one .map file per type + e/d maps, in the real
        // AutoGrid format. Maps are per-receptor and byte-identical for every
        // ligand (the header names the receptor's .gpf, not the pair's), so
        // every activation (re)stages the shared set idempotently and records
        // it — skipping files another activation already staged would make
        // the recorded producer a scheduling artifact, and provenance must
        // not depend on activation order.
        let gpf_name = format!("{receptor}.gpf");
        let map_dir = format!("{}/maps", cfg5.expdir.trim_end_matches('/'));
        for name in grids.map_file_names(&receptor) {
            let path = format!("{map_dir}/{name}");
            let map_key = name
                .trim_start_matches(&format!("{receptor}."))
                .trim_end_matches(".map")
                .to_string();
            let map = match map_key.as_str() {
                "e" => grids.electrostatic.as_ref(),
                "d" => grids.desolvation.as_ref(),
                label => label.parse::<molkit::AdType>().ok().and_then(|t| grids.affinity.get(&t)),
            };
            if let Some(m) = map {
                ctx.write_file_at(&path, docking::mapfile::write_map(m, &gpf_name, &receptor));
            }
        }
        // the grid map field file (.fld) indexes the maps, one per activation
        let fld: String = grids
            .map_file_names(&receptor)
            .iter()
            .map(|n| format!("variable file={map_dir}/{n}\n"))
            .collect();
        ctx.write_file(&format!("{receptor}.maps.fld"), fld);
        ctx.record_param("grid_maps", Some(grids.affinity.len() as f64 + 2.0), None);
        Ok(vec![vec![
            receptor.as_str().into(),
            ligand.as_str().into(),
            text(t, 2)?.into(),
            rec_path.into(),
            Value::Int(int(t, 4)?),
        ]])
    });

    // -- activity 6: docking filter (size split) -----------------------------
    let threshold = cfg.size_threshold_atoms as i64;
    let mode6 = mode;
    let a6: ActivityFn = Arc::new(move |tuples, _ctx| {
        let t = &tuples[0];
        let atoms = int(t, 4)?;
        let engine = match mode6 {
            EngineMode::Ad4Only => "AD4",
            EngineMode::VinaOnly => "VINA",
            EngineMode::Adaptive => {
                if atoms <= threshold {
                    "AD4"
                } else {
                    "VINA"
                }
            }
        };
        Ok(vec![vec![
            t[0].clone(),
            t[1].clone(),
            t[2].clone(),
            t[3].clone(),
            Value::Int(atoms),
            engine.into(),
        ]])
    });

    // -- activity 7a: DPF preparation (AD4) ----------------------------------
    // SciCumulus-style instrumentation (paper Fig. 3): a %TAG% template is
    // rendered per activation and every substituted value is recorded as a
    // provenance parameter
    let dpf_template = Arc::new(
        Template::parse(
            "autodock_parameter_version 4.2\nmove %LIGAND%.pdbqt\nabout auto\n\
             ga_pop_size %GA_POP%\nga_num_generations %GA_GEN%\nga_run %GA_RUN%\nanalysis\n",
        )
        .expect("static template parses"),
    );
    let cfg7a = Arc::clone(&cfga);
    let a7a: ActivityFn = {
        let dpf_template = Arc::clone(&dpf_template);
        Arc::new(move |tuples, ctx| {
            let t = &tuples[0];
            let (receptor, ligand) = (text(t, 0)?, text(t, 1)?);
            let mut vals = BTreeMap::new();
            vals.insert("LIGAND".to_string(), ligand.clone());
            vals.insert("GA_POP".to_string(), cfg7a.dock.lga.population.to_string());
            vals.insert("GA_GEN".to_string(), cfg7a.dock.lga.generations.to_string());
            vals.insert("GA_RUN".to_string(), cfg7a.dock.ad4_runs.to_string());
            let (dpf, used) = dpf_template
                .render_instrumented(&vals)
                .map_err(|e| ActivityError(format!("template: {e}")))?;
            for (tag, value) in used {
                ctx.record_param(&format!("tpl_{tag}"), None, Some(&value));
            }
            let out = ctx.write_file(&format!("{ligand}_{receptor}.dpf"), dpf);
            Ok(vec![vec![
                t[0].clone(),
                t[1].clone(),
                t[2].clone(),
                t[3].clone(),
                t[5].clone(),
                out.into(),
            ]])
        })
    };

    // -- activity 7b: Vina config preparation --------------------------------
    let conf_template = Arc::new(
        Template::parse(
            "receptor = %RECEPTOR%.pdbqt\nligand = %LIGAND%.pdbqt\n\
             center = auto\nsize = auto\nexhaustiveness = %EXH%\n",
        )
        .expect("static template parses"),
    );
    let cfg7b = Arc::clone(&cfga);
    let a7b: ActivityFn = {
        let conf_template = Arc::clone(&conf_template);
        Arc::new(move |tuples, ctx| {
            let t = &tuples[0];
            let (receptor, ligand) = (text(t, 0)?, text(t, 1)?);
            let mut vals = BTreeMap::new();
            vals.insert("RECEPTOR".to_string(), receptor.clone());
            vals.insert("LIGAND".to_string(), ligand.clone());
            vals.insert("EXH".to_string(), cfg7b.dock.mc.restarts.to_string());
            let (conf, used) = conf_template
                .render_instrumented(&vals)
                .map_err(|e| ActivityError(format!("template: {e}")))?;
            for (tag, value) in used {
                ctx.record_param(&format!("tpl_{tag}"), None, Some(&value));
            }
            let out = ctx.write_file(&format!("{ligand}_{receptor}.conf"), conf);
            Ok(vec![vec![
                t[0].clone(),
                t[1].clone(),
                t[2].clone(),
                t[3].clone(),
                t[5].clone(),
                out.into(),
            ]])
        })
    };

    // -- activity 8: docking execution ---------------------------------------
    let dock_fn = |engine: EngineKind,
                   cache: Arc<GridCache>,
                   cfg: Arc<SciDockConfig>|
     -> ActivityFn {
        Arc::new(move |tuples, ctx| {
            let t = &tuples[0];
            let (receptor, ligand) = (text(t, 0)?, text(t, 1)?);
            let lig_text = ctx.read_file(&text(t, 2)?)?;
            let lig = pdbqt::read_ligand_pdbqt(&lig_text)
                .map_err(|e| ActivityError(format!("ligand pdbqt: {e}")))?;
            let rec_text = ctx.read_file(&text(t, 3)?)?;
            let grids = cache.get_or_build(&receptor, &rec_text, engine, &cfg.dock)?;
            let mut dock_cfg = cfg.dock.clone();
            dock_cfg.seed = name_seed(&format!("{receptor}:{ligand}:{}", engine.program_name()));
            let result = dock_with_grids(&grids, &receptor, &lig, engine, &dock_cfg)
                .map_err(|e| ActivityError(format!("dock: {e}")))?;
            // write the program's log file, then extract values back out of
            // it — the SciCumulus extractor-component pattern
            let (log_name, log_text) = match engine {
                EngineKind::Ad4 => (format!("{ligand}_{receptor}.dlg"), write_dlg(&result)),
                EngineKind::Vina => (format!("{ligand}_{receptor}.log"), write_vina_log(&result)),
            };
            let log_path = ctx.write_file(&log_name, log_text);
            let log_body = ctx.read_file(&log_path)?;
            let (feb, rmsd) = match engine {
                EngineKind::Ad4 => (
                    parse_dlg_feb(&log_body)
                        .ok_or_else(|| ActivityError("no FEB in dlg".into()))?,
                    parse_dlg_rmsd(&log_body)
                        .ok_or_else(|| ActivityError("no RMSD in dlg".into()))?,
                ),
                EngineKind::Vina => {
                    let modes = parse_vina_modes(&log_body);
                    let best = modes
                        .first()
                        .ok_or_else(|| ActivityError("no modes in vina log".into()))?;
                    // Vina's reported "dist from best mode" averages over modes
                    let avg_rmsd = modes.iter().map(|(_, r)| *r).sum::<f64>() / modes.len() as f64;
                    (best.0, avg_rmsd)
                }
            };
            if engine == EngineKind::Vina {
                // Vina also writes the docked ligand PDBQT
                let mut posed = lig.clone();
                posed.mol.set_positions(&result.best_coords);
                ctx.write_file(
                    &format!("{ligand}_{receptor}_out.pdbqt"),
                    pdbqt::write_ligand_pdbqt(&posed),
                );
            }
            ctx.record_param("feb", Some(feb), None);
            ctx.record_param("rmsd", Some(rmsd), None);
            ctx.record_param("pair", None, Some(&format!("{receptor}-{ligand}")));
            ctx.record_param("engine", None, Some(engine.program_name()));
            Ok(vec![vec![
                receptor.as_str().into(),
                ligand.as_str().into(),
                engine.program_name().into(),
                Value::Float(feb),
                Value::Float(rmsd),
                log_path.into(),
            ]])
        })
    };

    let hg_blacklist: Option<cumulus::workflow::BlacklistFn> = if cfg.hg_rule {
        // the rule the paper added after provenance analysis: receptors whose
        // PDB file contains mercury never reach the docking programs
        let bl_files = Arc::clone(&files);
        Some(Arc::new(move |t: &cumulus::Tuple| {
            // activity 3's input tuple carries the staged PDB path in col 2
            let Some(path) = t.get(2).and_then(|v| v.as_str()) else {
                return false;
            };
            let Some(text) = bl_files.read(path) else {
                return false;
            };
            match pdb::read_pdb(&text) {
                Ok(mol) => mol.contains_element(Element::Hg),
                Err(_) => false,
            }
        }))
    } else {
        None
    };

    let prep_cols = ["receptor", "ligand", "lig_pdbqt", "rec_pdbqt", "rec_atoms"];
    let filt_cols = ["receptor", "ligand", "lig_pdbqt", "rec_pdbqt", "rec_atoms", "engine"];
    let parm_cols = ["receptor", "ligand", "lig_pdbqt", "rec_pdbqt", "engine", "param_file"];
    let dock_cols = ["receptor", "ligand", "engine", "feb", "rmsd", "log_file"];

    let mut activities = vec![
        Activity::map("babel", &["receptor", "ligand", "pdb_file", "mol2_file"], a1),
        Activity::map("prepligand", &["receptor", "ligand", "pdb_file", "lig_pdbqt"], a2),
        {
            let mut a = Activity::map("prepreceptor", &prep_cols, a3);
            a.blacklist = hg_blacklist;
            a
        },
        Activity::map(
            "autogpf4",
            &["receptor", "ligand", "lig_pdbqt", "rec_pdbqt", "rec_atoms", "gpf_file"],
            a4,
        ),
        Activity::map("autogrid4", &prep_cols, a5),
        Activity::map("dockfilter", &filt_cols, a6).with_operator(Operator::Filter),
    ];
    let mut deps: Vec<Vec<usize>> = vec![vec![], vec![0], vec![1], vec![2], vec![3], vec![4]];

    match mode {
        EngineMode::Ad4Only => {
            activities.push(
                Activity::map("autodpf4", &parm_cols, a7a).with_route("engine", "AD4".into()),
            );
            deps.push(vec![5]);
            activities.push(Activity::map(
                "autodock4",
                &dock_cols,
                dock_fn(EngineKind::Ad4, Arc::clone(&cache), Arc::clone(&cfga)),
            ));
            deps.push(vec![6]);
        }
        EngineMode::VinaOnly => {
            activities.push(
                Activity::map("vinaconfig", &parm_cols, a7b).with_route("engine", "VINA".into()),
            );
            deps.push(vec![5]);
            activities.push(Activity::map(
                "vina",
                &dock_cols,
                dock_fn(EngineKind::Vina, Arc::clone(&cache), Arc::clone(&cfga)),
            ));
            deps.push(vec![6]);
        }
        EngineMode::Adaptive => {
            activities.push(
                Activity::map("autodpf4", &parm_cols, a7a).with_route("engine", "AD4".into()),
            );
            deps.push(vec![5]);
            activities.push(
                Activity::map("vinaconfig", &parm_cols, a7b).with_route("engine", "VINA".into()),
            );
            deps.push(vec![5]);
            activities.push(Activity::map(
                "autodock4",
                &dock_cols,
                dock_fn(EngineKind::Ad4, Arc::clone(&cache), Arc::clone(&cfga)),
            ));
            deps.push(vec![6]);
            activities.push(Activity::map(
                "vina",
                &dock_cols,
                dock_fn(EngineKind::Vina, Arc::clone(&cache), Arc::clone(&cfga)),
            ));
            deps.push(vec![7]);
        }
    }

    if cfg.with_ranking {
        // SRQuery: a single activation over the whole docking relation,
        // ranking pairs by FEB (most negative first)
        let rank_fn: ActivityFn = Arc::new(move |tuples, ctx| {
            let mut rows: Vec<&cumulus::Tuple> = tuples.iter().collect();
            rows.sort_by(|a, b| {
                let fa = a[3].as_f64().unwrap_or(f64::INFINITY);
                let fb = b[3].as_f64().unwrap_or(f64::INFINITY);
                fa.total_cmp(&fb)
            });
            let mut report = String::from("rank receptor ligand engine feb rmsd\n");
            for (k, t) in rows.iter().enumerate() {
                report.push_str(&format!(
                    "{} {} {} {} {:.2} {:.2}\n",
                    k + 1,
                    t[0].as_str().unwrap_or("?"),
                    t[1].as_str().unwrap_or("?"),
                    t[2].as_str().unwrap_or("?"),
                    t[3].as_f64().unwrap_or(0.0),
                    t[4].as_f64().unwrap_or(0.0),
                ));
            }
            ctx.write_file("ranking.txt", report);
            if let Some(best) = rows.first() {
                ctx.record_param(
                    "best_pair",
                    None,
                    Some(&format!(
                        "{}-{}",
                        best[0].as_str().unwrap_or("?"),
                        best[1].as_str().unwrap_or("?")
                    )),
                );
                ctx.record_param("best_feb", best[3].as_f64(), None);
            }
            Ok(rows
                .into_iter()
                .enumerate()
                .map(|(k, t)| {
                    let mut out = vec![Value::Int(k as i64 + 1)];
                    out.extend(t.iter().cloned());
                    out
                })
                .collect())
        });
        let dock_indices: Vec<usize> = activities
            .iter()
            .enumerate()
            .filter(|(_, a)| a.tag == "autodock4" || a.tag == "vina")
            .map(|(i, _)| i)
            .collect();
        activities.push(
            Activity::map(
                "ranking",
                &["rank", "receptor", "ligand", "engine", "feb", "rmsd", "log_file"],
                rank_fn,
            )
            .with_operator(Operator::SRQuery),
        );
        deps.push(dock_indices);
    }

    WorkflowDef {
        tag: match mode {
            EngineMode::Ad4Only => "SciDock-AD4".to_string(),
            EngineMode::VinaOnly => "SciDock-Vina".to_string(),
            EngineMode::Adaptive => "SciDock".to_string(),
        },
        description: "Molecular docking-based virtual screening".to_string(),
        expdir: cfg.expdir.clone(),
        activities,
        deps,
    }
}

/// Render the SciCumulus XML specification (paper Fig. 2) of a SciDock
/// workflow — the declarative artifact scientists would edit and version.
pub fn scidock_xml_spec(mode: EngineMode, cfg: &SciDockConfig) -> String {
    use cumulus::xmlspec::{
        ActivityXml, DatabaseSpec, FileSpec, RelType, RelationSpec, SciCumulusSpec,
    };
    let wf = build_scidock(mode, cfg, Arc::new(FileStore::new()));
    let spec = SciCumulusSpec {
        database: DatabaseSpec {
            name: "scicumulus".into(),
            server: "ec2-50-17-107-164.compute-1.amazonaws.com".into(),
            port: 5432,
        },
        tag: wf.tag.clone(),
        description: wf.description.clone(),
        exectag: "scidock".into(),
        expdir: format!("{}/", cfg.expdir.trim_end_matches('/')),
        activities: wf
            .activities
            .iter()
            .enumerate()
            .map(|(i, a)| ActivityXml {
                tag: a.tag.clone(),
                templatedir: format!("{}/template_{}/", cfg.expdir.trim_end_matches('/'), a.tag),
                activation: "./experiment.cmd".into(),
                operator: a.operator.name().to_uppercase(),
                relations: vec![
                    RelationSpec {
                        reltype: RelType::Input,
                        name: format!("rel_in_{}", i + 1),
                        filename: format!("input_{}.txt", i + 1),
                    },
                    RelationSpec {
                        reltype: RelType::Output,
                        name: format!("rel_out_{}", i + 1),
                        filename: format!("output_{}.txt", i + 1),
                    },
                ],
                files: vec![FileSpec { filename: "experiment.cmd".into(), instrumented: true }],
            })
            .collect(),
    };
    spec.to_xml()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetParams};
    use cumulus::localbackend::LocalConfig;
    use cumulus::{Backend, LocalBackend, RunOutcome, Workflow};
    use provenance::ProvenanceStore;

    /// Run a workflow through the `Backend` trait (the non-deprecated
    /// surface) with the activities' shared file store attached.
    fn run(
        wf: cumulus::WorkflowDef,
        input: cumulus::Relation,
        files: Arc<FileStore>,
        prov: &Arc<ProvenanceStore>,
        cfg: LocalConfig,
    ) -> RunOutcome {
        LocalBackend::new(cfg).run(&Workflow::new(wf, input).with_files(files), prov).unwrap()
    }

    fn tiny_dataset() -> Dataset {
        let mut p = DatasetParams::default();
        p.receptor.min_residues = 30;
        p.receptor.max_residues = 40;
        p.receptor.hg_fraction = 0.0;
        p.ligand.min_heavy = 8;
        p.ligand.max_heavy = 12;
        Dataset::subset(&["1HUC", "2HHN"], &["0D6"], p)
    }

    fn fast_cfg() -> SciDockConfig {
        SciDockConfig {
            dock: DockConfig {
                ad4_runs: 1,
                lga: docking::search::LgaConfig {
                    population: 6,
                    generations: 3,
                    ..Default::default()
                },
                mc: docking::search::McConfig { restarts: 2, steps: 2, ..Default::default() },
                grid_spacing: 1.5,
                box_edge: 14.0,
                ..Default::default()
            },
            hg_rule: false,
            ..Default::default()
        }
    }

    #[test]
    fn scidock_ad4_end_to_end() {
        let ds = tiny_dataset();
        let files = Arc::new(FileStore::new());
        let prov = Arc::new(ProvenanceStore::new());
        let cfg = fast_cfg();
        let input = stage_inputs(&ds, &files, &cfg.expdir);
        assert_eq!(input.len(), 2);
        let wf = build_scidock(EngineMode::Ad4Only, &cfg, Arc::clone(&files));
        assert!(wf.validate().is_ok());
        assert_eq!(wf.activities.len(), 8);
        let report = run(wf, input, Arc::clone(&files), &prov, LocalConfig::new().with_threads(2));
        assert_eq!(report.final_output().len(), 2, "both pairs docked");
        // FEB column is a finite float
        let feb = report.final_output().tuples[0][3].as_f64().unwrap();
        assert!(feb.is_finite());
        // .dlg files recorded in provenance
        let r =
            prov.query_rows("SELECT count(*) FROM hfile WHERE fname LIKE '%.dlg'", &[]).unwrap();
        assert_eq!(r.cell(0, 0), &Value::Int(2));
        // feb params extracted
        let p =
            prov.query_rows("SELECT count(*) FROM hparameter WHERE pname = 'feb'", &[]).unwrap();
        assert_eq!(p.cell(0, 0), &Value::Int(2));
    }

    #[test]
    fn scidock_vina_end_to_end() {
        let ds = tiny_dataset();
        let files = Arc::new(FileStore::new());
        let prov = Arc::new(ProvenanceStore::new());
        let cfg = fast_cfg();
        let input = stage_inputs(&ds, &files, &cfg.expdir);
        let wf = build_scidock(EngineMode::VinaOnly, &cfg, Arc::clone(&files));
        let report = run(wf, input, Arc::clone(&files), &prov, LocalConfig::new().with_threads(2));
        assert_eq!(report.final_output().len(), 2);
        // Vina writes the docked pose pdbqt
        let outs = files.list(&format!("{}/vina", cfg.expdir));
        assert!(
            outs.iter().any(|p| p.ends_with("_out.pdbqt")),
            "vina output pdbqt missing: {outs:?}"
        );
    }

    #[test]
    fn adaptive_mode_routes_by_size() {
        // one surely-small and one surely-large receptor
        let mut p = DatasetParams::default();
        p.receptor.hg_fraction = 0.0;
        p.ligand.min_heavy = 8;
        p.ligand.max_heavy = 10;
        let mut small_p = p.clone();
        small_p.receptor.min_residues = 25;
        small_p.receptor.max_residues = 30;
        let mut large_p = p;
        large_p.receptor.min_residues = 150;
        large_p.receptor.max_residues = 160;
        let small = crate::dataset::make_receptor("1AEC", &small_p);
        let large = crate::dataset::make_receptor("2ACT", &large_p);
        let lig = crate::dataset::make_ligand("042", &small_p);
        let ds = Dataset { receptors: vec![small, large], ligands: vec![lig], params: small_p };

        let files = Arc::new(FileStore::new());
        let prov = Arc::new(ProvenanceStore::new());
        let mut cfg = fast_cfg();
        cfg.size_threshold_atoms = 400;
        let input = stage_inputs(&ds, &files, &cfg.expdir);
        let wf = build_scidock(EngineMode::Adaptive, &cfg, Arc::clone(&files));
        assert_eq!(wf.activities.len(), 10);
        let report = run(wf, input, files, &prov, LocalConfig::new().with_threads(2));
        // outputs: activity index 8 = autodock4, 9 = vina
        let ad4_out = &report.outputs[8];
        let vina_out = &report.outputs[9];
        assert_eq!(ad4_out.len(), 1, "small receptor routed to AD4");
        assert_eq!(vina_out.len(), 1, "large receptor routed to Vina");
        assert_eq!(ad4_out.tuples[0][0], Value::from("1AEC"));
        assert_eq!(vina_out.tuples[0][0], Value::from("2ACT"));
    }

    #[test]
    fn grid_cache_shared_across_ligands() {
        let mut p = DatasetParams::default();
        p.receptor.min_residues = 30;
        p.receptor.max_residues = 35;
        p.receptor.hg_fraction = 0.0;
        p.ligand.min_heavy = 8;
        p.ligand.max_heavy = 10;
        let ds = Dataset::subset(&["1HUC"], &["042", "074"], p);
        let files = Arc::new(FileStore::new());
        let cfg = fast_cfg();
        let input = stage_inputs(&ds, &files, &cfg.expdir);
        let wf = build_scidock(EngineMode::Ad4Only, &cfg, Arc::clone(&files));
        let report = run(
            wf,
            input,
            files,
            &Arc::new(ProvenanceStore::new()),
            LocalConfig::new().with_threads(2),
        );
        assert_eq!(report.final_output().len(), 2, "one receptor, two ligands");
    }

    #[test]
    fn grid_cache_counters_surface_in_metrics() {
        let mut p = DatasetParams::default();
        p.receptor.min_residues = 30;
        p.receptor.max_residues = 35;
        p.receptor.hg_fraction = 0.0;
        p.ligand.min_heavy = 8;
        p.ligand.max_heavy = 10;
        let ds = Dataset::subset(&["1HUC"], &["042", "074"], p);
        let files = Arc::new(FileStore::new());
        let tel = telemetry::Telemetry::attached();
        let mut cfg = fast_cfg();
        cfg.dock.telemetry = tel.clone();
        let input = stage_inputs(&ds, &files, &cfg.expdir);
        let wf = build_scidock(EngineMode::Ad4Only, &cfg, Arc::clone(&files));
        // single-threaded so the first lookup is the only miss (concurrent
        // activations may each miss and build; the cache tolerates that)
        let report = run(
            wf,
            input,
            files,
            &Arc::new(ProvenanceStore::new()),
            LocalConfig::new().with_threads(1),
        );
        assert_eq!(report.final_output().len(), 2);
        let snap = tel.snapshot().unwrap();
        // one receptor → one grid build; activities 5 and 8 each look the
        // set up once per ligand, so the other three lookups are hits
        assert_eq!(snap.counter("gridcache.miss"), Some(1));
        assert_eq!(snap.counter("gridcache.hit"), Some(3));
        let bytes = snap.counter("gridcache.bytes").expect("bytes counter present");
        assert!(bytes > 0, "resident grid bytes recorded");
    }

    /// One prepared receptor's PDBQT text plus a fast `DockConfig` bound to
    /// `tel`, shared by the persistent-cache tests below.
    fn cache_fixture(tel: &telemetry::Telemetry) -> (String, DockConfig) {
        let mut p = DatasetParams::default();
        p.receptor.min_residues = 30;
        p.receptor.max_residues = 35;
        p.receptor.hg_fraction = 0.0;
        let mut mol = crate::dataset::make_receptor("1HUC", &p).structure;
        assign_ad_types(&mut mol);
        assign_gasteiger(&mut mol, &Default::default());
        let text = pdbqt::write_receptor_pdbqt(&mol);
        let cfg = DockConfig {
            grid_spacing: 1.5,
            box_edge: 14.0,
            telemetry: tel.clone(),
            ..Default::default()
        };
        (text, cfg)
    }

    #[test]
    fn persistent_grid_cache_survives_across_cache_instances() {
        let dir =
            std::env::temp_dir().join(format!("scidock-gridcache-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tel = telemetry::Telemetry::attached();
        let (text, cfg) = cache_fixture(&tel);

        // cold: fresh cache over an empty dir → build + persist
        let cold = GridCache::persistent(&dir, Arc::new(FileStore::new()));
        let built = cold.get_or_build("1HUC", &text, EngineKind::Ad4, &cfg).unwrap();
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.counter("gridcache.persist.miss"), Some(1));
        assert_eq!(snap.counter("gridcache.persist.write"), Some(1));
        assert_eq!(snap.counter("gridcache.persist.hit"), None);

        // warm: a NEW cache instance (empty memory tier) over the same dir
        // loads the entry instead of rebuilding
        let warm = GridCache::persistent(&dir, Arc::new(FileStore::new()));
        let loaded = warm.get_or_build("1HUC", &text, EngineKind::Ad4, &cfg).unwrap();
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.counter("gridcache.persist.miss"), Some(1), "no second build");
        assert_eq!(snap.counter("gridcache.persist.write"), Some(1));
        assert_eq!(snap.counter("gridcache.persist.hit"), Some(1));
        assert_eq!(
            docking::gridio::serialize_grid_set(&built),
            docking::gridio::serialize_grid_set(&loaded),
            "persisted entry round-trips bit-identically"
        );
        assert_eq!(
            telemetry::registry::unregistered(&snap),
            Vec::<String>::new(),
            "persistent-cache metrics are all registered"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_grid_cache_racers_share_one_untorn_entry() {
        let dir =
            std::env::temp_dir().join(format!("scidock-gridcache-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tel = telemetry::Telemetry::attached();
        let (text, cfg) = cache_fixture(&tel);
        let text = Arc::new(text);
        let sets: Vec<Arc<GridSet>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let text = Arc::clone(&text);
                    let cfg = cfg.clone();
                    let dir = dir.clone();
                    s.spawn(move || {
                        // each racer is its own campaign: private memory
                        // tier, shared on-disk dir
                        let cache = GridCache::persistent(dir, Arc::new(FileStore::new()));
                        cache.get_or_build("1HUC", &text, EngineKind::Ad4, &cfg).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
        assert_eq!(entries.len(), 1, "one entry, no leftover temp files: {entries:?}");
        let on_disk = std::fs::read_to_string(&entries[0]).unwrap();
        let parsed = docking::gridio::deserialize_grid_set(&on_disk).expect("entry not torn");
        let want = docking::gridio::serialize_grid_set(&sets[0]);
        assert_eq!(docking::gridio::serialize_grid_set(&parsed), want);
        assert_eq!(on_disk, want, "bytes on disk are the canonical serialization");
        assert_eq!(
            docking::gridio::serialize_grid_set(&sets[1]),
            want,
            "both racers observe identical grids"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hg_rule_blacklists_poison_receptors() {
        // force an Hg-bearing receptor by scanning ids with default params
        let p = DatasetParams::default();
        let hg_id = crate::dataset::RECEPTOR_IDS
            .iter()
            .find(|id| crate::dataset::make_receptor(id, &p).has_hg)
            .expect("dataset contains at least one Hg receptor");
        let ds = Dataset::subset(&[hg_id, "1HUC"], &["042"], {
            let mut q = DatasetParams::default();
            q.ligand.min_heavy = 8;
            q.ligand.max_heavy = 10;
            q
        });
        let files = Arc::new(FileStore::new());
        let prov = Arc::new(ProvenanceStore::new());
        let mut cfg = fast_cfg();
        cfg.hg_rule = true;
        let input = stage_inputs(&ds, &files, &cfg.expdir);
        let wf = build_scidock(EngineMode::Ad4Only, &cfg, Arc::clone(&files));
        let report = run(wf, input, files, &prov, LocalConfig::new().with_threads(2));
        assert_eq!(report.blacklisted, 1);
        let r = prov
            .query_rows("SELECT count(*) FROM hactivation WHERE status = 'BLACKLISTED'", &[])
            .unwrap();
        assert_eq!(r.cell(0, 0), &Value::Int(1));
        // the poisoned pair never reaches docking
        assert_eq!(report.final_output().len(), 1);
    }

    #[test]
    fn template_instrumentation_recorded_in_provenance() {
        let ds = tiny_dataset();
        let files = Arc::new(FileStore::new());
        let prov = Arc::new(ProvenanceStore::new());
        let cfg = fast_cfg();
        let input = stage_inputs(&ds, &files, &cfg.expdir);
        let wf = build_scidock(EngineMode::VinaOnly, &cfg, Arc::clone(&files));
        let _ = run(wf, input, Arc::clone(&files), &prov, LocalConfig::default());
        // every vinaconfig activation recorded its substituted template tags
        let q = prov
            .query_rows(
                "SELECT pname, count(*) FROM hparameter WHERE pname LIKE 'tpl_%' \
                 GROUP BY pname ORDER BY pname",
                &[],
            )
            .unwrap();
        let names: Vec<String> = q.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["tpl_EXH", "tpl_LIGAND", "tpl_RECEPTOR"]);
        for r in &q.rows {
            assert_eq!(r[1].as_f64(), Some(2.0), "one per pair");
        }
        // the rendered config file exists and contains the substituted value
        let confs = files.list(&format!("{}/vinaconfig", cfg.expdir));
        assert_eq!(confs.len(), 2);
        let body = files.read(&confs[0]).unwrap();
        assert!(body.contains("exhaustiveness = 2"), "{body}");
        assert!(body.contains(".pdbqt"));
    }

    #[test]
    fn ranking_activity_orders_by_feb() {
        let ds = tiny_dataset();
        let files = Arc::new(FileStore::new());
        let prov = Arc::new(ProvenanceStore::new());
        let mut cfg = fast_cfg();
        cfg.with_ranking = true;
        let input = stage_inputs(&ds, &files, &cfg.expdir);
        let wf = build_scidock(EngineMode::VinaOnly, &cfg, Arc::clone(&files));
        assert_eq!(wf.activities.len(), 9, "8 activities + ranking");
        assert_eq!(wf.activities.last().unwrap().operator, Operator::SRQuery);
        let report = run(wf, input, Arc::clone(&files), &prov, LocalConfig::new().with_threads(2));
        let ranked = report.final_output();
        assert_eq!(ranked.len(), 2);
        // rank column ascending, FEB ascending
        assert_eq!(ranked.tuples[0][0], Value::Int(1));
        assert_eq!(ranked.tuples[1][0], Value::Int(2));
        let f0 = ranked.tuples[0][4].as_f64().unwrap();
        let f1 = ranked.tuples[1][4].as_f64().unwrap();
        assert!(f0 <= f1, "ranking must be FEB-ascending: {f0} vs {f1}");
        // the report file exists and the best pair is a provenance param
        let rank_files = files.list(&format!("{}/ranking", cfg.expdir));
        assert_eq!(rank_files.len(), 1);
        let body = files.read(&rank_files[0]).unwrap();
        assert!(body.starts_with("rank receptor ligand"));
        let q = prov
            .query_rows("SELECT pvalue_text FROM hparameter WHERE pname = 'best_pair'", &[])
            .unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn xml_spec_roundtrips_for_all_modes() {
        use cumulus::xmlspec::SciCumulusSpec;
        for (mode, n) in
            [(EngineMode::Ad4Only, 8), (EngineMode::VinaOnly, 8), (EngineMode::Adaptive, 10)]
        {
            let xml = scidock_xml_spec(mode, &SciDockConfig::default());
            let spec = SciCumulusSpec::from_xml(&xml).expect("generated XML parses");
            assert_eq!(spec.activities.len(), n, "{mode:?}");
            assert_eq!(spec.activities[0].tag, "babel");
            assert!(spec.activities.iter().all(|a| a.relations.len() == 2));
        }
        // the paper's Fig. 2 shape: babel with instrumented experiment.cmd
        let xml = scidock_xml_spec(EngineMode::Ad4Only, &SciDockConfig::default());
        assert!(xml.contains("tag=\"babel\""));
        assert!(xml.contains("instrumented=\"true\""));
    }

    #[test]
    fn paper_queries_run_against_real_execution() {
        let ds = tiny_dataset();
        let files = Arc::new(FileStore::new());
        let prov = Arc::new(ProvenanceStore::new());
        let cfg = fast_cfg();
        let input = stage_inputs(&ds, &files, &cfg.expdir);
        let wf = build_scidock(EngineMode::Ad4Only, &cfg, Arc::clone(&files));
        let _ = run(wf, input, files, &prov, LocalConfig::default());
        // Query 1 (paper Fig. 10)
        let q1 = prov
            .query_rows(
                "SELECT a.tag, \
                   min(extract('epoch' from (t.endtime-t.starttime))), \
                   max(extract('epoch' from (t.endtime-t.starttime))), \
                   sum(extract('epoch' from (t.endtime-t.starttime))), \
                   avg(extract('epoch' from (t.endtime-t.starttime))) \
                 FROM hworkflow w, hactivity a, hactivation t \
                 WHERE w.wkfid = a.wkfid AND a.actid = t.actid AND w.wkfid = 1 \
                 GROUP BY a.tag ORDER BY a.tag",
                &[],
            )
            .unwrap();
        assert_eq!(q1.len(), 8, "eight SciDock activities");
        // Query 2 (paper Fig. 11)
        let q2 = prov
            .query_rows(
                "SELECT w.tag, a.tag, f.fname, f.fsize, f.fdir \
                 FROM hworkflow w, hactivity a, hactivation t, hfile f \
                 WHERE w.wkfid = a.wkfid AND a.actid = t.actid AND t.taskid = f.taskid \
                 AND f.fname LIKE '%.dlg'",
                &[],
            )
            .unwrap();
        assert_eq!(q2.len(), 2);
        assert_eq!(q2.cell(0, 1), &Value::from("autodock4"));
    }
}
