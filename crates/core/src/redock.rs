//! Redocking — the first refinement §V.D suggests for promising
//! interactions: re-run the search from a known pose and check whether the
//! pose is stable (small aligned RMSD, FEB not worse).

use docking::autogrid::GridKind;
use docking::engine::{dock, refine_pose, DockConfig, DockError, EngineKind};
use docking::search::SolisWetsConfig;
use molkit::align::aligned_rmsd;
use molkit::formats::pdbqt::PdbqtLigand;
use molkit::geometry::rmsd;
use molkit::synth::name_seed;
use molkit::torsion::build_torsion_tree;
use molkit::typer::{assign_ad_types, merge_nonpolar_hydrogens};
use molkit::Molecule;

use crate::dataset::{make_ligand, make_receptor, DatasetParams};

/// Outcome of a redocking experiment on one pair.
#[derive(Debug, Clone)]
pub struct RedockOutcome {
    /// Receptor id.
    pub receptor: String,
    /// Ligand code.
    pub ligand: String,
    /// FEB of the original docking, kcal/mol.
    pub original_feb: f64,
    /// FEB after local refinement.
    pub refined_feb: f64,
    /// Unaligned RMSD between original and refined poses, Å.
    pub pose_shift_rmsd: f64,
    /// RMSD after optimal superposition — isolates conformational change
    /// from rigid drift, Å.
    pub aligned_shift_rmsd: f64,
    /// Energy evaluations spent on refinement.
    pub refine_evaluations: u64,
}

impl RedockOutcome {
    /// A pose is "stable" when refinement keeps it in place (small shift)
    /// and does not worsen the FEB by more than `feb_slack`.
    pub fn is_stable(&self, shift_tolerance: f64, feb_slack: f64) -> bool {
        self.pose_shift_rmsd <= shift_tolerance && self.refined_feb <= self.original_feb + feb_slack
    }
}

/// Prepare a (receptor, ligand) pair exactly as the workflow does.
pub fn prepare_pair(
    receptor_id: &str,
    ligand_code: &str,
    params: &DatasetParams,
) -> (Molecule, PdbqtLigand) {
    let mut receptor = make_receptor(receptor_id, params).structure;
    assign_ad_types(&mut receptor);
    molkit::charges::assign_gasteiger(&mut receptor, &Default::default());
    let mut lig = make_ligand(ligand_code, params).structure;
    assign_ad_types(&mut lig);
    molkit::charges::assign_gasteiger(&mut lig, &Default::default());
    merge_nonpolar_hydrogens(&mut lig);
    let tree = build_torsion_tree(&lig);
    (receptor, PdbqtLigand { mol: lig, tree })
}

/// Dock one pair, then redock from the best pose with a local search.
pub fn redock_pair(
    receptor_id: &str,
    ligand_code: &str,
    engine: EngineKind,
    cfg: &DockConfig,
) -> Result<RedockOutcome, DockError> {
    let (receptor, ligand) = prepare_pair(receptor_id, ligand_code, &DatasetParams::default());
    let grids = docking::engine::make_grids(&receptor, &ligand, engine, cfg)?;
    let result = docking::engine::dock_with_grids(&grids, receptor_id, &ligand, engine, cfg)?;
    let sw = SolisWetsConfig { max_iters: 120, rho: 0.4, ..Default::default() };
    let seed = name_seed(&format!("redock:{receptor_id}:{ligand_code}"));
    let refined = refine_pose(&grids, &ligand, &result.best_pose, seed, &sw)?;
    Ok(RedockOutcome {
        receptor: receptor_id.to_string(),
        ligand: ligand_code.to_string(),
        original_feb: result.feb,
        refined_feb: refined.feb,
        pose_shift_rmsd: rmsd(&result.best_coords, &refined.coords),
        aligned_shift_rmsd: aligned_rmsd(&result.best_coords, &refined.coords),
        refine_evaluations: refined.evaluations,
    })
}

/// Cross-engine agreement check (Chang et al.'s AD4-vs-Vina comparison,
/// which the paper leans on): dock the same pair with both engines and
/// report the FEB difference and the best-pose RMSD between engines.
#[derive(Debug, Clone)]
pub struct EngineAgreement {
    /// AD4's best FEB.
    pub ad4_feb: f64,
    /// Vina's best FEB.
    pub vina_feb: f64,
    /// Unaligned RMSD between the two engines' best poses, Å.
    pub pose_rmsd: f64,
    /// RMSD after superposition, Å.
    pub aligned_pose_rmsd: f64,
}

/// Compare the two engines on one pair.
pub fn compare_engines(
    receptor_id: &str,
    ligand_code: &str,
    cfg: &DockConfig,
) -> Result<EngineAgreement, DockError> {
    let (receptor, ligand) = prepare_pair(receptor_id, ligand_code, &DatasetParams::default());
    let ad4 = dock(&receptor, &ligand, EngineKind::Ad4, cfg)?;
    let vina = dock(&receptor, &ligand, EngineKind::Vina, cfg)?;
    Ok(EngineAgreement {
        ad4_feb: ad4.feb,
        vina_feb: vina.feb,
        pose_rmsd: rmsd(&ad4.best_coords, &vina.best_coords),
        aligned_pose_rmsd: aligned_rmsd(&ad4.best_coords, &vina.best_coords),
    })
}

/// Convenience: which grid kind an engine uses (for diagnostics).
pub fn grid_kind_of(engine: EngineKind) -> GridKind {
    match engine {
        EngineKind::Ad4 => GridKind::Ad4,
        EngineKind::Vina => GridKind::Vina,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docking::search::{LgaConfig, McConfig};

    fn fast_cfg() -> DockConfig {
        DockConfig {
            ad4_runs: 1,
            lga: LgaConfig { population: 8, generations: 5, ..Default::default() },
            mc: McConfig { restarts: 3, steps: 4, ..Default::default() },
            grid_spacing: 1.25,
            box_edge: 16.0,
            ..Default::default()
        }
    }

    #[test]
    fn redock_never_worsens_feb() {
        // local refinement minimizes the same energy, so the refined pose's
        // search energy is ≤ the original; FEB (an affine transform of the
        // intermolecular part) may wiggle, but not explode
        let out = redock_pair("1HUC", "0D6", EngineKind::Vina, &fast_cfg()).unwrap();
        assert!(
            out.refined_feb <= out.original_feb + 1.0,
            "refined {} vs original {}",
            out.refined_feb,
            out.original_feb
        );
        assert!(out.refine_evaluations > 0);
        assert!(out.pose_shift_rmsd.is_finite());
        assert!(out.aligned_shift_rmsd <= out.pose_shift_rmsd + 1e-9);
    }

    #[test]
    fn redock_deterministic() {
        let cfg = fast_cfg();
        let a = redock_pair("2HHN", "042", EngineKind::Ad4, &cfg).unwrap();
        let b = redock_pair("2HHN", "042", EngineKind::Ad4, &cfg).unwrap();
        assert_eq!(a.refined_feb, b.refined_feb);
        assert_eq!(a.pose_shift_rmsd, b.pose_shift_rmsd);
    }

    #[test]
    fn stability_classifier() {
        let out = RedockOutcome {
            receptor: "X".into(),
            ligand: "Y".into(),
            original_feb: -6.0,
            refined_feb: -6.2,
            pose_shift_rmsd: 0.8,
            aligned_shift_rmsd: 0.5,
            refine_evaluations: 10,
        };
        assert!(out.is_stable(2.0, 0.5));
        assert!(!out.is_stable(0.5, 0.5), "shift beyond tolerance");
        let worse = RedockOutcome { refined_feb: -4.0, ..out };
        assert!(!worse.is_stable(2.0, 0.5), "FEB got much worse");
    }

    #[test]
    fn engine_comparison_runs() {
        let a = compare_engines("1S4V", "0E6", &fast_cfg()).unwrap();
        assert!(a.ad4_feb.is_finite());
        assert!(a.vina_feb.is_finite());
        assert!(a.aligned_pose_rmsd <= a.pose_rmsd + 1e-9);
        // both engines target the same pocket: the two best poses are in the
        // same box, so unaligned RMSD is bounded by the box diagonal
        assert!(a.pose_rmsd < 40.0, "poses in the same pocket: {}", a.pose_rmsd);
    }
}
