//! Cross-campaign persistent grid cache through the daemon.
//!
//! Two campaigns over the same receptor set share one on-disk grid cache:
//! the first (cold) builds and persists every map set, the second (warm)
//! must build ZERO new grid maps — asserted through the
//! `gridcache.persist.*` counters — and its canonical PROV-N must be
//! byte-identical to the cold campaign's and to a one-shot cold-cache run
//! through the local backend, because cache traffic never appears as
//! produced files in provenance.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cumulus::serve::{
    CampaignResolver, CampaignState, Daemon, ServeClient, ServeConfig, SubmitOutcome,
};
use cumulus::workflow::FileStore;
use cumulus::{Backend, LocalBackend, LocalConfig, Workflow};
use provenance::{export_provn_canonical_for, ProvenanceStore};
use scidock::{build_scidock, stage_inputs, Dataset, DatasetParams, EngineMode, SciDockConfig};
use telemetry::Telemetry;

/// The fast integration-test search budget, pointed at `cache_dir` and
/// wired to `tel` so the gridcache counters are observable.
fn campaign_cfg(tel: &Telemetry, cache_dir: &std::path::Path) -> SciDockConfig {
    SciDockConfig {
        dock: docking::engine::DockConfig {
            ad4_runs: 1,
            lga: docking::search::LgaConfig { population: 6, generations: 4, ..Default::default() },
            mc: docking::search::McConfig { restarts: 2, steps: 3, ..Default::default() },
            grid_spacing: 1.5,
            box_edge: 14.0,
            telemetry: tel.clone(),
            ..Default::default()
        },
        hg_rule: true,
        grid_cache_dir: Some(cache_dir.to_path_buf()),
        ..Default::default()
    }
}

fn dataset() -> Dataset {
    let mut p = DatasetParams::default();
    p.receptor.min_residues = 30;
    p.receptor.max_residues = 35;
    p.receptor.hg_fraction = 0.0;
    p.ligand.min_heavy = 8;
    p.ligand.max_heavy = 10;
    Dataset::subset(&["1HUC"], &["042", "074"], p)
}

fn scidock_workflow(cfg: &SciDockConfig) -> Workflow {
    let files = Arc::new(FileStore::new());
    let def = build_scidock(EngineMode::Ad4Only, cfg, Arc::clone(&files));
    let input = stage_inputs(&dataset(), &files, &cfg.expdir);
    Workflow::new(def, input).with_files(files)
}

fn wait_finished(client: &mut ServeClient, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let st = client.status(id).expect("status io");
        if st.state == CampaignState::Finished {
            return;
        }
        assert!(Instant::now() < deadline, "campaign {id} stuck in {:?}", st.state);
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn second_campaign_reuses_persisted_grids_with_identical_provenance() {
    let dir = std::env::temp_dir().join(format!("scidock-serve-gridcache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tel = Telemetry::attached();
    let cfg = campaign_cfg(&tel, &dir);
    let resolver: CampaignResolver = {
        let cfg = cfg.clone();
        Arc::new(move |spec: &str| (spec == "sd:ad4").then(|| scidock_workflow(&cfg)))
    };
    let prov = Arc::new(ProvenanceStore::new());
    let daemon = Daemon::start(
        ServeConfig::new().with_workers(2).with_telemetry(tel.clone()),
        resolver,
        Arc::clone(&prov),
    )
    .expect("daemon starts");
    let mut client = ServeClient::connect(daemon.addr()).expect("connect");

    // campaign 1: cold cache — builds each receptor's maps and persists them
    let SubmitOutcome::Accepted { id: cold } =
        client.submit("alice", 0, "sd:ad4").expect("submit io")
    else {
        panic!("cold campaign must be admitted")
    };
    wait_finished(&mut client, cold);
    let snap1 = tel.snapshot().expect("attached");
    let built_cold = snap1.counter("gridcache.bytes").unwrap_or(0);
    assert!(
        snap1.counter("gridcache.persist.miss").unwrap_or(0) >= 1,
        "cold campaign must miss the persistent tier"
    );
    assert!(
        snap1.counter("gridcache.persist.write").unwrap_or(0) >= 1,
        "cold campaign must persist what it built"
    );
    assert!(built_cold > 0, "cold campaign built grids");

    // campaign 2: same receptors — served wholly from the persistent tier
    let SubmitOutcome::Accepted { id: warm } =
        client.submit("bob", 0, "sd:ad4").expect("submit io")
    else {
        panic!("warm campaign must be admitted")
    };
    wait_finished(&mut client, warm);
    let snap2 = tel.snapshot().expect("attached");
    assert_eq!(
        snap2.counter("gridcache.persist.miss"),
        snap1.counter("gridcache.persist.miss"),
        "warm campaign must not miss the persistent tier"
    );
    assert_eq!(
        snap2.counter("gridcache.bytes"),
        Some(built_cold),
        "warm campaign must build ZERO new grid maps"
    );
    assert!(
        snap2.counter("gridcache.persist.hit").unwrap_or(0) >= 1,
        "warm campaign must load persisted entries"
    );
    // containment: everything a persistent-cache campaign emits is in the
    // metric-name registry
    assert_eq!(telemetry::registry::unregistered(&snap2), Vec::<String>::new());
    daemon.shutdown();

    // PROV-N parity: warm == cold == one-shot cold-cache local run; the
    // cache is invisible to provenance
    let wf_rows = prov.query_rows("SELECT wkfid FROM hworkflow", &[]).expect("wkf listing");
    let mut ids: Vec<i64> = wf_rows.rows.iter().map(|r| r[0].as_f64().unwrap() as i64).collect();
    ids.sort_unstable();
    assert_eq!(ids.len(), 2, "two campaigns recorded");
    let cold_export = export_provn_canonical_for(&prov, provenance::WorkflowId(ids[0]));
    let warm_export = export_provn_canonical_for(&prov, provenance::WorkflowId(ids[1]));
    assert_eq!(cold_export, warm_export, "warm-cache PROV-N == cold-cache PROV-N");

    let solo_dir =
        std::env::temp_dir().join(format!("scidock-serve-gridcache-solo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&solo_dir);
    let solo_prov = Arc::new(ProvenanceStore::new());
    let solo_cfg = campaign_cfg(&Telemetry::attached(), &solo_dir);
    LocalBackend::new(LocalConfig::new().with_threads(2))
        .run(&scidock_workflow(&solo_cfg), &solo_prov)
        .expect("one-shot run");
    let solo_wkf = solo_prov.latest_workflow().expect("one-shot workflow recorded");
    assert_eq!(
        warm_export,
        export_provn_canonical_for(&solo_prov, solo_wkf),
        "daemon provenance must equal one-shot cold-cache provenance"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&solo_dir);
}
