//! Cross-backend parity: the same workflow run through `LocalBackend` and
//! through `DistBackend` (one real `scidock-worker` OS process) must leave
//! byte-identical canonical PROV-N provenance and answer the steering
//! queries identically.

use std::sync::Arc;

use cumulus::distbackend::DistConfig;
use cumulus::workflow::FileStore;
use cumulus::{Backend, DistBackend, LocalBackend, LocalConfig, RunOutcome, Workflow};
use provenance::steering::{failures_by_activity, problematic_pairs, status_summary};
use provenance::{export_provn_canonical, ProvenanceStore};
use scidock_bench::distspec;

const SPEC: &str = "scidock:adaptive:2x2";

fn workflow() -> Workflow {
    let files = Arc::new(FileStore::new());
    let def = distspec::resolve_with(SPEC, &files).expect("known spec");
    let input = distspec::prepare(SPEC, &files).expect("known spec");
    Workflow::new(def, input).with_files(files)
}

fn run(backend: &dyn Backend) -> (RunOutcome, Arc<ProvenanceStore>) {
    let store = Arc::new(ProvenanceStore::new());
    let outcome = backend.run(&workflow(), &store).expect("run succeeds");
    (outcome, store)
}

fn sorted_rows(rel: &cumulus::Relation) -> Vec<String> {
    let mut rows: Vec<String> = rel
        .tuples
        .iter()
        .map(|t| t.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("|"))
        .collect();
    rows.sort();
    rows
}

#[test]
fn local_and_dist_runs_are_provenance_identical() {
    let local: Box<dyn Backend> = Box::new(LocalBackend::new(LocalConfig::new().with_threads(2)));
    let dist: Box<dyn Backend> = Box::new(DistBackend::new(
        DistConfig::new()
            .with_workers(1)
            .with_worker_command(env!("CARGO_BIN_EXE_scidock-worker"), Vec::new())
            .with_spec(SPEC),
    ));

    let (lout, lstore) = run(local.as_ref());
    let (dout, dstore) = run(dist.as_ref());

    assert_eq!(lout.finished, dout.finished);
    assert_eq!(lout.failed_attempts, dout.failed_attempts);
    assert_eq!(lout.blacklisted, dout.blacklisted);
    assert!(lout.finished > 0);

    // the docked results are the same data (order is schedule-dependent)
    assert_eq!(
        sorted_rows(lout.final_output()),
        sorted_rows(dout.final_output()),
        "local and distributed outputs must carry identical tuples"
    );

    // canonical provenance is bitwise identical across backends
    assert_eq!(
        export_provn_canonical(&lstore),
        export_provn_canonical(&dstore),
        "canonical PROV-N must not depend on the execution substrate"
    );

    // the steering queries see the same world
    assert_eq!(status_summary(&lstore).unwrap(), status_summary(&dstore).unwrap());
    assert_eq!(failures_by_activity(&lstore).unwrap(), failures_by_activity(&dstore).unwrap());
    assert_eq!(problematic_pairs(&lstore, 1).unwrap(), problematic_pairs(&dstore, 1).unwrap());

    // per-activity timing folds cover the same activities in both worlds
    let tags =
        |o: &RunOutcome| o.activity_timings.iter().map(|t| t.tag.clone()).collect::<Vec<_>>();
    assert_eq!(tags(&lout), tags(&dout));
}
