//! End-to-end crash-recovery smoke: spawn the `provstore_crash` binary
//! against a scratch directory, deliver a real `SIGKILL` mid-run, then
//! invoke it again in `resume` mode as a genuinely fresh process and
//! require the workflow to complete without re-executing recovered work.
//!
//! This is the cross-process version of `cumulus/tests/durable_resume.rs`:
//! nothing survives the kill except the bytes `DirEnv` put on disk.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

use provenance::durable::testing::TempDir;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_provstore_crash")
}

#[test]
fn kill_nine_mid_run_then_resume_completes() {
    let dir = TempDir::new("crash-smoke");
    let dir_arg = dir.path().to_str().unwrap().to_string();

    // phase 1: run until a few activations have committed, then SIGKILL
    let mut child = Command::new(bin())
        .args(["run", &dir_arg])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn run phase");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut ticks = 0usize;
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("read child stdout");
        if line.starts_with("TICK") {
            ticks += 1;
            if ticks >= 6 {
                break;
            }
        }
        assert!(!line.starts_with("RUN OK"), "the run finished before the kill landed");
    }
    // Child::kill is SIGKILL on unix — no destructors, no flushes
    child.kill().expect("kill -9");
    let status = child.wait().expect("reap child");
    assert!(!status.success(), "a killed process must not exit cleanly");

    // phase 2: a fresh process reopens the directory and resumes
    let out = Command::new(bin()).args(["resume", &dir_arg]).output().expect("resume phase");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "resume failed\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let ok = stdout.lines().find(|l| l.starts_with("RESUME OK")).expect("RESUME OK line");
    // at least one activation survived the kill and was reused
    let resumed: usize = ok
        .split("resumed=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("parse resumed count");
    assert!(resumed > 0, "the kill landed after committed activations: {ok}");
}
