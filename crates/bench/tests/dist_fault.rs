//! Fault injection against real worker processes: SIGKILL a
//! `scidock-worker` mid-activation and prove the run completes with exactly
//! one reassignment and the same results as a fault-free run.

use std::sync::Arc;

use cumulus::distbackend::{run_dist, DistConfig, KillPlan};
use cumulus::workflow::FileStore;
use cumulus::RunReport;
use provenance::ProvenanceStore;
use scidock_bench::distspec;

const SPEC: &str = "unit:sleep:6:100";

fn run(kill: Option<KillPlan>) -> (RunReport, Arc<ProvenanceStore>) {
    let files = Arc::new(FileStore::new());
    let prov = Arc::new(ProvenanceStore::new());
    let def = distspec::resolve_with(SPEC, &files).expect("known spec");
    let input = distspec::prepare(SPEC, &files).expect("known spec");
    let mut cfg = DistConfig::new()
        .with_workers(2)
        .with_worker_command(env!("CARGO_BIN_EXE_scidock-worker"), Vec::new())
        .with_spec(SPEC)
        .with_max_in_flight(1);
    if let Some(plan) = kill {
        cfg = cfg.with_kill_plan(plan);
    }
    let report = run_dist(&def, input, files, Arc::clone(&prov), &cfg).expect("run completes");
    (report, prov)
}

fn sorted_output(report: &RunReport) -> Vec<String> {
    let mut rows: Vec<String> = report
        .outputs
        .last()
        .expect("one activity")
        .tuples
        .iter()
        .map(|t| t.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("|"))
        .collect();
    rows.sort();
    rows
}

#[test]
fn sigkilled_worker_mid_activation_does_not_lose_work() {
    let (clean, _) = run(None);
    assert_eq!(clean.finished, 6);
    assert_eq!(clean.failed_attempts, 0);

    // SIGKILL worker 0 right after its first activation is dispatched —
    // the activation dies mid-sleep inside the worker process
    let (faulted, prov) = run(Some(KillPlan { worker: 0, after_runs: 1 }));
    assert_eq!(faulted.finished, 6, "the lost activation is reassigned and completes");
    assert_eq!(faulted.failed_attempts, 1, "exactly one attempt died with the worker");
    assert_eq!(faulted.blacklisted, 0, "one crash stays within the reassign budget");
    assert_eq!(sorted_output(&faulted), sorted_output(&clean), "results are fault-invariant");

    // provenance shows the crash: one FAILED attempt, and the reassigned
    // activation's FINISHED row carries the bumped attempt counter
    let failed =
        prov.query_rows("SELECT pairkey FROM hactivation WHERE status = 'FAILED'", &[]).unwrap();
    assert_eq!(failed.rows.len(), 1, "exactly one extra FAILED attempt recorded");
    let retried = prov
        .query_rows(
            "SELECT count(*) FROM hactivation WHERE status = 'FINISHED' AND retries >= 1",
            &[],
        )
        .unwrap();
    assert_eq!(retried.rows[0][0].as_f64().unwrap() as i64, 1);
}
