//! Docking-substrate benchmarks — the compute behind Table 3:
//! scoring functions, grid construction/interpolation, and both search
//! engines on a real prepared pair.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use docking::autogrid::{build_ad4_grids, build_vina_grids, GridKind};
use docking::conformation::{LigandModel, Pose};
use docking::energy::DirectEnergy;
use docking::energy::EnergyModel;
use docking::engine::{dock, DockConfig, EngineKind};
use docking::grid::GridSpec;
use docking::params::{Ad4Params, VinaParams};
use docking::scoring::{ad4_pair, vina_pair};
use docking::search::{LgaConfig, McConfig};
use molkit::formats::pdbqt::PdbqtLigand;
use molkit::synth::{generate_ligand, generate_receptor, LigandParams, ReceptorParams};
use molkit::torsion::build_torsion_tree;
use molkit::typer::{assign_ad_types, merge_nonpolar_hydrogens};
use molkit::{AdType, Molecule, Vec3};

fn prepared_receptor() -> Molecule {
    let mut r = generate_receptor(
        "1HUC",
        &ReceptorParams { min_residues: 60, max_residues: 70, hg_fraction: 0.0 },
    );
    assign_ad_types(&mut r);
    molkit::charges::assign_gasteiger(&mut r, &Default::default());
    r
}

fn prepared_ligand() -> PdbqtLigand {
    let mut l =
        generate_ligand("0D6", &LigandParams { min_heavy: 14, max_heavy: 18, hang_fraction: 0.0 });
    assign_ad_types(&mut l);
    molkit::charges::assign_gasteiger(&mut l, &Default::default());
    merge_nonpolar_hydrogens(&mut l);
    let tree = build_torsion_tree(&l);
    PdbqtLigand { mol: l, tree }
}

fn bench_scoring(c: &mut Criterion) {
    let ad4 = Ad4Params::new();
    let vina = VinaParams::default();
    c.bench_function("scoring/ad4_pair", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 0..100 {
                let r = 1.5 + 0.06 * k as f64;
                acc += ad4_pair(black_box(&ad4), AdType::C, AdType::OA, 0.1, -0.3, black_box(r));
            }
            acc
        })
    });
    c.bench_function("scoring/vina_pair", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 0..100 {
                let r = 1.5 + 0.06 * k as f64;
                acc += vina_pair(black_box(&vina), AdType::C, AdType::OA, black_box(r));
            }
            acc
        })
    });
}

fn bench_autogrid(c: &mut Criterion) {
    // Figure/Table component: activity 5 (AutoGrid map generation)
    let receptor = prepared_receptor();
    let spec = GridSpec::with_edge(receptor.centroid(), 16.0, 1.0);
    let types = [AdType::C, AdType::A, AdType::OA, AdType::NA, AdType::HD];
    c.bench_function("autogrid/ad4_maps_17cube", |b| {
        b.iter(|| build_ad4_grids(black_box(&receptor), spec, &types, &Ad4Params::new()))
    });
    c.bench_function("autogrid/vina_maps_17cube", |b| {
        b.iter(|| build_vina_grids(black_box(&receptor), spec, &types, &VinaParams::default()))
    });
}

fn bench_energy_eval(c: &mut Criterion) {
    let receptor = prepared_receptor();
    let lig = prepared_ligand();
    let lm = LigandModel::new(&lig);
    let spec = GridSpec::with_edge(receptor.centroid(), 18.0, 1.0);
    let grids = build_ad4_grids(&receptor, spec, &lig.mol.ad_types(), &Ad4Params::new());
    let em = EnergyModel::new(&grids, &lm).unwrap();
    let pose = Pose::at(receptor.centroid(), lm.torsdof());
    let coords = lm.coords(&pose);
    c.bench_function("energy/pose_apply", |b| {
        let mut buf = Vec::new();
        b.iter(|| lm.apply(black_box(&pose), &mut buf))
    });
    c.bench_function("energy/total_eval", |b| b.iter(|| em.total(black_box(&coords))));

    // ablation: grid interpolation vs exact pairwise sums (the reason
    // AutoGrid exists — same receptor, same pose)
    let direct = DirectEnergy::new(&receptor, GridKind::Ad4);
    c.bench_function("energy/ablation_grid_inter", |b| {
        b.iter(|| em.intermolecular(black_box(&coords)))
    });
    c.bench_function("energy/ablation_direct_inter", |b| {
        b.iter(|| direct.intermolecular(&lm, black_box(&coords)))
    });
}

fn bench_search(c: &mut Criterion) {
    // Table 3 components: one AD4 docking and one Vina docking of a pair
    let receptor = prepared_receptor();
    let lig = prepared_ligand();
    let cfg = DockConfig {
        ad4_runs: 1,
        lga: LgaConfig { population: 10, generations: 8, ..Default::default() },
        mc: McConfig { restarts: 3, steps: 4, ..Default::default() },
        grid_spacing: 1.0,
        box_edge: 16.0,
        ..Default::default()
    };
    c.bench_function("dock/ad4_pair_small", |b| {
        b.iter_batched(
            || (receptor.clone(), lig.clone()),
            |(r, l)| dock(black_box(&r), black_box(&l), EngineKind::Ad4, &cfg).unwrap(),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("dock/vina_pair_small", |b| {
        b.iter_batched(
            || (receptor.clone(), lig.clone()),
            |(r, l)| dock(black_box(&r), black_box(&l), EngineKind::Vina, &cfg).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_preparation(c: &mut Criterion) {
    // activities 1–3: format conversion and preparation
    let raw = generate_ligand("0E6", &LigandParams::default());
    let sdf_text = molkit::formats::sdf::write_sdf(&raw);
    c.bench_function("prep/sdf_parse", |b| {
        b.iter(|| molkit::formats::sdf::read_sdf(black_box(&sdf_text)).unwrap())
    });
    c.bench_function("prep/full_ligand_prep", |b| {
        b.iter_batched(
            || raw.clone(),
            |mut m| {
                assign_ad_types(&mut m);
                molkit::charges::assign_gasteiger(&mut m, &Default::default());
                merge_nonpolar_hydrogens(&mut m);
                build_torsion_tree(&m)
            },
            BatchSize::SmallInput,
        )
    });
    let receptor = prepared_receptor();
    c.bench_function("prep/pocket_detection", |b| {
        b.iter(|| molkit::geometry::find_pocket(black_box(&receptor), 9.0))
    });
    let pdb_text = molkit::formats::pdb::write_pdb(&receptor);
    c.bench_function("prep/pdb_parse_receptor", |b| {
        b.iter(|| molkit::formats::pdb::read_pdb(black_box(&pdb_text)).unwrap())
    });
    let mut v = Vec3::ZERO;
    c.bench_function("prep/rmsd_1k_atoms", |b| {
        let a: Vec<Vec3> = (0..1000).map(|k| Vec3::new(k as f64, 0.0, 0.0)).collect();
        let bb: Vec<Vec3> = (0..1000).map(|k| Vec3::new(k as f64, 1.0, 0.5)).collect();
        b.iter(|| {
            let r = molkit::geometry::rmsd(black_box(&a), black_box(&bb));
            v.x += r;
            r
        })
    });
    black_box(v);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scoring, bench_autogrid, bench_energy_eval, bench_search, bench_preparation
);
criterion_main!(benches);
