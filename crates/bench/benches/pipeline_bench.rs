//! Barrier vs. pipelined dispatch under a straggler-heavy workload.
//!
//! The workload rotates one straggler per stage: pair *p* is slow exactly at
//! activity *p*, every other activation is fast. Under the per-activity
//! barrier executor the wall-clock is the *sum of the per-stage maxima*
//! (every stage waits for its straggler); under the ready-driven pipelined
//! dispatcher it approaches the *slowest single chain*, because each pair's
//! tuple flows into activity N+1 as soon as its own activity-N activation
//! finishes.
//!
//! ```sh
//! cargo bench -p scidock-bench --bench pipeline_bench
//! ```

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use cumulus::localbackend::{DispatchMode, LocalConfig};
use cumulus::workflow::{Activity, ActivityFn, WorkflowDef};
use cumulus::{Backend, LocalBackend, Workflow};
use cumulus::{Relation, Tuple};
use provenance::{ProvenanceStore, Value};

const PAIRS: i64 = 8;
const STAGES: usize = 6;
const SLOW_MS: u64 = 40;
const FAST_MS: u64 = 2;

/// A Map stage that sleeps `SLOW_MS` for the one pair whose id equals this
/// stage's index and `FAST_MS` for everyone else.
fn stage_fn(stage: usize) -> ActivityFn {
    Arc::new(move |tuples, _ctx| {
        let ms = if tuples[0][0] == Value::Int(stage as i64) { SLOW_MS } else { FAST_MS };
        std::thread::sleep(Duration::from_millis(ms));
        Ok(tuples.to_vec())
    })
}

fn straggler_workflow() -> WorkflowDef {
    let activities =
        (0..STAGES).map(|s| Activity::map(&format!("stage_{s}"), &["pair"], stage_fn(s))).collect();
    let deps = (0..STAGES).map(|s| if s == 0 { vec![] } else { vec![s - 1] }).collect();
    WorkflowDef {
        tag: "straggler_chain".into(),
        description: "rotating-straggler Map chain".into(),
        expdir: "/bench".into(),
        activities,
        deps,
    }
}

fn input() -> Relation {
    Relation {
        columns: vec!["pair".into()],
        tuples: (0..PAIRS).map(|i| Tuple::from(vec![Value::Int(i)])).collect(),
    }
}

fn run(mode: DispatchMode) {
    let wf = straggler_workflow();
    let cfg = LocalConfig::new().with_threads(4).with_mode(mode);
    let report = LocalBackend::new(cfg)
        .run(&Workflow::new(wf, input()), &Arc::new(ProvenanceStore::new()))
        .expect("valid workflow");
    assert_eq!(report.finished, PAIRS as usize * STAGES);
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("straggler_dispatch");
    group.sample_size(10);
    group.bench_function("barrier", |b| b.iter(|| run(DispatchMode::Barrier)));
    group.bench_function("pipelined", |b| b.iter(|| run(DispatchMode::Pipelined)));
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
