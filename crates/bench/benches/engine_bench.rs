//! Workflow-engine benchmarks: the DES behind Figures 7–9, the scheduler
//! ablations DESIGN.md calls out, the work-stealing pool, the provenance
//! SQL engine (Queries 1 and 2), and the XML spec parser.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cumulus::pool::Pool;
use cumulus::sched::Policy;
use cumulus::xmlspec::SciCumulusSpec;
use provenance::{ActivationRecord, ActivationStatus, ProvenanceStore};
use scidock::activities::EngineMode;
use scidock::dataset::{LIGAND_CODES, RECEPTOR_IDS};
use scidock::experiments::{simulate_at, SweepConfig};

fn small_sweep() -> SweepConfig {
    SweepConfig {
        receptor_ids: RECEPTOR_IDS[..24].iter().map(|s| s.to_string()).collect(),
        ligand_codes: LIGAND_CODES[..4].iter().map(|s| s.to_string()).collect(),
        ..Default::default()
    }
}

/// Figure 7/8/9 component: the simulated SciDock execution at several fleet
/// sizes (96 pairs × 7 activities = 672 activations per run here).
fn bench_simulation(c: &mut Criterion) {
    let sweep = small_sweep();
    let mut g = c.benchmark_group("simulate");
    for cores in [8u32, 32, 128] {
        g.bench_with_input(BenchmarkId::new("cores", cores), &cores, |b, &cores| {
            b.iter(|| simulate_at(black_box(cores), EngineMode::VinaOnly, &sweep, None))
        });
    }
    g.finish();
}

/// Ablation: scheduling policy (greedy weighted vs round-robin vs random).
fn bench_scheduler_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_policy");
    for (name, policy) in [
        ("greedy", Policy::GreedyWeighted),
        ("round_robin", Policy::RoundRobin),
        ("random", Policy::Random),
    ] {
        let sweep = SweepConfig { policy, ..small_sweep() };
        g.bench_function(name, |b| {
            b.iter(|| simulate_at(32, EngineMode::Ad4Only, black_box(&sweep), None))
        });
    }
    g.finish();
}

/// The work-stealing pool (the MPJ stand-in of the local backend).
fn bench_pool(c: &mut Criterion) {
    let pool = Pool::new(4);
    c.bench_function("pool/map_1k_tiny_jobs", |b| {
        b.iter(|| {
            let items: Vec<u64> = (0..1000).collect();
            pool.map(items, |x| x.wrapping_mul(2654435761))
        })
    });
}

fn populated_store(activations: usize) -> ProvenanceStore {
    let p = ProvenanceStore::new();
    let w = p.begin_workflow("SciDock", "bench", "/root/scidock/");
    let acts: Vec<_> = (0..7).map(|i| p.register_activity(w, &format!("act{i}"), "Map")).collect();
    for k in 0..activations {
        let t = p.record_activation(&ActivationRecord {
            activity: acts[k % acts.len()],
            workflow: w,
            status: ActivationStatus::Finished,
            start_time: k as f64,
            end_time: k as f64 + 1.0 + (k % 13) as f64,
            machine: None,
            retries: 0,
            pair_key: format!("p{k}"),
        });
        if k % 7 == 6 {
            p.record_file(t, acts[6], w, &format!("LIG_{k}.dlg"), 40_000 + k as i64, "/root/exp/");
        }
    }
    p
}

/// Query 1 and Query 2 against a provenance DB of realistic size.
fn bench_provenance_queries(c: &mut Criterion) {
    let p = populated_store(7_000);
    let q1 = "SELECT a.tag, \
                min(extract('epoch' from (t.endtime-t.starttime))), \
                max(extract('epoch' from (t.endtime-t.starttime))), \
                sum(extract('epoch' from (t.endtime-t.starttime))), \
                avg(extract('epoch' from (t.endtime-t.starttime))) \
              FROM hworkflow w, hactivity a, hactivation t \
              WHERE w.wkfid = a.wkfid AND a.actid = t.actid AND w.wkfid = 1 \
              GROUP BY a.tag";
    c.bench_function("provenance/query1_7k_activations", |b| {
        b.iter(|| p.query_rows(black_box(q1), &[]).unwrap())
    });
    let q2 = "SELECT w.tag, a.tag, f.fname, f.fsize, f.fdir \
              FROM hworkflow w, hactivity a, hactivation t, hfile f \
              WHERE w.wkfid = a.wkfid AND a.actid = t.actid AND t.taskid = f.taskid \
              AND f.fname LIKE '%.dlg'";
    c.bench_function("provenance/query2_like_join", |b| {
        b.iter(|| p.query_rows(black_box(q2), &[]).unwrap())
    });
    c.bench_function("provenance/insert_activation", |b| {
        let store = ProvenanceStore::new();
        let w = store.begin_workflow("x", "", "");
        let a = store.register_activity(w, "act", "Map");
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            store.record_activation(&ActivationRecord {
                activity: a,
                workflow: w,
                status: ActivationStatus::Finished,
                start_time: k as f64,
                end_time: k as f64 + 1.0,
                machine: None,
                retries: 0,
                pair_key: "p".into(),
            })
        })
    });
}

/// The XML spec parser (workflow definition loading).
fn bench_xmlspec(c: &mut Criterion) {
    // a spec with 10 activities
    let mut spec = SciCumulusSpec::from_xml(
        r#"<SciCumulus>
  <database name="scicumulus" port="5432" server="localhost"/>
  <SciCumulusWorkflow tag="SciDock" description="Docking" exectag="scidock" expdir="/root/scidock/">
  </SciCumulusWorkflow>
</SciCumulus>"#,
    )
    .unwrap();
    for i in 0..10 {
        spec.activities.push(cumulus::xmlspec::ActivityXml {
            tag: format!("act{i}"),
            templatedir: format!("/root/scidock/template_{i}/"),
            activation: "./experiment.cmd".into(),
            operator: "MAP".into(),
            relations: vec![
                cumulus::xmlspec::RelationSpec {
                    reltype: cumulus::xmlspec::RelType::Input,
                    name: format!("rel_in_{i}"),
                    filename: format!("input_{i}.txt"),
                },
                cumulus::xmlspec::RelationSpec {
                    reltype: cumulus::xmlspec::RelType::Output,
                    name: format!("rel_out_{i}"),
                    filename: format!("output_{i}.txt"),
                },
            ],
            files: vec![cumulus::xmlspec::FileSpec {
                filename: "experiment.cmd".into(),
                instrumented: true,
            }],
        });
    }
    let text = spec.to_xml();
    c.bench_function("xmlspec/parse_10_activities", |b| {
        b.iter(|| SciCumulusSpec::from_xml(black_box(&text)).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulation, bench_scheduler_ablation, bench_pool, bench_provenance_queries, bench_xmlspec
);
criterion_main!(benches);
