//! Workflow spec registry for distributed runs.
//!
//! Activity functions are closures and cannot cross a process boundary, so
//! the distributed backend's master and the `scidock-worker` processes both
//! rebuild the workflow from a spec string. This module is that shared
//! vocabulary:
//!
//! * `scidock:<mode>:<NR>x<NL>` — the real SciDock pipeline over the first
//!   `NR` receptors × `NL` ligands of the Table 2 dataset, with the fast
//!   search budget the integration tests use (`mode` is `ad4`, `vina`, or
//!   `adaptive`).
//! * `unit:spin:<N>:<MS>` — one Map activity over `N` tuples, each
//!   busy-spinning for `MS` milliseconds (CPU-bound; what `dist_bench` uses
//!   to measure multi-process speedup).
//! * `unit:sleep:<N>:<MS>` — same shape but sleeping instead of spinning
//!   (timing-controlled; what the fault drills use).
//!
//! The master resolves a spec with [`resolve_with`] (binding the shared
//! [`FileStore`] so provenance-derived rules like the Hg blacklist see the
//! staged inputs) and stages inputs with [`prepare`]; workers resolve the
//! same spec through [`resolver`] with a store that starts empty and warms
//! lazily through the master fetch protocol.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cumulus::distbackend::worker::WorkflowResolver;
use cumulus::workflow::{Activity, FileStore, WorkflowDef};
use cumulus::Relation;
use provenance::Value;
use scidock::{
    build_scidock, stage_inputs, Dataset, DatasetParams, EngineMode, SciDockConfig, LIGAND_CODES,
    RECEPTOR_IDS,
};

/// The fast search budget shared by every `scidock:` spec (mirrors the
/// integration tests: small LGA/MC budgets, coarse grid).
///
/// `SCIDOCK_GRID_CACHE_DIR`, when set, points every resolved workflow —
/// including the ones dist worker processes resolve, since spawned workers
/// inherit the environment — at one persistent on-disk grid cache, so
/// repeated runs and concurrent campaigns build each receptor's maps once.
fn fast_cfg() -> SciDockConfig {
    SciDockConfig {
        dock: docking::engine::DockConfig {
            ad4_runs: 1,
            lga: docking::search::LgaConfig { population: 6, generations: 4, ..Default::default() },
            mc: docking::search::McConfig { restarts: 2, steps: 3, ..Default::default() },
            grid_spacing: 1.5,
            box_edge: 14.0,
            ..Default::default()
        },
        hg_rule: true,
        grid_cache_dir: std::env::var_os("SCIDOCK_GRID_CACHE_DIR").map(std::path::PathBuf::from),
        ..Default::default()
    }
}

fn scidock_parts(spec: &str) -> Option<(EngineMode, usize, usize)> {
    let rest = spec.strip_prefix("scidock:")?;
    let (mode, size) = rest.split_once(':')?;
    let mode = match mode {
        "ad4" => EngineMode::Ad4Only,
        "vina" => EngineMode::VinaOnly,
        "adaptive" => EngineMode::Adaptive,
        _ => return None,
    };
    let (nr, nl) = size.split_once('x')?;
    let (nr, nl) = (nr.parse().ok()?, nl.parse().ok()?);
    if nr == 0 || nl == 0 || nr > RECEPTOR_IDS.len() || nl > LIGAND_CODES.len() {
        return None;
    }
    Some((mode, nr, nl))
}

fn scidock_dataset(nr: usize, nl: usize) -> Dataset {
    let ids: Vec<&str> = RECEPTOR_IDS[..nr].to_vec();
    let codes: Vec<&str> = LIGAND_CODES[..nl].to_vec();
    Dataset::subset(&ids, &codes, DatasetParams::default())
}

fn unit_parts(spec: &str) -> Option<(&'static str, usize, u64)> {
    let rest = spec.strip_prefix("unit:")?;
    let (kind, size) = rest.split_once(':')?;
    let kind = match kind {
        "spin" => "spin",
        "sleep" => "sleep",
        _ => return None,
    };
    let (n, ms) = size.split_once(':')?;
    Some((kind, n.parse().ok()?, ms.parse().ok()?))
}

fn unit_def(kind: &'static str, ms: u64) -> WorkflowDef {
    WorkflowDef {
        tag: format!("unit-{kind}"),
        description: format!("synthetic {kind} workload, {ms}ms per activation"),
        expdir: "/exp/unit".into(),
        activities: vec![Activity::map(
            kind,
            &["x"],
            Arc::new(move |t, _| {
                match kind {
                    "sleep" => std::thread::sleep(Duration::from_millis(ms)),
                    _ => {
                        let until = Instant::now() + Duration::from_millis(ms);
                        let mut x = 0u64;
                        while Instant::now() < until {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        }
                        std::hint::black_box(x);
                    }
                }
                Ok(t.to_vec())
            }),
        )],
        deps: vec![vec![]],
    }
}

/// Resolve a spec with an explicit shared file store (master side: the
/// SciDock Hg blacklist rule reads staged receptors from it).
pub fn resolve_with(spec: &str, files: &Arc<FileStore>) -> Option<WorkflowDef> {
    if let Some((mode, nr, nl)) = scidock_parts(spec) {
        let _ = scidock_dataset(nr, nl); // validate the range eagerly
        return Some(build_scidock(mode, &fast_cfg(), Arc::clone(files)));
    }
    let (kind, _, ms) = unit_parts(spec)?;
    Some(unit_def(kind, ms))
}

/// Resolve a spec with a fresh, empty file store (worker side).
pub fn resolve(spec: &str) -> Option<WorkflowDef> {
    resolve_with(spec, &Arc::new(FileStore::new()))
}

/// The resolver the `scidock-worker` binary (and in-process test workers)
/// hand to [`cumulus::distbackend::worker::serve`].
pub fn resolver() -> WorkflowResolver {
    Arc::new(resolve)
}

/// Master-side preparation: stage any input files the spec needs into the
/// shared store and return the workflow's input relation.
pub fn prepare(spec: &str, files: &FileStore) -> Option<Relation> {
    if let Some((_, nr, nl)) = scidock_parts(spec) {
        let ds = scidock_dataset(nr, nl);
        return Some(stage_inputs(&ds, files, &fast_cfg().expdir));
    }
    let (_, n, _) = unit_parts(spec)?;
    let mut r = Relation::new(&["x"]);
    for i in 0..n {
        r.push(vec![Value::Int(i as i64)]);
    }
    Some(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_resolve_and_prepare() {
        let files = FileStore::new();
        assert_eq!(prepare("unit:spin:8:5", &files).unwrap().len(), 8);
        assert_eq!(resolve("unit:sleep:3:1").unwrap().activities.len(), 1);
        assert!(resolve("scidock:adaptive:2x2").is_some());
        assert!(prepare("scidock:ad4:1x2", &files).is_some());
        assert!(!files.is_empty(), "scidock prepare stages structure files");
        for bad in ["", "unit:", "unit:spin:x:5", "scidock:warp:1x1", "scidock:ad4:0x4", "nope:1"] {
            assert!(resolve(bad).is_none(), "{bad:?} must not resolve");
        }
    }

    #[test]
    fn unit_specs_echo_their_input() {
        let def = resolve("unit:spin:4:0").unwrap();
        def.validate().unwrap();
        let files = Arc::new(FileStore::new());
        let prov = Arc::new(provenance::ProvenanceStore::new());
        let input = prepare("unit:spin:4:0", &files).unwrap();
        let backend = cumulus::LocalBackend::new(cumulus::LocalConfig::new().with_threads(2));
        let wf = cumulus::Workflow::new(def, input).with_files(files);
        let report = cumulus::Backend::run(&backend, &wf, &prov).unwrap();
        assert_eq!(report.finished, 4);
        let mut got: Vec<i64> = report
            .outputs
            .last()
            .unwrap()
            .tuples
            .iter()
            .map(|t| match t[0] {
                Value::Int(i) => i,
                _ => -1,
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
