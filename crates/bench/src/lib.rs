//! # scidock-bench — benchmark harness
//!
//! Hosts the Criterion micro-benchmarks (`benches/`) and the `figures`
//! binary that regenerates every table and figure of the paper's evaluation
//! section (see EXPERIMENTS.md at the workspace root).

#![warn(missing_docs)]

/// Shared helpers for the benches and the figures binary.
pub mod util {
    /// Render seconds as a short human-friendly duration.
    pub fn human_time(s: f64) -> String {
        if s >= 86_400.0 {
            format!("{:.1} d", s / 86_400.0)
        } else if s >= 3_600.0 {
            format!("{:.1} h", s / 3_600.0)
        } else if s >= 60.0 {
            format!("{:.1} m", s / 60.0)
        } else {
            format!("{s:.1} s")
        }
    }

    /// A fixed-width ASCII bar for histogram rendering.
    pub fn bar(count: usize, max: usize, width: usize) -> String {
        if max == 0 {
            return String::new();
        }
        let n = (count * width).div_ceil(max);
        "#".repeat(n)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn human_time_units() {
            assert_eq!(human_time(30.0), "30.0 s");
            assert_eq!(human_time(120.0), "2.0 m");
            assert_eq!(human_time(7200.0), "2.0 h");
            assert_eq!(human_time(2.0 * 86_400.0), "2.0 d");
        }

        #[test]
        fn bar_scaling() {
            assert_eq!(bar(10, 10, 20), "#".repeat(20));
            assert_eq!(bar(5, 10, 20), "#".repeat(10));
            assert_eq!(bar(0, 10, 20), "");
            assert_eq!(bar(1, 0, 20), "");
        }
    }
}
