//! # scidock-bench — benchmark harness
//!
//! Hosts the Criterion micro-benchmarks (`benches/`) and the `figures`
//! binary that regenerates every table and figure of the paper's evaluation
//! section (see EXPERIMENTS.md at the workspace root).

#![warn(missing_docs)]

pub mod distspec;

/// Machine-readable JSON sidecar for the `figures` binary: each figure or
/// table pushes its series as a pre-rendered JSON value under a key, and the
/// whole collection is written as one object so bench trajectories can be
/// diffed across PRs without scraping the text output.
pub mod sidecar {
    use telemetry::json;

    /// Version of the sidecar envelope shared by every bench binary
    /// (`dock_bench.json`, `dist_bench.json`, `fleet_bench.json`,
    /// `figures.json`). Emitted as the first key of [`Sidecar::to_json`];
    /// bump it whenever a key is renamed or its value shape changes.
    pub const SCHEMA_VERSION: u64 = 1;

    /// Accumulates `(key, json_value)` entries in insertion order.
    #[derive(Debug, Default)]
    pub struct Sidecar {
        entries: Vec<(String, String)>,
    }

    impl Sidecar {
        /// Empty sidecar.
        pub fn new() -> Sidecar {
            Sidecar::default()
        }

        /// Add a figure under `key`; `value` must already be valid JSON.
        pub fn push(&mut self, key: &str, value: String) {
            debug_assert!(json::validate(&value).is_ok(), "invalid JSON for {key}: {value}");
            self.entries.push((key.to_string(), value));
        }

        /// Embed the final [`telemetry::MetricsSnapshot`] of the run that
        /// produced this sidecar under the `"metrics"` key.
        pub fn push_metrics(&mut self, snap: &telemetry::MetricsSnapshot) {
            self.push("metrics", snap.to_json());
        }

        /// Any figures recorded?
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        /// Render the whole collection as one JSON object, led by the
        /// `"schema"` envelope version.
        pub fn to_json(&self) -> String {
            let mut out = format!("{{\"schema\":{SCHEMA_VERSION}");
            for (k, v) in self.entries.iter() {
                out.push(',');
                out.push('"');
                out.push_str(&json::escape(k));
                out.push_str("\":");
                out.push_str(v);
            }
            out.push('}');
            out
        }

        /// Write the collection to `path`, creating parent directories.
        pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            std::fs::write(path, self.to_json())
        }
    }

    /// Render a slice of `f64` as a JSON array.
    pub fn num_array(vals: &[f64]) -> String {
        let body: Vec<String> = vals.iter().map(|v| json::num(*v)).collect();
        format!("[{}]", body.join(","))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn sidecar_renders_valid_json() {
            let mut sc = Sidecar::new();
            assert!(sc.is_empty());
            sc.push("fig7", format!("{{\"cores\":[2,4],\"tet_s\":{}}}", num_array(&[9.5, 4.75])));
            sc.push("headline", "{\"speedup_at_16\":13.1}".to_string());
            let out = sc.to_json();
            telemetry::json::validate(&out).expect("sidecar output is well-formed JSON");
            assert!(out.starts_with(&format!("{{\"schema\":{SCHEMA_VERSION},\"fig7\":")));
            assert!(out.contains("\"headline\":{"));
        }

        #[test]
        fn empty_sidecar_still_carries_the_schema_version() {
            let sc = Sidecar::new();
            assert_eq!(sc.to_json(), format!("{{\"schema\":{SCHEMA_VERSION}}}"));
        }

        #[test]
        fn push_metrics_embeds_a_snapshot_object() {
            let tel = telemetry::Telemetry::attached();
            tel.count("worker.finished", 3);
            let mut sc = Sidecar::new();
            sc.push_metrics(&tel.snapshot().expect("attached"));
            let out = sc.to_json();
            telemetry::json::validate(&out).expect("valid JSON");
            assert!(out.contains("\"metrics\":{"));
            assert!(out.contains("\"worker.finished\":3"));
        }

        #[test]
        fn num_array_handles_empty_and_non_finite() {
            assert_eq!(num_array(&[]), "[]");
            assert_eq!(num_array(&[1.0, f64::NAN, 2.5]), "[1,null,2.5]");
        }
    }
}

/// Shared helpers for the benches and the figures binary.
pub mod util {
    /// Render seconds as a short human-friendly duration.
    pub fn human_time(s: f64) -> String {
        if s >= 86_400.0 {
            format!("{:.1} d", s / 86_400.0)
        } else if s >= 3_600.0 {
            format!("{:.1} h", s / 3_600.0)
        } else if s >= 60.0 {
            format!("{:.1} m", s / 60.0)
        } else {
            format!("{s:.1} s")
        }
    }

    /// A fixed-width ASCII bar for histogram rendering.
    pub fn bar(count: usize, max: usize, width: usize) -> String {
        if max == 0 {
            return String::new();
        }
        let n = (count * width).div_ceil(max);
        "#".repeat(n)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn human_time_units() {
            assert_eq!(human_time(30.0), "30.0 s");
            assert_eq!(human_time(120.0), "2.0 m");
            assert_eq!(human_time(7200.0), "2.0 h");
            assert_eq!(human_time(2.0 * 86_400.0), "2.0 d");
        }

        #[test]
        fn bar_scaling() {
            assert_eq!(bar(10, 10, 20), "#".repeat(20));
            assert_eq!(bar(5, 10, 20), "#".repeat(10));
            assert_eq!(bar(0, 10, 20), "");
            assert_eq!(bar(1, 0, 20), "");
        }
    }
}
