//! `scidock-top` — a one-screen live view of a running campaign, fed by the
//! observability endpoint (`DistConfig::with_metrics_addr` /
//! `LocalConfig::with_metrics_addr`).
//!
//! ```text
//! scidock-top 127.0.0.1:9099            # refresh every 2 s until ^C
//! scidock-top 127.0.0.1:9099 --once     # single snapshot (no screen clear)
//! scidock-top 127.0.0.1:9099 --interval 0.5
//! ```
//!
//! Scrapes `/healthz`, `/metrics`, and `/events` with the std-only TCP
//! client (`cumulus::obs::http_get`) — no curl, no HTTP library — and
//! renders fleet health, the campaign counters, per-activity latency
//! summaries, and the tail of the structured event log.
//!
//! Pointed at a `scidockd` endpoint it additionally renders a per-campaign
//! panel (id, tenant, state, done/total, p95) from `/campaigns`; against a
//! pre-campaign endpoint (a plain local or distributed run, which 404s
//! that route) the panel is simply omitted — no error, no retry.

use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

use cumulus::obs::http_get;
use scidock_bench::util::bar;
use telemetry::prom::{self, Sample};

const TIMEOUT: Duration = Duration::from_secs(3);
const EVENT_TAIL: usize = 8;

fn usage() -> ! {
    eprintln!("usage: scidock-top <host:port> [--interval SECONDS] [--once]");
    std::process::exit(2);
}

/// First string value of `"key":"…"` in a JSON object rendered by the
/// endpoint (`HealthView::to_json` emits no nested strings before `workers`,
/// and worker objects carry only numbers/bools, so a flat scan is exact).
fn json_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = obj.find(&pat)? + pat.len();
    obj[start..].find('"').map(|end| obj[start..start + end].to_string())
}

/// First numeric value of `"key":N`.
fn json_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-' || c == '.' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// First boolean value of `"key":true|false`.
fn json_bool(obj: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// The `workers` array of a `/healthz` body, one object string per worker.
fn worker_objects(health: &str) -> Vec<&str> {
    let Some(start) = health.find("\"workers\":[") else { return Vec::new() };
    let body = &health[start + "\"workers\":[".len()..];
    let Some(end) = body.find(']') else { return Vec::new() };
    body[..end].split("},{").filter(|s| !s.is_empty()).collect()
}

/// The objects of a `/campaigns` array body, one string per campaign.
fn campaign_objects(body: &str) -> Vec<&str> {
    let inner = body.trim().trim_start_matches('[').trim_end_matches(']');
    inner.split("},{").filter(|s| !s.trim().is_empty()).collect()
}

fn sample_value<'a>(samples: &'a [Sample], name: &str) -> Option<&'a Sample> {
    samples.iter().find(|s| s.name == name)
}

fn counter(samples: &[Sample], short: &str) -> u64 {
    sample_value(samples, &format!("scidock_{}_total", prom::sanitize(short)))
        .map(|s| s.value as u64)
        .unwrap_or(0)
}

fn render(addr: SocketAddr, health: &str, metrics: &str, events: &str, campaigns: Option<&str>) {
    let samples = prom::parse(metrics).unwrap_or_default();
    let phase = json_str(health, "phase").unwrap_or_else(|| "?".into());
    let fleet = json_num(health, "fleet").unwrap_or(0.0) as u64;

    let finished = counter(&samples, "worker.finished");
    let failed = counter(&samples, "worker.failed");
    let stragglers = counter(&samples, "dist.stragglers");
    println!(
        "scidock-top — {addr}  phase={phase}  fleet={fleet}  \
         finished={finished}  failed={failed}  stragglers={stragglers}"
    );

    // per-campaign panel: only a scidockd endpoint serves /campaigns
    if let Some(body) = campaigns {
        let rows = campaign_objects(body);
        if !rows.is_empty() {
            println!();
            println!(
                "{:>4} {:<12} {:<10} {:>12} {:>9}",
                "id", "tenant", "state", "done/total", "p95_ms"
            );
            for c in &rows {
                let done = json_num(c, "done").unwrap_or(0.0) as u64;
                let total = json_num(c, "total").unwrap_or(0.0) as u64;
                println!(
                    "{:>4} {:<12} {:<10} {:>12} {:>9.1}",
                    json_num(c, "id").unwrap_or(-1.0) as i64,
                    json_str(c, "tenant").unwrap_or_else(|| "?".into()),
                    json_str(c, "state").unwrap_or_else(|| "?".into()),
                    format!("{done}/{total}"),
                    json_num(c, "p95_ms").unwrap_or(0.0),
                );
            }
        }
    }

    let workers = worker_objects(health);
    if !workers.is_empty() {
        println!();
        println!(
            "{:>4} {:>6} {:>9} {:>13} {:>10} {:>11}",
            "id", "alive", "draining", "last_seen_ms", "in_flight", "stragglers"
        );
        for w in &workers {
            println!(
                "{:>4} {:>6} {:>9} {:>13} {:>10} {:>11}",
                json_num(w, "id").unwrap_or(-1.0) as i64,
                if json_bool(w, "alive").unwrap_or(false) { "up" } else { "DOWN" },
                if json_bool(w, "draining").unwrap_or(false) { "yes" } else { "-" },
                json_num(w, "last_seen_ms").unwrap_or(0.0) as u64,
                json_num(w, "in_flight").unwrap_or(0.0) as u64,
                json_num(w, "stragglers").unwrap_or(0.0) as u64,
            );
        }
    }

    // per-activity latency summaries: scidock_activation_<tag>_seconds{quantile=…}
    let mut acts: Vec<(&str, f64, f64, f64)> = Vec::new(); // (name, count, p50, p95)
    for s in &samples {
        if !s.name.starts_with("scidock_activation_") || !s.name.ends_with("_seconds_count") {
            continue;
        }
        let base = &s.name[..s.name.len() - "_count".len()];
        let q = |want: &str| {
            samples
                .iter()
                .find(|x| {
                    x.name == base && x.labels.iter().any(|(k, v)| k == "quantile" && v == want)
                })
                .map(|x| x.value)
                .unwrap_or(0.0)
        };
        let tag = &base["scidock_activation_".len()..base.len() - "_seconds".len()];
        acts.push((tag, s.value, q("0.5"), q("0.95")));
    }
    if !acts.is_empty() {
        println!();
        println!("{:<28} {:>8} {:>10} {:>10}", "activity", "count", "p50_s", "p95_s");
        let max = acts.iter().map(|a| a.1 as usize).max().unwrap_or(0);
        for (name, count, p50, p95) in &acts {
            println!(
                "{name:<28} {count:>8} {p50:>10.3} {p95:>10.3}  {}",
                bar(*count as usize, max, 24)
            );
        }
    }

    let tail: Vec<&str> = events.lines().rev().take(EVENT_TAIL).collect();
    if !tail.is_empty() {
        println!();
        println!("last {} events (of {}):", tail.len(), events.lines().count());
        for line in tail.iter().rev() {
            let kind = json_str(line, "kind").unwrap_or_else(|| "?".into());
            let sev = json_str(line, "sev").unwrap_or_else(|| "?".into());
            let seq = json_num(line, "seq").unwrap_or(0.0) as u64;
            let t = json_num(line, "t_s").unwrap_or(0.0);
            println!("  #{seq:<5} {t:>9.3}s {sev:<5} {kind}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let once = args.iter().any(|a| a == "--once");
    let interval = args
        .iter()
        .position(|a| a == "--interval")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(2.0)
        .max(0.1);
    let addr_arg = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--")
                && i.checked_sub(1).and_then(|p| args.get(p)).map(String::as_str)
                    != Some("--interval")
        })
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| usage());
    let addr: SocketAddr = match addr_arg.to_socket_addrs().ok().and_then(|mut it| it.next()) {
        Some(a) => a,
        None => {
            eprintln!("scidock-top: cannot resolve {addr_arg}");
            std::process::exit(2);
        }
    };

    loop {
        let fetched = (|| -> std::io::Result<(String, String, String, Option<String>)> {
            let (hs, health) = http_get(addr, "/healthz", TIMEOUT)?;
            let (ms, metrics) = http_get(addr, "/metrics", TIMEOUT)?;
            let (es, events) = http_get(addr, "/events", TIMEOUT)?;
            if hs != 200 || ms != 200 || es != 200 {
                return Err(std::io::Error::other(format!(
                    "endpoint returned {hs}/{ms}/{es} for /healthz,/metrics,/events"
                )));
            }
            // pre-campaign endpoints 404 this route: fall back to no panel
            let campaigns = match http_get(addr, "/campaigns", TIMEOUT) {
                Ok((200, body)) => Some(body),
                _ => None,
            };
            Ok((health, metrics, events, campaigns))
        })();
        match fetched {
            Ok((health, metrics, events, campaigns)) => {
                if !once {
                    print!("\x1b[2J\x1b[H"); // clear screen, home cursor
                }
                render(addr, &health, &metrics, &events, campaigns.as_deref());
            }
            Err(e) => {
                eprintln!("scidock-top: {addr}: {e}");
                if once {
                    std::process::exit(1);
                }
            }
        }
        if once {
            return;
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}
