//! Docking-kernel benchmark: measures the three optimizations of the fast
//! docking path against the retained naive reference kernels and *asserts*
//! they agree bit-for-bit.
//!
//! 1. **Grid build** — naive all-atoms scan ([`docking::autogrid::reference`])
//!    vs the cell-list kernel, serial and with a thread fan across z-slabs.
//! 2. **Energy inner loop** — the per-eval map-lookup path
//!    (`Evaluator::new_reference`) vs the resolved-pointer, stencil-sharing
//!    loop (`Evaluator::new`).
//! 3. **SoA energy kernel** — the retained PR-4 scalar per-atom loop
//!    (`total_scalar`) vs the restructured SoA sweep + d²-prefiltered
//!    intramolecular term (`total`), and batched whole-population scoring
//!    (`total_batch`) vs one `total` call per pose.
//! 4. **Persistent grid cache** — cold (build + persist) vs warm (load the
//!    `SDGC1` entry from disk) through `GridCache::persistent`.
//! 5. **End-to-end AD4 pair** — the pre-PR serial path (naive grids +
//!    reference evaluator + one LGA run after another) vs the steady-state
//!    campaign path (warm persistent cache + `dock_with_grids` with
//!    `threads` = core count).
//!
//! ```sh
//! cargo run --release -p scidock-bench --bin dock_bench            # full
//! cargo run --release -p scidock-bench --bin dock_bench -- --smoke # CI
//! ```
//!
//! Exit code 1 if any parity assertion fails or a speedup gate is missed.
//! The thread-scaling gates (grid ≥ 2×, end-to-end ≥ 4×) only arm on
//! machines with ≥ 4 cores; below that the fan cannot pay for itself and the
//! gates fall back to single-thread algorithmic floors (cell list ≥ 1.2× on
//! the grid build, fast path ≥ 1.6× end-to-end). The kernel floors
//! (SoA ≥ scalar, batch no slower than per-pose) and the warm-cache floor arm on every
//! machine. All floors are overridable via `DOCK_BENCH_MIN_GRID_SPEEDUP`,
//! `DOCK_BENCH_MIN_E2E_SPEEDUP`, `DOCK_BENCH_MIN_SOA_SPEEDUP`,
//! `DOCK_BENCH_MIN_BATCH_SPEEDUP`, and `DOCK_BENCH_MIN_CACHE_SPEEDUP`.
//! Results land in `target/dock_bench.json`.

use std::sync::Arc;
use std::time::Instant;

use cumulus::workflow::FileStore;
use scidock::activities::GridCache;

use docking::autogrid::{
    build_ad4_grids, build_ad4_grids_threads, effective_threads, reference, GridSet,
};
use docking::conformation::LigandModel;
use docking::energy::EnergyModel;
use docking::engine::{dock_with_grids, make_grid_spec, DockConfig, EngineKind};
use docking::params::Ad4Params;
use docking::search::{random_pose, run_lga, Evaluator, LgaConfig, ScoredPose};
use molkit::formats::pdbqt::PdbqtLigand;
use molkit::synth::{generate_ligand, generate_receptor, LigandParams, ReceptorParams};
use molkit::torsion::build_torsion_tree;
use molkit::typer::{assign_ad_types, merge_nonpolar_hydrogens};
use molkit::Molecule;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use scidock_bench::sidecar::Sidecar;
use telemetry::json;

fn prepared_receptor() -> Molecule {
    // a mid-size receptor (paper-scale targets run hundreds of residues);
    // the cell list's edge over the all-atoms scan grows with atom count
    let mut r = generate_receptor(
        "1HUC",
        &ReceptorParams { min_residues: 180, max_residues: 200, hg_fraction: 0.0 },
    );
    assign_ad_types(&mut r);
    molkit::charges::assign_gasteiger(&mut r, &Default::default());
    // roundtrip through PDBQT text, exactly as the pipeline stages
    // receptors: the grid cache keys and builds from this text, so every
    // path below must see the same (3-decimal) coordinates
    molkit::formats::pdbqt::read_receptor_pdbqt(&molkit::formats::pdbqt::write_receptor_pdbqt(&r))
        .expect("pdbqt roundtrip")
}

fn prepared_ligand() -> PdbqtLigand {
    let mut l =
        generate_ligand("0D6", &LigandParams { min_heavy: 14, max_heavy: 18, hang_fraction: 0.0 });
    assign_ad_types(&mut l);
    molkit::charges::assign_gasteiger(&mut l, &Default::default());
    merge_nonpolar_hydrogens(&mut l);
    let tree = build_torsion_tree(&l);
    PdbqtLigand { mol: l, tree }
}

fn bench_cfg(threads: usize) -> DockConfig {
    DockConfig {
        seed: 7,
        ad4_runs: 4,
        lga: LgaConfig { population: 14, generations: 10, ..Default::default() },
        grid_spacing: 0.75,
        box_edge: 18.0,
        threads,
        ..Default::default()
    }
}

/// Median wall-clock seconds of `reps` runs of `f` (first run pays warm-up).
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Bitwise comparison of every map in two grid sets.
fn assert_grids_identical(a: &GridSet, b: &GridSet, what: &str) {
    assert_eq!(a.affinity.len(), b.affinity.len(), "{what}: map count");
    for (t, ma) in &a.affinity {
        let mb = &b.affinity[t];
        assert!(ma.values() == mb.values(), "{what}: affinity map {t:?} differs");
    }
    let pairs = [
        (a.electrostatic.as_ref(), b.electrostatic.as_ref(), "e"),
        (a.desolvation.as_ref(), b.desolvation.as_ref(), "d"),
    ];
    for (ma, mb, tag) in pairs {
        match (ma, mb) {
            (Some(x), Some(y)) => {
                assert!(x.values() == y.values(), "{what}: {tag} map differs")
            }
            (None, None) => {}
            _ => panic!("{what}: {tag} map presence differs"),
        }
    }
}

/// The pre-PR serial AD4 search: naive grids are built by the caller; here
/// each run gets its `seed + i` stream (exactly the old loop) and a
/// reference-path evaluator, one run after another on one thread.
fn legacy_lga_runs(
    em: &EnergyModel<'_>,
    grids: &GridSet,
    lm: &LigandModel,
    cfg: &DockConfig,
) -> Vec<ScoredPose> {
    let mut runs = Vec::with_capacity(cfg.ad4_runs);
    for i in 0..cfg.ad4_runs {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed.wrapping_add(i as u64));
        let mut ev = Evaluator::new_reference(em);
        runs.push(run_lga(&mut ev, &grids.spec, lm, &cfg.lga, &mut rng));
    }
    runs.sort_by(|a, b| a.energy.total_cmp(&b.energy));
    runs
}

fn gate(name: &str, speedup: f64, floor: f64, failures: &mut Vec<String>) {
    let verdict = if speedup >= floor { "ok" } else { "FAIL" };
    println!("  gate {name}: {speedup:.2}x (floor {floor:.2}x) .. {verdict}");
    if speedup < floor {
        failures.push(format!("{name}: {speedup:.2}x < {floor:.2}x"));
    }
}

fn env_floor(var: &str, default: f64) -> f64 {
    std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let cores = effective_threads(0);
    let reps = if smoke { 3 } else { 7 };
    let mut failures: Vec<String> = Vec::new();
    let mut sc = Sidecar::new();

    let receptor = prepared_receptor();
    let lig = prepared_ligand();
    let cfg = bench_cfg(cores);
    let spec = make_grid_spec(&receptor, &lig, &cfg).expect("pocket");
    let types = lig.mol.ad_types();
    let params = Ad4Params::new();
    println!(
        "dock_bench: {} receptor atoms, {} ligand atoms, {}^3 grid, {} cores, {reps} reps",
        receptor.atoms.len(),
        lig.mol.atoms.len(),
        spec.npts,
        cores
    );

    // -- 1. grid build ------------------------------------------------------
    let naive = reference::build_ad4_grids(&receptor, spec, &types, &params);
    let cell = build_ad4_grids(&receptor, spec, &types, &params);
    let fanned = build_ad4_grids_threads(&receptor, spec, &types, &params, cores);
    assert_grids_identical(&naive, &cell, "cell-list vs naive");
    assert_grids_identical(&naive, &fanned, "threaded vs naive");
    println!("parity: cell-list and threaded grid builds are bit-identical to naive");

    let t_naive =
        time_median(reps, || reference::build_ad4_grids(&receptor, spec, &types, &params));
    let t_cell = time_median(reps, || build_ad4_grids(&receptor, spec, &types, &params));
    let t_fan =
        time_median(reps, || build_ad4_grids_threads(&receptor, spec, &types, &params, cores));
    let grid_serial_speedup = t_naive / t_cell;
    let grid_fan_speedup = t_naive / t_fan;
    println!(
        "grid build: naive {:.1} ms | cell-list {:.1} ms ({grid_serial_speedup:.2}x) | \
         {} threads {:.1} ms ({grid_fan_speedup:.2}x)",
        t_naive * 1e3,
        t_cell * 1e3,
        cores,
        t_fan * 1e3
    );

    // -- 2. energy inner loop ----------------------------------------------
    let lm = LigandModel::new(&lig);
    let em = EnergyModel::new(&naive, &lm).expect("full type superset");
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let poses: Vec<_> = (0..200).map(|_| random_pose(&spec, lm.torsdof(), &mut rng)).collect();
    {
        let mut fast = Evaluator::new(&em);
        let mut refr = Evaluator::new_reference(&em);
        for p in &poses {
            assert_eq!(fast.energy(p).to_bits(), refr.energy(p).to_bits(), "energy parity");
        }
    }
    println!("parity: optimized energy loop is bit-identical to reference on 200 poses");
    let t_eref = time_median(reps, || {
        let mut ev = Evaluator::new_reference(&em);
        poses.iter().map(|p| ev.energy(p)).sum::<f64>()
    });
    let t_efast = time_median(reps, || {
        let mut ev = Evaluator::new(&em);
        poses.iter().map(|p| ev.energy(p)).sum::<f64>()
    });
    let energy_speedup = t_eref / t_efast;
    println!(
        "energy loop (200 poses): reference {:.2} ms | optimized {:.2} ms ({energy_speedup:.2}x)",
        t_eref * 1e3,
        t_efast * 1e3
    );

    // -- 3. SoA kernel and batched scoring ---------------------------------
    // parity across all three tiers on applied coordinates, then the two
    // kernel-level floors: SoA sweep vs the retained PR-4 scalar loop, and
    // one whole-population batch call vs a per-pose loop over `total`
    let applied: Vec<Vec<molkit::Vec3>> = poses.iter().map(|p| lm.coords(p)).collect();
    for c in &applied {
        let fast = em.total(c);
        assert_eq!(fast.to_bits(), em.total_scalar(c).to_bits(), "SoA vs scalar parity");
        assert_eq!(fast.to_bits(), em.total_reference(c).to_bits(), "SoA vs naive parity");
    }
    let natoms = lm.atom_count();
    let flat: Vec<molkit::Vec3> = applied.iter().flat_map(|c| c.iter().copied()).collect();
    let mut batch_out = vec![0.0; poses.len()];
    em.total_batch(&flat, &mut batch_out);
    for (o, c) in batch_out.iter().zip(&applied) {
        assert_eq!(o.to_bits(), em.total(c).to_bits(), "batched vs per-pose parity");
    }
    println!(
        "parity: SoA, scalar, naive, and batched kernels agree bit-for-bit on {} poses",
        poses.len()
    );
    // microsecond-scale sections: extra reps are cheap and cut scheduler
    // noise out of the median
    let kreps = reps.max(9);
    let t_scalar = time_median(kreps, || applied.iter().map(|c| em.total_scalar(c)).sum::<f64>());
    let t_soa = time_median(kreps, || applied.iter().map(|c| em.total(c)).sum::<f64>());
    let t_batch = time_median(kreps, || {
        let mut out = vec![0.0; flat.len() / natoms];
        em.total_batch(&flat, &mut out);
        out.iter().sum::<f64>()
    });
    let soa_speedup = t_scalar / t_soa;
    let batch_speedup = t_soa / t_batch;
    println!(
        "SoA kernel ({} poses): scalar {:.2} ms | SoA {:.2} ms ({soa_speedup:.2}x) | \
         batched {:.2} ms ({batch_speedup:.2}x over per-pose)",
        poses.len(),
        t_scalar * 1e3,
        t_soa * 1e3,
        t_batch * 1e3
    );

    // -- 4. persistent grid cache: cold build+persist vs warm load ----------
    let cache_dir = std::path::PathBuf::from("target/dock_bench_gridcache");
    let receptor_text = molkit::formats::pdbqt::write_receptor_pdbqt(&receptor);
    let cache_cfg = bench_cfg(cores);
    let cached = {
        // warm load returns exactly what the cold build produced
        let _ = std::fs::remove_dir_all(&cache_dir);
        let cold = GridCache::persistent(&cache_dir, Arc::new(FileStore::new()));
        let built =
            cold.get_or_build("1HUC", &receptor_text, EngineKind::Ad4, &cache_cfg).expect("build");
        let warm = GridCache::persistent(&cache_dir, Arc::new(FileStore::new()));
        let loaded =
            warm.get_or_build("1HUC", &receptor_text, EngineKind::Ad4, &cache_cfg).expect("load");
        assert_grids_identical(&built, &loaded, "warm cache vs cold build");
        // the cache derives the same box as make_grid_spec for this pair, so
        // cached maps are interchangeable with the bench's — every affinity
        // map the ligand needs is bit-identical to the naive build
        assert_eq!(loaded.spec, spec, "cache box must match the bench grid spec");
        for t in &types {
            assert!(
                loaded.affinity[t].values() == naive.affinity[t].values(),
                "cached affinity map {t:?} differs from naive"
            );
        }
        loaded
    };
    println!("parity: warm-cache grids are bit-identical to the cold build and the naive build");
    let t_cache_cold = time_median(reps, || {
        let _ = std::fs::remove_dir_all(&cache_dir);
        let c = GridCache::persistent(&cache_dir, Arc::new(FileStore::new()));
        c.get_or_build("1HUC", &receptor_text, EngineKind::Ad4, &cache_cfg).expect("cold build")
    });
    let t_cache_warm = time_median(reps, || {
        // a fresh cache instance each rep: empty memory tier, entry on disk
        let c = GridCache::persistent(&cache_dir, Arc::new(FileStore::new()));
        c.get_or_build("1HUC", &receptor_text, EngineKind::Ad4, &cache_cfg).expect("warm load")
    });
    let cache_speedup = t_cache_cold / t_cache_warm;
    println!(
        "persistent cache: cold build+persist {:.1} ms | warm load {:.1} ms ({cache_speedup:.2}x)",
        t_cache_cold * 1e3,
        t_cache_warm * 1e3
    );
    // -- 5. end-to-end AD4 pair --------------------------------------------
    // parity first: the fast path (warm-cache grids + batched search) must
    // reproduce the legacy run set exactly
    let legacy_runs = legacy_lga_runs(&em, &naive, &lm, &cfg);
    let fast_result = dock_with_grids(&cached, "1HUC", &lig, EngineKind::Ad4, &cfg).expect("dock");
    let legacy_best = lm.coords(&legacy_runs[0].pose);
    assert_eq!(
        legacy_runs[0].energy.to_bits(),
        fast_result.modes[0].energy.to_bits(),
        "end-to-end best energy parity"
    );
    assert!(
        legacy_best
            .iter()
            .zip(&fast_result.best_coords)
            .all(|(a, b)| a.x == b.x && a.y == b.y && a.z == b.z),
        "end-to-end best coordinates parity"
    );
    println!("parity: fast path reproduces the legacy serial AD4 result bit-for-bit");

    // legacy = the pre-optimization pair cost: naive grid build + serial
    // reference-path LGA runs. fast = the steady-state campaign pair cost:
    // grids through the persistent cache (warm after the first pair) + the
    // batched threaded search.
    let t_legacy = time_median(reps, || {
        let g = reference::build_ad4_grids(&receptor, spec, &types, &params);
        let em = EnergyModel::new(&g, &lm).expect("maps");
        legacy_lga_runs(&em, &g, &lm, &cfg)
    });
    let t_fast = time_median(reps, || {
        // fresh cache instance: empty memory tier, entry on disk
        let c = GridCache::persistent(&cache_dir, Arc::new(FileStore::new()));
        let g = c.get_or_build("1HUC", &receptor_text, EngineKind::Ad4, &cache_cfg).expect("warm");
        dock_with_grids(&g, "1HUC", &lig, EngineKind::Ad4, &cfg).expect("dock")
    });
    let e2e_speedup = t_legacy / t_fast;
    println!(
        "end-to-end AD4 pair: legacy serial {:.1} ms ({:.2} pairs/s) | fast warm-cache {:.1} ms \
         ({:.2} pairs/s) = {e2e_speedup:.2}x",
        t_legacy * 1e3,
        1.0 / t_legacy,
        t_fast * 1e3,
        1.0 / t_fast
    );
    let _ = std::fs::remove_dir_all(&cache_dir);

    // -- gates --------------------------------------------------------------
    println!();
    if cores >= 4 {
        gate(
            "grid_fan",
            grid_fan_speedup,
            env_floor("DOCK_BENCH_MIN_GRID_SPEEDUP", 2.0),
            &mut failures,
        );
        gate("e2e", e2e_speedup, env_floor("DOCK_BENCH_MIN_E2E_SPEEDUP", 4.0), &mut failures);
    } else {
        println!("  ({cores} core(s): thread-scaling gates disarmed, algorithmic floors only)");
        gate(
            "grid_cell_serial",
            grid_serial_speedup,
            env_floor("DOCK_BENCH_MIN_GRID_SPEEDUP", 1.2),
            &mut failures,
        );
        gate("e2e", e2e_speedup, env_floor("DOCK_BENCH_MIN_E2E_SPEEDUP", 1.6), &mut failures);
    }
    gate("soa_kernel", soa_speedup, env_floor("DOCK_BENCH_MIN_SOA_SPEEDUP", 1.05), &mut failures);
    // batch's job is amortizing call overhead for population scoring: the
    // floor asserts it never regresses per-pose throughput (0.95 absorbs
    // timer noise on loaded boxes; a real regression lands well below)
    gate("batch", batch_speedup, env_floor("DOCK_BENCH_MIN_BATCH_SPEEDUP", 0.95), &mut failures);
    gate(
        "cache_warm",
        cache_speedup,
        env_floor("DOCK_BENCH_MIN_CACHE_SPEEDUP", 1.5),
        &mut failures,
    );

    sc.push(
        "dock_bench",
        format!(
            "{{\"cores\":{cores},\"reps\":{reps},\"grid\":{{\"naive_s\":{},\"cell_s\":{},\
             \"fan_s\":{},\"serial_speedup\":{},\"fan_speedup\":{}}},\
             \"energy\":{{\"reference_s\":{},\"optimized_s\":{},\"speedup\":{}}},\
             \"kernel\":{{\"scalar_s\":{},\"soa_s\":{},\"soa_speedup\":{},\
             \"batch_s\":{},\"batch_speedup\":{}}},\
             \"e2e\":{{\"legacy_s\":{},\"fast_s\":{},\"speedup\":{},\
             \"legacy_pairs_per_s\":{},\"fast_pairs_per_s\":{}}},\
             \"cache\":{{\"cold_s\":{},\"warm_s\":{},\"speedup\":{}}},\"parity\":true}}",
            json::num(t_naive),
            json::num(t_cell),
            json::num(t_fan),
            json::num(grid_serial_speedup),
            json::num(grid_fan_speedup),
            json::num(t_eref),
            json::num(t_efast),
            json::num(energy_speedup),
            json::num(t_scalar),
            json::num(t_soa),
            json::num(soa_speedup),
            json::num(t_batch),
            json::num(batch_speedup),
            json::num(t_legacy),
            json::num(t_fast),
            json::num(e2e_speedup),
            json::num(1.0 / t_legacy),
            json::num(1.0 / t_fast),
            json::num(t_cache_cold),
            json::num(t_cache_warm),
            json::num(cache_speedup),
        ),
    );
    // one instrumented dock (outside the timed sections) so the sidecar
    // carries the final MetricsSnapshot like every other bench sidecar
    let tel = telemetry::Telemetry::attached();
    let obs_cfg = DockConfig { telemetry: tel.clone(), ..bench_cfg(cores) };
    dock_with_grids(&cell, "1HUC", &lig, EngineKind::Ad4, &obs_cfg).expect("dock");
    if let Some(m) = tel.snapshot() {
        sc.push_metrics(&m);
    }

    let path = std::path::Path::new("target/dock_bench.json");
    sc.write(path).expect("write sidecar");
    println!();
    println!("results written to {}", path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("OK: all parity assertions and speedup gates passed");
}
