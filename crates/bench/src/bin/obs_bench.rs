//! `obs_bench` — guards the two costs of the live observability plane:
//!
//! 1. **Disabled overhead**: with the streamed-metrics plane compiled in
//!    (Stats frames, event log, straggler detector, HTTP endpoint), a run
//!    with everything *disabled* must stay within `TELEMETRY_OVERHEAD_PCT`
//!    (default 2%) of the pre-instrumentation baseline — the same bound
//!    `telemetry_bench` established before the plane existed, re-asserted
//!    here on the same straggler workload.
//! 2. **Scrape smoke**: a live run with `with_metrics_addr` must serve
//!    `/metrics` (valid Prometheus text exposition, checked with
//!    `telemetry::prom::parse`), `/healthz`, and `/events` to a plain std
//!    TCP client mid-run — no curl, no HTTP library.
//!
//! ```sh
//! cargo run --release -p scidock-bench --bin obs_bench            # full
//! cargo run --release -p scidock-bench --bin obs_bench -- --smoke # CI
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use cumulus::localbackend::{DispatchMode, LocalConfig};
use cumulus::obs::{http_get, BoundAddr, EventLog};
use cumulus::workflow::{Activity, ActivityFn, WorkflowDef};
use cumulus::{Backend, LocalBackend, Workflow};
use cumulus::{Relation, Tuple};
use provenance::{ProvenanceStore, Value};
use telemetry::Telemetry;

const PAIRS: i64 = 8;
const STAGES: usize = 6;
const SLOW_MS: u64 = 40;
const FAST_MS: u64 = 2;

/// Same constant as `telemetry_bench`: the pipelined median of this exact
/// workload measured before any instrumentation existed (see the provenance
/// note there).
const BASELINE_MED_MS: f64 = 101.1;

fn stage_fn(stage: usize, ms_slow: u64, ms_fast: u64) -> ActivityFn {
    Arc::new(move |tuples, _ctx| {
        let ms = if tuples[0][0] == Value::Int(stage as i64) { ms_slow } else { ms_fast };
        std::thread::sleep(Duration::from_millis(ms));
        Ok(tuples.to_vec())
    })
}

fn workflow(ms_slow: u64, ms_fast: u64) -> WorkflowDef {
    let activities = (0..STAGES)
        .map(|s| Activity::map(&format!("stage_{s}"), &["pair"], stage_fn(s, ms_slow, ms_fast)))
        .collect();
    let deps = (0..STAGES).map(|s| if s == 0 { vec![] } else { vec![s - 1] }).collect();
    WorkflowDef {
        tag: "straggler_chain".into(),
        description: "rotating-straggler Map chain".into(),
        expdir: "/bench".into(),
        activities,
        deps,
    }
}

fn input() -> Relation {
    Relation {
        columns: vec!["pair".into()],
        tuples: (0..PAIRS).map(|i| Tuple::from(vec![Value::Int(i)])).collect(),
    }
}

fn run_once(cfg: &LocalConfig, ms_slow: u64, ms_fast: u64) -> f64 {
    let wf = workflow(ms_slow, ms_fast);
    let t0 = Instant::now();
    let report = LocalBackend::new(cfg.clone())
        .run(&Workflow::new(wf, input()), &Arc::new(ProvenanceStore::new()))
        .expect("valid workflow");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.finished, PAIRS as usize * STAGES);
    ms
}

fn median(samples: usize, mk_cfg: impl Fn() -> LocalConfig) -> f64 {
    let mut xs: Vec<f64> = (0..samples).map(|_| run_once(&mk_cfg(), SLOW_MS, FAST_MS)).collect();
    xs.sort_by(f64::total_cmp);
    xs[samples / 2]
}

/// Stage 1: the disabled path must still be free.
fn overhead_stage(smoke: bool, threshold_pct: f64) -> bool {
    let samples = if smoke { 9 } else { 15 };
    println!(
        "== obs_bench: disabled-observability overhead ({PAIRS} pairs x {STAGES} stages, \
         {samples} samples/batch, best of 3 batches) =="
    );
    run_once(&LocalConfig::new().with_mode(DispatchMode::Pipelined), SLOW_MS, FAST_MS); // warm-up
    let dis_med = (0..3)
        .map(|_| median(samples, || LocalConfig::new().with_mode(DispatchMode::Pipelined)))
        .fold(f64::INFINITY, f64::min);
    let overhead_pct = (dis_med / BASELINE_MED_MS - 1.0) * 100.0;
    println!(
        "  disabled median {dis_med:.3} ms vs pre-instrumentation baseline \
         {BASELINE_MED_MS:.1} ms: {overhead_pct:+.2}% (threshold {threshold_pct:.1}%)"
    );
    if overhead_pct >= threshold_pct {
        eprintln!("FAIL: disabled-observability overhead {overhead_pct:+.2}% >= {threshold_pct}%");
        return false;
    }
    true
}

/// Stage 2: scrape a live endpoint with a bare std TCP client.
fn scrape_stage() -> bool {
    println!("== obs_bench: /metrics + /healthz scrape smoke (std TCP client) ==");
    let bound = BoundAddr::new();
    let events = EventLog::new();
    let cfg = LocalConfig::new()
        .with_mode(DispatchMode::Pipelined)
        .with_threads(2)
        .with_telemetry(Telemetry::attached())
        .with_metrics_addr("127.0.0.1:0")
        .with_metrics_bound(bound.clone())
        .with_events(events);
    // slow stages (~1.5 s pipelined on 2 threads) so the scrape lands mid-run
    let runner = std::thread::spawn(move || run_once(&cfg, 120, 60));
    let Some(addr) = bound.wait(Duration::from_secs(10)) else {
        eprintln!("FAIL: endpoint never bound");
        let _ = runner.join();
        return false;
    };
    let timeout = Duration::from_secs(3);
    let mut ok = true;

    match http_get(addr, "/metrics", timeout) {
        Ok((200, body)) => match telemetry::prom::parse(&body) {
            Ok(samples) => println!(
                "  /metrics: 200, {} samples of valid Prometheus text exposition",
                samples.len()
            ),
            Err(line) => {
                eprintln!("FAIL: /metrics line {line} is not valid text exposition");
                ok = false;
            }
        },
        other => {
            eprintln!("FAIL: GET /metrics -> {other:?}");
            ok = false;
        }
    }
    match http_get(addr, "/healthz", timeout) {
        Ok((200, body)) if body.contains("\"phase\":\"running\"") => {
            println!("  /healthz: 200, phase=running mid-run");
        }
        other => {
            eprintln!("FAIL: GET /healthz mid-run -> {other:?}");
            ok = false;
        }
    }
    match http_get(addr, "/events", timeout) {
        Ok((200, body)) if body.lines().any(|l| l.contains("\"kind\":\"run_started\"")) => {
            println!("  /events:  200, run_started present");
        }
        other => {
            eprintln!("FAIL: GET /events mid-run -> {other:?}");
            ok = false;
        }
    }

    let ms = runner.join().expect("observed run");
    println!("  observed run finished in {ms:.0} ms");
    ok
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threshold_pct: f64 =
        std::env::var("TELEMETRY_OVERHEAD_PCT").ok().and_then(|v| v.parse().ok()).unwrap_or(2.0);

    let scrape_ok = scrape_stage();
    println!();
    let overhead_ok = overhead_stage(smoke, threshold_pct);

    if !(scrape_ok && overhead_ok) {
        std::process::exit(1);
    }
    println!();
    println!("obs_bench: all gates passed");
}
