//! Measure the cost of always-compiled telemetry on the `pipeline_bench`
//! straggler workload (8 pairs × 6 stages, one rotating 40 ms straggler,
//! 4 worker threads, pipelined dispatch).
//!
//! Three configurations are timed:
//!
//! 1. **disabled** — `LocalConfig::default()`: every instrumentation site is
//!    compiled in but the [`telemetry::Telemetry`] handle carries no
//!    collector, so each site is a branch on an `Option`. This is the
//!    production fast path and must stay within noise of the
//!    pre-instrumentation baseline (measured before the telemetry PR, see
//!    `BASELINE_MIN_MS`).
//! 2. **attached** — a live collector records spans, counters, and
//!    histograms for every activation, pool job, and barrier wait.
//! 3. **attached + steering** — additionally flushes in-flight activation
//!    state into the provenance store on a 10 ms tick (the live-steering
//!    bridge), the most expensive observability mode.
//!
//! ```sh
//! cargo run --release -p scidock-bench --bin telemetry_bench            # full
//! cargo run --release -p scidock-bench --bin telemetry_bench -- --smoke # CI
//! ```
//!
//! The run *asserts* (exit code 1 on failure) that the disabled-telemetry
//! median stays within `TELEMETRY_OVERHEAD_PCT` percent (default 2%) of the
//! pre-instrumentation baseline median. Two noise controls: medians are
//! compared rather than minima (the workload is sleep-bound; the minimum
//! depends on a lucky scheduler alignment and swings by several percent),
//! and the disabled configuration is measured as the *best of three batch
//! medians* — ambient machine load only ever slows the workload down, so a
//! batch that collides with background activity is safely discarded.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cumulus::localbackend::{DispatchMode, LocalConfig};
use cumulus::workflow::{Activity, ActivityFn, WorkflowDef};
use cumulus::{Backend, LocalBackend, Workflow};
use cumulus::{Relation, Tuple};
use provenance::{ProvenanceStore, Value};
use telemetry::Telemetry;

const PAIRS: i64 = 8;
const STAGES: usize = 6;
const SLOW_MS: u64 = 40;
const FAST_MS: u64 = 2;

/// Pipelined median of the same workload measured at commit 84862b0, before
/// any telemetry instrumentation existed, using this exact harness. Eight
/// independent 15-sample runs across ambient machine states gave medians
/// 99.90–102.34 ms (interleaved A/B against the instrumented binary showed
/// per-pair differences of −0.4% to +0.3%, i.e. zero real overhead); this
/// constant is the centre of that range.
const BASELINE_MED_MS: f64 = 101.1;

fn stage_fn(stage: usize) -> ActivityFn {
    Arc::new(move |tuples, _ctx| {
        let ms = if tuples[0][0] == Value::Int(stage as i64) { SLOW_MS } else { FAST_MS };
        std::thread::sleep(Duration::from_millis(ms));
        Ok(tuples.to_vec())
    })
}

fn straggler_workflow() -> WorkflowDef {
    let activities =
        (0..STAGES).map(|s| Activity::map(&format!("stage_{s}"), &["pair"], stage_fn(s))).collect();
    let deps = (0..STAGES).map(|s| if s == 0 { vec![] } else { vec![s - 1] }).collect();
    WorkflowDef {
        tag: "straggler_chain".into(),
        description: "rotating-straggler Map chain".into(),
        expdir: "/bench".into(),
        activities,
        deps,
    }
}

fn input() -> Relation {
    Relation {
        columns: vec!["pair".into()],
        tuples: (0..PAIRS).map(|i| Tuple::from(vec![Value::Int(i)])).collect(),
    }
}

/// One timed run; returns wall-clock milliseconds.
fn run_once(cfg: &LocalConfig) -> f64 {
    let wf = straggler_workflow();
    let t0 = Instant::now();
    let report = LocalBackend::new(cfg.clone())
        .run(&Workflow::new(wf, input()), &Arc::new(ProvenanceStore::new()))
        .expect("valid workflow");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.finished, PAIRS as usize * STAGES);
    ms
}

/// `n` timed runs; returns (min, median, mean) in milliseconds.
fn measure(n: usize, mk_cfg: impl Fn() -> LocalConfig) -> (f64, f64, f64) {
    let mut samples: Vec<f64> = (0..n).map(|_| run_once(&mk_cfg())).collect();
    samples.sort_by(f64::total_cmp);
    let min = samples[0];
    let median = samples[n / 2];
    let mean = samples.iter().sum::<f64>() / n as f64;
    (min, median, mean)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let samples = if smoke { 9 } else { 15 };
    let threshold_pct: f64 =
        std::env::var("TELEMETRY_OVERHEAD_PCT").ok().and_then(|v| v.parse().ok()).unwrap_or(2.0);

    println!(
        "telemetry_bench: straggler workload ({PAIRS} pairs x {STAGES} stages, \
         {SLOW_MS} ms straggler, 4 threads, pipelined, {samples} samples/config)"
    );
    println!();
    println!(
        "{:<22} | {:>9} | {:>9} | {:>9}",
        "configuration", "min (ms)", "med (ms)", "mean (ms)"
    );
    println!("{:-<22}-+-{:-<9}-+-{:-<9}-+-{:-<9}", "", "", "", "");
    println!(
        "{:<22} | {:>9} | {:>9.3} | {:>9}",
        "baseline (pre-instr.)", "-", BASELINE_MED_MS, "-"
    );

    // warm-up: first run pays thread-spawn and page-fault costs
    run_once(&LocalConfig::new().with_mode(DispatchMode::Pipelined));

    // best of three batches: keep the batch whose median saw the least
    // ambient interference
    let batches: Vec<(f64, f64, f64)> = (0..3)
        .map(|_| measure(samples, || LocalConfig::new().with_mode(DispatchMode::Pipelined)))
        .collect();
    let (dis_min, dis_med, dis_mean) =
        *batches.iter().min_by(|a, b| a.1.total_cmp(&b.1)).expect("three batches");
    println!(
        "{:<22} | {:>9.3} | {:>9.3} | {:>9.3}",
        "telemetry disabled", dis_min, dis_med, dis_mean
    );

    let (att_min, att_med, att_mean) = measure(samples.min(5), || {
        LocalConfig::new().with_mode(DispatchMode::Pipelined).with_telemetry(Telemetry::attached())
    });
    println!(
        "{:<22} | {:>9.3} | {:>9.3} | {:>9.3}",
        "telemetry attached", att_min, att_med, att_mean
    );

    let (st_min, st_med, st_mean) = measure(samples.min(5), || {
        LocalConfig::new()
            .with_mode(DispatchMode::Pipelined)
            .with_telemetry(Telemetry::attached())
            .with_steering_tick(Duration::from_millis(10))
    });
    println!(
        "{:<22} | {:>9.3} | {:>9.3} | {:>9.3}",
        "attached + steering", st_min, st_med, st_mean
    );

    if !smoke {
        // demonstrate the full observability path once: snapshot + Chrome trace
        let tel = Telemetry::attached();
        let cfg = LocalConfig::new()
            .with_mode(DispatchMode::Pipelined)
            .with_telemetry(tel.clone())
            .with_steering_tick(Duration::from_millis(10));
        run_once(&cfg);
        let snap = tel.snapshot().expect("collector attached");
        println!();
        println!(
            "attached run recorded {} counters, {} histograms, {} tracks \
             ({} records dropped)",
            snap.counters.len(),
            snap.histograms.len(),
            snap.tracks.len(),
            snap.dropped_records
        );
        if let Some(h) = snap.histograms.iter().find(|h| h.name == "pool.queue_wait") {
            println!(
                "pool.queue_wait: n={} p50={:.3} ms p95={:.3} ms max={:.3} ms",
                h.count,
                h.p50_s * 1e3,
                h.p95_s * 1e3,
                h.max_s * 1e3
            );
        }
        let trace = tel.export_chrome_trace().expect("collector attached");
        telemetry::json::validate(&trace).expect("trace is well-formed JSON");
        let path = std::env::temp_dir().join("telemetry_bench_trace.json");
        std::fs::write(&path, &trace).expect("write trace");
        println!("Chrome trace ({} bytes) written to {}", trace.len(), path.display());
    }

    let overhead_pct = (dis_med / BASELINE_MED_MS - 1.0) * 100.0;
    println!();
    println!(
        "disabled-telemetry overhead vs pre-instrumentation baseline: {overhead_pct:+.2}% \
         (threshold {threshold_pct:.1}%)"
    );
    if overhead_pct > threshold_pct {
        eprintln!(
            "FAIL: disabled telemetry is {overhead_pct:.2}% slower than the \
             pre-instrumentation baseline (limit {threshold_pct:.1}%)"
        );
        std::process::exit(1);
    }
    println!("OK: disabled telemetry is within noise of the baseline");
}
