//! `dist_bench` — measures the distributed backend against itself and
//! drills its crash recovery, with real `scidock-worker` OS processes.
//!
//! Three stages:
//!
//! 1. a CPU-bound spin workload on 1 worker vs 2 workers (the multi-process
//!    speedup the backend exists to provide),
//! 2. a SIGKILL fault drill: worker 0 is killed upon its first activation
//!    and the run must still complete with exactly one reassignment,
//! 3. a JSON sidecar (`target/dist_bench.json`) so bench trajectories can
//!    be diffed across PRs.
//!
//! `--smoke` additionally asserts the 2-worker speedup is ≥ 1.5× — only on
//! hosts with ≥ 4 cores, because two spinning worker processes cannot beat
//! one on a starved machine.

use std::sync::Arc;
use std::thread::available_parallelism;

use cumulus::distbackend::{run_dist, DistConfig, KillPlan};
use cumulus::workflow::FileStore;
use cumulus::RunReport;
use provenance::ProvenanceStore;
use scidock_bench::distspec;
use scidock_bench::sidecar::Sidecar;
use telemetry::Telemetry;

const SPIN_SPEC: &str = "unit:spin:8:150";
const FAULT_SPEC: &str = "unit:sleep:6:50";

fn worker_bin() -> String {
    let exe = std::env::current_exe().expect("own path");
    let bin = exe.parent().expect("bin dir").join("scidock-worker");
    if !bin.exists() {
        eprintln!(
            "dist_bench: worker binary missing at {} (build it with \
             `cargo build --release -p scidock-bench --bin scidock-worker`)",
            bin.display()
        );
        std::process::exit(2);
    }
    bin.to_string_lossy().into_owned()
}

fn run(spec: &str, workers: usize, kill: Option<KillPlan>) -> RunReport {
    let files = Arc::new(FileStore::new());
    let prov = Arc::new(ProvenanceStore::new());
    let def = distspec::resolve_with(spec, &files).expect("known spec");
    let input = distspec::prepare(spec, &files).expect("known spec");
    let mut cfg = DistConfig::new()
        .with_workers(workers)
        .with_worker_command(worker_bin(), Vec::new())
        .with_spec(spec)
        .with_max_in_flight(1)
        .with_telemetry(Telemetry::attached());
    if let Some(plan) = kill {
        cfg = cfg.with_kill_plan(plan);
    }
    run_dist(&def, input, files, prov, &cfg).expect("distributed run")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut sidecar = Sidecar::new();

    println!("== dist_bench: {SPIN_SPEC} over scidock-worker processes ==");
    let one = run(SPIN_SPEC, 1, None);
    println!("  1 worker : {:>7.3}s  ({} activations)", one.total_seconds, one.finished);
    let two = run(SPIN_SPEC, 2, None);
    println!("  2 workers: {:>7.3}s  ({} activations)", two.total_seconds, two.finished);
    let speedup = one.total_seconds / two.total_seconds.max(1e-9);
    println!("  speedup  : {speedup:>7.2}x  on {cores} cores");
    assert_eq!(one.finished, 8);
    assert_eq!(two.finished, 8);
    sidecar.push("spin_1worker_s", format!("{:.4}", one.total_seconds));
    sidecar.push("spin_2workers_s", format!("{:.4}", two.total_seconds));
    sidecar.push("speedup", format!("{speedup:.3}"));
    sidecar.push("cores", format!("{cores}"));

    println!("== fault drill: SIGKILL worker 0 on its first activation ==");
    let faulted = run(FAULT_SPEC, 2, Some(KillPlan { worker: 0, after_runs: 1 }));
    println!(
        "  finished={} failed_attempts={} blacklisted={} in {:.3}s",
        faulted.finished, faulted.failed_attempts, faulted.blacklisted, faulted.total_seconds
    );
    assert_eq!(faulted.finished, 6, "every activation must complete despite the crash");
    assert_eq!(faulted.failed_attempts, 1, "exactly the activation lost with the worker");
    assert_eq!(faulted.blacklisted, 0);
    sidecar.push("fault_finished", format!("{}", faulted.finished));
    sidecar.push("fault_failed_attempts", format!("{}", faulted.failed_attempts));
    sidecar.push("fault_total_s", format!("{:.4}", faulted.total_seconds));
    if let Some(m) = &two.metrics {
        sidecar.push_metrics(m);
    }

    if smoke {
        if cores >= 4 {
            assert!(
                speedup >= 1.5,
                "2-worker speedup {speedup:.2}x below the 1.5x floor on {cores} cores"
            );
            println!("smoke: speedup floor met ({speedup:.2}x >= 1.5x)");
        } else {
            println!("smoke: speedup floor skipped ({cores} cores < 4)");
        }
    }

    std::fs::create_dir_all("target").ok();
    std::fs::write("target/dist_bench.json", sidecar.to_json()).expect("write sidecar");
    println!("sidecar written to target/dist_bench.json");
}
