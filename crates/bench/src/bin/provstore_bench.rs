//! Measure the overhead of durable provenance over the in-memory store.
//!
//! The workload is the hot path of a docking campaign: per activation one
//! `record_activation`, one `record_file`, one `record_parameter`, and one
//! `record_output_tuple` (4 mutations = 4 WAL frames). Three stores run the
//! identical stream:
//!
//! 1. **in-memory** — `ProvenanceStore::new()`, the default everywhere;
//! 2. **durable, group commit** — `Durability::Batched` (the durable
//!    default: fsync per 64 ops or 20 ms, whichever first);
//! 3. **durable, sync** — `Durability::Sync`, one fsync per mutation (the
//!    upper bound a steering-critical deployment would pay).
//!
//! ```sh
//! cargo run --release -p scidock-bench --bin provstore_bench            # full
//! cargo run --release -p scidock-bench --bin provstore_bench -- --smoke # CI
//! ```
//!
//! The run *asserts* (exit code 1 on failure) that group-commit durability
//! stays within `PROVSTORE_OVERHEAD_X` (default 50×) of the in-memory
//! per-op cost — the documented bound under which `LocalConfig::durability`
//! is safe to leave on for real campaigns. Sync mode is reported but not
//! bounded: its cost is one fsync per op by definition and entirely
//! device-dependent.

use std::time::Instant;

use provenance::durable::io::DirEnv;
use provenance::durable::testing::TempDir;
use provenance::provwf::{ActivationRecord, ActivationStatus, ProvenanceStore};
use provenance::{Durability, DurableOptions, Value};
use telemetry::Telemetry;

/// Run the campaign-shaped mutation stream; returns (ops, wall seconds).
fn workload(p: &ProvenanceStore, activations: usize) -> (u64, f64) {
    let t0 = Instant::now();
    let w = p.begin_workflow("bench", "provstore_bench", "/bench");
    let babel = p.register_activity(w, "babel1k", "Map");
    let vina = p.register_activity(w, "autodockvina1k", "Map");
    let vm = p.register_machine("vm-001", "m3.xlarge", 4);
    let mut ops: u64 = 4;
    for i in 0..activations {
        let act = if i % 2 == 0 { babel } else { vina };
        let start = i as f64 * 0.25;
        let t = p.record_activation(&ActivationRecord {
            activity: act,
            workflow: w,
            status: ActivationStatus::Finished,
            start_time: start,
            end_time: start + 30.0,
            machine: Some(vm),
            retries: 0,
            pair_key: format!("1AEC:{i:04}"),
        });
        p.record_file(t, act, w, &format!("out_{i}.dlg"), 64_000 + i as i64, "/bench/d/");
        p.record_parameter(t, w, "exhaustiveness", Some(8.0), None);
        p.record_output_tuple(
            t,
            act,
            w,
            &format!("1AEC:{i:04}"),
            i,
            &[Value::Float(-7.5), Value::Text(format!("pose{i}"))],
        );
        ops += 4;
    }
    p.flush_wal();
    (ops, t0.elapsed().as_secs_f64())
}

struct Row {
    label: &'static str,
    per_op_us: f64,
    ops_per_s: f64,
}

fn report(label: &'static str, ops: u64, secs: f64) -> Row {
    let per_op_us = secs / ops as f64 * 1e6;
    let ops_per_s = ops as f64 / secs;
    println!("{label:<26} | {ops:>7} | {per_op_us:>12.2} | {ops_per_s:>11.0}");
    Row { label, per_op_us, ops_per_s }
}

fn durable_run(activations: usize, durability: Durability, tel: &Telemetry) -> (u64, f64) {
    let dir = TempDir::new("provstore-bench");
    let env = DirEnv::new(dir.path()).expect("scratch dir");
    let p = ProvenanceStore::open_env(
        Box::new(env),
        DurableOptions { durability, telemetry: tel.clone(), ..Default::default() },
    )
    .expect("fresh durable store");
    workload(&p, activations)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let activations = if smoke { 500 } else { 5_000 };
    let bound_x: f64 =
        std::env::var("PROVSTORE_OVERHEAD_X").ok().and_then(|v| v.parse().ok()).unwrap_or(50.0);

    println!(
        "provstore_bench: {activations} activations x 4 mutations \
         (activation + file + parameter + output tuple)"
    );
    println!();
    println!("{:<26} | {:>7} | {:>12} | {:>11}", "store", "ops", "per-op (us)", "ops/s");
    println!("{:-<26}-+-{:-<7}-+-{:-<12}-+-{:-<11}", "", "", "", "");

    // warm-up: page in the binary and the allocator
    workload(&ProvenanceStore::new(), activations / 10);

    let (ops, secs) = workload(&ProvenanceStore::new(), activations);
    let mem = report("in-memory (default)", ops, secs);

    let tel_batched = Telemetry::attached();
    let (ops, secs) = durable_run(activations, Durability::default(), &tel_batched);
    let batched = report("durable, group commit", ops, secs);

    let tel_sync = Telemetry::attached();
    let (ops, secs) = durable_run(activations, Durability::Sync, &tel_sync);
    let sync = report("durable, sync", ops, secs);

    println!();
    for (label, tel) in [("group commit", &tel_batched), ("sync", &tel_sync)] {
        if let Some(snap) = tel.snapshot() {
            for h in &snap.histograms {
                if h.name == "provstore.wal_append" || h.name == "provstore.group_commit" {
                    println!(
                        "{label}: {} n={} p50={:.1} us p95={:.1} us max={:.1} us",
                        h.name,
                        h.count,
                        h.p50_s * 1e6,
                        h.p95_s * 1e6,
                        h.max_s * 1e6
                    );
                }
            }
        }
    }

    let batched_x = batched.per_op_us / mem.per_op_us;
    let sync_x = sync.per_op_us / mem.per_op_us;
    println!();
    println!(
        "durable overhead vs in-memory: group commit {batched_x:.1}x, sync {sync_x:.1}x \
         (bound for group commit: {bound_x:.0}x)"
    );
    let _ = (batched.label, batched.ops_per_s, sync.label, sync.ops_per_s);
    if batched_x > bound_x {
        eprintln!(
            "FAIL: group-commit durability is {batched_x:.1}x the in-memory per-op cost \
             (limit {bound_x:.0}x)"
        );
        std::process::exit(1);
    }
    println!("OK: group-commit durability is within the documented bound");
}
