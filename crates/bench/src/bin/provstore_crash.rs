//! Crash-recovery smoke target: a real process killed with `SIGKILL`
//! mid-run, then resumed from the surviving on-disk provenance.
//!
//! ```sh
//! provstore_crash run <dir>     # durable run; prints TICK lines; exit 0 when done
//! provstore_crash resume <dir>  # reopen <dir>, resume, verify, print RESUME OK
//! ```
//!
//! The driver (`crates/bench/tests/crash_recovery.rs`, also wired into
//! `ci.sh`) spawns `run`, waits for a few TICK lines, delivers `kill -9`,
//! then invokes `resume` as a genuinely fresh process and asserts the
//! workflow completes without re-executing recovered activations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cumulus::{
    Activity, ActivityFn, Backend, LocalBackend, LocalConfig, Relation, Workflow, WorkflowDef,
};
use provenance::durable::io::DirEnv;
use provenance::{Durability, DurableOptions, ProvenanceStore, Value};

/// Input pairs; each activation sleeps [`SLOW_MS`], so a full run takes
/// long enough for the driver to land a kill mid-stream.
const N: i64 = 48;
const SLOW_MS: u64 = 20;

fn workflow(calls: &Arc<AtomicUsize>) -> WorkflowDef {
    let calls = Arc::clone(calls);
    let func: ActivityFn = Arc::new(move |tuples, _ctx| {
        std::thread::sleep(Duration::from_millis(SLOW_MS));
        let k = calls.fetch_add(1, Ordering::SeqCst) + 1;
        // progress marker for the driver; flushed so the kill can be timed
        println!("TICK {k}");
        Ok(tuples.iter().map(|t| vec![Value::Float(t[0].as_f64().unwrap_or(0.0) * 2.0)]).collect())
    });
    WorkflowDef {
        tag: "crash-smoke".into(),
        description: "kill -9 recovery smoke".into(),
        expdir: "/e".into(),
        activities: vec![Activity::map("double", &["x2"], func)],
        deps: vec![vec![]],
    }
}

fn input() -> Relation {
    let mut rel = Relation::new(&["x"]);
    for k in 0..N {
        rel.push(vec![Value::Int(k)]);
    }
    rel
}

fn open(dir: &str) -> Arc<ProvenanceStore> {
    let env = DirEnv::new(dir).expect("storage dir");
    Arc::new(
        ProvenanceStore::open_env(
            Box::new(env),
            DurableOptions { durability: Durability::Sync, ..Default::default() },
        )
        .expect("open durable store"),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, dir) = match args.as_slice() {
        [m, d] if m == "run" || m == "resume" => (m.as_str(), d.as_str()),
        _ => {
            eprintln!("usage: provstore_crash run|resume <dir>");
            std::process::exit(2);
        }
    };

    let prov = open(dir);
    let calls = Arc::new(AtomicUsize::new(0));
    let wf = workflow(&calls);
    let resume_from = match mode {
        "resume" => {
            Some(prov.latest_workflow().expect("the killed run committed its workflow row"))
        }
        _ => None,
    };
    let mut cfg = LocalConfig::new().with_threads(2);
    if let Some(prior) = resume_from {
        cfg = cfg.with_resume_from(prior);
    }
    let report = LocalBackend::new(cfg).run(&Workflow::new(wf, input()), &prov).unwrap();

    assert_eq!(report.finished + report.resumed, N as usize, "every pair accounted for");
    let mut out: Vec<f64> =
        report.final_output().tuples.iter().map(|t| t[0].as_f64().unwrap()).collect();
    out.sort_by(f64::total_cmp);
    let want: Vec<f64> = (0..N).map(|k| k as f64 * 2.0).collect();
    assert_eq!(out, want, "doubled output survives the crash");

    match mode {
        "run" => println!("RUN OK finished={}", report.finished),
        _ => {
            assert_eq!(
                report.resumed,
                N as usize - calls.load(Ordering::SeqCst),
                "recovered activations must not re-execute"
            );
            println!("RESUME OK resumed={} executed={}", report.resumed, report.finished);
        }
    }
}
