//! Benchmark the paged provenance engine's steering queries at campaign
//! scale — the workload the paper's §V.C runtime queries generate once a
//! screening has produced hundreds of thousands of activations.
//!
//! Two stores receive an identical synthetic campaign (default 1,000,000
//! activation rows; `--smoke` 120,000):
//!
//! 1. **in-memory** — `ProvenanceStore::new()`: every query is a full scan
//!    through `Vec`-of-rows tables (the pre-paged reference engine);
//! 2. **paged + indexed** — `ProvenanceStore::new_paged()`: slotted-page
//!    heap files behind an LRU page cache with B+tree indexes on the hot
//!    `hactivation` columns; the planner turns steering predicates into
//!    `IndexScan`/`IndexRange` access paths.
//!
//! Three steering queries run repeatedly against both, and the run
//! *asserts* (exit 1 on failure) that on the indexed store
//!
//! * the p95 latency of each indexed query stays under
//!   `PROV_BENCH_P95_MS` (default 50 ms), and
//! * the median speedup over the full-scan store is at least
//!   `PROV_BENCH_SPEEDUP_X` (default 10×).
//!
//! ```sh
//! cargo run --release -p scidock-bench --bin prov_bench            # full, 1M rows
//! cargo run --release -p scidock-bench --bin prov_bench -- --smoke # CI
//! ```
//!
//! Results land in `target/prov_bench.json` (sidecar schema v1).

use std::time::Instant;

use provenance::provwf::{ActivationRecord, ActivationStatus, ProvenanceStore};
use provenance::Value;
use scidock_bench::sidecar::{num_array, Sidecar};

/// Pour `n` activation rows into `p`: one workflow, 8 SciDock activities,
/// statuses in the paper's observed mix (~90% finished, ~8% failed, a few
/// aborted), end times increasing like a real campaign's.
fn populate(p: &ProvenanceStore, n: usize) -> f64 {
    let t0 = Instant::now();
    let w = p.begin_workflow("SciDock", "prov_bench campaign", "/bench");
    let acts: Vec<_> = [
        "extract",
        "babel1k",
        "gpf1k",
        "autogrid1k",
        "dpf1k",
        "autodock1k",
        "vinaconfig",
        "autodockvina1k",
    ]
    .iter()
    .map(|tag| p.register_activity(w, tag, "Map"))
    .collect();
    let vm = p.register_machine("vm-001", "m3.xlarge", 4);
    for i in 0..n {
        let status = match i % 50 {
            0..=3 => ActivationStatus::Failed,
            4 => ActivationStatus::Aborted,
            _ => ActivationStatus::Finished,
        };
        let start = i as f64 * 0.05;
        p.record_activation(&ActivationRecord {
            activity: acts[i % acts.len()],
            workflow: w,
            status,
            start_time: start,
            end_time: start + 20.0 + (i % 7) as f64 * 5.0,
            machine: Some(vm),
            retries: (i % 17 == 0) as i64,
            pair_key: format!("R{:03}:L{:04}", i / 997, i % 997),
        });
    }
    t0.elapsed().as_secs_f64()
}

/// Run `sql` `reps` times; returns sorted per-run latencies in seconds.
fn time_query(p: &ProvenanceStore, sql: &str, params: &[Value], reps: usize) -> Vec<f64> {
    let mut lat = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let rs = p.query_rows(sql, params).expect("bench query runs");
        std::hint::black_box(rs.len());
        lat.push(t0.elapsed().as_secs_f64());
    }
    lat.sort_by(f64::total_cmp);
    lat
}

fn pct(sorted: &[f64], q: f64) -> f64 {
    let ix = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[ix]
}

struct Gate {
    name: &'static str,
    paged_p95_ms: f64,
    speedup: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rows = if smoke { 120_000 } else { 1_000_000 };
    let reps = if smoke { 30 } else { 60 };
    let p95_bound_ms: f64 =
        std::env::var("PROV_BENCH_P95_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(50.0);
    let speedup_bound: f64 =
        std::env::var("PROV_BENCH_SPEEDUP_X").ok().and_then(|v| v.parse().ok()).unwrap_or(10.0);

    println!("prov_bench: {rows} activation rows, {reps} reps per query");

    let mem = ProvenanceStore::new();
    let paged = ProvenanceStore::new_paged();
    let mem_load = populate(&mem, rows);
    let paged_load = populate(&paged, rows);
    println!(
        "load: in-memory {:.2}s ({:.0} rows/s) | paged+indexed {:.2}s ({:.0} rows/s)",
        mem_load,
        rows as f64 / mem_load,
        paged_load,
        rows as f64 / paged_load
    );
    paged.verify_integrity().expect("paged store passes structural checks after load");

    // the three steering shapes the planner must accelerate: a point
    // lookup (IndexScan eq on taskid), a time-window poll (IndexRange on
    // endtime), and a pair-key probe (IndexScan eq on pairkey)
    let last_window = rows as f64 * 0.05 * 0.995;
    let queries: [(&str, &str, Vec<Value>); 3] = [
        (
            "taskid point lookup",
            "SELECT taskid, status, pairkey FROM hactivation WHERE taskid = ?",
            vec![Value::Int(rows as i64 / 2)],
        ),
        (
            "endtime window (last 0.5%)",
            "SELECT taskid, status FROM hactivation WHERE endtime >= ? ORDER BY endtime",
            vec![Value::Timestamp(last_window)],
        ),
        (
            "pairkey probe",
            "SELECT taskid, status, retries FROM hactivation WHERE pairkey = ?",
            vec![Value::from(
                format!("R{:03}:L{:04}", (rows / 2) / 997, (rows / 2) % 997).as_str(),
            )],
        ),
    ];

    println!();
    println!(
        "{:<28} | {:>12} | {:>12} | {:>12} | {:>8}",
        "steering query", "scan p50(ms)", "idx p50(ms)", "idx p95(ms)", "speedup"
    );
    println!("{:-<28}-+-{:-<12}-+-{:-<12}-+-{:-<12}-+-{:-<8}", "", "", "", "", "");

    let mut sc = Sidecar::new();
    sc.push("rows", format!("{rows}"));
    let mut gates = Vec::new();
    for (name, sql, params) in &queries {
        let scan = time_query(&mem, sql, params, reps);
        let idx = time_query(&paged, sql, params, reps);
        let scan_p50 = pct(&scan, 0.5);
        let idx_p50 = pct(&idx, 0.5);
        let idx_p95 = pct(&idx, 0.95);
        let speedup = scan_p50 / idx_p50;
        println!(
            "{name:<28} | {:>12.3} | {:>12.3} | {:>12.3} | {speedup:>7.1}x",
            scan_p50 * 1e3,
            idx_p50 * 1e3,
            idx_p95 * 1e3
        );
        let key = name.split_whitespace().next().unwrap();
        sc.push(
            &format!("prov_{key}"),
            format!(
                "{{\"scan_ms\":{},\"idx_ms\":{},\"idx_p95_ms\":{},\"speedup\":{:.2}}}",
                num_array(&[scan_p50 * 1e3]),
                num_array(&[idx_p50 * 1e3]),
                num_array(&[idx_p95 * 1e3]),
                speedup
            ),
        );
        gates.push(Gate { name, paged_p95_ms: idx_p95 * 1e3, speedup });
    }

    let stats = paged.cache_stats();
    println!();
    println!(
        "page cache: {} hits, {} misses, {} evictions, {} writebacks",
        stats.hits, stats.misses, stats.evictions, stats.writebacks
    );
    sc.push(
        "cache",
        format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"writebacks\":{}}}",
            stats.hits, stats.misses, stats.evictions, stats.writebacks
        ),
    );

    let path = std::path::Path::new("target/prov_bench.json");
    sc.write(path).expect("write sidecar");
    println!("sidecar: {}", path.display());

    println!();
    let mut failed = false;
    for g in &gates {
        let p95_ok = g.paged_p95_ms < p95_bound_ms;
        let speedup_ok = g.speedup >= speedup_bound;
        if !p95_ok {
            eprintln!(
                "FAIL: {} p95 {:.3} ms on the indexed store (limit {p95_bound_ms:.0} ms)",
                g.name, g.paged_p95_ms
            );
            failed = true;
        }
        if !speedup_ok {
            eprintln!(
                "FAIL: {} speedup {:.1}x over full scan (required {speedup_bound:.0}x)",
                g.name, g.speedup
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: all indexed steering queries under {p95_bound_ms:.0} ms p95 and \
         >= {speedup_bound:.0}x over full scans"
    );
}
