//! `fleet_bench` — measures the elastic fleet controller against a fixed
//! fleet, with real `scidock-worker` OS processes.
//!
//! Three stages:
//!
//! 1. a sleep workload on a fixed 1-worker fleet (the baseline a static
//!    allocation gives you when you under-provision),
//! 2. the same workload starting from 1 worker under the queue-depth
//!    autoscaler capped at 3 — the controller must grow the fleet mid-run,
//!    beat the baseline, and drain-then-retire what it grew,
//! 3. the same workload under the cost-aware policy, reporting the
//!    per-started-hour fleet cost alongside the wall-clock.
//!
//! A JSON sidecar (`target/fleet_bench.json`) records the trajectory so it
//! can be diffed across PRs. `--smoke` additionally asserts the elastic
//! run beats the fixed 1-worker wall-clock and never exceeds its cap —
//! sleep tasks overlap even on a starved host, so there is no core floor.

use std::sync::Arc;

use cloudsim::BillingModel;
use cumulus::distbackend::{run_dist, DistConfig};
use cumulus::workflow::FileStore;
use cumulus::{
    CostAwareConfig, CostAwareScheduler, QueueDepthConfig, QueueDepthScheduler, RunReport,
    SchedulerFactory,
};
use provenance::ProvenanceStore;
use scidock_bench::distspec;
use scidock_bench::sidecar::Sidecar;
use telemetry::Telemetry;

/// 12 sleep activations of 400 ms: ~4.8 s serially, ~1.6 s on 3 workers.
const SPEC: &str = "unit:sleep:12:400";
const TASKS: usize = 12;
const MAX_WORKERS: usize = 3;

fn worker_bin() -> String {
    let exe = std::env::current_exe().expect("own path");
    let bin = exe.parent().expect("bin dir").join("scidock-worker");
    if !bin.exists() {
        eprintln!(
            "fleet_bench: worker binary missing at {} (build it with \
             `cargo build --release -p scidock-bench --bin scidock-worker`)",
            bin.display()
        );
        std::process::exit(2);
    }
    bin.to_string_lossy().into_owned()
}

fn run(scheduler: Option<SchedulerFactory>) -> RunReport {
    let files = Arc::new(FileStore::new());
    let prov = Arc::new(ProvenanceStore::new());
    let def = distspec::resolve_with(SPEC, &files).expect("known spec");
    let input = distspec::prepare(SPEC, &files).expect("known spec");
    let mut cfg = DistConfig::new()
        .with_workers(1)
        .with_worker_command(worker_bin(), Vec::new())
        .with_spec(SPEC)
        .with_max_in_flight(1)
        .with_telemetry(Telemetry::attached());
    if let Some(factory) = scheduler {
        cfg = cfg.with_scheduler(factory);
    }
    run_dist(&def, input, files, prov, &cfg).expect("distributed run")
}

fn trace_line(report: &RunReport) -> String {
    report
        .scale_events
        .iter()
        .map(|e| format!("c{}:{:?}@{}", e.completions, e.decision, e.fleet))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut sidecar = Sidecar::new();

    println!("== fleet_bench: {SPEC} over scidock-worker processes ==");
    let fixed = run(None);
    println!(
        "  fixed 1 worker     : {:>7.3}s  ({} activations, peak {})",
        fixed.total_seconds, fixed.finished, fixed.peak_workers
    );
    assert_eq!(fixed.finished, TASKS);
    assert_eq!(fixed.peak_workers, 1, "the fixed policy must never scale");
    sidecar.push("fixed_1worker_s", format!("{:.4}", fixed.total_seconds));

    let elastic = run(Some(SchedulerFactory::new(|| {
        Box::new(QueueDepthScheduler::new(QueueDepthConfig {
            max_workers: MAX_WORKERS,
            ..QueueDepthConfig::default()
        }))
    })));
    println!(
        "  queue-depth (1..{MAX_WORKERS}): {:>7.3}s  ({} activations, peak {})",
        elastic.total_seconds, elastic.finished, elastic.peak_workers
    );
    println!("    trace: {}", trace_line(&elastic));
    let speedup = fixed.total_seconds / elastic.total_seconds.max(1e-9);
    println!("    speedup vs fixed: {speedup:.2}x");
    assert_eq!(elastic.finished, TASKS);
    assert_eq!(elastic.failed_attempts, 0, "drain-then-retire loses no work");
    assert!(
        !elastic.scale_events.is_empty(),
        "the autoscaler must make at least one scale decision"
    );
    sidecar.push("elastic_s", format!("{:.4}", elastic.total_seconds));
    sidecar.push("elastic_peak_workers", format!("{}", elastic.peak_workers));
    sidecar.push("elastic_scale_events", format!("{}", elastic.scale_events.len()));
    sidecar.push("speedup", format!("{speedup:.3}"));

    // cost-aware: the same backlog priced at m1.small's $0.060/hour with a
    // 2 s time-to-clear target and a budget that affords three workers
    let billing = BillingModel::per_hour(0.060);
    let costly = run(Some(SchedulerFactory::new(move || {
        Box::new(CostAwareScheduler::new(CostAwareConfig {
            max_usd_per_hour: 3.0 * billing.hourly_usd,
            target_seconds: 2.0,
            ..CostAwareConfig::new(billing, vec![0.4])
        }))
    })));
    let cost = costly.fleet_cost_usd.expect("cost-aware runs carry a fleet cost");
    println!(
        "  cost-aware         : {:>7.3}s  (peak {}, fleet cost ${cost:.3})",
        costly.total_seconds, costly.peak_workers
    );
    assert_eq!(costly.finished, TASKS);
    assert!(
        costly.peak_workers <= MAX_WORKERS,
        "the $/hour cap must bound the fleet at {MAX_WORKERS}"
    );
    sidecar.push("cost_aware_s", format!("{:.4}", costly.total_seconds));
    sidecar.push("cost_aware_peak_workers", format!("{}", costly.peak_workers));
    sidecar.push("cost_aware_fleet_usd", format!("{cost:.4}"));
    if let Some(m) = &elastic.metrics {
        sidecar.push_metrics(m);
    }

    if smoke {
        assert!(
            elastic.peak_workers <= MAX_WORKERS,
            "peak {} exceeded the {MAX_WORKERS}-worker cap",
            elastic.peak_workers
        );
        assert!(elastic.peak_workers > 1, "the autoscaler never grew beyond the seed worker");
        assert!(
            elastic.total_seconds < fixed.total_seconds,
            "elastic {:.3}s must beat the fixed 1-worker {:.3}s",
            elastic.total_seconds,
            fixed.total_seconds
        );
        println!("smoke: elastic beat fixed ({speedup:.2}x) within the {MAX_WORKERS}-worker cap");
    }

    std::fs::create_dir_all("target").ok();
    std::fs::write("target/fleet_bench.json", sidecar.to_json()).expect("write sidecar");
    println!("sidecar written to target/fleet_bench.json");
}
