//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```sh
//! cargo run --release -p scidock-bench --bin figures              # everything
//! cargo run --release -p scidock-bench --bin figures -- --fig7    # one artifact
//! cargo run --release -p scidock-bench --bin figures -- --all --scale 4
//! ```
//!
//! `--scale N` divides the receptor set of the *local* (real-docking)
//! experiments by N to keep laptop runs short; the simulated experiments
//! always use the full 10,000-pair dataset.
//!
//! Besides the human-readable text, every numeric series is also written as
//! a JSON sidecar (default `target/figures.json`, override with
//! `--json PATH`) so bench trajectories can be diffed across PRs.

use std::collections::BTreeSet;

use provenance::ProvenanceStore;
use scidock::activities::{EngineMode, SciDockConfig};
use scidock::analysis::{
    activation_durations, histogram, per_activity_stats, render_table3, table3, top_interactions,
    total_feb_negative, PairResult,
};
use scidock::dataset::{Dataset, DatasetParams, LIGAND_CODES, RECEPTOR_IDS};
use scidock::experiments::{
    headline, run_screening, scaling_sweep, simulate_at, ScalePoint, SweepConfig, PAPER_CORE_COUNTS,
};

use scidock_bench::sidecar::{num_array, Sidecar};
use scidock_bench::util::{bar, human_time};
use telemetry::json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_arg =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned();
    let json_path = flag_arg("--json").unwrap_or_else(|| "target/figures.json".to_string());
    let mut wanted: BTreeSet<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            a.starts_with("--")
                && !matches!(a.as_str(), "--scale" | "--all" | "--json")
                // skip a flag's value slot (e.g. the PATH after --json)
                && !matches!(i.checked_sub(1).and_then(|p| args.get(p)).map(String::as_str),
                    Some("--scale" | "--json"))
        })
        .map(|(_, a)| a.trim_start_matches("--").to_string())
        .collect();
    let scale: usize = flag_arg("--scale").and_then(|v| v.parse().ok()).unwrap_or(1);
    let mut sidecar = Sidecar::new();
    let all = wanted.is_empty() || args.iter().any(|a| a == "--all");
    if all {
        for w in [
            "table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "query1", "query2",
            "table3", "top3", "headline", "cost", "spec",
        ] {
            wanted.insert(w.to_string());
        }
    }
    let want = |k: &str| wanted.contains(k);

    // ---------------- static tables ----------------
    if want("table1") {
        section("TABLE 1 — Characteristics of used VMs");
        println!("{:<12} | {:>7} | Physical Processor", "Instance", "# cores");
        println!("{:-<12}-+-{:-<7}-+-{:-<20}", "", "", "");
        for t in [&cloudsim::M3_XLARGE, &cloudsim::M3_2XLARGE] {
            println!("{:<12} | {:>7} | {}", t.name, t.cores, t.processor);
        }
    }

    if want("table2") {
        section("TABLE 2 — Receptors and ligands of clan Peptidase_CA (CL0125)");
        println!("{} receptors (PDB):", RECEPTOR_IDS.len());
        for chunk in RECEPTOR_IDS.chunks(14) {
            println!("  {}", chunk.join(" "));
        }
        println!("{} ligands (SDF):", LIGAND_CODES.len());
        for chunk in LIGAND_CODES.chunks(18) {
            println!("  {}", chunk.join(" "));
        }
        let ds = Dataset::full(DatasetParams::default());
        println!("total pairs: {} (paper: \"all-out 10,000 receptor-ligands\")", ds.pair_count());
    }

    // ---------------- simulated 1,000-pair run: figs 5, 6, query 1 ----------
    let needs_sim_1k = want("fig5") || want("fig6") || want("query1");
    let sim_tel = telemetry::Telemetry::attached();
    let sim_prov = if needs_sim_1k {
        let sweep = SweepConfig {
            ligand_codes: LIGAND_CODES[..4].iter().map(|s| s.to_string()).collect(),
            telemetry: sim_tel.clone(),
            ..Default::default()
        };
        let prov = ProvenanceStore::new();
        eprintln!("[figures] simulating the 1,000-pair run on 16 cores …");
        let r = simulate_at(16, EngineMode::VinaOnly, &sweep, Some(&prov));
        eprintln!(
            "[figures]   TET {} | {} finished, {} failed, {} aborted, {} blacklisted",
            human_time(r.tet_s),
            r.finished,
            r.failed_attempts,
            r.aborted,
            r.blacklisted
        );
        Some(prov)
    } else {
        None
    };

    if want("fig5") {
        let prov = sim_prov.as_ref().expect("sim ran");
        section("FIGURE 5 — Histogram of activity execution times (1,000 pairs)");
        let durations = activation_durations(prov, 1);
        let h = histogram(&durations, 12);
        let max = h.iter().map(|(_, _, c)| *c).max().unwrap_or(0);
        println!("{:>18} | {:>6} |", "duration (s)", "count");
        for (lo, hi, c) in &h {
            println!("{:>8.1} –{:>8.1} | {:>6} | {}", lo, hi, c, bar(*c, max, 40));
        }
        let n = durations.len() as f64;
        let mean = durations.iter().sum::<f64>() / n;
        let sd = (durations.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n).sqrt();
        println!("activations: {} | mean {:.1} s | sd {:.1} s", durations.len(), mean, sd);
        let bins: Vec<String> = h
            .iter()
            .map(|(lo, hi, c)| {
                format!("{{\"lo_s\":{},\"hi_s\":{},\"count\":{c}}}", json::num(*lo), json::num(*hi))
            })
            .collect();
        sidecar.push(
            "fig5",
            format!(
                "{{\"activations\":{},\"mean_s\":{},\"sd_s\":{},\"bins\":[{}]}}",
                durations.len(),
                json::num(mean),
                json::num(sd),
                bins.join(",")
            ),
        );
    }

    if want("fig6") {
        let prov = sim_prov.as_ref().expect("sim ran");
        section("FIGURE 6 — Execution time per activity (16 cores)");
        let stats = per_activity_stats(prov, 1);
        let max_sum = stats.iter().map(|s| s.3).fold(0.0f64, f64::max);
        println!(
            "{:<16} | {:>9} | {:>9} | {:>11} | {:>9} |",
            "activity", "min (s)", "max (s)", "total (s)", "avg (s)"
        );
        for (tag, min, max, sum, avg) in &stats {
            println!(
                "{:<16} | {:>9.2} | {:>9.2} | {:>11.1} | {:>9.2} | {}",
                tag,
                min,
                max,
                sum,
                avg,
                bar((*sum) as usize, max_sum as usize, 30)
            );
        }
        let rows: Vec<String> = stats
            .iter()
            .map(|(tag, min, max, sum, avg)| {
                format!(
                    "{{\"activity\":\"{}\",\"min_s\":{},\"max_s\":{},\"total_s\":{},\"avg_s\":{}}}",
                    json::escape(tag),
                    json::num(*min),
                    json::num(*max),
                    json::num(*sum),
                    json::num(*avg)
                )
            })
            .collect();
        sidecar.push("fig6", format!("[{}]", rows.join(",")));
    }

    if want("query1") {
        let prov = sim_prov.as_ref().expect("sim ran");
        section("QUERY 1 (paper Fig. 10) — per-activity min/max/sum/avg via SQL");
        let sql = "SELECT a.tag, \
                     min(extract('epoch' from (t.endtime-t.starttime))), \
                     max(extract('epoch' from (t.endtime-t.starttime))), \
                     sum(extract('epoch' from (t.endtime-t.starttime))), \
                     avg(extract('epoch' from (t.endtime-t.starttime))) \
                   FROM hworkflow w, hactivity a, hactivation t \
                   WHERE w.wkfid = a.wkfid AND a.actid = t.actid AND w.wkfid = 1 \
                   GROUP BY a.tag ORDER BY a.tag";
        println!("SQL: {sql}\n");
        match prov.query_rows(sql, &[]) {
            Ok(rs) => println!("{rs}"),
            Err(e) => println!("query failed: {e}"),
        }
    }

    // ---------------- scaling sweeps: figs 7-9 + headline -------------------
    let needs_sweep =
        want("fig7") || want("fig8") || want("fig9") || want("headline") || want("cost");
    let sweeps: Option<(Vec<ScalePoint>, Vec<ScalePoint>)> = if needs_sweep {
        let sweep = SweepConfig::default();
        eprintln!("[figures] running the 10,000-pair scaling sweeps (2–128 cores) …");
        let ad4 = scaling_sweep(&PAPER_CORE_COUNTS, EngineMode::Ad4Only, &sweep);
        let vina = scaling_sweep(&PAPER_CORE_COUNTS, EngineMode::VinaOnly, &sweep);
        Some((ad4, vina))
    } else {
        None
    };

    if want("fig7") {
        let (ad4, vina) = sweeps.as_ref().expect("sweep ran");
        section("FIGURE 7 — Total execution time of SciDock (10,000 pairs)");
        println!("cores | TET SciDock-AD4 | TET SciDock-Vina");
        println!("------+-----------------+-----------------");
        for (a, v) in ad4.iter().zip(vina) {
            println!("{:>5} | {:>15} | {:>15}", a.cores, human_time(a.tet_s), human_time(v.tet_s));
        }
        sidecar.push(
            "fig7",
            format!(
                "{{\"cores\":{},\"ad4_tet_s\":{},\"vina_tet_s\":{}}}",
                num_array(&ad4.iter().map(|p| p.cores as f64).collect::<Vec<_>>()),
                num_array(&ad4.iter().map(|p| p.tet_s).collect::<Vec<_>>()),
                num_array(&vina.iter().map(|p| p.tet_s).collect::<Vec<_>>())
            ),
        );
    }

    if want("fig8") {
        let (ad4, vina) = sweeps.as_ref().expect("sweep ran");
        section("FIGURE 8 — Speedup of SciDock (vs 1-core baseline)");
        println!("cores | AD4 speedup | Vina speedup | ideal");
        println!("------+-------------+--------------+------");
        for (a, v) in ad4.iter().zip(vina) {
            println!("{:>5} | {:>11.1} | {:>12.1} | {:>5}", a.cores, a.speedup, v.speedup, a.cores);
        }
        sidecar.push(
            "fig8",
            format!(
                "{{\"cores\":{},\"ad4_speedup\":{},\"vina_speedup\":{}}}",
                num_array(&ad4.iter().map(|p| p.cores as f64).collect::<Vec<_>>()),
                num_array(&ad4.iter().map(|p| p.speedup).collect::<Vec<_>>()),
                num_array(&vina.iter().map(|p| p.speedup).collect::<Vec<_>>())
            ),
        );
    }

    if want("fig9") {
        let (ad4, vina) = sweeps.as_ref().expect("sweep ran");
        section("FIGURE 9 — Efficiency of SciDock");
        println!("cores | AD4 efficiency | Vina efficiency");
        println!("------+----------------+----------------");
        for (a, v) in ad4.iter().zip(vina) {
            println!("{:>5} | {:>14.2} | {:>15.2}", a.cores, a.efficiency, v.efficiency);
        }
        sidecar.push(
            "fig9",
            format!(
                "{{\"cores\":{},\"ad4_efficiency\":{},\"vina_efficiency\":{}}}",
                num_array(&ad4.iter().map(|p| p.cores as f64).collect::<Vec<_>>()),
                num_array(&ad4.iter().map(|p| p.efficiency).collect::<Vec<_>>()),
                num_array(&vina.iter().map(|p| p.efficiency).collect::<Vec<_>>())
            ),
        );
    }

    if want("cost") {
        let (ad4, vina) = sweeps.as_ref().expect("sweep ran");
        section("EXTENSION — cloud cost vs cores (§V.C: \"particularly if financial costs are involved\")");
        println!("cores | AD4 cost (USD) | Vina cost (USD) | AD4 $/1k pairs | Vina $/1k pairs");
        println!("------+----------------+-----------------+----------------+----------------");
        for (a, v) in ad4.iter().zip(vina) {
            println!(
                "{:>5} | {:>14.2} | {:>15.2} | {:>14.2} | {:>15.2}",
                a.cores,
                a.cost_usd,
                v.cost_usd,
                a.cost_usd / 10.0,
                v.cost_usd / 10.0
            );
        }
        println!("\n(the paper's caution about >32 VMs shows up as the cost knee: past the\nefficiency plateau each extra dollar buys less speedup)");
        sidecar.push(
            "cost",
            format!(
                "{{\"cores\":{},\"ad4_usd\":{},\"vina_usd\":{}}}",
                num_array(&ad4.iter().map(|p| p.cores as f64).collect::<Vec<_>>()),
                num_array(&ad4.iter().map(|p| p.cost_usd).collect::<Vec<_>>()),
                num_array(&vina.iter().map(|p| p.cost_usd).collect::<Vec<_>>())
            ),
        );
    }

    if want("spec") {
        section("SCIDOCK XML SPECIFICATION (paper Fig. 2, generated)");
        let xml =
            scidock::activities::scidock_xml_spec(EngineMode::Adaptive, &SciDockConfig::default());
        for line in xml.lines().take(24) {
            println!("{line}");
        }
        println!("… ({} lines total)", xml.lines().count());
    }

    if want("headline") {
        let (ad4, vina) = sweeps.as_ref().expect("sweep ran");
        section("HEADLINE NUMBERS (paper §I / §V.C / §VI)");
        let ha = headline(ad4);
        let hv = headline(vina);
        println!(
            "SciDock-AD4 : {:.1} days (2 cores) → {:.1} hours (128 cores)   [paper: 12.5 d → 11.9 h]",
            ha.tet_low_days, ha.tet_high_hours
        );
        println!(
            "SciDock-Vina: {:.1} days (2 cores) → {:.1} hours (128 cores)   [paper:  9.0 d →  7.7 h]",
            hv.tet_low_days, hv.tet_high_hours
        );
        println!(
            "improvement at 32 cores: AD4 {:.1}%, Vina {:.1}%              [paper: 95.4% / 96.1%]",
            ha.improvement_at_32.unwrap_or(0.0),
            hv.improvement_at_32.unwrap_or(0.0)
        );
        println!(
            "speedup at 16 cores: AD4 {:.1}×, Vina {:.1}×                  [paper: ~13×]",
            ha.speedup_at_16.unwrap_or(0.0),
            hv.speedup_at_16.unwrap_or(0.0)
        );
        let engine_json = |h: &scidock::experiments::Headline| {
            format!(
                "{{\"tet_low_days\":{},\"tet_high_hours\":{},\"improvement_at_32_pct\":{},\"speedup_at_16\":{}}}",
                json::num(h.tet_low_days),
                json::num(h.tet_high_hours),
                json::num(h.improvement_at_32.unwrap_or(f64::NAN)),
                json::num(h.speedup_at_16.unwrap_or(f64::NAN))
            )
        };
        sidecar.push(
            "headline",
            format!("{{\"ad4\":{},\"vina\":{}}}", engine_json(&ha), engine_json(&hv)),
        );
    }

    // ---------------- real docking run: table 3, query 2, top 3 -------------
    let needs_real = want("table3") || want("query2") || want("top3");
    if needs_real {
        let n_rec = (RECEPTOR_IDS.len() / scale).max(2);
        let receptor_ids: Vec<&str> = RECEPTOR_IDS[..n_rec].to_vec();
        let ligands: Vec<&str> = LIGAND_CODES[..4].to_vec();
        eprintln!(
            "[figures] real docking: {} receptors × {} ligands × 2 engines (--scale {scale}) …",
            receptor_ids.len(),
            ligands.len()
        );
        let cfg = SciDockConfig::default();
        let t0 = std::time::Instant::now();
        let ad4_out = run_screening(&receptor_ids, &ligands, EngineMode::Ad4Only, 4, &cfg);
        eprintln!(
            "[figures]   AD4 done in {} ({} pairs)",
            human_time(t0.elapsed().as_secs_f64()),
            ad4_out.results.len()
        );
        let t1 = std::time::Instant::now();
        let vina_out = run_screening(&receptor_ids, &ligands, EngineMode::VinaOnly, 4, &cfg);
        eprintln!(
            "[figures]   Vina done in {} ({} pairs)",
            human_time(t1.elapsed().as_secs_f64()),
            vina_out.results.len()
        );

        let mut results: Vec<PairResult> = ad4_out.results.clone();
        results.extend(vina_out.results.clone());

        if want("table3") {
            section("TABLE 3 — Results of molecular docking processes for SciDock");
            let lig_list: Vec<&str> = ligands.clone();
            let rows_a = table3(&results, "autodock4", &lig_list);
            let rows_v = table3(&results, "vina", &lig_list);
            println!("{}", render_table3(&rows_a, &rows_v));
            println!(
                "total FEB(-): AD4 {} / Vina {} of {} pairs each   [paper: 287 / 355 of 1,000]",
                total_feb_negative(&results, "autodock4"),
                total_feb_negative(&results, "vina"),
                ad4_out.results.len()
            );
            sidecar.push(
                "table3",
                format!(
                    "{{\"scale\":{scale},\"pairs_per_engine\":{},\"ad4_feb_negative\":{},\"vina_feb_negative\":{}}}",
                    ad4_out.results.len(),
                    total_feb_negative(&results, "autodock4"),
                    total_feb_negative(&results, "vina")
                ),
            );
        }

        if want("top3") {
            section("TOP INTERACTIONS (paper §V.D: 2HHN-0E6, 1S4V-0D6, 1HUC-0D6)");
            for r in top_interactions(&results, 10) {
                println!(
                    "  {}-{} [{}]: FEB {:+.2} kcal/mol, RMSD {:.1} Å",
                    r.receptor, r.ligand, r.engine, r.feb, r.rmsd
                );
            }
        }

        if want("query2") {
            section("QUERY 2 (paper Fig. 11) — names, sizes, locations of .dlg files");
            let sql = "SELECT w.tag, a.tag, f.fname, f.fsize, f.fdir \
                       FROM hworkflow w, hactivity a, hactivation t, hfile f \
                       WHERE w.wkfid = a.wkfid AND a.actid = t.actid AND t.taskid = f.taskid \
                       AND f.fname LIKE '%.dlg' ORDER BY f.fsize DESC LIMIT 10";
            println!("SQL: {sql}\n");
            match ad4_out.prov.query_rows(sql, &[]) {
                Ok(rs) => println!("{rs}"),
                Err(e) => println!("query failed: {e}"),
            }
        }
    }

    if !sidecar.is_empty() {
        if let Some(m) = sim_tel.snapshot() {
            if !m.counters.is_empty() || !m.histograms.is_empty() {
                sidecar.push_metrics(&m);
            }
        }
        let path = std::path::Path::new(&json_path);
        match sidecar.write(path) {
            Ok(()) => eprintln!("[figures] JSON sidecar written to {}", path.display()),
            Err(e) => eprintln!("[figures] failed to write {}: {e}", path.display()),
        }
    }
    eprintln!("[figures] done.");
}

fn section(title: &str) {
    println!("\n=============================================================");
    println!("{title}");
    println!("=============================================================");
}
