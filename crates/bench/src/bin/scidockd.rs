//! `scidockd` — the always-on campaign daemon, as a process.
//!
//! Binds the `SDC1` submission endpoint, resolves campaign specs through
//! the shared [`scidock_bench::distspec`] registry (so `scidock:ad4:4x8`
//! and `unit:spin:16:5` both work), and serves many concurrent campaigns
//! from many tenants over one shared elastic worker fleet and one durable
//! provenance store.
//!
//! ```sh
//! scidockd --addr 127.0.0.1:7878 --workers 4 --max-workers 8 \
//!          --metrics-addr 127.0.0.1:9464 --wal /tmp/scidockd.wal
//! ```
//!
//! The daemon runs until stdin reaches EOF (pipe from `/dev/null` &
//! background it for service use; press Ctrl-D interactively), then shuts
//! down gracefully: in-flight activations finish and the WAL is flushed.

use std::sync::Arc;
use std::time::Duration;

use cumulus::obs::EventLog;
use cumulus::serve::{CampaignResolver, Daemon, ServeConfig};
use cumulus::workflow::FileStore;
use cumulus::Workflow;
use provenance::ProvenanceStore;
use telemetry::Telemetry;

fn usage() -> ! {
    eprintln!(
        "usage: scidockd [--addr HOST:PORT] [--workers N] [--min-workers N] [--max-workers N]\n\
         \x20               [--max-active N] [--max-pending N] [--tenant-quota N]\n\
         \x20               [--retry-after-ms MS] [--steering-ms MS]\n\
         \x20               [--metrics-addr HOST:PORT] [--events FILE] [--wal FILE]\n\
         \x20               [--grid-cache-dir DIR]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("scidockd: {flag} needs a value");
        usage()
    })
}

/// Resolve specs through the same registry the distributed backend uses,
/// staging each campaign's inputs into its own file store.
fn resolver() -> CampaignResolver {
    Arc::new(|spec: &str| {
        let files = Arc::new(FileStore::new());
        let def = scidock_bench::distspec::resolve_with(spec, &files)?;
        let input = scidock_bench::distspec::prepare(spec, &files)?;
        Some(Workflow::new(def, input).with_files(files))
    })
}

fn main() {
    let mut cfg = ServeConfig::new()
        .with_addr("127.0.0.1:7878")
        .with_workers(4)
        .with_worker_bounds(1, 8)
        .with_steering_tick(Duration::from_millis(250))
        .with_telemetry(Telemetry::attached())
        .with_events(EventLog::new());
    let mut wal: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => cfg = cfg.with_addr(parse::<String>(&mut args, "--addr")),
            "--workers" => cfg = cfg.with_workers(parse(&mut args, "--workers")),
            "--min-workers" => {
                let min: usize = parse(&mut args, "--min-workers");
                let max = cfg.max_workers.max(min);
                cfg = cfg.with_worker_bounds(min, max);
            }
            "--max-workers" => {
                let max: usize = parse(&mut args, "--max-workers");
                let min = cfg.min_workers.min(max);
                cfg = cfg.with_worker_bounds(min, max);
            }
            "--max-active" => cfg = cfg.with_max_active(parse(&mut args, "--max-active")),
            "--max-pending" => cfg = cfg.with_max_pending(parse(&mut args, "--max-pending")),
            "--tenant-quota" => cfg = cfg.with_tenant_quota(parse(&mut args, "--tenant-quota")),
            "--retry-after-ms" => {
                cfg = cfg.with_retry_after_ms(parse(&mut args, "--retry-after-ms"));
            }
            "--steering-ms" => {
                cfg = cfg
                    .with_steering_tick(Duration::from_millis(parse(&mut args, "--steering-ms")));
            }
            "--metrics-addr" => {
                cfg = cfg.with_metrics_addr(parse::<String>(&mut args, "--metrics-addr"));
            }
            "--events" => {
                let path: String = parse(&mut args, "--events");
                match EventLog::with_file(&path) {
                    Ok(log) => cfg = cfg.with_events(log),
                    Err(e) => {
                        eprintln!("scidockd: cannot open event sink {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--wal" => wal = Some(parse(&mut args, "--wal")),
            "--grid-cache-dir" => {
                // exported so the resolver — and every spawned dist worker,
                // which inherits the environment — points each campaign's
                // GridCache at one shared persistent directory: the same
                // receptor set across thousands of campaigns builds each map
                // set exactly once
                let dir: String = parse(&mut args, "--grid-cache-dir");
                std::env::set_var("SCIDOCK_GRID_CACHE_DIR", dir);
            }
            _ => usage(),
        }
    }

    let prov = match &wal {
        Some(path) => match ProvenanceStore::open(path) {
            Ok(p) => Arc::new(p),
            Err(e) => {
                eprintln!("scidockd: cannot open WAL {path}: {e}");
                std::process::exit(1);
            }
        },
        None => Arc::new(ProvenanceStore::new()),
    };

    let daemon = match Daemon::start(cfg, resolver(), prov) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("scidockd: cannot start: {e}");
            std::process::exit(1);
        }
    };
    println!("scidockd: serving SDC1 on {}", daemon.addr());
    if wal.is_some() {
        println!("scidockd: provenance WAL enabled");
    }
    println!("scidockd: reading stdin; EOF shuts down");

    // block until the operator closes stdin, then drain gracefully
    let mut sink = String::new();
    let _ = std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut sink);
    println!("scidockd: shutting down");
    daemon.shutdown();
}
