//! `scidock-worker` — a worker process for the distributed backend.
//!
//! Spawned by the master (`DistConfig::with_worker_command`) as
//! `scidock-worker --connect HOST:PORT`. It connects back, resolves the
//! workflow spec the master ships in its `Hello` frame through the shared
//! [`scidock_bench::distspec`] registry, and serves activations until the
//! master sends `Shutdown` or the connection drops.

fn main() {
    let mut addr = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--connect" => addr = args.next(),
            other => {
                eprintln!("scidock-worker: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("usage: scidock-worker --connect HOST:PORT");
        std::process::exit(2);
    };
    if let Err(e) = cumulus::distbackend::worker::serve(&addr, scidock_bench::distspec::resolver())
    {
        eprintln!("scidock-worker: {e}");
        std::process::exit(1);
    }
}
