//! `serve_bench` — load generator and CI gate for `scidockd`, the
//! multi-campaign daemon.
//!
//! Drives hundreds of campaigns from several tenants through one
//! in-process daemon over a deliberately small worker fleet and bounded
//! admission queue, so the run exercises the whole service contract:
//! admission control pushing back under overload (`Reject` + retry-after,
//! honoured by the drivers), fair-share dispatch across tenants, and the
//! shared provenance store absorbing every campaign.
//!
//! Gates (`--smoke` runs a smaller load, same gates):
//!
//! 1. **Overload backpressure**: the flood must provoke at least one
//!    `Reject` carrying the configured retry-after hint, and every
//!    rejected submission must eventually be admitted by honouring it —
//!    backpressure sheds load without losing work.
//! 2. **p99 submission→first-result latency** (daemon-side
//!    `campaign.first_result` histogram) must stay under
//!    `SERVE_P99_MS` (default 5000 ms).
//! 3. **Fairness spread**: every tenant submits the same load, so the
//!    slowest tenant's mean campaign-completion latency must stay within
//!    `SERVE_FAIRNESS_SPREAD` × the fastest tenant's (default 3.0).
//!
//! A JSON sidecar (`target/serve_bench.json`, schema v1) records the
//! latency quantiles, reject counts, and per-tenant means so trajectories
//! can be diffed across PRs.
//!
//! ```sh
//! cargo run --release -p scidock-bench --bin serve_bench            # full
//! cargo run --release -p scidock-bench --bin serve_bench -- --smoke # CI
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use cumulus::serve::{
    CampaignResolver, CampaignState, Daemon, ServeClient, ServeConfig, SubmitOutcome,
};
use cumulus::workflow::{Activity, FileStore, WorkflowDef};
use cumulus::{Relation, Workflow};
use provenance::{ProvenanceStore, Value};
use scidock_bench::sidecar::Sidecar;
use telemetry::Telemetry;

const RETRY_AFTER_MS: u64 = 20;

/// `unit:<n>:<ms>` — one Map activity over `n` tuples, each activation
/// sleeping `ms`. Small and uniform, so every tenant's campaigns cost the
/// same and the fairness spread isolates the scheduler.
fn resolver() -> CampaignResolver {
    Arc::new(|spec: &str| {
        let rest = spec.strip_prefix("unit:")?;
        let (n, ms) = rest.split_once(':')?;
        let (n, ms): (usize, u64) = (n.parse().ok()?, ms.parse().ok()?);
        let def = WorkflowDef {
            tag: "serve-unit".into(),
            description: format!("{n} activations x {ms}ms"),
            expdir: "/bench/serve".into(),
            activities: vec![Activity::map(
                "spin",
                &["x"],
                Arc::new(move |part, _| {
                    std::thread::sleep(Duration::from_millis(ms));
                    Ok(part.to_vec())
                }),
            )],
            deps: vec![vec![]],
        };
        let mut input = Relation::new(&["x"]);
        for i in 0..n {
            input.push(vec![Value::Int(i as i64)]);
        }
        Some(Workflow::new(def, input).with_files(Arc::new(FileStore::new())))
    })
}

struct TenantOutcome {
    tenant: String,
    rejected: u64,
    /// submit→Finished per campaign, milliseconds.
    finish_ms: Vec<f64>,
}

/// One tenant's driver: flood `campaigns` submissions, honouring
/// retry-after on rejection, then poll everything to completion.
fn drive_tenant(addr: std::net::SocketAddr, tenant: String, campaigns: usize) -> TenantOutcome {
    let mut client = ServeClient::connect(addr).expect("connect");
    let mut rejected = 0u64;
    let mut ids: Vec<(u64, Instant)> = Vec::with_capacity(campaigns);
    for _ in 0..campaigns {
        loop {
            let submitted = Instant::now();
            match client.submit(&tenant, 0, "unit:4:3").expect("submit io") {
                SubmitOutcome::Accepted { id } => {
                    ids.push((id, submitted));
                    break;
                }
                SubmitOutcome::Rejected { retry_after_ms, reason } => {
                    assert!(retry_after_ms > 0, "transient overload only, got: {reason}");
                    rejected += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms));
                }
            }
        }
    }
    let mut finish_ms = Vec::with_capacity(ids.len());
    for (id, submitted) in ids {
        loop {
            let st = client.status(id).expect("status io");
            match st.state {
                CampaignState::Finished => {
                    finish_ms.push(submitted.elapsed().as_secs_f64() * 1e3);
                    break;
                }
                CampaignState::Cancelled | CampaignState::Failed => {
                    panic!("campaign {id} of {tenant} ended {:?}", st.state)
                }
                _ => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    }
    TenantOutcome { tenant, rejected, finish_ms }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let p99_gate_ms: f64 =
        std::env::var("SERVE_P99_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(5000.0);
    let spread_gate: f64 =
        std::env::var("SERVE_FAIRNESS_SPREAD").ok().and_then(|v| v.parse().ok()).unwrap_or(3.0);

    let tenants = if smoke { 4 } else { 6 };
    let per_tenant = if smoke { 30 } else { 50 };
    let total = tenants * per_tenant;
    println!(
        "== serve_bench: {total} campaigns from {tenants} tenants through one scidockd \
         (4 workers, 8 active, 32 pending) =="
    );

    let tel = Telemetry::attached();
    let daemon = Daemon::start(
        ServeConfig::new()
            .with_workers(4)
            .with_max_active(8)
            .with_max_pending(32)
            .with_tenant_quota(usize::MAX >> 1)
            .with_retry_after_ms(RETRY_AFTER_MS)
            .with_telemetry(tel.clone()),
        resolver(),
        Arc::new(ProvenanceStore::new()),
    )
    .expect("daemon starts");
    let addr = daemon.addr();

    let t0 = Instant::now();
    let handles: Vec<_> = (0..tenants)
        .map(|i| {
            let tenant = format!("tenant-{i}");
            std::thread::spawn(move || drive_tenant(addr, tenant, per_tenant))
        })
        .collect();
    let outcomes: Vec<TenantOutcome> =
        handles.into_iter().map(|h| h.join().expect("driver thread")).collect();
    let wall_s = t0.elapsed().as_secs_f64();
    daemon.shutdown();

    let snap = tel.snapshot().expect("telemetry attached");
    let rejected_client: u64 = outcomes.iter().map(|o| o.rejected).sum();
    let rejected_daemon = snap.counter("campaign.rejected").unwrap_or(0);
    let finished = snap.counter("campaign.finished").unwrap_or(0);
    let recorded =
        snap.histograms.iter().find(|h| h.name == "campaign.first_result").map_or(0, |h| h.count);
    assert!(recorded > 0, "daemon recorded no first-result latencies");
    let first = tel.histogram("campaign.first_result").expect("telemetry attached");
    let p50_ms = first.quantile(0.50) / 1e6;
    let p99_ms = first.quantile(0.99) / 1e6;

    println!(
        "  {finished} campaigns finished in {wall_s:.2}s wall; {rejected_client} overload \
         rejects honoured ({rejected_daemon} daemon-side)"
    );
    println!("  submission -> first result: p50 {p50_ms:.1} ms, p99 {p99_ms:.1} ms");

    let mut sidecar = Sidecar::new();
    sidecar.push("campaigns_total", format!("{total}"));
    sidecar.push("tenants", format!("{tenants}"));
    sidecar.push("wall_s", format!("{wall_s:.3}"));
    sidecar.push("rejected_overload", format!("{rejected_client}"));
    sidecar.push("first_result_p50_ms", format!("{p50_ms:.3}"));
    sidecar.push("first_result_p99_ms", format!("{p99_ms:.3}"));

    let means: Vec<(String, f64)> =
        outcomes.iter().map(|o| (o.tenant.clone(), mean(&o.finish_ms))).collect();
    let fastest = means.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
    let slowest = means.iter().map(|(_, m)| *m).fold(0.0, f64::max);
    let spread = if fastest > 0.0 { slowest / fastest } else { 1.0 };
    for (tenant, m) in &means {
        println!("  {tenant}: mean campaign completion {m:.1} ms");
    }
    println!("  fairness spread (slowest/fastest tenant mean): {spread:.2}x");
    let tenant_means: Vec<String> = means
        .iter()
        .map(|(t, m)| format!("{{\"tenant\":\"{t}\",\"mean_finish_ms\":{m:.3}}}"))
        .collect();
    sidecar.push("tenant_means", format!("[{}]", tenant_means.join(",")));
    sidecar.push("fairness_spread", format!("{spread:.4}"));
    sidecar.push_metrics(&snap);
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write("target/serve_bench.json", sidecar.to_json()).expect("write sidecar");
    println!("sidecar written to target/serve_bench.json");

    let mut ok = true;
    if finished != total as u64 {
        eprintln!("FAIL: {finished} of {total} campaigns finished");
        ok = false;
    }
    if rejected_client == 0 {
        eprintln!("FAIL: the flood never provoked an overload Reject — admission control untested");
        ok = false;
    }
    if p99_ms >= p99_gate_ms {
        eprintln!("FAIL: p99 first-result latency {p99_ms:.1} ms >= {p99_gate_ms} ms");
        ok = false;
    }
    if spread >= spread_gate {
        eprintln!("FAIL: fairness spread {spread:.2}x >= {spread_gate}x");
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
    println!();
    println!("serve_bench: all gates passed");
}
