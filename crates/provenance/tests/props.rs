//! Property-based tests for the provenance store and SQL engine.

use proptest::prelude::*;

use provenance::sql::{execute_query, parse, QueryError, ResultSet};
use provenance::{Database, Schema, Value, ValueType};

/// Parse + run on the reference engine (the non-deprecated spelling of the
/// old `sql::execute` free function).
fn execute(db: &Database, sql: &str) -> Result<ResultSet, QueryError> {
    execute_query(db, &parse(sql)?)
}

/// Reference implementation of SQL LIKE used to check the engine's matcher.
fn like_reference(pattern: &str, text: &str) -> bool {
    fn go(p: &[char], t: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => (0..=t.len()).any(|k| go(rest, &t[k..])),
            Some(('_', rest)) => !t.is_empty() && go(rest, &t[1..]),
            Some((c, rest)) => t.first() == Some(c) && go(rest, &t[1..]),
        }
    }
    go(&p_chars(pattern), &p_chars(text))
}

fn p_chars(s: &str) -> Vec<char> {
    s.chars().collect()
}

fn tiny_db(values: &[(i64, String)]) -> Database {
    let mut db = Database::new();
    db.create_table("t", Schema::new(&[("n", ValueType::Int), ("s", ValueType::Text)])).unwrap();
    for (n, s) in values {
        db.insert("t", vec![Value::Int(*n), Value::Text(s.clone())]).unwrap();
    }
    db
}

proptest! {
    #[test]
    fn like_matches_reference(pattern in "[ab%_]{0,6}", text in "[ab]{0,8}") {
        let db = tiny_db(&[(1, text.clone())]);
        let sql = format!("SELECT count(*) FROM t WHERE s LIKE '{pattern}'");
        let rs = execute(&db, &sql).unwrap();
        let engine_match = rs.cell(0, 0) == &Value::Int(1);
        prop_assert_eq!(engine_match, like_reference(&pattern, &text),
            "pattern {:?} text {:?}", pattern, text);
    }

    #[test]
    fn count_matches_row_count(rows in prop::collection::vec((0i64..100, "[a-z]{0,5}"), 0..50)) {
        let data: Vec<(i64, String)> = rows;
        let db = tiny_db(&data);
        let rs = execute(&db, "SELECT count(*) FROM t").unwrap();
        prop_assert_eq!(rs.cell(0, 0), &Value::Int(data.len() as i64));
    }

    #[test]
    fn sum_and_avg_agree(rows in prop::collection::vec(0i64..1000, 1..50)) {
        let data: Vec<(i64, String)> = rows.iter().map(|&n| (n, String::new())).collect();
        let db = tiny_db(&data);
        let rs = execute(&db, "SELECT sum(n), avg(n), count(n) FROM t").unwrap();
        let sum = rs.cell(0, 0).as_f64().unwrap();
        let avg = rs.cell(0, 1).as_f64().unwrap();
        let count = rs.cell(0, 2).as_f64().unwrap();
        prop_assert!((sum - avg * count).abs() < 1e-6 * (1.0 + sum.abs()));
        let want: i64 = rows.iter().sum();
        prop_assert!((sum - want as f64).abs() < 1e-9);
    }

    #[test]
    fn min_max_bound_all_values(rows in prop::collection::vec(-1000i64..1000, 1..50)) {
        let data: Vec<(i64, String)> = rows.iter().map(|&n| (n, String::new())).collect();
        let db = tiny_db(&data);
        let rs = execute(&db, "SELECT min(n), max(n) FROM t").unwrap();
        let min = rs.cell(0, 0).as_f64().unwrap() as i64;
        let max = rs.cell(0, 1).as_f64().unwrap() as i64;
        prop_assert_eq!(min, *rows.iter().min().unwrap());
        prop_assert_eq!(max, *rows.iter().max().unwrap());
    }

    #[test]
    fn where_filter_partition(rows in prop::collection::vec(0i64..100, 0..60), cut in 0i64..100) {
        let data: Vec<(i64, String)> = rows.iter().map(|&n| (n, String::new())).collect();
        let db = tiny_db(&data);
        let lo = execute(&db, &format!("SELECT count(*) FROM t WHERE n < {cut}")).unwrap();
        let hi = execute(&db, &format!("SELECT count(*) FROM t WHERE n >= {cut}")).unwrap();
        let total = lo.cell(0, 0).as_f64().unwrap() + hi.cell(0, 0).as_f64().unwrap();
        prop_assert_eq!(total as usize, data.len());
    }

    #[test]
    fn order_by_sorts(rows in prop::collection::vec(-50i64..50, 1..40)) {
        let data: Vec<(i64, String)> = rows.iter().map(|&n| (n, String::new())).collect();
        let db = tiny_db(&data);
        let asc = execute(&db, "SELECT n FROM t ORDER BY n").unwrap();
        let got: Vec<i64> = asc.rows.iter().map(|r| r[0].as_f64().unwrap() as i64).collect();
        let mut want = rows.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        let desc = execute(&db, "SELECT n FROM t ORDER BY n DESC").unwrap();
        let got_d: Vec<i64> = desc.rows.iter().map(|r| r[0].as_f64().unwrap() as i64).collect();
        let mut want_d = rows.clone();
        want_d.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(got_d, want_d);
    }

    #[test]
    fn limit_truncates(rows in prop::collection::vec(0i64..100, 0..40), lim in 0usize..50) {
        let data: Vec<(i64, String)> = rows.iter().map(|&n| (n, String::new())).collect();
        let db = tiny_db(&data);
        let rs = execute(&db, &format!("SELECT n FROM t LIMIT {lim}")).unwrap();
        prop_assert_eq!(rs.len(), data.len().min(lim));
    }

    #[test]
    fn group_by_partitions_rows(rows in prop::collection::vec((0i64..5, "[ab]{1}"), 1..60)) {
        let data: Vec<(i64, String)> = rows;
        let db = tiny_db(&data);
        let rs = execute(&db, "SELECT s, count(*) FROM t GROUP BY s").unwrap();
        let total: f64 = rs.rows.iter().map(|r| r[1].as_f64().unwrap()).sum();
        prop_assert_eq!(total as usize, data.len());
        // group count equals distinct key count
        let mut keys: Vec<&String> = data.iter().map(|(_, s)| s).collect();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(rs.len(), keys.len());
    }

    #[test]
    fn value_compare_consistent_with_f64(a in -1e6..1e6f64, b in -1e6..1e6f64) {
        let va = Value::Float(a);
        let vb = Value::Float(b);
        prop_assert_eq!(va.compare(&vb), Some(a.total_cmp(&b)));
    }

    #[test]
    fn arithmetic_matches_rust(a in -1000i64..1000, b in -1000i64..1000) {
        let db = tiny_db(&[(0, String::new())]);
        let rs = execute(&db, &format!("SELECT {a} + {b}, {a} * {b}, {a} - {b} FROM t")).unwrap();
        prop_assert_eq!(rs.cell(0, 0).as_f64().unwrap() as i64, a + b);
        prop_assert_eq!(rs.cell(0, 1).as_f64().unwrap() as i64, a * b);
        prop_assert_eq!(rs.cell(0, 2).as_f64().unwrap() as i64, a - b);
    }
}
