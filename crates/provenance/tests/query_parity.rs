//! Property tests for the three-engine query-parity invariant:
//!
//! 1. the reference tree-walking executor over the in-memory [`Database`],
//! 2. the Volcano pipeline over the same [`Database`] (planner picks
//!    `SeqScan` everywhere — no indexes exist),
//! 3. the Volcano pipeline over a [`PagedDb`] mirror with B+tree indexes
//!    (planner picks `IndexScan`/`IndexRange`/`IndexProbe` where it can)
//!
//! must agree on every query: identical columns, identical rows in
//! identical order, or the same refusal to run. Random tables × random
//! queries; any divergence is a planner or executor bug by construction
//! (index access paths may over-approximate but never drop rows, and the
//! executor re-applies every predicate).

use proptest::prelude::*;

use provenance::sql::{execute_query, parse, run_query};
use provenance::storage::{PagedDb, TableProvider};
use provenance::{Database, Schema, Value, ValueType};

fn schema_t() -> Schema {
    Schema::new(&[
        ("id", ValueType::Int),
        ("grp", ValueType::Int),
        ("val", ValueType::Float),
        ("name", ValueType::Text),
        ("flag", ValueType::Bool),
    ])
}

fn schema_u() -> Schema {
    Schema::new(&[("gid", ValueType::Int), ("label", ValueType::Text)])
}

/// Raw material for one `t` row: `(id, grp, val_num, name, nulls, flag)`.
/// `grp` comes from a small domain so joins and GROUP BY produce real
/// collisions; the `nulls` selector makes `val`/`name` NULL on some rows to
/// exercise three-valued logic on every path.
type TRowSeed = (i64, i64, i64, String, u8, u8);

fn t_row(seed: &TRowSeed) -> Vec<Value> {
    let (id, grp, val_num, name, nulls, flag) = seed;
    let val = if nulls % 4 == 0 { Value::Null } else { Value::Float(*val_num as f64 / 4.0) };
    let name = if nulls / 4 == 0 { Value::Null } else { Value::from(name.as_str()) };
    vec![Value::Int(*id), Value::Int(*grp), val, name, Value::Bool(flag % 2 == 0)]
}

/// Mirror the same rows into the reference store and an indexed paged store.
fn mirrored(t_rows: &[Vec<Value>], u_rows: &[Vec<Value>]) -> (Database, PagedDb) {
    let mut db = Database::new();
    db.create_table("t", schema_t()).unwrap();
    db.create_table("u", schema_u()).unwrap();
    let mut pg = PagedDb::in_memory();
    pg.create_table("t", schema_t()).unwrap();
    pg.create_table("u", schema_u()).unwrap();
    for r in t_rows {
        db.insert("t", r.clone()).unwrap();
        pg.insert("t", r.clone()).unwrap();
    }
    for r in u_rows {
        db.insert("u", r.clone()).unwrap();
        pg.insert("u", r.clone()).unwrap();
    }
    // indexes over every interesting column shape: unique int, low-cardinality
    // int, nullable float, nullable text, composite
    pg.create_index("t", "ix_t_id", &["id"]).unwrap();
    pg.create_index("t", "ix_t_grp", &["grp"]).unwrap();
    pg.create_index("t", "ix_t_val", &["val"]).unwrap();
    pg.create_index("t", "ix_t_name", &["name"]).unwrap();
    pg.create_index("t", "ix_t_grp_id", &["grp", "id"]).unwrap();
    pg.create_index("u", "ix_u_gid", &["gid"]).unwrap();
    (db, pg)
}

const ITEMS: [&str; 7] = [
    "*",
    "t.id, t.grp",
    "t.grp, count(*)",
    "t.grp, count(t.val), min(t.name), max(t.id)",
    "sum(t.val), avg(t.id)",
    "t.name",
    "t.id, t.val, t.flag",
];

/// One WHERE conjunct from its raw material `(kind, int key, text key)`.
/// Kinds cover index-eligible equalities and ranges on every indexed column
/// plus non-sargable shapes the planner must leave to the filter.
fn conjunct((kind, k, s): &(usize, i64, String)) -> String {
    match kind % 11 {
        0 => format!("t.id = {}", k % 64),
        1 => format!("t.grp = {}", k % 6),
        2 => format!("t.val >= {}", (k % 30) as f64 / 4.0),
        3 => format!("t.val < {}", (k % 30) as f64 / 4.0),
        4 => format!("t.name <= '{s}'"),
        5 => format!("t.name = '{s}'"),
        6 => "t.flag = TRUE".to_string(),
        7 => "t.name IS NOT NULL".to_string(),
        8 => format!("t.id >= {}", k % 64),
        9 => format!("t.id < {}", k % 64),
        // arithmetic on the column defeats every index
        _ => format!("t.id + 1 > {}", k % 12),
    }
}

/// Assemble a random query from index-selected parts, covering every
/// operator in the pipeline: filters, joins, grouped and ungrouped
/// aggregates, HAVING, DISTINCT, ORDER BY, LIMIT.
#[allow(clippy::too_many_arguments)]
fn make_sql(
    item_ix: usize,
    join_ix: usize,
    wh: &[(usize, i64, String)],
    group_ix: usize,
    having_ix: usize,
    distinct_ix: usize,
    order_ix: usize,
    limit_ix: usize,
) -> String {
    let items = ITEMS[item_ix % ITEMS.len()];
    let mut conjs: Vec<String> = wh.iter().map(conjunct).collect();
    let from = if join_ix.is_multiple_of(4) {
        conjs.insert(0, "t.grp = u.gid".to_string());
        "t, u"
    } else {
        "t"
    };
    let wh =
        if conjs.is_empty() { String::new() } else { format!(" WHERE {}", conjs.join(" AND ")) };
    let group = if group_ix.is_multiple_of(3) { " GROUP BY t.grp" } else { "" };
    let having =
        if !group.is_empty() && having_ix.is_multiple_of(4) { " HAVING count(*) >= 2" } else { "" };
    let distinct = if distinct_ix.is_multiple_of(5) { "DISTINCT " } else { "" };
    let order =
        ["", " ORDER BY t.id", " ORDER BY t.grp DESC, t.id", " ORDER BY t.name"][order_ix % 4];
    let limit =
        if limit_ix.is_multiple_of(3) { format!(" LIMIT {}", limit_ix / 3) } else { String::new() };
    format!("SELECT {distinct}{items} FROM {from}{wh}{group}{having}{order}{limit}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn three_engines_agree_on_random_queries(
        t_seeds in prop::collection::vec(
            (0i64..64, 0i64..6, -100i64..100, "[a-c]{0,3}", 0u8..16, 0u8..2), 0..40),
        u_seeds in prop::collection::vec((0i64..6, "[x-z]{1,2}"), 0..8),
        wh in prop::collection::vec((0usize..11, 0i64..1024, "[a-c]{0,2}"), 0..3),
        shape in (0usize..64, 0usize..64, 0usize..64, 0usize..64, 0usize..64, 0usize..64),
    ) {
        let t_rows: Vec<Vec<Value>> = t_seeds.iter().map(t_row).collect();
        let u_rows: Vec<Vec<Value>> = u_seeds
            .iter()
            .map(|(gid, label)| vec![Value::Int(*gid), Value::from(label.as_str())])
            .collect();
        let (db, pg) = mirrored(&t_rows, &u_rows);
        let (item_ix, join_ix, group_ix, having_ix, distinct_ix, order_limit) = shape;
        let sql = make_sql(
            item_ix, join_ix, &wh, group_ix, having_ix, distinct_ix,
            order_limit, order_limit / 4,
        );
        let q = parse(&sql).expect("generated SQL parses");

        let reference = execute_query(&db, &q);
        let volcano_mem = run_query(&db as &dyn TableProvider, &q);
        let volcano_paged = run_query(&pg as &dyn TableProvider, &q);

        match (&reference, &volcano_mem, &volcano_paged) {
            (Ok(a), Ok(b), Ok(c)) => {
                prop_assert_eq!(&a.columns, &b.columns, "columns (mem) for {}", sql);
                prop_assert_eq!(&a.rows, &b.rows, "rows (mem) for {}", sql);
                prop_assert_eq!(&a.columns, &c.columns, "columns (paged) for {}", sql);
                prop_assert_eq!(&a.rows, &c.rows, "rows (paged) for {}", sql);
            }
            (Err(ea), Err(eb), Err(ec)) => {
                // engines must refuse the same queries; message equality
                // pins the error down to the same cause
                prop_assert_eq!(ea.to_string(), eb.to_string(), "error (mem) for {}", sql);
                prop_assert_eq!(ea.to_string(), ec.to_string(), "error (paged) for {}", sql);
            }
            _ => prop_assert!(
                false,
                "engines disagree on success for {}: reference {:?} mem {:?} paged {:?}",
                sql,
                reference.as_ref().map(|r| r.len()).map_err(|e| e.to_string()),
                volcano_mem.as_ref().map(|r| r.len()).map_err(|e| e.to_string()),
                volcano_paged.as_ref().map(|r| r.len()).map_err(|e| e.to_string()),
            ),
        }
    }

    /// The paged store's structural invariants survive arbitrary insert
    /// orders (B+tree splits at every shape the rows can force).
    #[test]
    fn paged_integrity_holds_for_random_tables(
        t_seeds in prop::collection::vec(
            (0i64..64, 0i64..6, -100i64..100, "[a-c]{0,3}", 0u8..16, 0u8..2), 0..80),
        u_seeds in prop::collection::vec((0i64..6, "[x-z]{1,2}"), 0..20),
    ) {
        let t_rows: Vec<Vec<Value>> = t_seeds.iter().map(t_row).collect();
        let u_rows: Vec<Vec<Value>> = u_seeds
            .iter()
            .map(|(gid, label)| vec![Value::Int(*gid), Value::from(label.as_str())])
            .collect();
        let (_, pg) = mirrored(&t_rows, &u_rows);
        if let Err(e) = pg.verify_integrity() {
            prop_assert!(false, "integrity violated: {}", e);
        }
        // and the round-trip back to a plain Database preserves every row
        let db = pg.to_database();
        prop_assert_eq!(db.table("t").unwrap().len(), t_rows.len());
        prop_assert_eq!(db.table("u").unwrap().len(), u_rows.len());
    }
}
