//! Property tests for the durable storage engine's recovery invariant:
//! **any byte prefix of the WAL recovers to a committed prefix of the
//! mutation sequence** — never a torn record, never reordered state.
//!
//! A seeded driver applies a random mutation sequence to a store; each
//! top-level mutation commits exactly one WAL frame, so "prefix of calls"
//! and "prefix of frames" coincide. The tests then cut the WAL at random
//! byte offsets (with and without garbage tails), or kill the store with a
//! fault-injected panic mid-sequence, reopen, and require the recovered
//! tables to be byte-equal to one of the prefix states.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use proptest::prelude::*;
use provenance::durable::io::{FaultEnv, FaultPlan, MemEnv};
use provenance::provwf::{ActivationRecord, ActivationStatus, ActivityId, TaskId, WorkflowId};
use provenance::{Durability, DurableOptions, ProvenanceStore, Value};

/// SplitMix64 — the driver's own deterministic RNG, independent of the
/// proptest shim internals.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const STATUSES: [ActivationStatus; 5] = [
    ActivationStatus::Finished,
    ActivationStatus::Failed,
    ActivationStatus::Aborted,
    ActivationStatus::Blacklisted,
    ActivationStatus::Running,
];

/// Apply exactly `steps` mutations to `p`, deterministically from `seed`.
/// Two stores driven with the same `(seed, steps)` receive identical calls
/// and allocate identical ids.
fn drive(p: &ProvenanceStore, seed: u64, steps: usize) {
    let mut rng = Rng(seed);
    let mut wkfs: Vec<WorkflowId> = Vec::new();
    let mut acts: Vec<(ActivityId, WorkflowId)> = Vec::new();
    let mut tasks: Vec<(TaskId, ActivityId, WorkflowId)> = Vec::new();
    for i in 0..steps {
        // ensure prerequisites exist so every branch is a single commit
        let choice = if wkfs.is_empty() {
            0
        } else if acts.is_empty() {
            1
        } else if tasks.is_empty() {
            2
        } else {
            rng.below(8)
        };
        match choice {
            0 => wkfs.push(p.begin_workflow(&format!("wf{i}"), "prop", "/e")),
            1 => {
                let w = wkfs[rng.below(wkfs.len() as u64) as usize];
                acts.push((p.register_activity(w, &format!("act{i}"), "Map"), w));
            }
            2 | 3 => {
                let (a, w) = acts[rng.below(acts.len() as u64) as usize];
                let start = rng.below(1000) as f64 / 10.0;
                let rec = ActivationRecord {
                    activity: a,
                    workflow: w,
                    status: STATUSES[rng.below(5) as usize],
                    start_time: start,
                    end_time: start + rng.below(600) as f64 / 10.0,
                    machine: None,
                    retries: rng.below(4) as i64,
                    pair_key: format!("R{}:L{i}", rng.below(9)),
                };
                tasks.push((p.record_activation(&rec), a, w));
            }
            4 => {
                let (t, a, w) = tasks[rng.below(tasks.len() as u64) as usize];
                let rec = ActivationRecord {
                    activity: a,
                    workflow: w,
                    status: STATUSES[rng.below(5) as usize],
                    start_time: 1.0,
                    end_time: 1.0 + rng.below(100) as f64,
                    machine: None,
                    retries: rng.below(4) as i64,
                    pair_key: format!("upd{i}"),
                };
                assert!(p.update_activation(t, &rec));
            }
            5 => {
                let (t, a, w) = tasks[rng.below(tasks.len() as u64) as usize];
                p.record_file(t, a, w, &format!("f{i}.dlg"), rng.below(1 << 20) as i64, "/e/d/");
            }
            6 => {
                let (t, _, w) = tasks[rng.below(tasks.len() as u64) as usize];
                if rng.below(2) == 0 {
                    p.record_parameter(t, w, &format!("p{i}"), Some(rng.below(100) as f64), None);
                } else {
                    p.record_parameter(t, w, &format!("p{i}"), None, Some("text'val"));
                }
            }
            _ => {
                let (t, a, w) = tasks[rng.below(tasks.len() as u64) as usize];
                let tuple: Vec<Value> = match rng.below(3) {
                    0 => vec![],
                    1 => vec![Value::Int(i as i64)],
                    _ => vec![Value::Float(i as f64 / 3.0), Value::Text(format!("t{i}"))],
                };
                p.record_output_tuple(t, a, w, &format!("R{}:Lo", rng.below(9)), i, &tuple);
            }
        }
    }
}

fn sync_options() -> DurableOptions {
    // checkpoint_every: 0 keeps every frame in the WAL so a byte cut maps
    // cleanly onto a call prefix
    DurableOptions { durability: Durability::Sync, checkpoint_every: 0, ..Default::default() }
}

/// The tables of a fresh in-memory store after the first `m` calls.
fn prefix_state(seed: u64, m: usize) -> Vec<(String, Vec<Vec<Value>>)> {
    let p = ProvenanceStore::new();
    drive(&p, seed, m);
    p.dump_tables()
}

/// Assert `recovered` equals some call-prefix state, returning the match.
fn assert_is_prefix(recovered: &[(String, Vec<Vec<Value>>)], seed: u64, steps: usize) -> usize {
    for m in (0..=steps).rev() {
        if prefix_state(seed, m) == recovered {
            return m;
        }
    }
    panic!("recovered state matches no prefix (seed {seed})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ≥ 100 random crash points in total: 48 cases × 3 cuts each.
    #[test]
    fn any_wal_byte_prefix_recovers_to_a_call_prefix(
        seed in 0u64..u64::MAX / 2,
        steps in 1usize..24,
        cuts in prop::collection::vec(0u64..u64::MAX / 2, 3usize..=3),
        junk_len in 0usize..24,
    ) {
        let env = MemEnv::new();
        let p = ProvenanceStore::open_env(Box::new(env.clone()), sync_options()).unwrap();
        drive(&p, seed, steps);
        drop(p);
        let wal = env.wal_bytes();
        // the 12-byte header (magic + version) is written and synced once at
        // creation, so crashes tear the frame region, never the header
        const WAL_HEADER: usize = 12;

        for (k, cut_seed) in cuts.iter().enumerate() {
            let span = (wal.len() - WAL_HEADER) as u64 + 1;
            let cut = WAL_HEADER + (*cut_seed % span) as usize;
            let mut bytes = wal[..cut].to_vec();
            if k == 2 {
                // garbage tail: recovery must stop at the first bad frame
                let mut jr = Rng(*cut_seed);
                bytes.extend((0..junk_len).map(|_| jr.next() as u8));
            }
            let torn = MemEnv::new();
            torn.set_wal_bytes(bytes);
            let rp = ProvenanceStore::open_env(Box::new(torn.clone()), sync_options())
                .expect("a torn tail is recoverable, never a hard error");
            let m = assert_is_prefix(&rp.dump_tables(), seed, steps);
            if cut >= wal.len() && k != 2 {
                prop_assert_eq!(m, steps, "an uncut WAL recovers everything");
            }
            // the recovered store accepts new writes where it left off
            rp.begin_workflow("after-recovery", "", "/e");
            drop(rp);
            let again = ProvenanceStore::open_env(Box::new(torn), sync_options()).unwrap();
            prop_assert!(!again.workflows().is_empty());
        }
    }

    /// Injected process death after a random number of WAL appends: the
    /// reopened store sees exactly the acknowledged prefix.
    #[test]
    fn panic_crash_recovers_exactly_the_acknowledged_prefix(
        seed in 0u64..u64::MAX / 2,
        steps in 2usize..24,
        crash_frac in 1u64..100,
    ) {
        let crash_at = 1 + (crash_frac as usize * steps) / 100;
        let env = MemEnv::new();
        // append #1 is the log header, so frame n is append n + 1
        let fault = FaultEnv::new(
            Box::new(env.clone()),
            Arc::new(FaultPlan::panic_after(crash_at as u64 + 1)),
        );
        let p = ProvenanceStore::open_env(Box::new(fault), sync_options()).unwrap();
        let died = catch_unwind(AssertUnwindSafe(|| drive(&p, seed, steps))).is_err();
        // a killed process runs no destructors
        std::mem::forget(p);
        prop_assert!(died || crash_at >= steps);

        let rp = ProvenanceStore::open_env(Box::new(env), sync_options()).unwrap();
        let m = assert_is_prefix(&rp.dump_tables(), seed, steps);
        // Sync mode: every append that returned is durable, so the recovered
        // prefix is exactly the calls that completed before the panic
        prop_assert_eq!(m, crash_at.min(steps), "seed {}", seed);
    }

    /// A short (torn) write on the last append is truncated away and the
    /// store stays usable.
    #[test]
    fn short_write_is_truncated_on_reopen(
        seed in 0u64..u64::MAX / 2,
        steps in 2usize..16,
    ) {
        let env = MemEnv::new();
        // append #1 is the log header, so the last frame is append steps + 1
        let fault = FaultEnv::new(
            Box::new(env.clone()),
            Arc::new(FaultPlan::short_write_at(steps as u64 + 1)),
        );
        let p = ProvenanceStore::open_env(Box::new(fault), sync_options()).unwrap();
        // the torn append panics the commit path (crash semantics)
        let died = catch_unwind(AssertUnwindSafe(|| drive(&p, seed, steps))).is_err();
        std::mem::forget(p);
        prop_assert!(died);

        let rp = ProvenanceStore::open_env(Box::new(env), sync_options()).unwrap();
        let m = assert_is_prefix(&rp.dump_tables(), seed, steps);
        prop_assert_eq!(m, steps - 1, "everything before the torn frame survives");
    }
}
