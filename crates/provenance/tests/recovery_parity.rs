//! Query-parity tests for crash recovery: every externally observable view
//! of the store — the PROV-N export, all `steering::*` helpers, and the
//! paper's Query 1 / Query 2 — must be **identical** on a reopened store to
//! what an in-memory store holding the same committed rows answers.
//!
//! Two recovery paths are covered: a clean close/reopen of an on-disk
//! store (WAL replay and snapshot+WAL after a checkpoint), and a
//! fault-injected crash whose recovered state is some prefix of the call
//! sequence.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use provenance::durable::io::{DirEnv, FaultEnv, FaultPlan, MemEnv};
use provenance::durable::testing::TempDir;
use provenance::provwf::{ActivationRecord, ActivationStatus, MachineId, ProvenanceStore};
use provenance::steering;
use provenance::{export_provn, Durability, DurableOptions, Value};

/// Apply the first `steps` calls of a fixed, SciDock-shaped mutation
/// sequence: one workflow, two activities, a VM, and a stream of
/// activations with mixed statuses, retries, files, parameters, and output
/// tuples. Deterministic, so any prefix can be rebuilt in memory.
fn populate(p: &ProvenanceStore, steps: usize) {
    let mut budget = steps;
    let take = |n: &mut usize| {
        if *n == 0 {
            false
        } else {
            *n -= 1;
            true
        }
    };

    if !take(&mut budget) {
        return;
    }
    let w = p.begin_workflow("SciDock", "docking campaign", "/root/exp_SciDock");
    if !take(&mut budget) {
        return;
    }
    let babel = p.register_activity(w, "babel1k", "Map");
    if !take(&mut budget) {
        return;
    }
    let vina = p.register_activity(w, "autodockvina1k", "Map");
    if !take(&mut budget) {
        return;
    }
    let vm: MachineId = p.register_machine("vm-001", "m3.xlarge", 4);

    let statuses = [
        ActivationStatus::Finished,
        ActivationStatus::Finished,
        ActivationStatus::Failed,
        ActivationStatus::Finished,
        ActivationStatus::Aborted,
        ActivationStatus::Blacklisted,
        ActivationStatus::Running,
        ActivationStatus::Finished,
    ];
    for i in 0.. {
        if !take(&mut budget) {
            return;
        }
        let act = if i % 2 == 0 { babel } else { vina };
        let start = i as f64 * 3.5;
        let t = p.record_activation(&ActivationRecord {
            activity: act,
            workflow: w,
            status: statuses[i % statuses.len()],
            start_time: start,
            end_time: start + 2.0 + (i % 5) as f64 * 7.0,
            machine: Some(vm),
            retries: (i % 4) as i64,
            pair_key: format!("1AEC:{i:03}"),
        });
        if !take(&mut budget) {
            return;
        }
        p.record_file(t, act, w, &format!("out_{i}.dlg"), 1000 + i as i64 * 37, "/e/d/");
        if !take(&mut budget) {
            return;
        }
        p.record_parameter(t, w, "exhaustiveness", Some(8.0 + i as f64), None);
        if !take(&mut budget) {
            return;
        }
        p.record_output_tuple(
            t,
            act,
            w,
            &format!("1AEC:{i:03}"),
            i,
            &[Value::Float(-7.5 - i as f64 / 10.0), Value::Text(format!("pose{i}"))],
        );
    }
}

/// Enough steps to exercise every status and several retry levels.
const FULL: usize = 44;

/// Everything a scientist can observe about a store, in one comparable
/// bundle: the PROV-N document, each steering helper, and the paper's
/// Query 1 / Query 2 result rows.
#[derive(Debug, PartialEq)]
struct Observed {
    provn: String,
    status_summary: Vec<steering::StatusCount>,
    failures: Vec<(String, i64)>,
    slowest: Vec<steering::SlowActivation>,
    problematic: Vec<(String, i64)>,
    throughput: Vec<(i64, i64)>,
    data_volume: f64,
    query1: Vec<Vec<Value>>,
    query2: Vec<Vec<Value>>,
}

fn observe(p: &ProvenanceStore) -> Observed {
    let query1 = p
        .query_rows(
            "SELECT a.tag, \
               min(extract('epoch' from (t.endtime-t.starttime))), \
               max(extract('epoch' from (t.endtime-t.starttime))), \
               sum(extract('epoch' from (t.endtime-t.starttime))), \
               avg(extract('epoch' from (t.endtime-t.starttime))) \
             FROM hworkflow w, hactivity a, hactivation t \
             WHERE w.wkfid = a.wkfid AND a.actid = t.actid \
             GROUP BY a.tag ORDER BY a.tag",
            &[],
        )
        .unwrap()
        .rows;
    let query2 = p
        .query_rows(
            "SELECT w.tag, a.tag, f.fname, f.fsize, f.fdir \
             FROM hworkflow w, hactivity a, hactivation t, hfile f \
             WHERE w.wkfid = a.wkfid AND a.actid = t.actid AND t.taskid = f.taskid \
             AND f.fname LIKE '%.dlg' ORDER BY f.fname",
            &[],
        )
        .unwrap()
        .rows;
    Observed {
        provn: export_provn(p),
        status_summary: steering::status_summary(p).unwrap(),
        failures: steering::failures_by_activity(p).unwrap(),
        slowest: steering::slowest_activations(p, 5).unwrap(),
        problematic: steering::problematic_pairs(p, 2).unwrap(),
        throughput: steering::throughput(p, 10.0).unwrap(),
        data_volume: steering::data_volume_bytes(p).unwrap(),
        query1,
        query2,
    }
}

fn sync_options() -> DurableOptions {
    DurableOptions { durability: Durability::Sync, checkpoint_every: 0, ..Default::default() }
}

/// Reference view: a fresh in-memory store driven with the same prefix.
fn reference(steps: usize) -> Observed {
    let p = ProvenanceStore::new();
    populate(&p, steps);
    observe(&p)
}

#[test]
fn paged_and_mem_stores_answer_every_query_identically() {
    // same mutation sequence into both backings, no durability involved:
    // the B+tree/heap-file engine and the Vec-of-rows engine must be
    // observationally indistinguishable, including byte-identical
    // canonical PROV-N
    let mem = ProvenanceStore::new();
    let paged = ProvenanceStore::new_paged();
    assert!(!mem.is_paged());
    assert!(paged.is_paged());
    populate(&mem, FULL);
    populate(&paged, FULL);
    assert_eq!(observe(&mem), observe(&paged));
    assert_eq!(
        provenance::export_provn_canonical(&mem),
        provenance::export_provn_canonical(&paged),
        "canonical PROV-N must be byte-identical across backings"
    );
    paged.verify_integrity().expect("paged structural invariants hold");
    assert!(
        paged.cache_stats().hits > 0,
        "queries over the paged store must actually go through the page cache"
    );
}

#[test]
fn clean_reopen_on_disk_answers_every_query_identically() {
    let dir = TempDir::new("parity-clean");
    let open = || {
        let env = DirEnv::new(dir.path()).unwrap();
        ProvenanceStore::open_env(Box::new(env), sync_options()).unwrap()
    };

    let p = open();
    populate(&p, FULL);
    let before = observe(&p);
    assert_eq!(before, reference(FULL), "durable and in-memory stores agree while open");
    drop(p);

    // reopen #1: recovery is pure WAL replay
    let p = open();
    let after = observe(&p);
    assert_eq!(after.provn, before.provn, "PROV-N export is byte-identical after WAL replay");
    assert_eq!(after, before);

    // checkpoint, then reopen #2: recovery is snapshot + empty WAL
    assert!(p.checkpoint(), "checkpoint must succeed on a durable store");
    drop(p);
    let p = open();
    let after = observe(&p);
    assert_eq!(after.provn, before.provn, "PROV-N export is byte-identical after snapshot load");
    assert_eq!(after, before);
}

#[test]
fn crash_recovered_store_answers_like_its_committed_prefix() {
    // crash at several depths: early (schema only), mid-stream, near the end
    for crash_at in [3usize, 17, 29, FULL - 1] {
        let env = MemEnv::new();
        // append #1 is the WAL header, so call n is append n + 1
        let fault = FaultEnv::new(
            Box::new(env.clone()),
            Arc::new(FaultPlan::panic_after(crash_at as u64 + 1)),
        );
        let p = ProvenanceStore::open_env(Box::new(fault), sync_options()).unwrap();
        let died = catch_unwind(AssertUnwindSafe(|| populate(&p, FULL))).is_err();
        assert!(died, "the injected fault must fire (crash_at {crash_at})");
        // a killed process runs no destructors
        std::mem::forget(p);

        let rp = ProvenanceStore::open_env(Box::new(env), sync_options()).unwrap();
        assert!(rp.is_paged(), "durable stores recover onto the paged backing");
        rp.verify_integrity().expect("recovered paged store passes structural checks");
        assert_eq!(
            observe(&rp),
            reference(crash_at),
            "recovered store at crash point {crash_at} answers exactly like \
             an in-memory store holding the committed prefix"
        );
    }
}

#[test]
fn torn_tail_on_disk_still_answers_like_a_committed_prefix() {
    let dir = TempDir::new("parity-torn");
    let wal_path = dir.path().join("wal.log");
    let p = ProvenanceStore::open_env(Box::new(DirEnv::new(dir.path()).unwrap()), sync_options())
        .unwrap();
    populate(&p, FULL);
    drop(p);

    // tear the on-disk log: keep 70% and smear a torn half-frame of junk
    let wal = std::fs::read(&wal_path).unwrap();
    let mut torn = wal[..wal.len() * 7 / 10].to_vec();
    torn.extend_from_slice(&[0xAB; 11]);
    std::fs::write(&wal_path, torn).unwrap();

    let rp = ProvenanceStore::open_env(Box::new(DirEnv::new(dir.path()).unwrap()), sync_options())
        .unwrap();
    rp.verify_integrity().expect("recovered paged store passes structural checks");
    let got = observe(&rp);
    // the recovered state must be *some* committed prefix — find it and
    // require full query parity at that depth
    let m = (0..=FULL)
        .rev()
        .find(|&m| reference(m) == got)
        .expect("recovered queries match no call prefix");
    assert!(m < FULL, "truncation must have lost the tail");
    assert!(m > 0, "70% of the WAL holds more than zero calls");
}
